//! Randomized cross-validation: arbitrary inputs sort identically
//! through the cycle simulator, the functional schedule, the radix
//! baseline, and the standard library.

use bonsai::amt::{functional, AmtConfig, SimEngine, SimEngineConfig};
use bonsai::baselines::radix::parallel_radix_sort;
use bonsai::records::{Record, U32Rec};
use bonsai_rng::Rng;

#[test]
fn sim_functional_radix_std_agree() {
    let mut rng = Rng::seed_from_u64(0xC405_0001);
    for _ in 0..24 {
        let len = rng.below_usize(3_000);
        let data: Vec<U32Rec> = (0..len)
            .map(|_| U32Rec::new(rng.next_u32().max(1)))
            .collect();
        let p = 1 << rng.below_usize(4);
        let l = 1 << rng.range_usize(1, 5);
        let mut expected = data.clone();
        expected.sort_unstable();

        let amt = AmtConfig::new(p, l);
        let cfg = SimEngineConfig::dram_sorter(amt, 4);
        let (sim, _) = SimEngine::new(cfg).sort(data.clone());
        assert_eq!(&sim, &expected);

        let (func, _) = functional::sort_balanced(data.clone(), l, 16);
        assert_eq!(&func, &expected);

        let mut radix = data;
        parallel_radix_sort(&mut radix, 2);
        assert_eq!(&radix, &expected);
    }
}

#[test]
fn simulator_sanitizes_and_sorts_zero_heavy_input() {
    // Zeros collide with the reserved terminal record; sanitize maps
    // them to 1. The output must be the sorted sanitized multiset.
    let mut rng = Rng::seed_from_u64(0xC405_0002);
    for _ in 0..24 {
        let len = rng.below_usize(1_000);
        let data: Vec<U32Rec> = (0..len).map(|_| U32Rec::new(rng.below_u32(8))).collect();
        let mut expected: Vec<U32Rec> = data.iter().map(|r| r.sanitize()).collect();
        expected.sort_unstable();

        let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(2, 4), 4);
        let (out, _) = SimEngine::new(cfg).sort(data);
        assert_eq!(out, expected);
    }
}

#[test]
fn stage_count_invariant() {
    // The executed stage count always equals ceil(log_l(initial runs)).
    let mut rng = Rng::seed_from_u64(0xC405_0003);
    for _ in 0..24 {
        let n = rng.range_usize(1, 49_999);
        let l = 1usize << rng.range_usize(1, 8);
        let presort = [1usize, 4, 16][rng.below_usize(3)];
        let data: Vec<U32Rec> = (0..n)
            .map(|i| U32Rec::new((i as u32).wrapping_mul(2_654_435_761) | 1))
            .collect();
        let (out, stages) = functional::sort_balanced(data, l, presort);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        let runs0 = (n as u64).div_ceil(presort as u64);
        assert_eq!(stages, bonsai::records::run::stages_needed(runs0, l as u64));
    }
}
