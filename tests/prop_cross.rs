//! Property-based cross-validation: arbitrary inputs sort identically
//! through the cycle simulator, the functional schedule, the radix
//! baseline, and the standard library.

use bonsai::amt::{functional, AmtConfig, SimEngine, SimEngineConfig};
use bonsai::baselines::radix::parallel_radix_sort;
use bonsai::records::{Record, U32Rec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sim_functional_radix_std_agree(
        vals in proptest::collection::vec(1u32..u32::MAX, 0..3_000),
        p_log in 0usize..4,
        l_log in 1usize..6,
    ) {
        let data: Vec<U32Rec> = vals.iter().map(|&v| U32Rec::new(v)).collect();
        let mut expected = data.clone();
        expected.sort_unstable();

        let amt = AmtConfig::new(1 << p_log, 1 << l_log);
        let cfg = SimEngineConfig::dram_sorter(amt, 4);
        let (sim, _) = SimEngine::new(cfg).sort(data.clone());
        prop_assert_eq!(&sim, &expected);

        let (func, _) = functional::sort_balanced(data.clone(), 1 << l_log, 16);
        prop_assert_eq!(&func, &expected);

        let mut radix = data;
        parallel_radix_sort(&mut radix, 2);
        prop_assert_eq!(&radix, &expected);
    }

    #[test]
    fn simulator_sanitizes_and_sorts_zero_heavy_input(
        vals in proptest::collection::vec(0u32..8, 0..1_000),
    ) {
        // Zeros collide with the reserved terminal record; sanitize maps
        // them to 1. The output must be the sorted sanitized multiset.
        let data: Vec<U32Rec> = vals.iter().map(|&v| U32Rec::new(v)).collect();
        let mut expected: Vec<U32Rec> = data.iter().map(|r| r.sanitize()).collect();
        expected.sort_unstable();

        let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(2, 4), 4);
        let (out, _) = SimEngine::new(cfg).sort(data);
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn stage_count_invariant(
        n in 1usize..50_000,
        l_log in 1usize..9,
        presort in prop::sample::select(vec![1usize, 4, 16]),
    ) {
        // The executed stage count always equals ceil(log_l(initial runs)).
        let l = 1usize << l_log;
        let data: Vec<U32Rec> = (0..n).map(|i| U32Rec::new((i as u32).wrapping_mul(2_654_435_761) | 1)).collect();
        let (out, stages) = functional::sort_balanced(data, l, presort);
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        let runs0 = (n as u64).div_ceil(presort as u64);
        prop_assert_eq!(stages, bonsai::records::run::stages_needed(runs0, l as u64));
    }
}
