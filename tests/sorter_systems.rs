//! Integration tests of the three end-to-end sorting systems and their
//! reports.

use bonsai::core::Bonsai;
use bonsai::gensort::dist::uniform_u32;
use bonsai::model::HardwareParams;
use bonsai::sorters::{SorterError, SsdSorter, Timing};

#[test]
fn all_three_sorters_produce_identical_output() {
    let data = uniform_u32(180_000, 55);
    let mut expected = data.clone();
    expected.sort_unstable();

    let (dram, _) = Bonsai::aws_f1()
        .dram_sorter()
        .sort(data.clone())
        .expect("fits");
    assert_eq!(dram, expected);

    let (hbm, _) = Bonsai::hbm().hbm_sorter().sort(data.clone()).expect("fits");
    assert_eq!(hbm, expected);

    let ssd = SsdSorter::new(HardwareParams::aws_f1_ssd()).with_chunk_bytes(8_192);
    let (ssd_out, _) = ssd.sort(data).expect("fits");
    assert_eq!(ssd_out, expected);
}

#[test]
fn reports_are_internally_consistent() {
    let data = uniform_u32(100_000, 56);
    let (_, report) = Bonsai::aws_f1().sort(data).expect("fits");
    let phase_sum: f64 = report.phases.iter().map(|p| p.seconds).sum();
    assert!((report.seconds() - phase_sum).abs() < 1e-12);
    let gb = report.bytes as f64 / 1e9;
    assert!((report.ms_per_gb() - report.seconds() * 1e3 / gb).abs() < 1e-9);
    assert!(report.bandwidth_efficiency(32e9) > 0.0);
    assert_eq!(report.timing, Timing::Modeled);
}

#[test]
fn dram_projection_is_scale_invariant_within_stage_bands() {
    // Within a stage band (Fig. 13 plateau), ms/GB is constant.
    let sorter = Bonsai::aws_f1().dram_sorter();
    let a = sorter.project(4_000_000_000, 4).expect("fits").ms_per_gb();
    let b = sorter.project(32_000_000_000, 4).expect("fits").ms_per_gb();
    assert!((a - b).abs() < 1e-6, "{a} vs {b}");
}

#[test]
fn hbm_sorter_projects_better_bandwidth_efficiency_than_dram_at_scale() {
    let hbm = Bonsai::hbm()
        .hbm_sorter()
        .project(8_000_000_000, 4)
        .expect("fits");
    let dram = Bonsai::aws_f1()
        .dram_sorter()
        .project(8_000_000_000, 4)
        .expect("fits");
    // Raw speed: HBM wins big.
    assert!(hbm.seconds() < dram.seconds() / 2.0);
}

#[test]
fn errors_are_reported_not_panicked() {
    let sorter = Bonsai::aws_f1().dram_sorter();
    let err = sorter.project(1_000_000_000_000, 4).unwrap_err();
    assert!(matches!(err, SorterError::TooLarge { .. }));
    assert!(err.to_string().contains("exceeds"));

    let mut hw = HardwareParams::aws_f1();
    hw.c_lut = 10;
    let infeasible = bonsai::sorters::DramSorter::new(hw)
        .project(1_000_000, 4)
        .unwrap_err();
    assert!(matches!(infeasible, SorterError::Infeasible));
}

#[test]
fn record_width_does_not_change_sorted_order_semantics() {
    use bonsai::records::{KvRec, Record};
    // Sorting kv records keeps key groups contiguous and values sorted
    // within groups (full-record Ord), across the whole system.
    let data: Vec<KvRec> = (0..50_000u64).map(|i| KvRec::new(i % 97, i)).collect();
    let (out, _) = Bonsai::aws_f1().sort(data).expect("fits");
    for w in out.windows(2) {
        assert!(w[0].key() <= w[1].key());
        if w[0].key() == w[1].key() {
            assert!(w[0].value() <= w[1].value());
        }
    }
}
