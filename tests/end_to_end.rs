//! Cross-crate integration: every execution path — cycle simulator,
//! functional AMT schedule, radix baseline — must agree with the
//! reference sort on real workloads.

use bonsai::amt::{functional, AmtConfig, SimEngine, SimEngineConfig};
use bonsai::baselines::radix::parallel_radix_sort;
use bonsai::core::Bonsai;
use bonsai::gensort::dist::{uniform_u32, Distribution};
use bonsai::gensort::GensortGenerator;
use bonsai::records::{Packed16, Record, U32Rec};

fn reference(mut data: Vec<U32Rec>) -> Vec<U32Rec> {
    data.sort_unstable();
    data
}

#[test]
fn all_paths_agree_on_uniform_data() {
    let data = uniform_u32(120_000, 99);
    let expected = reference(data.clone());

    let (functional_out, _) = functional::sort_balanced(data.clone(), 64, 16);
    assert_eq!(functional_out, expected, "functional path");

    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(8, 64), 4);
    let (sim_out, _) = SimEngine::new(cfg).sort(data.clone());
    assert_eq!(sim_out, expected, "cycle simulator");

    let mut radix = data.clone();
    parallel_radix_sort(&mut radix, 4);
    assert_eq!(radix, expected, "radix baseline");

    let (facade_out, _) = Bonsai::aws_f1().sort(data).expect("fits DRAM");
    assert_eq!(facade_out, expected, "facade sorter");
}

#[test]
fn simulator_handles_every_distribution() {
    for d in [
        Distribution::Uniform,
        Distribution::Sorted,
        Distribution::Reverse,
        Distribution::FewDistinct(5),
        Distribution::AlmostSorted(0.3),
        Distribution::Skewed { hot_fraction: 0.05 },
    ] {
        let data = d.generate_u32(20_000, 7);
        let expected = reference(data.clone());
        let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
        let (out, report) = SimEngine::new(cfg).sort(data);
        assert_eq!(out, expected, "{d:?}");
        assert!(report.total_cycles > 0);
    }
}

#[test]
fn simulator_config_sweep_preserves_output() {
    let data = uniform_u32(30_000, 11);
    let expected = reference(data.clone());
    for (p, l) in [(1usize, 2usize), (2, 4), (4, 64), (16, 16), (32, 256)] {
        let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4);
        let (out, _) = SimEngine::new(cfg).sort(data.clone());
        assert_eq!(out, expected, "AMT({p}, {l})");
    }
}

#[test]
fn gensort_pipeline_end_to_end() {
    // 100-byte records -> packed 16-byte -> cycle sim -> order by key.
    let mut generator = GensortGenerator::seeded(3);
    let packed: Vec<Packed16> = generator.take_packed(8_000);
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 16);
    let (sorted, report) = SimEngine::new(cfg).sort(packed.clone());
    assert!(sorted.windows(2).all(|w| w[0].key() <= w[1].key()));
    assert_eq!(sorted.len(), packed.len());
    // 16-byte records move 4x the bytes per cycle of 4-byte ones.
    assert_eq!(report.record_bytes, 16);
}

#[test]
fn wide_and_narrow_records_share_the_engine() {
    use bonsai::records::{KvRec, U64Rec, W256Rec};

    let n = 5_000usize;
    let u64s: Vec<U64Rec> = uniform_u32(n, 5)
        .iter()
        .map(|r| U64Rec::new(u64::from(r.0) << 8))
        .collect();
    let kvs: Vec<KvRec> = u64s
        .iter()
        .enumerate()
        .map(|(i, r)| KvRec::new(r.0, i as u64))
        .collect();
    let wides: Vec<W256Rec> = u64s.iter().map(|r| W256Rec::new([r.0, 1, 2, 3])).collect();

    let cfg8 = SimEngineConfig::dram_sorter(AmtConfig::new(2, 8), 8);
    let (out, _) = SimEngine::new(cfg8).sort(u64s);
    assert!(out.windows(2).all(|w| w[0] <= w[1]));

    let cfg16 = SimEngineConfig::dram_sorter(AmtConfig::new(2, 8), 16);
    let (out, _) = SimEngine::new(cfg16).sort(kvs);
    assert!(out.windows(2).all(|w| w[0] <= w[1]));

    let cfg32 = SimEngineConfig::dram_sorter(AmtConfig::new(2, 8), 32);
    let (out, _) = SimEngine::new(cfg32).sort(wides);
    assert!(out.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn facade_switches_to_ssd_for_oversized_arrays() {
    // A tiny "DRAM" makes the facade route through the SSD sorter.
    let mut hw = bonsai::model::HardwareParams::aws_f1_ssd();
    hw.c_dram = 1024; // 256 u32 records
    let bonsai = Bonsai::new(hw);
    let data = uniform_u32(100_000, 13);
    let expected = reference(data.clone());
    let (out, report) = bonsai.sort(data).expect("fits SSD");
    assert_eq!(out, expected);
    assert!(report.name.contains("SSD"), "report: {}", report.name);
}

#[test]
fn external_sorter_handles_gensort_records() {
    use bonsai::gensort::io::{read_wire_file, valsort, write_wire_file};
    use bonsai::gensort::GensortGenerator;
    use bonsai::sorters::ExternalSorter;

    let mut dir = std::env::temp_dir();
    dir.push(format!("bonsai-e2e-gensort-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let input = dir.join("in.bin");
    let output = dir.join("out.bin");

    let packed = GensortGenerator::seeded(2020).take_packed(30_000);
    write_wire_file(&input, &packed).expect("write");
    let stats = ExternalSorter::new(16 * 1024, 16)
        .with_scratch_dir(dir.join("scratch"))
        .sort_file::<Packed16>(&input, &output)
        .expect("sort");
    assert_eq!(stats.records, 30_000);
    assert!(stats.merge_passes >= 1, "must hit phase two");

    let sorted: Vec<Packed16> = read_wire_file(&output).expect("read");
    let summary = valsort(&sorted);
    assert!(summary.is_sorted());
    assert_eq!(summary.checksum, valsort(&packed).checksum);
    std::fs::remove_dir_all(&dir).ok();
}
