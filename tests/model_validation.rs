//! §VI-B model validation at integration scale: the analytic performance
//! and resource models must track the cycle-level simulator, and the
//! optimizer's ranking must be consistent with simulated reality.

use bonsai::amt::{AmtConfig, SimEngine, SimEngineConfig};
use bonsai::gensort::dist::uniform_u32;
use bonsai::model::{perf, ArrayParams, BonsaiOptimizer, HardwareParams};

/// Simulated seconds for an AMT at `n` records of u32.
fn simulate(amt: AmtConfig, n: usize) -> f64 {
    let data = uniform_u32(n, 0xBEEF);
    let cfg = SimEngineConfig::dram_sorter(amt, 4);
    let (_, report) = SimEngine::new(cfg).sort(data);
    report.seconds()
}

/// Model-predicted seconds for the same setup: Eq. 1 with the simulated
/// platform's sustained bandwidth (nominal derated by 4 KB burst
/// efficiency — the paper likewise plugs its measured beta into Eq. 1).
fn predict(amt: AmtConfig, n: usize) -> f64 {
    let mem = bonsai::memsim::MemoryConfig::ddr4_aws_f1();
    let beta_eff = 32e9 * mem.burst_efficiency(4096);
    let hw = HardwareParams::aws_f1().with_beta_dram(beta_eff);
    let array = ArrayParams::new(n as u64, 4);
    perf::eq1_latency(&array, &hw, amt.p, amt.l, 16)
}

#[test]
fn performance_model_tracks_simulation() {
    // The paper reports <10% at hardware scale; at this reduced scale
    // (pipeline-fill overheads are proportionally larger) we allow 25%.
    // Scale n with p so every config runs enough cycles per stage to be
    // in steady state; the bench-scale sweep (fig8_9, 2M records per
    // config) lands within 10%.
    for amt in [
        AmtConfig::new(8, 64),
        AmtConfig::new(16, 64),
        AmtConfig::new(16, 256),
        AmtConfig::new(32, 256),
    ] {
        let n = 60_000 * amt.p;
        let sim = simulate(amt, n);
        let model = predict(amt, n);
        let err = (sim - model).abs() / sim;
        assert!(
            err < 0.25,
            "{amt}: sim {sim:.4}s model {model:.4}s ({:.0}%)",
            err * 100.0
        );
    }
}

#[test]
fn optimizer_ranking_is_consistent_with_simulation() {
    // If the model says config A is at least 1.5x faster than config B,
    // the simulator must agree on the direction.
    let n = 200_000;
    let pairs = [
        (AmtConfig::new(16, 64), AmtConfig::new(4, 64)), // p wins below saturation
        (AmtConfig::new(8, 256), AmtConfig::new(8, 4)),  // l wins via stage count
    ];
    for (fast, slow) in pairs {
        let model_fast = predict(fast, n);
        let model_slow = predict(slow, n);
        assert!(
            model_fast * 1.5 <= model_slow,
            "test premise: model must separate {fast} and {slow}"
        );
        let sim_fast = simulate(fast, n);
        let sim_slow = simulate(slow, n);
        assert!(
            sim_fast < sim_slow,
            "simulation disagrees: {fast} {sim_fast:.4}s vs {slow} {sim_slow:.4}s"
        );
    }
}

#[test]
fn saturation_behavior_matches_section_vi_b() {
    // "Once DRAM bandwidth is saturated, increasing throughput p does
    // not decrease sorting time; however, increasing the number of
    // leaves l reduces the total number of merge stages."
    let hw = HardwareParams::aws_f1();
    let array = ArrayParams::from_bytes(4 << 30, 4);
    let saturated = perf::eq1_latency(&array, &hw, 32, 64, 16);
    let over = perf::eq1_latency(&array, &hw, 64, 64, 16);
    assert!(
        (saturated - over).abs() < 1e-12,
        "p beyond saturation is free"
    );
    let more_leaves = perf::eq1_latency(&array, &hw, 32, 256, 16);
    assert!(
        more_leaves < saturated,
        "leaves still help after saturation"
    );
}

#[test]
fn optimizer_best_simulates_faster_than_median_config() {
    let n = 150_000;
    let opt = BonsaiOptimizer::new(HardwareParams::aws_f1());
    let array = ArrayParams::new(n as u64, 4);
    let ranked = opt.ranked_by_latency(&array);
    let best = ranked.first().expect("feasible");
    let median = &ranked[ranked.len() / 2];
    let best_amt = AmtConfig::new(best.config.throughput_p, best.config.leaves_l);
    let median_amt = AmtConfig::new(median.config.throughput_p, median.config.leaves_l);
    if best_amt != median_amt {
        let sim_best = simulate(best_amt, n);
        let sim_median = simulate(median_amt, n);
        assert!(
            sim_best <= sim_median * 1.05,
            "optimizer's pick must not simulate slower: {sim_best:.4} vs {sim_median:.4}"
        );
    }
}

#[test]
fn traffic_accounting_matches_stage_math() {
    // Every stage reads and writes the full array once: total traffic
    // is exactly 2 * stages * bytes.
    let n = 100_000usize;
    let data = uniform_u32(n, 5);
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(8, 16), 4);
    let (_, report) = SimEngine::new(cfg).sort(data);
    let expected = 2 * report.stages() as u64 * (n as u64) * 4;
    assert_eq!(report.total_traffic_bytes(), expected);
}
