//! The `bonsai` command-line tool: plan AMT configurations, generate
//! benchmark data, sort files externally, and validate results.
//!
//! ```sh
//! bonsai plan --size 16GB --record-bytes 4 --platform f1
//! bonsai gensort --records 1000000 --out data.gensort
//! bonsai sort --format u32 --in input.bin --out sorted.bin --mem-budget 64MB
//! bonsai valsort --format u32 --in sorted.bin
//! bonsai project --size 2TB
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use bonsai::gensort::io::{generate_gensort_file, read_wire_file, valsort};
use bonsai::model::{ArrayParams, BonsaiOptimizer, HardwareParams};
use bonsai::records::{KvRec, Packed16, U32Rec, U64Rec};
use bonsai::sorters::{DramSorter, ExternalSorter, SsdSorter};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = Flags::parse(&args[1..]);
    let result = match command.as_str() {
        "plan" => cmd_plan(&flags),
        "gensort" => cmd_gensort(&flags),
        "sort" => cmd_sort(&flags),
        "valsort" => cmd_valsort(&flags),
        "project" => cmd_project(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
bonsai — adaptive merge tree sorting (ISCA 2020 reproduction)

USAGE:
  bonsai plan     --size <N[KB|MB|GB|TB]> [--record-bytes <r>] [--platform f1|hbm|ssd] [--beta <GB/s>] [--top <k>]
  bonsai gensort  --records <n> --out <file> [--seed <s>]
  bonsai sort     --in <file> --out <file> [--format u32|u64|kv16|packed16] [--mem-budget <bytes-ish>] [--fan-in <l>]
  bonsai valsort  --in <file> [--format u32|u64|kv16|packed16]
  bonsai project  --size <N[..]> [--record-bytes <r>]
";

/// Minimal `--key value` flag parser.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                let value = args.get(i + 1).cloned().unwrap_or_default();
                out.push((key.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Self(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }
}

/// Parses "16GB", "512MB", "2TB", or raw byte counts.
fn parse_size(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, mult) = if let Some(d) = s.strip_suffix("TB") {
        (d, 1_000_000_000_000u64)
    } else if let Some(d) = s.strip_suffix("GB") {
        (d, 1_000_000_000)
    } else if let Some(d) = s.strip_suffix("MB") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix("KB") {
        (d, 1_000)
    } else {
        (s, 1)
    };
    digits
        .trim()
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|e| format!("bad size `{s}`: {e}"))
}

fn platform(flags: &Flags) -> Result<HardwareParams, String> {
    let mut hw = match flags.get("platform").unwrap_or("f1") {
        "f1" => HardwareParams::aws_f1(),
        "hbm" => HardwareParams::hbm_u50(),
        "ssd" => HardwareParams::aws_f1_ssd(),
        other => return Err(format!("unknown platform `{other}` (f1|hbm|ssd)")),
    };
    if let Some(beta) = flags.get("beta") {
        let gbps: f64 = beta.parse().map_err(|e| format!("bad --beta: {e}"))?;
        hw = hw.with_beta_dram(gbps * 1e9);
    }
    Ok(hw)
}

fn cmd_plan(flags: &Flags) -> Result<(), String> {
    let bytes = parse_size(flags.required("size")?)?;
    let record_bytes: u64 = flags
        .get("record-bytes")
        .unwrap_or("4")
        .parse()
        .map_err(|e| format!("bad --record-bytes: {e}"))?;
    let top: usize = flags
        .get("top")
        .unwrap_or("5")
        .parse()
        .map_err(|e| format!("bad --top: {e}"))?;
    let hw = platform(flags)?;
    let array = ArrayParams::new(bytes / record_bytes, record_bytes);
    let opt = BonsaiOptimizer::new(hw);
    let ranked = opt.ranked_by_latency(&array);
    if ranked.is_empty() {
        return Err("no feasible AMT configuration on this platform".into());
    }
    println!(
        "top {} configurations for {} of {}-byte records on {} GB/s memory:",
        top.min(ranked.len()),
        flags.required("size")?,
        record_bytes,
        hw.beta_dram / 1e9
    );
    for (i, c) in ranked.iter().take(top).enumerate() {
        println!(
            "  #{} {:<26} presort {:<3} {} stages  {:>9} LUT  {:>8.3} s",
            i + 1,
            c.config.to_string(),
            c.presort,
            c.stages,
            c.lut,
            c.latency_s
        );
    }
    Ok(())
}

fn cmd_gensort(flags: &Flags) -> Result<(), String> {
    let n: u64 = flags
        .required("records")?
        .parse()
        .map_err(|e| format!("bad --records: {e}"))?;
    let out = PathBuf::from(flags.required("out")?);
    let seed: u64 = flags
        .get("seed")
        .unwrap_or("0")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    generate_gensort_file(&out, n, seed).map_err(|e| e.to_string())?;
    println!(
        "wrote {n} gensort records ({} bytes) to {}",
        n * 100,
        out.display()
    );
    Ok(())
}

fn cmd_sort(flags: &Flags) -> Result<(), String> {
    let input = PathBuf::from(flags.required("in")?);
    let output = PathBuf::from(flags.required("out")?);
    let budget = parse_size(flags.get("mem-budget").unwrap_or("256MB"))? as usize;
    let fan_in: usize = flags
        .get("fan-in")
        .unwrap_or("256")
        .parse()
        .map_err(|e| format!("bad --fan-in: {e}"))?;
    let sorter = ExternalSorter::new(budget, fan_in);
    let stats = match flags.get("format").unwrap_or("u32") {
        "u32" => sorter.sort_file::<U32Rec>(&input, &output),
        "u64" => sorter.sort_file::<U64Rec>(&input, &output),
        "kv16" => sorter.sort_file::<KvRec>(&input, &output),
        "packed16" => sorter.sort_file::<Packed16>(&input, &output),
        other => return Err(format!("unknown format `{other}`")),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "sorted {} records: {} initial runs, {} merge passes, {} bytes written",
        stats.records, stats.initial_runs, stats.merge_passes, stats.bytes_written
    );
    Ok(())
}

fn cmd_valsort(flags: &Flags) -> Result<(), String> {
    let input = PathBuf::from(flags.required("in")?);
    let summary = match flags.get("format").unwrap_or("u32") {
        "u32" => read_wire_file::<U32Rec>(&input).map(|r| valsort(&r)),
        "u64" => read_wire_file::<U64Rec>(&input).map(|r| valsort(&r)),
        "kv16" => read_wire_file::<KvRec>(&input).map(|r| valsort(&r)),
        "packed16" => read_wire_file::<Packed16>(&input).map(|r| valsort(&r)),
        other => return Err(format!("unknown format `{other}`")),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "records: {}\nunordered pairs: {}\nduplicate keys: {}\nchecksum: {:#018x}",
        summary.records, summary.unordered, summary.duplicates, summary.checksum
    );
    if summary.is_sorted() {
        println!("SORTED");
        Ok(())
    } else {
        Err("file is NOT sorted".into())
    }
}

fn cmd_project(flags: &Flags) -> Result<(), String> {
    let bytes = parse_size(flags.required("size")?)?;
    let record_bytes: u64 = flags
        .get("record-bytes")
        .unwrap_or("4")
        .parse()
        .map_err(|e| format!("bad --record-bytes: {e}"))?;
    let report = match DramSorter::new(HardwareParams::aws_f1()).project(bytes, record_bytes) {
        Ok(r) => r,
        Err(_) => SsdSorter::new(HardwareParams::aws_f1_ssd()).project(bytes, record_bytes),
    };
    println!("{} via {}", report.name, report.config);
    for phase in &report.phases {
        println!("  {:<44} {:>10.2} s", phase.name, phase.seconds);
    }
    println!(
        "total {:.2} s  ({:.0} ms/GB, {:.2} GB/s)",
        report.seconds(),
        report.ms_per_gb(),
        report.throughput() / 1e9
    );
    Ok(())
}
