//! Bonsai: high-performance adaptive merge tree sorting.
//!
//! This is the umbrella crate of the Bonsai workspace — a full
//! reproduction of *“Bonsai: High-Performance Adaptive Merge Tree
//! Sorting”* (ISCA 2020) as a Rust library with a cycle-approximate
//! hardware simulator standing in for the paper's FPGA implementation.
//!
//! It re-exports every sub-crate under one namespace so applications can
//! depend on a single crate:
//!
//! - [`records`]: record/key abstractions and sorted-run bookkeeping,
//! - [`bitonic`]: compare-and-exchange networks (presorter, half-merger),
//! - [`merge_hw`]: cycle-level merger / FIFO / coupler models,
//! - [`memsim`]: DRAM / HBM / SSD memory models and the data loader,
//! - [`amt`]: the Adaptive Merge Tree engine (the paper's architecture),
//! - [`model`]: the Bonsai analytical models and configuration optimizer,
//! - [`sorters`]: end-to-end DRAM / HBM / SSD sorting systems,
//! - [`runtime`]: batch sort-job runtime (bounded queue, worker pool),
//! - [`net`]: sort-as-a-service framed TCP front end over the runtime,
//! - [`baselines`]: CPU radix-sort baseline and published-number models,
//! - [`gensort`]: workload generation (including gensort 100-byte records).
//!
//! # Quick start
//!
//! ```
//! use bonsai::model::{ArrayParams, BonsaiOptimizer, HardwareParams};
//!
//! let hw = HardwareParams::aws_f1();
//! let array = ArrayParams::from_bytes(1 << 30, 4); // 1 GiB of u32 records
//! let optimizer = BonsaiOptimizer::new(hw);
//! let best = optimizer.latency_optimal(&array).expect("feasible config");
//! println!("optimal AMT: p = {}, l = {}", best.config.throughput_p, best.config.leaves_l);
//! ```

pub use bonsai_amt as amt;
pub use bonsai_baselines as baselines;
pub use bonsai_bitonic as bitonic;
pub use bonsai_core as core;
pub use bonsai_gensort as gensort;
pub use bonsai_memsim as memsim;
pub use bonsai_merge_hw as merge_hw;
pub use bonsai_model as model;
pub use bonsai_net as net;
pub use bonsai_records as records;
pub use bonsai_runtime as runtime;
pub use bonsai_sorters as sorters;
