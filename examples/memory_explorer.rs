//! Memory-hierarchy explorer: how the optimal AMT changes with the
//! platform (the Figure 5 insight, interactively).
//!
//! Bonsai's value is adaptivity: give it a different memory system and
//! it re-shapes the tree — more throughput `p` when bandwidth grows,
//! more leaves `ℓ` when stages are expensive, unrolling when one tree
//! cannot use the bandwidth, pipelining when arrays stream over I/O.
//!
//! ```sh
//! cargo run --release --example memory_explorer
//! ```

use bonsai::model::{ArrayParams, BonsaiOptimizer, HardwareParams};

fn show(name: &str, hw: HardwareParams, array: &ArrayParams) {
    let opt = BonsaiOptimizer::new(hw);
    match opt.latency_optimal(array) {
        Ok(best) => println!(
            "{name:<28} -> {:<24} {} stages, {:>7.2} s predicted",
            best.config.to_string(),
            best.stages,
            best.latency_s
        ),
        Err(e) => println!("{name:<28} -> {e}"),
    }
}

fn main() {
    let array = ArrayParams::from_bytes(8 << 30, 4);
    println!("latency-optimal configurations for 8 GiB of 32-bit records:\n");

    show("AWS F1 DDR4 (32 GB/s)", HardwareParams::aws_f1(), &array);
    show(
        "single DDR4 bank (8 GB/s)",
        HardwareParams::aws_f1_single_bank(),
        &array,
    );
    show("HBM tile (512 GB/s)", HardwareParams::hbm_u50(), &array);
    for gbps in [1.0, 4.0, 64.0, 128.0] {
        show(
            Box::leak(format!("custom DRAM ({gbps:.0} GB/s)").into_boxed_str()),
            HardwareParams::aws_f1().with_beta_dram(gbps * 1e9),
            &array,
        );
    }

    println!("\nrecord-width scaling (16 GiB, same F1):\n");
    for record_bytes in [4u64, 8, 16, 32, 64] {
        let wide = ArrayParams::from_bytes(16 << 30, record_bytes);
        let opt = BonsaiOptimizer::new(HardwareParams::aws_f1());
        if let Ok(best) = opt.latency_optimal(&wide) {
            println!(
                "{record_bytes:>3} B records -> {:<24} ({} LUTs)",
                best.config.to_string(),
                best.lut
            );
        }
    }

    println!("\nranked alternatives on F1 (top 5) — §III-C: Bonsai lists all");
    println!("implementable configurations so near-optimal fallbacks exist:\n");
    let opt = BonsaiOptimizer::new(HardwareParams::aws_f1());
    for (i, c) in opt
        .ranked_by_latency(&array)
        .into_iter()
        .take(5)
        .enumerate()
    {
        println!(
            "  #{} {:<24} {:.2} s, {} LUTs",
            i + 1,
            c.config.to_string(),
            c.latency_s,
            c.lut
        );
    }
}
