//! Batch sorting under heavy traffic: a bounded job queue feeding a
//! worker pool, with per-job failure isolation.
//!
//! ```sh
//! cargo run --release --example batch_runtime
//! ```

use bonsai::amt::{AmtConfig, SimEngineConfig};
use bonsai::gensort::dist::uniform_u32;
use bonsai::runtime::{JobError, Runtime, RuntimeConfig, SortJob};

fn main() {
    // 1. Start the pool: `workers: 0` means one worker per core, and
    //    the bounded queue gives submitters backpressure — a producer
    //    can never race more than `queue_depth` jobs ahead.
    let runtime = Runtime::start(RuntimeConfig {
        workers: 0,
        queue_depth: 8,
        // Cap each job's simulation at 100M cycles per pass: a
        //    pathological job fails with BON040 instead of hogging a
        //    worker for hours.
        max_pass_cycles: Some(100_000_000),
        ..RuntimeConfig::default()
    });

    // 2. Submit a stream of jobs. Every job carries its own engine
    //    configuration; this batch mixes two AMT shapes.
    let shapes = [
        SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4),
        SimEngineConfig::dram_sorter(AmtConfig::new(8, 64), 4),
    ];
    let jobs = 6u64;
    for id in 0..jobs {
        let cfg = shapes[(id % 2) as usize];
        runtime
            .submit(SortJob::new(id, cfg, uniform_u32(100_000, id)))
            .expect("runtime open");
    }

    // 3. Collect. Results come back ordered by job id whatever order
    //    the workers finished in, and a failed job (invalid config,
    //    BON040 livelock) fails alone — the batch keeps sorting.
    let results = runtime.finish();
    for r in &results {
        match &r.result {
            Ok(out) => {
                assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
                println!(
                    "job {}: {} records in {} merge stages, {} cycles ({:.1} ms wall)",
                    r.id,
                    out.sorted.len(),
                    out.report.stages(),
                    out.report.total_cycles,
                    r.wall.as_secs_f64() * 1e3
                );
            }
            Err(JobError::Invalid(diagnostics)) => {
                println!("job {}: rejected — {diagnostics:?}", r.id);
            }
            Err(JobError::Sim(err)) => {
                println!("job {}: failed — {err}", r.id);
            }
            Err(JobError::Panic(msg)) => {
                println!("job {}: panicked — {msg}", r.id);
            }
        }
    }
    assert_eq!(results.len() as u64, jobs);
    println!("batch of {jobs} jobs complete");
}
