//! Terabyte-scale sorting on SSD-backed storage (§IV-C).
//!
//! Projects the two-phase SSD sorter across 1–100 TB (reproducing the
//! Table V breakdown), then actually runs the two-phase schedule on a
//! scaled-down array to show it really sorts.
//!
//! ```sh
//! cargo run --release --example terabyte_ssd
//! ```

use bonsai::core::Bonsai;
use bonsai::gensort::dist::uniform_u32;
use bonsai::model::HardwareParams;
use bonsai::sorters::SsdSorter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bonsai = Bonsai::ssd();
    let sorter = bonsai.ssd_sorter();

    println!("projected two-phase SSD sorts (single FPGA, reprogrammed between phases):\n");
    for tb in [1u64, 2, 32, 100] {
        let bytes = tb * 1_000_000_000_000;
        let report = sorter.project(bytes, 4);
        println!(
            "{tb} TB -> {:.1} s total ({:.0} ms/GB)",
            report.seconds(),
            report.ms_per_gb()
        );
        for phase in &report.phases {
            println!("    {:<42} {:>8.1} s", phase.name, phase.seconds);
        }
    }

    // TerabyteSort (the prior single-node record) needs 4347 ms/GB at
    // 1 TB; our projection reproduces the paper's ~17x advantage.
    let ours = sorter.project(1_000_000_000_000, 4).ms_per_gb();
    let terabyte_sort = 4_347.0 / 2.0; // their 512 GB-2 TB plateau, per GB at 1 TB scale
    println!(
        "\nvs TerabyteSort at 1 TB: {:.0} ms/GB vs ~{terabyte_sort:.0}+ ms/GB -> >{:.0}x faster",
        ours,
        terabyte_sort / ours
    );

    // Now really sort data through the same two-phase schedule, scaled
    // down so "DRAM" chunks hold 1000 records each.
    let n = 300_000;
    println!("\nrunning the two-phase schedule on {n} records (scaled chunks)…");
    let scaled = SsdSorter::new(HardwareParams::aws_f1_ssd()).with_chunk_bytes(4_000);
    let data = uniform_u32(n, 77);
    let (sorted, _) = scaled.sort(data)?;
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "two-phase output verified sorted ({} records)",
        sorted.len()
    );
    Ok(())
}
