//! Adaptive data-center operation: a stream of differently sized sort
//! jobs hits one FPGA, and the reconfiguration planner decides when
//! paying the bitstream-reprogramming cost is worth it.
//!
//! This is the paper's core adaptivity story (§I): one platform, many
//! problem sizes, with Bonsai re-shaping the merge tree as demand
//! changes — but only when the predicted gain beats the measured 4.3 s
//! reprogramming cost (Table V).
//!
//! ```sh
//! cargo run --release --example adaptive_datacenter
//! ```

use bonsai::model::reconfig::{Decision, ReconfigPlanner};
use bonsai::model::{ArrayParams, HardwareParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bursty job mix: u32 shuffles interleaved with wide-record jobs
    // (16-byte MapReduce keys, 64-byte DB rows). Record width reshapes
    // the optimal tree, so the planner has real decisions to make.
    let jobs: &[(u64, u64)] = &[
        (1, 4),
        (2, 4),
        (16, 4),
        (8, 16), // wide records: the u32 bitstream cannot run these
        (8, 16),
        (1, 4), // small u32 job: reprogramming back is not worth 4.3 s
        (2, 4),
        (32, 4), // big u32 batch: now it is
        (32, 4),
        (48, 4),
        (4, 64), // very wide rows
        (16, 4),
    ];

    let mut planner = ReconfigPlanner::new(HardwareParams::aws_f1(), 4.3);
    println!(
        "{:>5}  {:>8}  {:>6}  {:<26} {:>10}  {:>12}",
        "job", "size", "width", "configuration", "decision", "charged"
    );
    for (i, &(gib, rbytes)) in jobs.iter().enumerate() {
        let job = ArrayParams::from_bytes(gib << 30, rbytes);
        let plan = planner.plan_job(&job)?;
        println!(
            "{:>5}  {:>5} GiB  {:>4} B  {:<26} {:>10}  {:>10.2} s",
            i + 1,
            gib,
            rbytes,
            plan.config.to_string(),
            match plan.decision {
                Decision::Keep => "keep",
                Decision::Reprogram => "reprogram",
            },
            plan.total_seconds
        );
    }
    println!(
        "\ntotal: {:.1} s with {} reprogramming event(s)",
        planner.total_seconds(),
        planner.reprograms()
    );

    // Compare against the naive always-chase-the-optimum policy.
    let mut always = ReconfigPlanner::new(HardwareParams::aws_f1(), 0.0);
    let mut always_total = 0.0;
    for &(gib, rbytes) in jobs {
        let plan = always.plan_job(&ArrayParams::from_bytes(gib << 30, rbytes))?;
        // Charge 4.3 s on every config change the naive policy makes.
        always_total += plan.sort_seconds
            + if plan.decision == Decision::Reprogram {
                4.3
            } else {
                0.0
            };
    }
    println!("always-chase-optimal policy: {always_total:.1} s");
    println!(
        "difference vs greedy planner: {:+.1} s (greedy is per-job optimal, not \
         clairvoyant: alternating traces can favor either policy)",
        always_total - planner.total_seconds()
    );
    Ok(())
}
