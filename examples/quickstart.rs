//! Quickstart: let Bonsai pick the optimal merge tree for your hardware
//! and sort with it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bonsai::core::Bonsai;
use bonsai::gensort::dist::uniform_u32;
use bonsai::model::ArrayParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the platform. `aws_f1` is the paper's AWS EC2 F1
    //    instance: 32 GB/s DDR4, 64 GB capacity, VU9P FPGA.
    let bonsai = Bonsai::aws_f1();

    // 2. Ask the optimizer what it would build for a 16 GB sort.
    let array = ArrayParams::from_bytes(16 << 30, 4);
    let plan = bonsai.optimizer().latency_optimal(&array)?;
    println!("planned configuration for 16 GiB of u32: {}", plan.config);
    println!(
        "  {} merge stages, {} LUTs, {:.1} KiB leaf-buffer BRAM",
        plan.stages,
        plan.lut,
        plan.bram_bytes as f64 / 1024.0
    );
    println!("  predicted sort time: {:.2} s\n", plan.latency_s);

    // 3. Sort real data. The library executes the exact merge schedule
    //    the hardware would run and reports timing for the target FPGA.
    let data = uniform_u32(2_000_000, 42);
    let (sorted, report) = bonsai.sort(data)?;
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "sorted {} records with {} in {} modeled stages",
        sorted.len(),
        report.config,
        report.phases.len()
    );
    println!(
        "modeled wall-clock on F1: {:.2} ms ({:.0} ms/GB)",
        report.seconds() * 1e3,
        report.ms_per_gb()
    );

    // 4. For validation-sized inputs you can also run the full
    //    cycle-approximate hardware simulation.
    let small = uniform_u32(100_000, 43);
    let (_, sim_report) = bonsai.dram_sorter().simulate(small)?;
    println!(
        "cycle simulation: {:.0} ms/GB across {} stages ({:?} timing)",
        sim_report.ms_per_gb(),
        sim_report.phases.len(),
        sim_report.timing
    );
    Ok(())
}
