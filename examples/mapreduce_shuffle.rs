//! MapReduce shuffle: sorting wide gensort records by key.
//!
//! The paper's motivating workload (§I): keys coming out of a MapReduce
//! map stage must be sorted before the reduce stage, and the records are
//! wide — Jim Gray's sort benchmark uses 100-byte records (10-byte key,
//! 90-byte value). Bonsai's pipeline hashes the value to a 6-byte index
//! and sorts 16-byte packed records (§VI-A); this example runs that
//! exact flow end to end, including recovering the full 100-byte records
//! afterwards.
//!
//! ```sh
//! cargo run --release --example mapreduce_shuffle
//! ```

use std::collections::HashMap;

use bonsai::core::Bonsai;
use bonsai::gensort::{GensortGenerator, GensortRecord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200_000;
    println!("generating {n} gensort records (100 B each: 10 B key + 90 B value)…");
    let mut generator = GensortGenerator::seeded(2020);
    let records: Vec<GensortRecord> = generator.take_records(n);

    // Map phase output: pack each record to the 16-byte AMT format and
    // remember where the wide value lives (the hashed index).
    let mut by_index: HashMap<u64, Vec<&GensortRecord>> = HashMap::new();
    let packed: Vec<_> = records
        .iter()
        .map(|r| {
            let p = r.to_packed16();
            by_index.entry(p.index()).or_default().push(r);
            p
        })
        .collect();

    // Shuffle-sort on the FPGA model: 16-byte records through the AMT.
    let bonsai = Bonsai::aws_f1();
    let (sorted, report) = bonsai.sort(packed)?;
    println!(
        "sorted by 80-bit key via {} ({} stages, modeled {:.1} ms on F1)",
        report.config,
        report.phases.len(),
        report.seconds() * 1e3
    );

    // Reduce phase: walk the sorted packed records and recover the full
    // 100-byte records through the value index.
    let mut recovered = 0usize;
    let mut last_key: Option<u128> = None;
    for p in &sorted {
        if let Some(prev) = last_key {
            assert!(p.key_bits() >= prev, "keys must arrive in order");
        }
        last_key = Some(p.key_bits());
        if let Some(candidates) = by_index.get(&p.index()) {
            if candidates.iter().any(|r| r.key_u128() == p.key_bits()) {
                recovered += 1;
            }
        }
    }
    println!("reduce phase recovered {recovered}/{n} full records through the 48-bit value index");
    assert_eq!(recovered, n);

    // The wide-record advantage (§VI-F2): the same merge tree sorts
    // 16-byte records at 4x the byte throughput of 4-byte records.
    let plan = bonsai
        .optimizer()
        .latency_optimal(&bonsai::model::ArrayParams::from_bytes(16 << 30, 16))?;
    println!(
        "for 16 GiB of these 16 B records Bonsai would build {} ({} stages)",
        plan.config, plan.stages
    );
    Ok(())
}
