//! Scratch profiler for the fast-forward scheduler (not part of the suite).
use bonsai_amt::passsim::PassSim;
use bonsai_amt::{AmtConfig, SimEngineConfig};
use bonsai_gensort::dist::uniform_u32;
use bonsai_memsim::{Memory, MemoryConfig};
use bonsai_records::run::RunSet;
use bonsai_records::{Record, U32Rec};
use std::time::Instant;

fn profile(label: &str, cfg: SimEngineConfig, n: usize, fan_in: usize) {
    let data = uniform_u32(n, 2025);
    let sanitized: Vec<U32Rec> = data.into_iter().map(Record::sanitize).collect();
    for reference in [true, false] {
        let runs = RunSet::from_chunks(sanitized.clone(), cfg.initial_run_len());
        let mut sim = PassSim::new(&cfg, runs, fan_in);
        let mut memory = Memory::new(cfg.memory);
        let t1 = Instant::now();
        let mut cycle = 0u64;
        let mut calls = 0u64;
        let mut zero_skips = 0u64;
        let mut windows = 0u64;
        while !sim.is_done() {
            if reference {
                sim.tick(cycle, &mut memory);
                cycle += 1;
            } else {
                let ff_before = sim.fast_forwarded_cycles();
                let consumed = sim.advance(cycle, &mut memory);
                if consumed == 1 && sim.fast_forwarded_cycles() == ff_before {
                    zero_skips += 1;
                } else {
                    windows += 1;
                }
                cycle += consumed;
            }
            calls += 1;
        }
        println!(
            "{label} reference={reference}: loop {:?}, calls {calls}, cycles {}, ff {}, windows {windows}, zero-skip-or-active {zero_skips}",
            t1.elapsed(), sim.cycles(), sim.fast_forwarded_cycles()
        );
    }
}

fn main() {
    profile(
        "dram",
        SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4),
        150_000,
        16,
    );
    let mut ssd =
        SimEngineConfig::with_memory(AmtConfig::new(8, 64), 4, MemoryConfig::ssd_direct());
    ssd.loader.batch_bytes = 131_072;
    profile("ssd", ssd, 150_000, 64);
}
