//! Minimal aligned-table printing for the experiment binaries.

/// An aligned text table.
///
/// # Example
///
/// ```
/// use bonsai_bench::table::Table;
///
/// let mut t = Table::new(vec!["size", "ms/GB"]);
/// t.row(vec!["4 GB".into(), "172".into()]);
/// let s = t.render();
/// assert!(s.contains("4 GB"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<&'static str>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&'static str>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(
            self.headers.iter().map(ToString::to_string).collect(),
            &widths,
        ));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row.clone(), &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an optional ms/GB figure, using `-` for "no reported result"
/// exactly as Table I does.
pub fn ms_cell(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.0}"),
        None => "-".into(),
    }
}

/// Formats a byte count as the paper writes sizes ("4 GB", "2 TB").
pub fn size_label(bytes: u64) -> String {
    const GB: f64 = 1e9;
    let gb = bytes as f64 / GB;
    if gb >= 1000.0 {
        format!("{:.0} TB", gb / 1000.0)
    } else if gb >= 1.0 {
        format!("{gb:.0} GB")
    } else {
        format!("{:.0} MB", gb * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "bbb"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["long".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("   1") || lines[2].contains("1"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn cells_and_labels() {
        assert_eq!(ms_cell(Some(171.6)), "172");
        assert_eq!(ms_cell(None), "-");
        assert_eq!(size_label(4_000_000_000), "4 GB");
        assert_eq!(size_label(2_048_000_000_000), "2 TB");
        assert_eq!(size_label(500_000_000), "500 MB");
    }
}
