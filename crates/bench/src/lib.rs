//! The Bonsai benchmark harness: one regenerator per table and figure
//! of the paper's evaluation (ISCA 2020).
//!
//! Each `experiments::*` module computes the rows of one exhibit and
//! each `src/bin/*.rs` binary prints them:
//!
//! | Exhibit | Binary | Content |
//! |---|---|---|
//! | Table I | `table1` | ms/GB across platforms and sizes |
//! | Table IV | `table4` | DRAM-sorter resource breakdown |
//! | Table V | `table5` | 2 TB SSD sort time breakdown |
//! | Table VI | `table6` | building-block LUT/throughput |
//! | Figure 5 | `fig5` | optimal-AMT sort time vs DRAM bandwidth |
//! | Figures 8/9 | `fig8_9` | simulated vs predicted AMT sort times |
//! | Figure 10 | `fig10` | LUT utilization vs resource model |
//! | Figure 11 | `fig11` | DRAM sorter vs CPU/GPU/FPGA baselines |
//! | Figure 12 | `fig12` | bandwidth-efficiency at 16 GB |
//! | Figure 13 | `fig13` | latency/GB from 0.5 GB to 1024 TB |
//!
//! `cargo run -p bonsai-bench --bin make_all --release` regenerates
//! everything at once.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod harness;
pub mod lint;
pub mod perf;
pub mod table;
