//! Figure 10: LUT utilization of AMTs — component-measured versus the
//! closed-form resource model.
//!
//! The paper compares Vivado synthesis reports against Equation 8. We
//! have no synthesis tool, so the "measured" series is Equation 8
//! evaluated with the paper's *measured component costs* (Table VI),
//! anchored by the one full-tree hardware measurement the paper prints
//! (Table IV's AMT(32, 64) merge tree at 102 158 LUTs); the "model"
//! series replaces the component table with the `Θ(k·log 2k)` closed
//! form fitted by least squares — demonstrating, like the figure, that
//! the analytic growth law predicts tree cost within a few percent.

use bonsai_model::resource::amt_lut;
use bonsai_model::{ComponentLibrary, TABLE_VI_32BIT};

use crate::table::Table;

/// Least-squares fit of `lut ≈ a·k·log₂(2k) + b·k + c` to the measured
/// 32-bit merger costs (`c` captures fixed per-merger control logic).
pub fn fitted_merger_cost() -> (f64, f64, f64) {
    // Design matrix rows: (k·log2(2k), k, 1); observations: Table VI.
    let xs: Vec<[f64; 3]> = (0..6)
        .map(|log_k| {
            let k = (1usize << log_k) as f64;
            [k * (2.0 * k).log2(), k, 1.0]
        })
        .collect();
    let ys: Vec<f64> = TABLE_VI_32BIT
        .merger_lut
        .iter()
        .map(|&v| v as f64)
        .collect();
    // Normal equations A^T A x = A^T y for 3 parameters, solved by
    // Gaussian elimination.
    let mut m = [[0.0f64; 4]; 3];
    for (x, y) in xs.iter().zip(&ys) {
        // Weight by 1/y²: minimize *relative* error so the cheap small
        // mergers (which dominate tree counts) are fitted as well as the
        // expensive wide ones.
        let w = 1.0 / (y * y);
        for i in 0..3 {
            for j in 0..3 {
                m[i][j] += w * x[i] * x[j];
            }
            m[i][3] += w * x[i] * y;
        }
    }
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))
            .expect("nonempty");
        m.swap(col, pivot);
        for row in 0..3 {
            if row != col {
                let f = m[row][col] / m[col][col];
                let pivot_row = m[col];
                for (cell, pivot) in m[row][col..].iter_mut().zip(&pivot_row[col..]) {
                    *cell -= f * pivot;
                }
            }
        }
    }
    (m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2])
}

/// Closed-form model LUT cost of an `AMT(p, ℓ)` using the fitted growth
/// law for mergers and the measured coupler/FIFO ratios.
pub fn closed_form_lut(p: usize, l: usize) -> f64 {
    let (a, b, c) = fitted_merger_cost();
    let lib = ComponentLibrary::paper();
    let levels = l.trailing_zeros() as usize;
    let mut total = 0.0;
    for n in 0..levels {
        let width = (p >> n).max(1) as f64;
        let mergers = (1u64 << n) as f64;
        let merger = a * width * (2.0 * width).log2() + b * width + c;
        let coupler = lib.coupler_lut((p >> n).max(1), 32) as f64;
        total += mergers * (merger + 2.0 * coupler);
    }
    total + l as f64 * lib.fifo_lut(32) as f64
}

/// The AMT grid shown in Figure 10 (every synthesizable shape class).
pub fn figure_amts() -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for p in [4usize, 8, 16, 32] {
        for l in [16usize, 64, 256] {
            v.push((p, l));
        }
    }
    v
}

/// Renders the Figure 10 comparison.
pub fn render() -> String {
    let lib = ComponentLibrary::paper();
    let mut t = Table::new(vec!["AMT", "component-measured LUT", "model LUT", "error"]);
    let mut max_err = 0.0f64;
    for (p, l) in figure_amts() {
        let measured = amt_lut(&lib, p, l, 32) as f64;
        let model = closed_form_lut(p, l);
        let err = (model - measured).abs() / measured;
        max_err = max_err.max(err);
        t.row(vec![
            format!("AMT({p}, {l})"),
            format!("{measured:.0}"),
            format!("{model:.0}"),
            format!("{:.1}%", err * 100.0),
        ]);
    }
    let anchor = amt_lut(&lib, 32, 64, 32) as f64;
    format!(
        "Figure 10: AMT LUT utilization, component-measured vs closed-form model\n\n{}\nmax model error: {:.1}%  (paper: within 5%)\nhardware anchor: AMT(32, 64) predicted {:.0} vs 102158 measured on F1 ({:+.1}%)\n",
        t.render(),
        max_err * 100.0,
        anchor,
        (anchor - 102_158.0) / 102_158.0 * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_reproduces_measured_mergers_closely() {
        let (a, b, c) = fitted_merger_cost();
        for log_k in 0..6 {
            let k = (1usize << log_k) as f64;
            let fitted = a * k * (2.0 * k).log2() + b * k + c;
            let measured = TABLE_VI_32BIT.merger_lut[log_k] as f64;
            assert!(
                (fitted - measured).abs() / measured < 0.25,
                "k={k}: {fitted:.0} vs {measured:.0}"
            );
        }
    }

    #[test]
    fn closed_form_tracks_component_sum_within_5_percent() {
        let lib = ComponentLibrary::paper();
        for (p, l) in figure_amts() {
            let measured = amt_lut(&lib, p, l, 32) as f64;
            let model = closed_form_lut(p, l);
            assert!(
                (model - measured).abs() / measured < 0.05,
                "AMT({p},{l}): {model:.0} vs {measured:.0}"
            );
        }
    }
}
