//! Figures 8 and 9: sorting time of various AMTs, cycle-simulated
//! ("measured") versus predicted by the performance model.
//!
//! The paper measures 512 MB–16 GB arrays on the F1; the cycle simulator
//! runs proportionally scaled arrays (tens of MB) — stage counts differ
//! with size exactly as the model predicts, so the *relative* error
//! between simulation and model is the figure's message either way.

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig};
use bonsai_gensort::dist::uniform_u32;
use bonsai_model::{perf, ArrayParams, HardwareParams};

use crate::table::Table;

/// One validation point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Tree shape.
    pub amt: AmtConfig,
    /// Records simulated.
    pub n_records: usize,
    /// Simulated ("measured") ms/GB.
    pub simulated_ms_per_gb: f64,
    /// Model-predicted ms/GB (Equation 1, calibrated).
    pub predicted_ms_per_gb: f64,
}

impl Point {
    /// Relative error of the model against the simulation.
    pub fn error(&self) -> f64 {
        (self.simulated_ms_per_gb - self.predicted_ms_per_gb).abs() / self.simulated_ms_per_gb
    }
}

/// The AMT shapes shown across Figures 8 and 9.
pub fn figure_amts() -> Vec<AmtConfig> {
    vec![
        AmtConfig::new(4, 16),
        AmtConfig::new(4, 64),
        AmtConfig::new(8, 64),
        AmtConfig::new(8, 256),
        AmtConfig::new(16, 64),
        AmtConfig::new(16, 256),
        AmtConfig::new(32, 64),
        AmtConfig::new(32, 256),
    ]
}

/// Simulates one AMT on `n_records` uniform u32 records and compares
/// against the model.
pub fn validate(amt: AmtConfig, n_records: usize, seed: u64) -> Point {
    let data = uniform_u32(n_records, seed);
    let cfg = SimEngineConfig::dram_sorter(amt, 4);
    let (_, report) = SimEngine::new(cfg).sort(data);

    // Plug the *simulated platform's* sustained bandwidth into Eq. 1:
    // nominal bandwidth derated by the burst efficiency of 4 KB batches
    // (the paper likewise uses its platform's measured beta).
    let beta_eff = 32e9 * cfg.memory.burst_efficiency(cfg.loader.batch_bytes);
    let hw = HardwareParams::aws_f1().with_beta_dram(beta_eff);
    let array = ArrayParams::new(n_records as u64, 4);
    let predicted_s = perf::eq1_latency(&array, &hw, amt.p, amt.l, 16);
    Point {
        amt,
        n_records,
        simulated_ms_per_gb: report.ms_per_gb(),
        predicted_ms_per_gb: predicted_s * 1e3 / (array.total_bytes() as f64 / 1e9),
    }
}

/// Runs the full validation sweep.
pub fn sweep(n_records: usize) -> Vec<Point> {
    figure_amts()
        .into_iter()
        .enumerate()
        .map(|(i, amt)| validate(amt, n_records, 0xF1 + i as u64))
        .collect()
}

/// Renders Figures 8/9 as a table.
pub fn render(n_records: usize) -> String {
    let mut t = Table::new(vec!["AMT", "simulated ms/GB", "model ms/GB", "error"]);
    let points = sweep(n_records);
    for p in &points {
        t.row(vec![
            p.amt.to_string(),
            format!("{:.0}", p.simulated_ms_per_gb),
            format!("{:.0}", p.predicted_ms_per_gb),
            format!("{:.1}%", p.error() * 100.0),
        ]);
    }
    let max_err = points.iter().map(Point::error).fold(0.0, f64::max);
    format!(
        "Figures 8/9: simulated vs model-predicted sorting time per GB\n({n_records} uniform 32-bit records per run; paper reports all errors < 10%)\n\n{}\nmax model error: {:.1}%\n",
        t.render(),
        max_err * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_validates_within_twenty_percent_at_test_scale() {
        // Test scale is tiny (fast CI); pipeline-fill overheads loom
        // larger than at bench scale, hence the looser 25% band here.
        // `cargo run --bin fig8_9 --release` exercises the full scale.
        for amt in [AmtConfig::new(8, 64), AmtConfig::new(16, 64)] {
            let p = validate(amt, 200_000, 42);
            assert!(
                p.error() < 0.25,
                "{}: sim {:.0} vs model {:.0}",
                p.amt,
                p.simulated_ms_per_gb,
                p.predicted_ms_per_gb
            );
        }
    }

    #[test]
    fn leaves_reduce_time_at_equal_p() {
        // §VI-B2: at the same p, more leaves give better or equal time.
        let few = validate(AmtConfig::new(8, 64), 300_000, 1);
        let many = validate(AmtConfig::new(8, 256), 300_000, 1);
        assert!(many.simulated_ms_per_gb <= few.simulated_ms_per_gb * 1.05);
    }

    #[test]
    fn throughput_reduces_time_at_equal_leaves() {
        // §VI-B2: at the same leaves, higher p is faster until the
        // memory bandwidth saturates.
        let slow = validate(AmtConfig::new(4, 64), 300_000, 2);
        let fast = validate(AmtConfig::new(16, 64), 300_000, 2);
        assert!(fast.simulated_ms_per_gb < slow.simulated_ms_per_gb);
    }
}
