//! Table I: sorting time in ms/GB across platforms and problem sizes.

use bonsai_baselines::published::{ALL_BASELINES, BONSAI_PAPER};
use bonsai_model::HardwareParams;
use bonsai_sorters::{DramSorter, SsdSorter};

use crate::table::{ms_cell, size_label, Table};

/// The problem sizes of Table I, in bytes (decimal units as the paper).
pub const SIZES_BYTES: &[u64] = &[
    4_000_000_000,
    8_000_000_000,
    16_000_000_000,
    32_000_000_000,
    64_000_000_000,
    128_000_000_000,
    512_000_000_000,
    2_048_000_000_000,
    102_400_000_000_000,
];

/// Our Bonsai ms/GB for a given size: the DRAM sorter while the array
/// fits DRAM, the two-phase SSD sorter beyond (§IV-A/§IV-C).
pub fn bonsai_ms_per_gb(bytes: u64) -> f64 {
    let dram = DramSorter::new(HardwareParams::aws_f1());
    match dram.project(bytes, 4) {
        Ok(report) => report.ms_per_gb(),
        // Table I's SSD points assume the dual-FPGA deployment of
        // Figure 6 (no reprogramming gap); Table V covers the measured
        // single-FPGA variant.
        Err(_) => SsdSorter::new(HardwareParams::aws_f1_ssd())
            .with_dual_fpga()
            .project(bytes, 4)
            .ms_per_gb(),
    }
}

/// Renders Table I: every baseline row (from the published numbers the
/// paper cites) plus our reproduced Bonsai row and the paper's own
/// Bonsai row for comparison.
pub fn render() -> String {
    let mut headers: Vec<&'static str> = vec!["sorter"];
    // Leak the size labels into 'static strings once (tiny, process-long).
    for &bytes in SIZES_BYTES {
        headers.push(Box::leak(size_label(bytes).into_boxed_str()));
    }
    let mut t = Table::new(headers);
    for sorter in ALL_BASELINES {
        let mut row = vec![sorter.name.to_string()];
        for &bytes in SIZES_BYTES {
            row.push(ms_cell(sorter.ms_per_gb(bytes)));
        }
        t.row(row);
    }
    let mut ours = vec!["Bonsai (ours)".to_string()];
    for &bytes in SIZES_BYTES {
        ours.push(ms_cell(Some(bonsai_ms_per_gb(bytes))));
    }
    t.row(ours);
    let mut paper = vec![BONSAI_PAPER.name.to_string()];
    for &bytes in SIZES_BYTES {
        paper.push(ms_cell(BONSAI_PAPER.ms_per_gb(bytes)));
    }
    t.row(paper);
    format!(
        "Table I: sorting time in ms per GB (lower is better)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonsai_matches_paper_within_ten_percent_everywhere() {
        for &bytes in SIZES_BYTES {
            let ours = bonsai_ms_per_gb(bytes);
            let paper = BONSAI_PAPER
                .ms_per_gb(bytes)
                .expect("paper reports all sizes");
            let err = (ours - paper).abs() / paper;
            assert!(
                err < 0.05,
                "{}: ours {ours:.0} vs paper {paper:.0} ({:.0}% off)",
                size_label(bytes),
                err * 100.0
            );
        }
    }

    #[test]
    fn bonsai_wins_every_size_class() {
        // The headline claim: best ms/GB at every reported size.
        for &bytes in SIZES_BYTES {
            let ours = bonsai_ms_per_gb(bytes);
            for sorter in ALL_BASELINES {
                if let Some(ms) = sorter.ms_per_gb(bytes) {
                    assert!(
                        ours < ms,
                        "{}: Bonsai {ours:.0} must beat {} {ms:.0}",
                        size_label(bytes),
                        sorter.name
                    );
                }
            }
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render();
        for name in [
            "PARADIS",
            "HRS",
            "SampleSort",
            "TerabyteSort",
            "Bonsai (ours)",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
