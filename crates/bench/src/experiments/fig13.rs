//! Figure 13: latency per GB of latency-optimized Bonsai sorters across
//! 0.5 GB–1024 TB, with the reasons for each latency step.

use bonsai_model::HardwareParams;
use bonsai_sorters::{DramSorter, SsdSorter};

use crate::table::{size_label, Table};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Array size in bytes.
    pub bytes: u64,
    /// Which sorter handles this size.
    pub sorter: &'static str,
    /// Latency per GB in ms.
    pub ms_per_gb: f64,
    /// Total merge stages (DRAM) or phase-two stages + 1 (SSD).
    pub stages: u32,
}

/// Latency-optimal latency/GB at `bytes`, choosing DRAM vs SSD sorter
/// automatically (the "switch to SSD sorter" step of the figure).
pub fn point(bytes: u64) -> Point {
    let dram = DramSorter::new(HardwareParams::aws_f1());
    match dram.project(bytes, 4) {
        Ok(report) => Point {
            bytes,
            sorter: "DRAM",
            ms_per_gb: report.ms_per_gb(),
            stages: report.phases.len() as u32,
        },
        Err(_) => {
            // Dual-FPGA deployment (Figure 6): the figure's SSD plateaus
            // are pure multiples of the SSD round-trip time.
            let ssd = SsdSorter::new(HardwareParams::aws_f1_ssd()).with_dual_fpga();
            let report = ssd.project(bytes, 4);
            Point {
                bytes,
                sorter: "SSD",
                ms_per_gb: report.ms_per_gb(),
                stages: report.phases.len() as u32,
            }
        }
    }
}

/// The size grid: 0.5 GB to 1024 TB in octaves.
pub fn default_sizes() -> Vec<u64> {
    (0..=21).map(|e| 500_000_000u64 << e).collect()
}

/// Runs the sweep and annotates every latency increase.
pub fn sweep() -> Vec<(Point, Option<String>)> {
    let mut out: Vec<(Point, Option<String>)> = Vec::new();
    for bytes in default_sizes() {
        let p = point(bytes);
        let note = match out.last() {
            Some((prev, _)) if p.ms_per_gb > prev.ms_per_gb * 1.02 => {
                Some(if prev.sorter == "DRAM" && p.sorter == "SSD" {
                    format!(
                        "switch to SSD sorter ({:.2}x)",
                        p.ms_per_gb / prev.ms_per_gb
                    )
                } else if prev.sorter == "SSD" {
                    format!(
                        "extra stage in second phase ({:.2}x)",
                        p.ms_per_gb / prev.ms_per_gb
                    )
                } else {
                    format!("extra stage ({:.2}x)", p.ms_per_gb / prev.ms_per_gb)
                })
            }
            _ => None,
        };
        out.push((p, note));
    }
    out
}

/// Renders the Figure 13 sweep.
pub fn render() -> String {
    let mut t = Table::new(vec!["size", "sorter", "stages", "ms/GB", "latency step"]);
    for (p, note) in sweep() {
        t.row(vec![
            size_label(p.bytes),
            p.sorter.to_string(),
            p.stages.to_string(),
            format!("{:.0}", p.ms_per_gb),
            note.unwrap_or_default(),
        ]);
    }
    format!(
        "Figure 13: latency per GB of latency-optimized Bonsai sorters, 0.5 GB-1024 TB\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arrays_run_at_129_ms_per_gb() {
        let p = point(500_000_000);
        assert_eq!(p.sorter, "DRAM");
        assert!((p.ms_per_gb - 129.0).abs() < 10.0, "{}", p.ms_per_gb);
    }

    #[test]
    fn extra_stage_step_exists_in_dram_range() {
        // The paper's first step: an extra merge stage at ~2 GB with a
        // ~1.33x penalty.
        let small = point(1_000_000_000);
        let large = point(4_000_000_000);
        let ratio = large.ms_per_gb / small.ms_per_gb;
        assert!((1.25..1.45).contains(&ratio), "ratio {ratio}");
        assert_eq!(large.stages, small.stages + 1);
    }

    #[test]
    fn ssd_switch_happens_past_dram_capacity() {
        let last_dram = point(64_000_000_000);
        assert_eq!(last_dram.sorter, "DRAM");
        let first_ssd = point(128_000_000_000);
        assert_eq!(first_ssd.sorter, "SSD");
        assert!(first_ssd.ms_per_gb > last_dram.ms_per_gb);
    }

    #[test]
    fn phase_two_extra_stage_penalty_is_1_5x() {
        // 2 TB: one phase-two stage (250 ms/GB); 8 TB: two (375).
        let one = point(2_000_000_000_000);
        let two = point(8_000_000_000_000);
        let ratio = two.ms_per_gb / one.ms_per_gb;
        assert!((1.4..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn latency_is_monotone_nondecreasing() {
        let pts = sweep();
        for w in pts.windows(2) {
            assert!(
                w[1].0.ms_per_gb >= w[0].0.ms_per_gb * 0.99,
                "latency/GB must not decrease with size"
            );
        }
    }
}
