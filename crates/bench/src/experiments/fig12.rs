//! Figure 12: bandwidth-efficiency at 16 GB input size.
//!
//! Bandwidth-efficiency = sorter throughput / available off-chip
//! bandwidth (§VI-C2). Bonsai's entries use the throughput-optimal
//! pipelined configuration (the DRAM-scale sorter used in phase one of
//! terabyte sorting, which the paper measures at 7.19 GB/s): "Bonsai 8"
//! normalizes by the single 8 GB/s DRAM bank each pipeline stage
//! occupies, "Bonsai 32" by the full 4-bank 32 GB/s platform.

use bonsai_baselines::published::{figure12_platform_bandwidth, HRS, PARADIS, SAMPLE_SORT};
use bonsai_model::{perf, HardwareParams};

use crate::table::Table;

/// The 16 GB workload of Figure 12.
pub const BYTES: u64 = 16_000_000_000;

/// Sustained pipelined sorter throughput on the F1 (paper: 7.19 GB/s).
pub fn bonsai_pipeline_throughput() -> f64 {
    let hw = HardwareParams::aws_f1_ssd();
    // Phase one: 4-pipelined AMT(8, 64) saturating the 8 GB/s bound
    // (Equation 3), derated by the measured streaming efficiency.
    perf::eq3_pipeline_throughput(&hw, 8, 4, 4) * bonsai_sorters::calibration::STREAM_EFFICIENCY
}

/// One efficiency bar.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Sorter label.
    pub name: String,
    /// Sorter throughput in bytes/second.
    pub throughput: f64,
    /// Available off-chip bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl Bar {
    /// Bandwidth-efficiency (throughput / bandwidth).
    pub fn efficiency(&self) -> f64 {
        self.throughput / self.bandwidth
    }
}

/// All bars of Figure 12.
pub fn bars() -> Vec<Bar> {
    let bonsai = bonsai_pipeline_throughput();
    let mut bars = vec![
        Bar {
            name: "Bonsai 8".into(),
            throughput: bonsai,
            bandwidth: 8e9,
        },
        Bar {
            name: "Bonsai 32".into(),
            throughput: bonsai,
            bandwidth: 32e9,
        },
    ];
    for sorter in [&PARADIS, &HRS, &SAMPLE_SORT] {
        bars.push(Bar {
            name: sorter.name.into(),
            throughput: sorter.throughput(BYTES).expect("16 GB reported"),
            bandwidth: figure12_platform_bandwidth(sorter.name).expect("known platform"),
        });
    }
    bars
}

/// Renders Figure 12.
pub fn render() -> String {
    let all = bars();
    let mut t = Table::new(vec!["sorter", "throughput", "memory BW", "efficiency"]);
    for b in &all {
        t.row(vec![
            b.name.clone(),
            format!("{:.2} GB/s", b.throughput / 1e9),
            format!("{:.0} GB/s", b.bandwidth / 1e9),
            format!("{:.3}", b.efficiency()),
        ]);
    }
    let best_baseline = all[2..].iter().map(Bar::efficiency).fold(0.0, f64::max);
    format!(
        "Figure 12: bandwidth-efficiency at 16 GB input size\n\n{}\nBonsai 8 vs best baseline: {:.1}x  (paper: 3.3x)\n",
        t.render(),
        all[0].efficiency() / best_baseline
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_throughput_near_paper_measurement() {
        let t = bonsai_pipeline_throughput();
        assert!((t - 7.19e9).abs() < 0.6e9, "throughput {t}");
    }

    #[test]
    fn bonsai8_efficiency_beats_baselines_by_about_3x() {
        let all = bars();
        let bonsai8 = all[0].efficiency();
        let best = all[2..].iter().map(Bar::efficiency).fold(0.0, f64::max);
        let ratio = bonsai8 / best;
        assert!((2.5..4.0).contains(&ratio), "ratio {ratio} (paper: 3.3x)");
    }

    #[test]
    fn gpu_has_lowest_efficiency() {
        // §VII-B: GPU sorters are bandwidth-hungry; HRS lands last.
        let all = bars();
        let hrs = all.iter().find(|b| b.name == "HRS").expect("present");
        for b in &all {
            assert!(hrs.efficiency() <= b.efficiency() + 1e-12);
        }
    }
}
