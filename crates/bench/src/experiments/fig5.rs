//! Figure 5: sorting time of Bonsai-optimal AMT configurations as a
//! function of off-chip memory bandwidth, against the best CPU/GPU/FPGA
//! sorters and the I/O lower bound (16 GB input, 32-bit records).

use bonsai_baselines::published::{HRS, PARADIS, SAMPLE_SORT};
use bonsai_model::{ArrayParams, BonsaiOptimizer, HardwareParams};
use bonsai_sorters::calibration::DRAM_STAGE_EFFICIENCY;

use crate::table::Table;

/// The 16 GB / 32-bit workload of Figure 5.
pub const BYTES: u64 = 16_000_000_000;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// DRAM bandwidth in bytes/second.
    pub beta: f64,
    /// Bonsai-optimal configuration at this bandwidth.
    pub config: String,
    /// Predicted sorting time in seconds (calibrated model).
    pub seconds: f64,
    /// I/O lower bound: one read + one write of the array.
    pub io_bound: f64,
}

/// Sweeps DRAM bandwidth over `betas` (bytes/second).
pub fn sweep(betas: &[f64]) -> Vec<Point> {
    let array = ArrayParams::new(BYTES / 4, 4);
    betas
        .iter()
        .map(|&beta| {
            let hw = HardwareParams::aws_f1().with_beta_dram(beta);
            let opt = BonsaiOptimizer::new(hw);
            let best = opt.latency_optimal(&array).expect("feasible");
            // Apply the measured stage-efficiency calibration, as the
            // sorter reports do.
            let seconds = best.latency_s / DRAM_STAGE_EFFICIENCY;
            Point {
                beta,
                config: format!("{} (presort {})", best.config, best.presort),
                seconds,
                io_bound: 2.0 * BYTES as f64 / beta,
            }
        })
        .collect()
}

/// Default bandwidth grid: 1–256 GB/s in octaves.
pub fn default_betas() -> Vec<f64> {
    (0..=8).map(|e| (1u64 << e) as f64 * 1e9).collect()
}

/// Renders the Figure 5 sweep.
pub fn render() -> String {
    let mut t = Table::new(vec![
        "beta_DRAM",
        "optimal config",
        "Bonsai time",
        "I/O bound",
    ]);
    for p in sweep(&default_betas()) {
        t.row(vec![
            format!("{:.0} GB/s", p.beta / 1e9),
            p.config,
            format!("{:.2}s", p.seconds),
            format!("{:.2}s", p.io_bound),
        ]);
    }
    let paradis = PARADIS.sort_seconds(BYTES).expect("16 GB reported");
    let hrs = HRS.sort_seconds(BYTES).expect("16 GB reported");
    let ss = SAMPLE_SORT.sort_seconds(BYTES).expect("16 GB reported");
    format!(
        "Figure 5: sorting time of optimal AMT configurations vs DRAM bandwidth\n(16 GB input, 32-bit records)\n\n{}\nBaselines at 16 GB: PARADIS {paradis:.2}s, HRS {hrs:.2}s, SampleSort {ss:.2}s\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_decreases_with_bandwidth() {
        let points = sweep(&default_betas());
        assert!(points
            .windows(2)
            .all(|w| w[1].seconds <= w[0].seconds + 1e-9));
    }

    #[test]
    fn bonsai_tracks_io_bound_within_stage_count() {
        // Sorting takes `stages` round trips, so the ratio to the
        // (2-pass) I/O bound is stages / efficiency, bounded by ~7.
        for p in sweep(&default_betas()) {
            let ratio = p.seconds / p.io_bound;
            assert!((1.0..8.0).contains(&ratio), "ratio {ratio} at {}", p.beta);
        }
    }

    #[test]
    fn crossover_against_baselines_matches_figure() {
        // At 1 GB/s Bonsai is slower than the GPU sorter; at 32 GB/s it
        // beats every baseline — the crossing Figure 5 shows.
        let points = sweep(&[1e9, 32e9]);
        let hrs = HRS.sort_seconds(BYTES).expect("reported");
        assert!(points[0].seconds > hrs);
        let paradis = PARADIS.sort_seconds(BYTES).expect("reported");
        let ss = SAMPLE_SORT.sort_seconds(BYTES).expect("reported");
        assert!(points[1].seconds < hrs.min(paradis).min(ss));
    }
}
