//! Table V: execution-time breakdown of sorting 2 TB of data.

use bonsai_model::HardwareParams;
use bonsai_sorters::{SorterReport, SsdSorter};

use crate::table::Table;

/// The 2 TB (2048 GB) workload of Table V.
pub const BYTES_2TB: u64 = 2_048_000_000_000;

/// Runs the SSD-sorter projection for 2 TB.
pub fn report() -> SorterReport {
    SsdSorter::new(HardwareParams::aws_f1_ssd()).project(BYTES_2TB, 4)
}

/// Renders Table V with the paper's measured numbers alongside.
pub fn render() -> String {
    let r = report();
    let total = r.seconds();
    let mut t = Table::new(vec!["phase", "time (model)", "share", "time (paper)"]);
    let paper = ["256s", "4.3s", "256s"];
    for (phase, paper_time) in r.phases.iter().zip(paper) {
        t.row(vec![
            phase.name.clone(),
            format!("{:.1}s", phase.seconds),
            format!("{:.1}%", phase.seconds / total * 100.0),
            paper_time.to_string(),
        ]);
    }
    t.row(vec![
        "Total".into(),
        format!("{total:.1}s"),
        "100.0%".into(),
        "516.3s".into(),
    ]);
    format!(
        "Table V: execution time breakdown of sorting 2 TB\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_v() {
        let r = report();
        assert!((r.seconds() - 516.3).abs() < 1.0, "total {}", r.seconds());
        assert_eq!(r.phases.len(), 3);
        // Phase shares: 49.6% / 0.8% / 49.6%.
        let total = r.seconds();
        assert!((r.phases[0].seconds / total - 0.496).abs() < 0.005);
        assert!((r.phases[1].seconds / total - 0.008).abs() < 0.005);
    }
}
