//! §VI-D: HBM-sorter validation — unrolling scales performance and
//! resources linearly.
//!
//! The paper could not access HBM either; it validated the projection on
//! F1 DRAM banks: "two p = 16 AMTs saturate DRAM bandwidth … four p = 8
//! AMTs saturate DRAM bandwidth". We run exactly that experiment on the
//! shared-memory co-simulator ([`bonsai_amt::UnrolledSim`]): all λ
//! trees contend for the same four bank ports, so the bandwidth split
//! is emergent, not assumed.

use bonsai_amt::{AmtConfig, SimEngineConfig, UnrolledSim};
use bonsai_gensort::dist::uniform_u32;
use bonsai_memsim::DEFAULT_FREQ_HZ;
use bonsai_model::resource::amt_lut;
use bonsai_model::ComponentLibrary;

use crate::table::Table;

/// One unrolling configuration.
#[derive(Debug, Clone)]
pub struct UnrollPoint {
    /// Trees in parallel.
    pub lambda: usize,
    /// Tree shape.
    pub amt: AmtConfig,
    /// Co-simulated aggregate streaming rate (bytes/s) on the shared
    /// 4-bank, 32 GB/s memory.
    pub aggregate_throughput: f64,
    /// Total LUTs (λ × per-tree LUTs).
    pub total_lut: u64,
}

/// Co-simulates `lambda × AMT(p, l)` on the shared F1 memory.
pub fn measure(lambda: usize, p: usize, l: usize, n_total: usize) -> UnrollPoint {
    let amt = AmtConfig::new(p, l);
    let cfg = SimEngineConfig::dram_sorter(amt, 4);
    let data = uniform_u32(n_total, lambda as u64);
    let (_, report) = UnrolledSim::new(cfg, lambda).sort(data);
    UnrollPoint {
        lambda,
        amt,
        aggregate_throughput: report.aggregate_stream_rate(DEFAULT_FREQ_HZ),
        total_lut: lambda as u64 * amt_lut(&ComponentLibrary::paper(), p, l, 32),
    }
}

/// The three validation configurations of §VI-D over `n_total` records.
pub fn sweep(n_total: usize) -> Vec<UnrollPoint> {
    vec![
        measure(1, 32, 64, n_total),
        measure(2, 16, 64, n_total),
        measure(4, 8, 64, n_total),
    ]
}

/// Renders the §VI-D validation table.
pub fn render(n_total: usize) -> String {
    let mut t = Table::new(vec!["config", "aggregate GB/s (co-sim)", "total LUT"]);
    let points = sweep(n_total);
    for pt in &points {
        t.row(vec![
            format!("{}x {}", pt.lambda, pt.amt),
            format!("{:.2}", pt.aggregate_throughput / 1e9),
            pt.total_lut.to_string(),
        ]);
    }
    format!(
        "§VI-D validation: unrolling scales linearly ({n_total} records total,\nall trees contending for the shared 4-bank 32 GB/s memory)\nEvery lambda-way configuration sustains the same aggregate; LUT cost trades\np for copies.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrolled_configs_saturate_the_same_aggregate() {
        let points = sweep(400_000);
        let base = points[0].aggregate_throughput;
        assert!(base > 20e9, "one p=32 tree must stream > 20 GB/s");
        for pt in &points[1..] {
            let ratio = pt.aggregate_throughput / base;
            assert!(
                (0.8..1.2).contains(&ratio),
                "{}x {}: aggregate {:.2} GB/s vs base {:.2} GB/s",
                pt.lambda,
                pt.amt,
                pt.aggregate_throughput / 1e9,
                base / 1e9
            );
        }
    }

    #[test]
    fn resource_scaling_is_linear_in_lambda() {
        let lib = ComponentLibrary::paper();
        let one = amt_lut(&lib, 8, 64, 32);
        let pt = measure(4, 8, 64, 50_000);
        assert_eq!(pt.total_lut, 4 * one);
    }
}
