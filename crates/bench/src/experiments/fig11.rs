//! Figure 11: the DRAM sorter against the best CPU / GPU / FPGA
//! sorters, 4–32 GB.

use bonsai_baselines::published::{HRS, PARADIS, SAMPLE_SORT};
use bonsai_model::HardwareParams;
use bonsai_sorters::DramSorter;

use crate::table::{ms_cell, size_label, Table};

/// The 4–32 GB sizes of Figure 11, in bytes.
pub const SIZES_BYTES: &[u64] = &[4_000_000_000, 8_000_000_000, 16_000_000_000, 32_000_000_000];

/// Our DRAM sorter's ms/GB at `bytes`.
pub fn bonsai_ms(bytes: u64) -> f64 {
    DramSorter::new(HardwareParams::aws_f1())
        .project(bytes, 4)
        .expect("4-32 GB fits DRAM")
        .ms_per_gb()
}

/// Renders Figure 11 plus the headline speedup claims.
pub fn render() -> String {
    let mut t = Table::new(vec![
        "size",
        "PARADIS",
        "HRS",
        "SampleSort",
        "Bonsai (ours)",
    ]);
    for &bytes in SIZES_BYTES {
        t.row(vec![
            size_label(bytes),
            ms_cell(PARADIS.ms_per_gb(bytes)),
            ms_cell(HRS.ms_per_gb(bytes)),
            ms_cell(SAMPLE_SORT.ms_per_gb(bytes)),
            ms_cell(Some(bonsai_ms(bytes))),
        ]);
    }
    let (mut cpu, mut gpu, mut fpga): (Vec<f64>, Vec<f64>, Vec<f64>) =
        (Vec::new(), Vec::new(), Vec::new());
    for &bytes in SIZES_BYTES {
        let ours = bonsai_ms(bytes);
        cpu.push(PARADIS.ms_per_gb(bytes).expect("in range") / ours);
        gpu.push(HRS.ms_per_gb(bytes).expect("in range") / ours);
        fpga.push(SAMPLE_SORT.ms_per_gb(bytes).expect("in range") / ours);
    }
    let minmax = |v: &[f64]| {
        (
            v.iter().copied().fold(f64::INFINITY, f64::min),
            v.iter().copied().fold(0.0, f64::max),
        )
    };
    let (cpu_lo, cpu_hi) = minmax(&cpu);
    let (gpu_lo, gpu_hi) = minmax(&gpu);
    let (fpga_lo, fpga_hi) = minmax(&fpga);
    format!(
        "Figure 11: DRAM sorter vs state-of-the-art (ms/GB, lower is better)\n\n{}\nspeedups: CPU {cpu_lo:.1}x-{cpu_hi:.1}x, GPU {gpu_lo:.1}x-{gpu_hi:.1}x, FPGA {fpga_lo:.1}x-{fpga_hi:.1}x\n(paper: CPU 2.3x-2.5x, GPU 1.2x-1.3x, FPGA 1.3x-3.7x)\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_speedups_match_paper() {
        // §I / §VI-C1: minimum 2.3x/1.3x/1.2x, up to 2.5x/3.7x/1.3x over
        // CPU/FPGA/GPU respectively (4-32 GB).
        let at = |bytes: u64| bonsai_ms(bytes);
        let cpu32 = PARADIS.ms_per_gb(SIZES_BYTES[3]).expect("in range") / at(SIZES_BYTES[3]);
        assert!(
            (2.0..2.6).contains(&cpu32),
            "CPU speedup at 32 GB: {cpu32:.2}"
        );
        let fpga32 = SAMPLE_SORT.ms_per_gb(SIZES_BYTES[3]).expect("in range") / at(SIZES_BYTES[3]);
        assert!(
            (3.3..4.1).contains(&fpga32),
            "FPGA speedup at 32 GB: {fpga32:.2}"
        );
        let gpu32 = HRS.ms_per_gb(SIZES_BYTES[3]).expect("in range") / at(SIZES_BYTES[3]);
        assert!(
            (1.15..1.45).contains(&gpu32),
            "GPU speedup at 32 GB: {gpu32:.2}"
        );
    }

    #[test]
    fn bonsai_is_fastest_at_every_size() {
        for &bytes in SIZES_BYTES {
            let ours = bonsai_ms(bytes);
            for baseline in [&PARADIS, &HRS, &SAMPLE_SORT] {
                let ms = baseline.ms_per_gb(bytes).expect("in range");
                assert!(ours < ms, "{}: {ours} !< {ms}", baseline.name);
            }
        }
    }
}
