//! §VI-E: SSD-sorter validation on throttled memory.
//!
//! The paper validates its SSD projections without an SSD by throttling
//! the F1 DRAM to flash speed (8 GB/s) and checking that each phase
//! still saturates the bound: the phase-one pipeline stage (AMT(8, 64)
//! on one bank) and the phase-two wide merge (AMT(8, 256)) both operate
//! at ~8 GB/s. We run the identical experiment on the cycle simulator.

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig};
use bonsai_gensort::dist::uniform_u32;
use bonsai_memsim::MemoryConfig;

use crate::table::Table;

/// Simulated sustained streaming rate (bytes/s while merging) of an AMT
/// on memory throttled to 8 GB/s.
pub fn throttled_rate(amt: AmtConfig, n: usize) -> f64 {
    let cfg = SimEngineConfig::with_memory(amt, 4, MemoryConfig::throttled_to_ssd());
    let data = uniform_u32(n, 0x55D);
    let (_, report) = SimEngine::new(cfg).sort(data);
    report.throughput() * report.stages() as f64
}

/// Renders the §VI-E validation.
pub fn render(n: usize) -> String {
    let mut t = Table::new(vec!["phase", "design", "simulated GB/s", "paper GB/s"]);
    let phase1 = throttled_rate(AmtConfig::new(8, 64), n);
    t.row(vec![
        "phase one (per pipeline stage)".into(),
        "AMT(8, 64), 1 bank".into(),
        format!("{:.2}", phase1 / 1e9),
        "7.19".into(),
    ]);
    let phase2 = throttled_rate(AmtConfig::new(8, 256), n);
    t.row(vec![
        "phase two (wide merge)".into(),
        "AMT(8, 256), throttled".into(),
        format!("{:.2}", phase2 / 1e9),
        "~8".into(),
    ]);
    format!(
        "§VI-E validation: both SSD-sorter phases saturate the 8 GB/s flash bound\n(DRAM throttled to SSD speed, {n} records)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_one_stage_matches_paper_7_19() {
        let rate = throttled_rate(AmtConfig::new(8, 64), 400_000);
        // Paper measures 7.19 GB/s against the nominal 8.
        assert!(
            (rate - 7.19e9).abs() < 0.6e9,
            "phase-one rate {:.2} GB/s",
            rate / 1e9
        );
    }

    #[test]
    fn phase_two_saturates_throttled_memory() {
        // 256 leaf buffers fill serially over the single throttled port,
        // so the start-of-stage fill is visible at small scale; 1.5M
        // records amortize it (at hardware scale it vanishes entirely).
        let rate = throttled_rate(AmtConfig::new(8, 256), 1_500_000);
        assert!(
            rate > 6.4e9 && rate <= 8.1e9,
            "phase-two rate {:.2} GB/s",
            rate / 1e9
        );
    }
}
