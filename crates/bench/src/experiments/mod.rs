//! One module per table/figure of the paper's evaluation.

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig5;
pub mod fig8_9;
pub mod hbm_validation;
pub mod host_baseline;
pub mod ssd_validation;
pub mod table1;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod width_scaling;
