//! Table VI: LUT utilization and throughput of the building blocks.

use bonsai_model::{ComponentLibrary, TABLE_VI_128BIT, TABLE_VI_32BIT};

use crate::table::Table;

fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.0} GB/s", bytes_per_sec / 1e9)
}

/// Renders Table VI for one record width.
pub fn render_width(record_bits: u32) -> String {
    let lib = ComponentLibrary::paper();
    let table = if record_bits == 32 {
        &TABLE_VI_32BIT
    } else {
        &TABLE_VI_128BIT
    };
    let mut t = Table::new(vec!["element", "throughput", "LUT"]);
    for log_k in 0..6 {
        let k = 1usize << log_k;
        t.row(vec![
            format!("{k}-merger"),
            gbps(lib.merger_throughput(k, record_bits, 250e6)),
            table.merger_lut[log_k].to_string(),
        ]);
    }
    t.row(vec![
        "FIFO".into(),
        gbps(lib.merger_throughput(1, record_bits, 250e6)),
        table.fifo_lut.to_string(),
    ]);
    for log_k in 1..6 {
        let k = 1usize << log_k;
        t.row(vec![
            format!("{k}-coupler"),
            gbps(lib.merger_throughput(k / 2, record_bits, 250e6)),
            table.coupler_lut[log_k].to_string(),
        ]);
    }
    format!("({record_bits}-bit records)\n{}", t.render())
}

/// Renders both halves of Table VI plus the §VI-F2 wide-record
/// observation.
pub fn render() -> String {
    let lib = ComponentLibrary::paper();
    let l128 = lib.merger_lut(4, 128);
    let l32 = lib.merger_lut(16, 32);
    format!(
        "Table VI: LUT utilization and throughput of building-block elements\n\n{}\n{}\n§VI-F2 check: a 128-bit 4-merger ({l128} LUTs) matches the throughput of a\n32-bit 16-merger ({l32} LUTs) with {:.0}% less logic.\n",
        render_width(32),
        render_width(128),
        (1.0 - l128 as f64 / l32 as f64) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_column_matches_paper() {
        // Table VI(a): 32-merger moves 32 GB/s of 32-bit records.
        let lib = ComponentLibrary::paper();
        assert!((lib.merger_throughput(32, 32, 250e6) - 32e9).abs() < 1.0);
        // Table VI(b): 32-merger moves 128 GB/s of 128-bit records.
        assert!((lib.merger_throughput(32, 128, 250e6) - 128e9).abs() < 1.0);
    }

    #[test]
    fn render_lists_all_elements() {
        let s = render();
        for e in ["1-merger", "32-merger", "FIFO", "2-coupler", "32-coupler"] {
            assert!(s.contains(e), "missing {e}");
        }
        assert!(s.contains("less logic"));
    }
}
