//! §VI-F2: scalability in record width.
//!
//! The paper: "1 GB of wider records requires less resources to be
//! sorted in the same amount of time as one GB of narrower records."
//! This experiment runs the cycle simulator at matched byte throughput
//! (`p·r` constant) over 4/8/16-byte records — confirming the equal
//! sort-time half — and evaluates the resource half with the model,
//! where the advantage turns out to hold per merger (as Table VI
//! shows) but not per fixed-ℓ tree, whose deep 1-merger levels scale
//! with record width.

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig};
use bonsai_gensort::dist::uniform_u32;
use bonsai_model::resource::amt_lut;
use bonsai_model::ComponentLibrary;
use bonsai_records::{KvRec, Record, U32Rec, U64Rec};

use crate::table::Table;

/// One width point: record width, simulated byte throughput, model LUT.
#[derive(Debug, Clone)]
pub struct WidthPoint {
    /// Record width in bytes.
    pub record_bytes: u64,
    /// AMT shape used (p chosen so `p·r` is constant).
    pub amt: AmtConfig,
    /// Simulated sustained byte throughput while merging (bytes/s).
    pub stream_rate: f64,
    /// Resource-model LUTs for the tree.
    pub lut: u64,
}

fn simulate_generic<R: Record>(amt: AmtConfig, data: Vec<R>) -> f64 {
    let cfg = SimEngineConfig::dram_sorter(amt, R::WIDTH_BYTES as u64);
    let (_, report) = SimEngine::new(cfg).sort(data);
    report.throughput() * report.stages() as f64
}

/// Runs the sweep at a fixed total byte volume (`total_bytes`).
pub fn sweep(total_bytes: usize) -> Vec<WidthPoint> {
    let lib = ComponentLibrary::paper();
    let mut out = Vec::new();

    // 4-byte records through AMT(8, 64): 8 GB/s-class stream.
    let n4 = total_bytes / 4;
    let amt4 = AmtConfig::new(8, 64);
    out.push(WidthPoint {
        record_bytes: 4,
        amt: amt4,
        stream_rate: simulate_generic::<U32Rec>(amt4, uniform_u32(n4, 1)),
        lut: amt_lut(&lib, 8, 64, 32),
    });

    // 8-byte records through AMT(4, 64): same p·r.
    let n8 = total_bytes / 8;
    let amt8 = AmtConfig::new(4, 64);
    let data8: Vec<U64Rec> = uniform_u32(n8, 2)
        .into_iter()
        .enumerate()
        .map(|(i, r)| U64Rec::new((u64::from(r.0) << 20) | i as u64).sanitize())
        .collect();
    out.push(WidthPoint {
        record_bytes: 8,
        amt: amt8,
        stream_rate: simulate_generic::<U64Rec>(amt8, data8),
        lut: amt_lut(&lib, 4, 64, 64),
    });

    // 16-byte records through AMT(2, 64): same p·r.
    let n16 = total_bytes / 16;
    let amt16 = AmtConfig::new(2, 64);
    let data16: Vec<KvRec> = uniform_u32(n16, 3)
        .into_iter()
        .enumerate()
        .map(|(i, r)| KvRec::new(u64::from(r.0), i as u64).sanitize())
        .collect();
    out.push(WidthPoint {
        record_bytes: 16,
        amt: amt16,
        stream_rate: simulate_generic::<KvRec>(amt16, data16),
        lut: amt_lut(&lib, 2, 64, 128),
    });
    out
}

/// Renders the §VI-F2 width-scaling table.
pub fn render(total_bytes: usize) -> String {
    let mut t = Table::new(vec!["record width", "AMT", "stream GB/s", "tree LUT"]);
    let points = sweep(total_bytes);
    for p in &points {
        t.row(vec![
            format!("{} B", p.record_bytes),
            p.amt.to_string(),
            format!("{:.2}", p.stream_rate / 1e9),
            p.lut.to_string(),
        ]);
    }
    format!(
        "§VI-F2: record-width scaling at constant byte throughput ({} MB dataset)\nEqual p·r sorts the same bytes in the same time. Per *merger* the wide\nrecord wins (a 128-bit 4-merger beats a 32-bit 16-merger by ~34%, Table VI);\nper *tree* at fixed l the 1-merger floor of the deep levels works the other\nway — the paper's resource claim is a component-level statement.\n\n{}",
        total_bytes / 1_000_000,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_byte_rate_across_widths() {
        let points = sweep(4_000_000);
        let base = points[0].stream_rate;
        for p in &points[1..] {
            let ratio = p.stream_rate / base;
            assert!(
                (0.85..1.15).contains(&ratio),
                "{} B records: {:.2} GB/s vs base {:.2} GB/s",
                p.record_bytes,
                p.stream_rate / 1e9,
                base / 1e9
            );
        }
    }

    #[test]
    fn width_advantage_is_component_level() {
        let lib = ComponentLibrary::paper();
        // Per merger at equal throughput, wider records win (§VI-F2's
        // own example: 128-bit 4-merger vs 32-bit 16-merger).
        assert!(lib.merger_lut(4, 128) < lib.merger_lut(16, 32));
        // Per tree at fixed l, the deep 1-merger levels scale with
        // record width and dominate, reversing the advantage.
        let narrow = amt_lut(&lib, 8, 64, 32);
        let wide = amt_lut(&lib, 2, 64, 128);
        assert!(wide > narrow, "{wide} vs {narrow}");
    }
}
