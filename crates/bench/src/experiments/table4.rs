//! Table IV: resource-utilization breakdown of the optimal DRAM sorter.

use bonsai_model::resource::SystemResources;
use bonsai_model::ComponentLibrary;

use crate::table::Table;

/// Paper-measured Table IV rows `(lut, ff, bram)` for comparison.
pub const PAPER_ROWS: &[(&str, u64, u64, u64)] = &[
    ("Data loader", 110_102, 604_550, 960),
    ("Merge tree", 102_158, 100_264, 0),
    ("Presorter", 75_412, 64_092, 0),
    ("Total", 287_672, 768_906, 960),
];

/// Our modeled breakdown for the paper's AMT(32, 64) DRAM sorter.
pub fn modeled() -> SystemResources {
    SystemResources::dram_sorter(&ComponentLibrary::paper(), 32, 64, 32, Some(16))
}

/// Renders Table IV with model-vs-paper columns.
pub fn render() -> String {
    let sys = modeled();
    let rows = [
        ("Data loader", sys.data_loader),
        ("Merge tree", sys.merge_tree),
        ("Presorter", sys.presorter),
        ("Total", sys.total()),
    ];
    let mut t = Table::new(vec![
        "component",
        "LUT (model)",
        "LUT (paper)",
        "FF (model)",
        "FF (paper)",
        "BRAM (model)",
        "BRAM (paper)",
    ]);
    for ((name, ours), &(_, p_lut, p_ff, p_bram)) in rows.iter().zip(PAPER_ROWS) {
        t.row(vec![
            name.to_string(),
            ours.lut.to_string(),
            p_lut.to_string(),
            ours.ff.to_string(),
            p_ff.to_string(),
            ours.bram_blocks.to_string(),
            p_bram.to_string(),
        ]);
    }
    let (lut_u, ff_u, bram_u) = sys.utilization();
    format!(
        "Table IV: resource breakdown of the optimal DRAM sorter (AMT(32, 64) + 16-record presorter)\n\n{}\nUtilization (model): LUT {:.1}%  FF {:.1}%  BRAM {:.1}%   (paper: 33.3% / 43.6% / 60%)\n",
        t.render(),
        lut_u * 100.0,
        ff_u * 100.0,
        bram_u * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_total_tracks_paper_total() {
        let total = modeled().total();
        let (_, p_lut, _, p_bram) = PAPER_ROWS[3];
        assert!((total.lut as f64 - p_lut as f64).abs() / (p_lut as f64) < 0.10);
        assert_eq!(total.bram_blocks, p_bram);
    }

    #[test]
    fn render_has_all_components() {
        let s = render();
        for name in ["Data loader", "Merge tree", "Presorter", "Total"] {
            assert!(s.contains(name));
        }
    }
}
