//! Measured host-CPU baseline table: the sorters this repository can
//! actually run (std sort, the PARADIS-flavored radix baseline, and the
//! AMT functional schedule) timed on the build machine.
//!
//! This is the reproduction's analogue of the paper's own measured CPU
//! column. Absolute numbers (and even the radix-vs-comparison ordering)
//! depend heavily on the host — constrained CI machines may show
//! neither the radix advantage nor thread scaling that a multicore
//! server exhibits — which is itself the paper's point about CPU
//! baselines.

use std::time::Instant;

use bonsai_amt::functional;
use bonsai_baselines::radix::parallel_radix_sort;
use bonsai_gensort::dist::uniform_u32;

use crate::table::Table;

/// One measured row.
#[derive(Debug, Clone)]
pub struct HostPoint {
    /// Sorter label.
    pub name: &'static str,
    /// Measured throughput in bytes/second on this host.
    pub throughput: f64,
}

fn time_it(mut f: impl FnMut()) -> f64 {
    // Best of three runs to tame scheduler noise.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Measures every host sorter on `n` uniform u32 records.
pub fn measure(n: usize) -> Vec<HostPoint> {
    let data = uniform_u32(n, 0xC0FFEE);
    let bytes = (n * 4) as f64;
    let mut out = Vec::new();

    let secs = time_it(|| {
        let mut d = data.clone();
        d.sort_unstable();
        std::hint::black_box(&d);
    });
    out.push(HostPoint {
        name: "std sort_unstable",
        throughput: bytes / secs,
    });

    for threads in [1usize, 4] {
        let secs = time_it(|| {
            let mut d = data.clone();
            parallel_radix_sort(&mut d, threads);
            std::hint::black_box(&d);
        });
        out.push(HostPoint {
            name: if threads == 1 {
                "radix (1 thread)"
            } else {
                "radix (4 threads)"
            },
            throughput: bytes / secs,
        });
    }

    let secs = time_it(|| {
        let (d, _) = functional::sort_balanced(data.clone(), 256, 16);
        std::hint::black_box(&d);
    });
    out.push(HostPoint {
        name: "AMT functional (l=256)",
        throughput: bytes / secs,
    });
    out
}

/// Renders the measured host table.
pub fn render(n: usize) -> String {
    let mut t = Table::new(vec!["sorter", "host throughput"]);
    for p in measure(n) {
        t.row(vec![
            p.name.to_string(),
            format!("{:.2} GB/s", p.throughput / 1e9),
        ]);
    }
    format!(
        "Host-measured software sorters ({n} uniform u32 records, best of 3)\nAbsolute numbers are host-dependent; the radix-vs-comparison relationship\nmirrors the paper's PARADIS CPU baseline.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sorters_measure_positive_throughput() {
        for p in measure(200_000) {
            assert!(p.throughput > 0.0, "{}", p.name);
        }
    }

    #[test]
    fn multithreaded_radix_not_slower_than_half_single() {
        // Parallelism may be noisy in CI but must not collapse.
        let points = measure(400_000);
        let one = points
            .iter()
            .find(|p| p.name.contains("1 thread"))
            .expect("present");
        let four = points
            .iter()
            .find(|p| p.name.contains("4 threads"))
            .expect("present");
        assert!(four.throughput > one.throughput * 0.5);
    }
}
