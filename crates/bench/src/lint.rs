//! The static pass behind the `bonsai-lint` binary: every configuration
//! the experiment suite and the examples construct, pushed through the
//! `bonsai-check` analyzer.
//!
//! The experiment modules build their configs through the panicking
//! constructors, so a malformed config would already abort a run — but
//! only at the moment that experiment executes. This pass front-loads
//! the whole suite so CI rejects a bad config before any simulation
//! spends minutes on it.

use bonsai_amt::graph::{lower_to_graph, required_bytes_per_cycle, LowerOptions};
use bonsai_amt::prove::{replay_refutation, NetOptions, ReplayOutcome};
use bonsai_amt::{AmtConfig, SimEngineConfig};
use bonsai_check::prove::{prove_with_diagnostics, ProveOptions, ProveOutcome};
use bonsai_check::Diagnostic;
use bonsai_memsim::{MemoryConfig, DEFAULT_FREQ_HZ};
use bonsai_model::check::{
    certify_latency_bound, check_bound_against_observed, check_full_config, check_static_bound,
    model_drift_probe,
};
use bonsai_model::{ArrayParams, BonsaiOptimizer, ComponentLibrary, FullConfig, HardwareParams};
use bonsai_runtime::{AdaptiveConfig, PassScheduler, RuntimeConfig};

use crate::experiments::fig8_9;

/// Array the latency-bound certification runs each engine target
/// against: 1 GiB of records keeps every stage count realistic.
const CERTIFY_BYTES: u64 = 1 << 30;

/// Record count for the model-drift simulation probe; small enough that
/// the probe costs milliseconds, large enough for several merge stages.
const DRIFT_PROBE_RECORDS: usize = 20_000;

/// One linted configuration: where it came from and what the analyzer
/// said about it.
#[derive(Debug)]
pub struct LintFinding {
    /// Which experiment/example the configuration belongs to.
    pub target: String,
    /// The analyzer's findings (empty = clean).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintFinding {
    /// `true` if any finding is error severity.
    pub fn has_errors(&self) -> bool {
        bonsai_check::has_errors(&self.diagnostics)
    }
}

/// Every cycle-simulation configuration the experiment suite runs,
/// labelled by its table/figure.
pub fn engine_targets() -> Vec<(String, SimEngineConfig)> {
    let mut targets = Vec::new();

    // Figures 8/9: the model-validation shapes on the DRAM sorter.
    for amt in fig8_9::figure_amts() {
        targets.push((
            format!("fig8_9/{amt}"),
            SimEngineConfig::dram_sorter(amt, 4),
        ));
    }

    // §VI-D HBM validation: λ unrolled copies of narrower trees.
    for (lambda, p, l) in [(1usize, 32usize, 64usize), (2, 16, 64), (4, 8, 64)] {
        targets.push((
            format!("hbm_validation/lambda{lambda}_p{p}_l{l}"),
            SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4),
        ));
    }

    // §VI-E SSD validation: both phases on the throttled memory.
    for l in [64usize, 256] {
        targets.push((
            format!("ssd_validation/p8_l{l}"),
            SimEngineConfig::with_memory(AmtConfig::new(8, l), 4, MemoryConfig::throttled_to_ssd()),
        ));
    }

    // Record-width scaling: wider records at proportionally lower p.
    for (p, record_bytes) in [(8usize, 4u64), (4, 8), (2, 16)] {
        targets.push((
            format!("width_scaling/p{p}_r{record_bytes}"),
            SimEngineConfig::dram_sorter(AmtConfig::new(p, 64), record_bytes),
        ));
    }

    // Ablation benches: p-vs-ℓ shapes and the presorter on/off pair.
    for (p, l) in [(16usize, 16usize), (8, 64), (4, 256)] {
        targets.push((
            format!("ablations/p{p}_l{l}"),
            SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4),
        ));
    }
    targets.push((
        "ablations/no_presort".into(),
        SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4).without_presort(),
    ));

    targets
}

/// Every full (replicated) configuration the resource-model experiments
/// and the optimizer-driven examples rely on, with its presorter chunk.
pub fn model_targets() -> Vec<(String, FullConfig, Option<usize>)> {
    let mut targets = vec![
        // Table IV: the synthesized DRAM sorter.
        (
            "table4/dram_sorter".into(),
            FullConfig {
                throughput_p: 32,
                leaves_l: 64,
                unroll: 1,
                pipeline: 1,
            },
            Some(16),
        ),
    ];

    // §VI-D: the unrolled HBM configurations.
    for (lambda, p, l) in [(1usize, 32usize, 64usize), (2, 16, 64), (4, 8, 64)] {
        targets.push((
            format!("hbm_validation/lambda{lambda}"),
            FullConfig {
                throughput_p: p,
                leaves_l: l,
                unroll: lambda,
                pipeline: 1,
            },
            Some(16),
        ));
    }

    // The quickstart example's optimizer pick for a 16 GiB u32 sort:
    // whatever the optimizer emits must itself be analyzer-clean.
    let optimizer = BonsaiOptimizer::new(HardwareParams::aws_f1());
    if let Ok(best) = optimizer.latency_optimal(&ArrayParams::from_bytes(16 << 30, 4)) {
        let presort = (best.presort > 1).then_some(best.presort);
        targets.push(("quickstart/latency_optimal".into(), best.config, presort));
    }

    targets
}

/// Reference core count the in-repo runtime shapes are linted against.
/// Fixed (rather than the actual host's) so `lint_all` reports the same
/// findings on every machine; the CLI's `--runtime` mode uses the real
/// host count unless `--cores` overrides it.
pub const REF_CORES: usize = 8;

/// Every runtime topology the repo itself runs: the default shape,
/// both ends of `runtime_smoke`'s serial-vs-parallel gate, and the
/// adaptive-scheduler shape `perf_adaptive` and the
/// `BONSAI_RUNTIME_SCHEDULER=adaptive` CI lane exercise (whose
/// `validate_for_cores` additionally runs the BON08x knob checks).
pub fn runtime_targets() -> Vec<(String, RuntimeConfig)> {
    vec![
        ("runtime/default".into(), RuntimeConfig::default()),
        (
            "runtime_smoke/serial".into(),
            RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
        ),
        (
            "runtime_smoke/per_core".into(),
            RuntimeConfig {
                workers: 0,
                ..RuntimeConfig::default()
            },
        ),
        (
            "runtime/adaptive".into(),
            RuntimeConfig {
                scheduler: PassScheduler::Adaptive,
                ..RuntimeConfig::default()
            },
        ),
    ]
}

/// The BON05x topology pass over every in-repo runtime shape, judged
/// on the [`REF_CORES`] reference host.
pub fn lint_runtime_all() -> Vec<LintFinding> {
    runtime_targets()
        .into_iter()
        .map(|(target, cfg)| LintFinding {
            target,
            diagnostics: cfg.validate_for_cores(REF_CORES),
        })
        .collect()
}

/// Options for the `bonsai-lint --prove` occupancy-reachability pass.
#[derive(Debug, Clone, Copy)]
pub struct ProveLintOptions {
    /// Explicit-state budget for the reachability search.
    pub state_budget: usize,
    /// Extra leaf-edge credits beyond capacity (the `BON061` probe).
    pub credit_slack: u32,
    /// Records for the counterexample replay; `0` disables replay.
    pub replay_records: usize,
    /// Observed throughput in bytes/second to cross-check the static
    /// lower bound against (`BON064`); `None` checks against the Eq. 1
    /// model instead.
    pub assume_throughput: Option<f64>,
}

impl Default for ProveLintOptions {
    fn default() -> Self {
        Self {
            state_budget: bonsai_check::prove::DEFAULT_STATE_BUDGET,
            credit_slack: 0,
            replay_records: bonsai_amt::prove::REPLAY_RECORDS,
            assume_throughput: None,
        }
    }
}

/// The occupancy-reachability pass for one engine configuration:
/// lower to the token net, exhaustively explore it, and
///
/// - on **certified**: re-verify the certificate (`BON063` if the
///   independent checker rejects it) and cross-check the static
///   throughput floor against the Eq. 1 model — or against
///   `assume_throughput` when given (`BON064`);
/// - on **refuted**: report the counterexample (`BON060`/`BON061`) and
///   replay it against `SimEngine`; a simulator that *completes* the
///   statically-wedged configuration earns a `BON065` divergence
///   warning, a reproduced wedge annotates the refutation with the
///   simulator's own failure;
/// - on **budget-exhausted**: pass through the `BON062` warning.
pub fn engine_prove_diagnostics(cfg: &SimEngineConfig, opts: &ProveLintOptions) -> Vec<Diagnostic> {
    let net = match bonsai_amt::prove::net_from_config(
        cfg,
        &NetOptions {
            credit_slack: opts.credit_slack,
        },
    ) {
        Ok(net) => net,
        Err(fatal) => return fatal,
    };
    let (outcome, mut diagnostics) = prove_with_diagnostics(
        &net,
        &ProveOptions {
            state_budget: opts.state_budget,
            ..ProveOptions::default()
        },
    );
    match outcome {
        ProveOutcome::Certified(_) => {
            let array = ArrayParams::from_bytes(CERTIFY_BYTES, cfg.loader.record_bytes.max(1));
            diagnostics.extend(match opts.assume_throughput {
                Some(observed) => {
                    check_bound_against_observed(cfg, &array, DEFAULT_FREQ_HZ, observed)
                }
                None => check_static_bound(cfg, &array, &HardwareParams::aws_f1()),
            });
        }
        ProveOutcome::Refuted(_) if opts.replay_records > 0 => {
            match replay_refutation(cfg, opts.replay_records, REPLAY_LINT_PASS_CYCLES, 1) {
                ReplayOutcome::Reproduced {
                    code,
                    stage,
                    cycles,
                } => {
                    // Attach the simulator's confirmation to the
                    // refutation diagnostic itself.
                    if let Some(pos) = diagnostics.iter().position(Diagnostic::is_error) {
                        let confirmed = diagnostics.remove(pos);
                        diagnostics.insert(
                            pos,
                            confirmed
                                .with("sim_reproduced", code)
                                .with("sim_stage", stage)
                                .with("sim_cycles", cycles),
                        );
                    }
                }
                ReplayOutcome::Completed { cycles } => {
                    diagnostics.push(
                        Diagnostic::warning(
                            bonsai_check::codes::PROVE_REPLAY_DIVERGED,
                            "static refutation did not reproduce in simulation: the cycle \
                             simulator relaxes the hardware contract the token net enforces",
                        )
                        .with("sim_cycles", cycles)
                        .with("replay_records", opts.replay_records),
                    );
                }
                ReplayOutcome::Rejected { .. } => {}
            }
        }
        _ => {}
    }
    diagnostics
}

/// Livelock bound for lint-time counterexample replays: generous for
/// the small replay workloads, tight enough to fail fast on a wedge.
const REPLAY_LINT_PASS_CYCLES: u64 = 300_000;

/// The occupancy-reachability pass over every in-repo engine
/// configuration.
pub fn prove_all(opts: &ProveLintOptions) -> Vec<LintFinding> {
    engine_targets()
        .into_iter()
        .map(|(target, cfg)| LintFinding {
            target: format!("prove/{target}"),
            diagnostics: engine_prove_diagnostics(&cfg, opts),
        })
        .collect()
}

/// The shape + graph + certification pass for one engine configuration:
/// the shape checks, then the four pipeline-graph analyses against the
/// config's own required throughput, then the Eq. 1 latency-bound
/// certification. Lowering failures add only codes the shape checks did
/// not already report (e.g. `BON017`, which only the lowering can see).
pub fn engine_diagnostics(
    cfg: &SimEngineConfig,
    opts: &LowerOptions,
    hw: &HardwareParams,
) -> Vec<Diagnostic> {
    let mut diagnostics = cfg.validate();
    match lower_to_graph(cfg, opts) {
        Ok(graph) => {
            diagnostics.extend(graph.analyze_all(required_bytes_per_cycle(cfg)));
            let array = ArrayParams::from_bytes(CERTIFY_BYTES, cfg.loader.record_bytes.max(1));
            diagnostics.extend(certify_latency_bound(cfg, &array, hw));
        }
        Err(fatal) => {
            for d in fatal {
                if !diagnostics.iter().any(|seen| seen.code == d.code) {
                    diagnostics.push(d);
                }
            }
        }
    }
    diagnostics
}

/// Runs the static pass over every in-repo configuration: shape checks,
/// the four pipeline-graph analyses and the latency-bound certification
/// for every engine target, the resource-model checks for every full
/// config, plus one model-vs-simulation drift probe.
pub fn lint_all() -> Vec<LintFinding> {
    let lib = ComponentLibrary::paper();
    let hw = HardwareParams::aws_f1();
    let opts = LowerOptions::default();
    let mut findings = Vec::new();
    for (target, cfg) in engine_targets() {
        findings.push(LintFinding {
            target,
            diagnostics: engine_diagnostics(&cfg, &opts, &hw),
        });
    }
    for (target, cfg, presort) in model_targets() {
        findings.push(LintFinding {
            target,
            diagnostics: check_full_config(&lib, &hw, &cfg, 32, presort),
        });
    }
    // One tolerance-gated drift probe: Eq. 1 against an actual engine
    // run on the paper's reference shape.
    let probe_cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    findings.push(LintFinding {
        target: format!("drift_probe/amt4_16_n{DRIFT_PROBE_RECORDS}"),
        diagnostics: model_drift_probe(&probe_cfg, &hw, DRIFT_PROBE_RECORDS, 7),
    });
    // The runtime topologies the repo itself spins up (BON05x).
    findings.extend(lint_runtime_all());
    findings
}

/// A raw runtime topology assembled from CLI numbers, for the
/// `bonsai-lint --runtime` probe mode (BON05x codes).
#[derive(Debug, Clone, Copy)]
pub struct RawRuntimeLint {
    /// Job workers (`0` = one per core).
    pub workers: usize,
    /// Per-job pass-sharding threads (`0` = one per core).
    pub pass_workers: usize,
    /// Bounded job-queue depth.
    pub queue_depth: usize,
    /// Concurrent submitting threads.
    pub producers: usize,
    /// Whether drop closes the queue before joining.
    pub close_on_drop: bool,
    /// Whether drop joins the workers at all.
    pub join_on_drop: bool,
    /// Host core count to judge against; `None` = this machine.
    pub cores: Option<usize>,
    /// When set, also bound `pass_workers` by the merge groups of a
    /// `records`-record job on the paper's reference DRAM engine
    /// (`BON051`).
    pub records: Option<usize>,
    /// When set, judge a pipelined group-DAG of this peak ready width
    /// (`SortPlan::max_ready_width`) against the queue/worker capacity
    /// (`BON056`).
    pub dag_width: Option<usize>,
    /// When set, also run the BON08x adaptive-scheduler pass over these
    /// knobs (the CLI arms this whenever any of `--cache-shapes`,
    /// `--shape-classes`, `--reprogram-us`, `--deadline-us` or
    /// `--fairness-stride` is given).
    pub adaptive: Option<RawAdaptiveLint>,
}

/// The adaptive scheduler's knobs as raw CLI numbers, for the BON08x
/// pass of `bonsai-lint --runtime`. Unlike `RuntimeConfig::validate*`
/// (which always judges the runtime's own two job classes), this probe
/// lets `--shape-classes` vary so CI can demonstrate the
/// cache-below-classes warning (`BON082`) at any cache size.
#[derive(Debug, Clone, Copy)]
pub struct RawAdaptiveLint {
    /// Compiled-shape cache capacity (`BON082`).
    pub cache_shapes: usize,
    /// Job classes the scheduler selects shapes for (`BON082`).
    pub shape_classes: usize,
    /// Modeled shape-switch cost in microseconds (`BON080`).
    pub reprogram_us: u64,
    /// Per-job latency deadline in microseconds, `0` = none (`BON081`).
    pub deadline_us: u64,
    /// Consecutive latency-lane dispatches before a waiting
    /// throughput-class job runs, `0` = pure priority (`BON083`).
    pub fairness_stride: u32,
}

impl Default for RawAdaptiveLint {
    fn default() -> Self {
        let defaults = AdaptiveConfig::default();
        Self {
            cache_shapes: defaults.cache_shapes,
            // The two-lane runtime's class count (latency, throughput).
            shape_classes: 2,
            reprogram_us: defaults.reprogram_cost_us,
            deadline_us: defaults.latency_deadline_us,
            fairness_stride: defaults.fairness_stride,
        }
    }
}

impl Default for RawRuntimeLint {
    fn default() -> Self {
        let defaults = RuntimeConfig::default();
        Self {
            workers: defaults.workers,
            pass_workers: defaults.pass_workers,
            queue_depth: defaults.queue_depth,
            producers: defaults.producers,
            close_on_drop: defaults.close_on_drop,
            join_on_drop: defaults.join_on_drop,
            cores: None,
            records: None,
            dag_width: None,
            adaptive: None,
        }
    }
}

impl RawRuntimeLint {
    /// The runtime configuration these raw numbers describe.
    pub fn config(&self) -> RuntimeConfig {
        RuntimeConfig {
            workers: self.workers,
            pass_workers: self.pass_workers,
            queue_depth: self.queue_depth,
            producers: self.producers,
            close_on_drop: self.close_on_drop,
            join_on_drop: self.join_on_drop,
            ..RuntimeConfig::default()
        }
    }

    /// Runs the BON05x topology pass over this raw configuration.
    pub fn lint(&self) -> LintFinding {
        let cores = self.cores.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        let engine = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
        let mut diagnostics =
            self.config()
                .validate_for_engine(self.records.map(|_| &engine), self.records, cores);
        // The pipelined scheduler's capacity lint: a DAG whose ready
        // set outgrows the stated queue + pass-worker capacity has
        // tasks with nowhere to go (BON056). The `0` sentinels (auto
        // pool / unbounded queue) leave the capacity unstated, matching
        // `check_dag_capacity`'s contract.
        if let Some(width) = self.dag_width {
            diagnostics.extend(bonsai_check::check_dag_capacity(
                width,
                self.queue_depth,
                self.pass_workers,
            ));
        }
        // The adaptive scheduler's knob checks (BON08x), called
        // directly rather than through an Adaptive `RuntimeConfig` so
        // the probe's `--shape-classes` override is honored.
        if let Some(a) = self.adaptive {
            diagnostics.extend(bonsai_check::check_adaptive_runtime(
                a.cache_shapes,
                a.shape_classes,
                a.reprogram_us,
                a.deadline_us,
                a.fairness_stride,
            ));
        }
        LintFinding {
            target: format!(
                "cli/runtime_w{}_pw{}_q{}_prod{}",
                self.workers, self.pass_workers, self.queue_depth, self.producers
            ),
            diagnostics,
        }
    }
}

/// A raw engine configuration assembled from CLI numbers — deliberately
/// bypassing the panicking constructors so malformed shapes reach the
/// analyzer instead of aborting.
#[derive(Debug, Clone, Copy)]
pub struct RawEngineLint {
    /// Root throughput `p`.
    pub p: usize,
    /// Leaf count `l`.
    pub l: usize,
    /// Loader batch size in bytes.
    pub batch_bytes: u64,
    /// Record width in bytes.
    pub record_bytes: u64,
    /// Leaf buffer capacity in batches.
    pub buffer_batches: u64,
    /// Presorter chunk length.
    pub presort: Option<usize>,
    /// Memory model the engine streams through.
    pub memory: MemoryConfig,
    /// Override of the memory bank count (degenerate-config probe).
    pub banks: Option<usize>,
    /// Write-back payload width override; `Some(0)` is the `BON017`
    /// probe.
    pub payload_bytes: Option<u64>,
}

impl Default for RawEngineLint {
    fn default() -> Self {
        Self {
            p: 32,
            l: 64,
            batch_bytes: 4096,
            record_bytes: 4,
            buffer_batches: 2,
            presort: Some(16),
            memory: MemoryConfig::ddr4_aws_f1(),
            banks: None,
            payload_bytes: None,
        }
    }
}

impl RawEngineLint {
    /// The engine configuration these raw numbers describe.
    pub fn config(&self) -> SimEngineConfig {
        let mut memory = self.memory;
        if let Some(banks) = self.banks {
            memory.banks = banks;
        }
        SimEngineConfig {
            amt: AmtConfig {
                p: self.p,
                l: self.l,
            },
            loader: bonsai_memsim::LoaderConfig {
                batch_bytes: self.batch_bytes,
                record_bytes: self.record_bytes,
                buffer_batches: self.buffer_batches,
            },
            memory,
            presort: self.presort,
        }
    }

    /// Runs the full engine pass (shape + graph + certification) over
    /// this raw configuration.
    pub fn lint(&self) -> LintFinding {
        let cfg = self.config();
        let opts = LowerOptions {
            payload_bytes: self.payload_bytes,
        };
        LintFinding {
            target: format!(
                "cli/p{}_l{}_b{}_r{}",
                self.p, self.l, self.batch_bytes, self.record_bytes
            ),
            diagnostics: engine_diagnostics(&cfg, &opts, &HardwareParams::aws_f1()),
        }
    }
}

/// Lints a single raw engine configuration on the default DDR4 memory
/// (back-compat wrapper over [`RawEngineLint`]).
pub fn lint_raw_engine(
    p: usize,
    l: usize,
    batch_bytes: u64,
    record_bytes: u64,
    buffer_batches: u64,
    presort: Option<usize>,
) -> LintFinding {
    RawEngineLint {
        p,
        l,
        batch_bytes,
        record_bytes,
        buffer_batches,
        presort,
        ..RawEngineLint::default()
    }
    .lint()
}

/// Renders findings as a report; returns `(report, error_count,
/// warning_count)`.
pub fn render(findings: &[LintFinding]) -> (String, usize, usize) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for f in findings {
        if f.diagnostics.is_empty() {
            let _ = writeln!(out, "ok    {}", f.target);
            continue;
        }
        let status = if f.has_errors() { "FAIL " } else { "warn " };
        let _ = writeln!(out, "{status} {}", f.target);
        for d in &f.diagnostics {
            if d.is_error() {
                errors += 1;
            } else {
                warnings += 1;
            }
            let _ = writeln!(out, "      {d}");
        }
    }
    let _ = writeln!(
        out,
        "{} configuration(s), {errors} error(s), {warnings} warning(s)",
        findings.len()
    );
    (out, errors, warnings)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a single JSON object for CI annotation tooling;
/// returns `(json, error_count, warning_count)`. Schema:
///
/// ```json
/// {
///   "targets": [
///     {"target": "...", "status": "ok|warn|fail",
///      "diagnostics": [{"code": "BONxxx", "severity": "error|warning",
///                       "message": "...", "context": {"name": "value"}}]}
///   ],
///   "errors": 0,
///   "warnings": 0
/// }
/// ```
pub fn render_json(findings: &[LintFinding]) -> (String, usize, usize) {
    use std::fmt::Write as _;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut out = String::from("{\"targets\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let status = if f.has_errors() {
            "fail"
        } else if f.diagnostics.is_empty() {
            "ok"
        } else {
            "warn"
        };
        let _ = write!(
            out,
            "{{\"target\":\"{}\",\"status\":\"{status}\",\"diagnostics\":[",
            json_escape(&f.target)
        );
        for (j, d) in f.diagnostics.iter().enumerate() {
            if d.is_error() {
                errors += 1;
            } else {
                warnings += 1;
            }
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"context\":{{",
                d.code,
                d.severity,
                json_escape(&d.message)
            );
            for (k, (name, value)) in d.context.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(name), json_escape(value));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
    }
    let _ = write!(out, "],\"errors\":{errors},\"warnings\":{warnings}}}");
    (out, errors, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_in_repo_config_is_clean_of_errors() {
        let findings = lint_all();
        assert!(!findings.is_empty());
        for f in &findings {
            assert!(!f.has_errors(), "{}: {:?}", f.target, f.diagnostics);
        }
    }

    #[test]
    fn raw_override_catches_bad_shapes() {
        let f = lint_raw_engine(6, 16, 4096, 4, 2, Some(16));
        assert!(f.has_errors());
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::P_NOT_POWER_OF_TWO));

        let f = lint_raw_engine(4, 16, 16, 4, 2, Some(16));
        assert!(
            f.diagnostics
                .iter()
                .any(|d| d.code == bonsai_check::codes::BATCH_BELOW_BUS_WIDTH),
            "{:?}",
            f.diagnostics
        );
    }

    #[test]
    fn in_repo_runtime_shapes_are_fully_clean() {
        for f in lint_runtime_all() {
            assert!(
                f.diagnostics.is_empty(),
                "{}: {:?}",
                f.target,
                f.diagnostics
            );
        }
    }

    #[test]
    fn raw_runtime_lint_catches_bad_topologies() {
        // Zero-depth queue under concurrent producers: BON050 (error).
        let f = RawRuntimeLint {
            queue_depth: 0,
            producers: 2,
            cores: Some(8),
            ..RawRuntimeLint::default()
        }
        .lint();
        assert!(f.has_errors());
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::RUNTIME_QUEUE_ZERO));

        // Joining without closing wedges drop: BON052 (error).
        let f = RawRuntimeLint {
            close_on_drop: false,
            cores: Some(8),
            ..RawRuntimeLint::default()
        }
        .lint();
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::RUNTIME_JOIN_WITHOUT_CLOSE));

        // Oversubscription is judged on the *stated* core count, not
        // the machine the lint happens to run on.
        let f = RawRuntimeLint {
            workers: 4,
            pass_workers: 4,
            cores: Some(4),
            ..RawRuntimeLint::default()
        }
        .lint();
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::RUNTIME_OVERSUBSCRIBED));

        // --dag-width judges a pipelined DAG's peak ready set against
        // the stated queue + pass-worker capacity: BON056 (error).
        let f = RawRuntimeLint {
            pass_workers: 4,
            queue_depth: 8,
            dag_width: Some(100),
            cores: Some(8),
            ..RawRuntimeLint::default()
        }
        .lint();
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::RUNTIME_DAG_OVER_CAPACITY));
        let f = RawRuntimeLint {
            pass_workers: 4,
            queue_depth: 8,
            dag_width: Some(12),
            cores: Some(8),
            ..RawRuntimeLint::default()
        }
        .lint();
        assert!(
            !f.diagnostics
                .iter()
                .any(|d| d.code == bonsai_check::codes::RUNTIME_DAG_OVER_CAPACITY),
            "{:?}",
            f.diagnostics
        );

        // --records bounds pass-workers by the engine's merge groups.
        let f = RawRuntimeLint {
            pass_workers: 64,
            records: Some(1_000),
            cores: Some(128),
            ..RawRuntimeLint::default()
        }
        .lint();
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::RUNTIME_WORKERS_EXCEED_GROUPS));
    }

    #[test]
    fn raw_adaptive_lint_fires_the_bon08x_codes() {
        let base = RawRuntimeLint {
            cores: Some(8),
            ..RawRuntimeLint::default()
        };
        let adaptive = |a: RawAdaptiveLint| {
            RawRuntimeLint {
                adaptive: Some(a),
                ..base
            }
            .lint()
        };

        // The defaults are lint-clean, so arming the pass alone adds
        // nothing.
        let f = adaptive(RawAdaptiveLint::default());
        assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);

        // Zero reprogram cost thrashes shapes: BON080 (warning).
        let f = adaptive(RawAdaptiveLint {
            reprogram_us: 0,
            ..RawAdaptiveLint::default()
        });
        assert!(!f.has_errors());
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::ADAPTIVE_RECONFIG_THRASH));

        // Deadline not above the reprogram cost: BON081 (error).
        let f = adaptive(RawAdaptiveLint {
            deadline_us: 100,
            reprogram_us: 200,
            ..RawAdaptiveLint::default()
        });
        assert!(f.has_errors());
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::ADAPTIVE_DEADLINE_INFEASIBLE));

        // Cache below the stated class count: BON082 (warning) — the
        // --shape-classes override is what makes this reachable at any
        // cache size.
        let f = adaptive(RawAdaptiveLint {
            cache_shapes: 8,
            shape_classes: 9,
            ..RawAdaptiveLint::default()
        });
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::ADAPTIVE_CACHE_BELOW_CLASSES));

        // Zero fairness stride starves the throughput lane: BON083
        // (warning).
        let f = adaptive(RawAdaptiveLint {
            fairness_stride: 0,
            ..RawAdaptiveLint::default()
        });
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::ADAPTIVE_FAIRNESS_STARVATION));

        // An un-armed lint of the same base topology stays BON08x-free.
        let f = base.lint();
        assert!(
            !f.diagnostics.iter().any(|d| d.code.starts_with("BON08")),
            "{:?}",
            f.diagnostics
        );
    }

    #[test]
    fn prove_pass_certifies_every_in_repo_config() {
        let findings = prove_all(&ProveLintOptions::default());
        assert!(!findings.is_empty());
        for f in &findings {
            assert!(f.target.starts_with("prove/"));
            assert!(
                f.diagnostics.is_empty(),
                "{}: {:?}",
                f.target,
                f.diagnostics
            );
        }
    }

    #[test]
    fn prove_pass_refutes_and_confirms_a_zero_credit_config() {
        let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
        cfg.loader.buffer_batches = 0;
        let diags = engine_prove_diagnostics(&cfg, &ProveLintOptions::default());
        let deadlock = diags
            .iter()
            .find(|d| d.code == bonsai_check::codes::PROVE_DEADLOCK_REACHABLE)
            .unwrap_or_else(|| panic!("{diags:?}"));
        // The replay confirmation is folded into the refutation itself.
        assert!(
            deadlock
                .context
                .iter()
                .any(|(k, v)| *k == "sim_reproduced" && v == "BON040"),
            "{deadlock:?}"
        );
    }

    #[test]
    fn prove_pass_reports_divergence_as_bon065() {
        // Shallow leaf buffers wedge the hardware contract but not the
        // software simulator.
        let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(8, 4), 16);
        cfg.loader.batch_bytes = 32;
        let diags = engine_prove_diagnostics(&cfg, &ProveLintOptions::default());
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&bonsai_check::codes::PROVE_DEADLOCK_REACHABLE),
            "{codes:?}"
        );
        assert!(
            codes.contains(&bonsai_check::codes::PROVE_REPLAY_DIVERGED),
            "{codes:?}"
        );
    }

    #[test]
    fn prove_pass_budget_and_bound_probes() {
        let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
        let diags = engine_prove_diagnostics(
            &cfg,
            &ProveLintOptions {
                state_budget: 4,
                ..ProveLintOptions::default()
            },
        );
        assert!(
            diags
                .iter()
                .any(|d| d.code == bonsai_check::codes::PROVE_BUDGET_EXHAUSTED),
            "{diags:?}"
        );
        assert!(!bonsai_check::has_errors(&diags), "budget is a warning");

        // Claiming 1 B/s observed contradicts any positive floor.
        let diags = engine_prove_diagnostics(
            &cfg,
            &ProveLintOptions {
                assume_throughput: Some(1.0),
                ..ProveLintOptions::default()
            },
        );
        assert!(
            diags
                .iter()
                .any(|d| d.code == bonsai_check::codes::PROVE_BOUND_UNSOUND),
            "{diags:?}"
        );
    }

    #[test]
    fn report_counts_severities() {
        let findings = vec![
            LintFinding {
                target: "a".into(),
                diagnostics: vec![],
            },
            LintFinding {
                target: "b".into(),
                diagnostics: vec![
                    Diagnostic::error(bonsai_check::codes::BATCH_ZERO, "e"),
                    Diagnostic::warning(bonsai_check::codes::BUFFER_NOT_DOUBLE, "w"),
                ],
            },
        ];
        let (report, errors, warnings) = render(&findings);
        assert_eq!((errors, warnings), (1, 1));
        assert!(report.contains("FAIL  b"));
        assert!(report.contains("BON012"));
    }

    #[test]
    fn json_report_is_parseable_and_counts_match() {
        let findings = vec![
            LintFinding {
                target: "clean \"quoted\"".into(),
                diagnostics: vec![],
            },
            LintFinding {
                target: "broken".into(),
                diagnostics: vec![
                    Diagnostic::error(bonsai_check::codes::BATCH_ZERO, "e").with("batch_bytes", 0)
                ],
            },
        ];
        let (json, errors, warnings) = render_json(&findings);
        assert_eq!((errors, warnings), (1, 0));
        // The graph module's strict JSON reader doubles as a validator.
        assert!(
            bonsai_check::graph::PipelineGraph::from_json(&json)
                .unwrap_err()
                .contains("version"),
            "output must be syntactically valid JSON (only the schema differs)"
        );
        assert!(json.contains("\"code\":\"BON012\""));
        assert!(json.contains("\"status\":\"fail\""));
        assert!(json.contains("clean \\\"quoted\\\""));
    }

    #[test]
    fn raw_lint_runs_the_graph_analyses() {
        // Zero buffer batches: credits dry up -> BON030.
        let f = RawEngineLint {
            buffer_batches: 0,
            ..RawEngineLint::default()
        }
        .lint();
        assert!(
            f.diagnostics
                .iter()
                .any(|d| d.code == bonsai_check::codes::GRAPH_DEADLOCK),
            "{:?}",
            f.diagnostics
        );

        // Zero write payload: only the lowering can see this (BON017).
        let f = RawEngineLint {
            payload_bytes: Some(0),
            ..RawEngineLint::default()
        }
        .lint();
        assert!(
            f.diagnostics
                .iter()
                .any(|d| d.code == bonsai_check::codes::WRITE_PAYLOAD_ZERO),
            "{:?}",
            f.diagnostics
        );

        // Zero banks: BON013 from the shape pass and BON035 from the
        // graph, without duplicating the shape codes.
        let f = RawEngineLint {
            banks: Some(0),
            ..RawEngineLint::default()
        }
        .lint();
        let codes: Vec<_> = f.diagnostics.iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&bonsai_check::codes::MEMORY_ZERO_BANKS),
            "{codes:?}"
        );
        assert!(
            codes.contains(&bonsai_check::codes::GRAPH_CHANNEL_ZERO_BANKS),
            "{codes:?}"
        );
    }

    #[test]
    fn shape_errors_are_not_duplicated_by_the_lowering() {
        let f = lint_raw_engine(6, 16, 4096, 4, 2, Some(16));
        let bon001 = f
            .diagnostics
            .iter()
            .filter(|d| d.code == bonsai_check::codes::P_NOT_POWER_OF_TWO)
            .count();
        assert_eq!(bon001, 1, "{:?}", f.diagnostics);
    }
}
