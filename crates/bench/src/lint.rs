//! The static pass behind the `bonsai-lint` binary: every configuration
//! the experiment suite and the examples construct, pushed through the
//! `bonsai-check` analyzer.
//!
//! The experiment modules build their configs through the panicking
//! constructors, so a malformed config would already abort a run — but
//! only at the moment that experiment executes. This pass front-loads
//! the whole suite so CI rejects a bad config before any simulation
//! spends minutes on it.

use bonsai_amt::{AmtConfig, SimEngineConfig};
use bonsai_check::Diagnostic;
use bonsai_memsim::MemoryConfig;
use bonsai_model::check::check_full_config;
use bonsai_model::{ArrayParams, BonsaiOptimizer, ComponentLibrary, FullConfig, HardwareParams};

use crate::experiments::fig8_9;

/// One linted configuration: where it came from and what the analyzer
/// said about it.
#[derive(Debug)]
pub struct LintFinding {
    /// Which experiment/example the configuration belongs to.
    pub target: String,
    /// The analyzer's findings (empty = clean).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintFinding {
    /// `true` if any finding is error severity.
    pub fn has_errors(&self) -> bool {
        bonsai_check::has_errors(&self.diagnostics)
    }
}

/// Every cycle-simulation configuration the experiment suite runs,
/// labelled by its table/figure.
pub fn engine_targets() -> Vec<(String, SimEngineConfig)> {
    let mut targets = Vec::new();

    // Figures 8/9: the model-validation shapes on the DRAM sorter.
    for amt in fig8_9::figure_amts() {
        targets.push((
            format!("fig8_9/{amt}"),
            SimEngineConfig::dram_sorter(amt, 4),
        ));
    }

    // §VI-D HBM validation: λ unrolled copies of narrower trees.
    for (lambda, p, l) in [(1usize, 32usize, 64usize), (2, 16, 64), (4, 8, 64)] {
        targets.push((
            format!("hbm_validation/lambda{lambda}_p{p}_l{l}"),
            SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4),
        ));
    }

    // §VI-E SSD validation: both phases on the throttled memory.
    for l in [64usize, 256] {
        targets.push((
            format!("ssd_validation/p8_l{l}"),
            SimEngineConfig::with_memory(AmtConfig::new(8, l), 4, MemoryConfig::throttled_to_ssd()),
        ));
    }

    // Record-width scaling: wider records at proportionally lower p.
    for (p, record_bytes) in [(8usize, 4u64), (4, 8), (2, 16)] {
        targets.push((
            format!("width_scaling/p{p}_r{record_bytes}"),
            SimEngineConfig::dram_sorter(AmtConfig::new(p, 64), record_bytes),
        ));
    }

    // Ablation benches: p-vs-ℓ shapes and the presorter on/off pair.
    for (p, l) in [(16usize, 16usize), (8, 64), (4, 256)] {
        targets.push((
            format!("ablations/p{p}_l{l}"),
            SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4),
        ));
    }
    targets.push((
        "ablations/no_presort".into(),
        SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4).without_presort(),
    ));

    targets
}

/// Every full (replicated) configuration the resource-model experiments
/// and the optimizer-driven examples rely on, with its presorter chunk.
pub fn model_targets() -> Vec<(String, FullConfig, Option<usize>)> {
    let mut targets = vec![
        // Table IV: the synthesized DRAM sorter.
        (
            "table4/dram_sorter".into(),
            FullConfig {
                throughput_p: 32,
                leaves_l: 64,
                unroll: 1,
                pipeline: 1,
            },
            Some(16),
        ),
    ];

    // §VI-D: the unrolled HBM configurations.
    for (lambda, p, l) in [(1usize, 32usize, 64usize), (2, 16, 64), (4, 8, 64)] {
        targets.push((
            format!("hbm_validation/lambda{lambda}"),
            FullConfig {
                throughput_p: p,
                leaves_l: l,
                unroll: lambda,
                pipeline: 1,
            },
            Some(16),
        ));
    }

    // The quickstart example's optimizer pick for a 16 GiB u32 sort:
    // whatever the optimizer emits must itself be analyzer-clean.
    let optimizer = BonsaiOptimizer::new(HardwareParams::aws_f1());
    if let Ok(best) = optimizer.latency_optimal(&ArrayParams::from_bytes(16 << 30, 4)) {
        let presort = (best.presort > 1).then_some(best.presort);
        targets.push(("quickstart/latency_optimal".into(), best.config, presort));
    }

    targets
}

/// Runs the static pass over every in-repo configuration.
pub fn lint_all() -> Vec<LintFinding> {
    let lib = ComponentLibrary::paper();
    let hw = HardwareParams::aws_f1();
    let mut findings = Vec::new();
    for (target, cfg) in engine_targets() {
        findings.push(LintFinding {
            target,
            diagnostics: cfg.validate(),
        });
    }
    for (target, cfg, presort) in model_targets() {
        findings.push(LintFinding {
            target,
            diagnostics: check_full_config(&lib, &hw, &cfg, 32, presort),
        });
    }
    findings
}

/// Lints a single, possibly malformed, engine configuration assembled
/// from raw numbers (the CLI override path — no panicking constructors
/// on the way in).
pub fn lint_raw_engine(
    p: usize,
    l: usize,
    batch_bytes: u64,
    record_bytes: u64,
    buffer_batches: u64,
    presort: Option<usize>,
) -> LintFinding {
    let cfg = SimEngineConfig {
        amt: AmtConfig { p, l },
        loader: bonsai_memsim::LoaderConfig {
            batch_bytes,
            record_bytes,
            buffer_batches,
        },
        memory: MemoryConfig::ddr4_aws_f1(),
        presort,
    };
    LintFinding {
        target: format!("cli/p{p}_l{l}_b{batch_bytes}_r{record_bytes}"),
        diagnostics: cfg.validate(),
    }
}

/// Renders findings as a report; returns `(report, error_count,
/// warning_count)`.
pub fn render(findings: &[LintFinding]) -> (String, usize, usize) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for f in findings {
        if f.diagnostics.is_empty() {
            let _ = writeln!(out, "ok    {}", f.target);
            continue;
        }
        let status = if f.has_errors() { "FAIL " } else { "warn " };
        let _ = writeln!(out, "{status} {}", f.target);
        for d in &f.diagnostics {
            if d.is_error() {
                errors += 1;
            } else {
                warnings += 1;
            }
            let _ = writeln!(out, "      {d}");
        }
    }
    let _ = writeln!(
        out,
        "{} configuration(s), {errors} error(s), {warnings} warning(s)",
        findings.len()
    );
    (out, errors, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_in_repo_config_is_clean_of_errors() {
        let findings = lint_all();
        assert!(!findings.is_empty());
        for f in &findings {
            assert!(!f.has_errors(), "{}: {:?}", f.target, f.diagnostics);
        }
    }

    #[test]
    fn raw_override_catches_bad_shapes() {
        let f = lint_raw_engine(6, 16, 4096, 4, 2, Some(16));
        assert!(f.has_errors());
        assert!(f
            .diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::P_NOT_POWER_OF_TWO));

        let f = lint_raw_engine(4, 16, 16, 4, 2, Some(16));
        assert!(
            f.diagnostics
                .iter()
                .any(|d| d.code == bonsai_check::codes::BATCH_BELOW_BUS_WIDTH),
            "{:?}",
            f.diagnostics
        );
    }

    #[test]
    fn report_counts_severities() {
        let findings = vec![
            LintFinding {
                target: "a".into(),
                diagnostics: vec![],
            },
            LintFinding {
                target: "b".into(),
                diagnostics: vec![
                    Diagnostic::error(bonsai_check::codes::BATCH_ZERO, "e"),
                    Diagnostic::warning(bonsai_check::codes::BUFFER_NOT_DOUBLE, "w"),
                ],
            },
        ];
        let (report, errors, warnings) = render(&findings);
        assert_eq!((errors, warnings), (1, 1));
        assert!(report.contains("FAIL  b"));
        assert!(report.contains("BON012"));
    }
}
