//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so instead of criterion the bench
//! targets (`benches/*.rs`, `harness = false`) use this module: warm up,
//! run a fixed wall-clock budget of iterations, and report the median
//! iteration time with derived element/byte throughput. Output is one
//! aligned line per benchmark, stable enough to eyeball regressions.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// What one iteration processes, for derived-rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Records (or other items) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Runs `f` repeatedly for roughly `budget` and returns the median
/// iteration time.
fn measure<T>(budget: Duration, mut f: impl FnMut() -> T) -> Duration {
    // Warm-up: one iteration always runs; more until ~10% of budget.
    let warm_start = Instant::now();
    loop {
        black_box(f());
        if warm_start.elapsed() > budget / 10 {
            break;
        }
    }
    let mut samples = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 5 {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed());
        if samples.len() >= 10_000 {
            break;
        }
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Benchmarks `f` under `group/name`, printing one summary line.
pub fn bench<T>(group: &str, name: &str, throughput: Throughput, f: impl FnMut() -> T) {
    let median = measure(Duration::from_millis(300), f);
    let secs = median.as_secs_f64().max(1e-12);
    let rate = match throughput {
        Throughput::Elements(n) => format!("{:>10.1} Melem/s", n as f64 / secs / 1e6),
        Throughput::Bytes(n) => format!("{:>10.2} MiB/s", n as f64 / secs / (1 << 20) as f64),
    };
    println!("{group:<18} {name:<36} {median:>12.2?}  {rate}");
}

/// Prints the header for a bench binary.
pub fn header(title: &str) {
    println!("== {title} ==");
    println!(
        "{:<18} {:<36} {:>12}  {:>16}",
        "group", "benchmark", "median", "rate"
    );
}
