//! Shared shapes and helpers for the fast-forward performance suite
//! (`perf_baseline`, the `runtime_smoke` perf gate and the equivalence
//! tests).

use bonsai_amt::{AmtConfig, SimEngineConfig, SortReport};
use bonsai_memsim::MemoryConfig;

/// The SSD-scale shape of the perf baseline: one slow flash access
/// stream ([`MemoryConfig::ssd_direct`]) with batches large enough to
/// amortize its access latency. The machine spends most cycles waiting
/// on memory, which is exactly what the event-driven fast-forward
/// scheduler collapses.
pub fn ssd_scale_config() -> SimEngineConfig {
    let mut cfg =
        SimEngineConfig::with_memory(AmtConfig::new(8, 64), 4, MemoryConfig::ssd_direct());
    cfg.loader.batch_bytes = 131_072;
    cfg
}

/// Strips the `fast_forwarded_cycles` observability counters (the only
/// fields that legitimately differ between the reference loop and the
/// fast path) so reports can be compared bit for bit.
pub fn normalized(mut r: SortReport) -> SortReport {
    r.fast_forwarded_cycles = 0;
    for p in &mut r.passes {
        p.fast_forwarded_cycles = 0;
    }
    r
}
