//! Shared shapes and helpers for the performance suite
//! (`perf_baseline`, `perf_pipeline`, the `runtime_smoke` perf gate and
//! the equivalence tests): machine shapes, report normalizers, and the
//! `BENCH_*.json` writer every bench binary shares.

use std::fmt::Write as _;

use bonsai_amt::{AmtConfig, SimEngineConfig, SortReport};
use bonsai_memsim::MemoryConfig;

/// The SSD-scale shape of the perf baseline: one slow flash access
/// stream ([`MemoryConfig::ssd_direct`]) with batches large enough to
/// amortize its access latency. The machine spends most cycles waiting
/// on memory, which is exactly what the event-driven fast-forward
/// scheduler collapses.
pub fn ssd_scale_config() -> SimEngineConfig {
    let mut cfg =
        SimEngineConfig::with_memory(AmtConfig::new(8, 64), 4, MemoryConfig::ssd_direct());
    cfg.loader.batch_bytes = 131_072;
    cfg
}

/// A multi-pass variant of the SSD-scale shape for the cross-pass
/// pipelining bench: a 4-leaf tree turns [`MULTIPASS_RECORDS`] records
/// (132 presorted runs) into a 4-pass sort with groups 33 → 9 → 3 → 1.
/// On this latency-bound stream every merge group costs roughly the
/// same simulated cycles regardless of pass (quadrupling the run
/// length quarters the per-record cost), so the barrier scheduler's
/// ceil-waste — 5 + 2 + 1 + 1 = 9 group-waves for 46 groups of work
/// that fit in 46/8 ≈ 5.75 — is exactly the idle cross-pass
/// pipelining exists to reclaim.
pub fn ssd_multipass_config() -> SimEngineConfig {
    let mut cfg = SimEngineConfig::with_memory(AmtConfig::new(4, 4), 4, MemoryConfig::ssd_direct());
    cfg.loader.batch_bytes = 131_072;
    cfg
}

/// Records per job for [`ssd_multipass_config`]: 132 presorted
/// 16-record runs.
pub const MULTIPASS_RECORDS: usize = 2112;

/// Strips the `fast_forwarded_cycles` observability counters (the only
/// fields that legitimately differ between the reference loop and the
/// fast path) so reports can be compared bit for bit.
pub fn normalized(mut r: SortReport) -> SortReport {
    r.fast_forwarded_cycles = 0;
    for p in &mut r.passes {
        p.fast_forwarded_cycles = 0;
    }
    r
}

/// Strips `pipeline_overlap_cycles` (the only field that legitimately
/// differs between the barrier and pipelined schedulers) so reports can
/// be compared bit for bit across schedulers.
pub fn no_overlap(mut r: SortReport) -> SortReport {
    r.pipeline_overlap_cycles = 0;
    r
}

/// Strips the adaptive runtime's shape-cache counters (the only fields
/// that legitimately differ between a cold compile and a cache hit) so
/// reports can be compared bit for bit across cache states.
pub fn no_cache_counters(mut r: SortReport) -> SortReport {
    r.shape_cache_hits = 0;
    r.shape_cache_misses = 0;
    r
}

/// Nearest-rank percentile over an *ascending-sorted* sample: `p` in
/// `[0, 100]`, so `percentile(s, 50.0)` is the median and
/// `percentile(s, 99.0)` the p99. Empty samples return 0 (the benches
/// only hit that on a zero-job row, which the gates reject anyway).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One value in a [`bench_json`] row.
#[derive(Debug, Clone)]
pub enum JsonField {
    /// A JSON string.
    Str(String),
    /// An integer.
    U64(u64),
    /// A float rendered with a fixed number of decimals (JSON floats
    /// round-trip poorly otherwise, and the files are diffed in git).
    F64 {
        /// The value.
        value: f64,
        /// Decimal places to render.
        precision: usize,
    },
}

impl core::fmt::Display for JsonField {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JsonField::Str(s) => write!(f, "\"{s}\""),
            JsonField::U64(v) => write!(f, "{v}"),
            JsonField::F64 { value, precision } => write!(f, "{value:.precision$}"),
        }
    }
}

/// Renders the shared `BENCH_*.json` shape every perf bench writes:
/// `{"bench": <name>, "configs": [<one object per row>]}`, with row
/// fields in the given order.
pub fn bench_json(bench: &str, rows: &[Vec<(&str, JsonField)>]) -> String {
    let mut out = format!("{{\n  \"bench\": \"{bench}\",\n  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        for (j, (key, value)) in row.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{key}\": {value}");
        }
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Resolves where a bench binary writes its `BENCH_*.json`: the first
/// CLI argument if given, else the `BONSAI_BENCH_OUT` environment
/// variable, else `default` (the in-repo filename).
pub fn bench_out_path(default: &str) -> String {
    resolve_bench_out(
        std::env::args().nth(1),
        std::env::var("BONSAI_BENCH_OUT").ok(),
        default,
    )
}

/// The pure precedence rule behind [`bench_out_path`], pinned by a
/// unit test: an explicit CLI argument always beats the
/// `BONSAI_BENCH_OUT` environment variable, which beats the in-repo
/// default. An *empty* CLI argument or environment value is treated as
/// unset rather than producing an unopenable `""` path.
pub fn resolve_bench_out(cli: Option<String>, env: Option<String>, default: &str) -> String {
    cli.filter(|s| !s.is_empty())
        .or_else(|| env.filter(|s| !s.is_empty()))
        .unwrap_or_else(|| default.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_shape_and_field_order() {
        let rows = vec![vec![
            ("name", JsonField::Str("dram".into())),
            ("records", JsonField::U64(150_000)),
            (
                "speedup",
                JsonField::F64 {
                    value: 1.234_567,
                    precision: 3,
                },
            ),
        ]];
        let json = bench_json("perf_example", &rows);
        assert_eq!(
            json,
            "{\n  \"bench\": \"perf_example\",\n  \"configs\": [\n    \
             {\"name\": \"dram\", \"records\": 150000, \"speedup\": 1.235}\n  ]\n}\n"
        );
    }

    #[test]
    fn bench_out_precedence_cli_beats_env_beats_default() {
        let cli = || Some("cli.json".to_string());
        let env = || Some("env.json".to_string());
        assert_eq!(resolve_bench_out(cli(), env(), "default.json"), "cli.json");
        assert_eq!(resolve_bench_out(None, env(), "default.json"), "env.json");
        assert_eq!(
            resolve_bench_out(None, None, "default.json"),
            "default.json"
        );
        // Empty strings count as unset, not as a path.
        assert_eq!(
            resolve_bench_out(Some(String::new()), env(), "default.json"),
            "env.json"
        );
        assert_eq!(
            resolve_bench_out(Some(String::new()), Some(String::new()), "default.json"),
            "default.json"
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&s, 50.0), 5.0);
        assert_eq!(percentile(&s, 99.0), 10.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 10.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn no_cache_counters_strips_only_the_cache_fields() {
        let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
        let mut engine = bonsai_amt::SimEngine::try_new(cfg).expect("valid shape");
        let data = bonsai_gensort::dist::uniform_u32(2_000, 3);
        let (_, mut report) = engine.sort(data);
        report.shape_cache_hits = 5;
        report.shape_cache_misses = 2;
        let stripped = no_cache_counters(report.clone());
        assert_eq!(stripped.shape_cache_hits, 0);
        assert_eq!(stripped.shape_cache_misses, 0);
        // Everything else survives untouched.
        report.shape_cache_hits = 0;
        report.shape_cache_misses = 0;
        assert_eq!(stripped, report);
    }

    #[test]
    fn multipass_shape_really_is_multipass() {
        let cfg = ssd_multipass_config();
        let runs = MULTIPASS_RECORDS.div_ceil(cfg.initial_run_len());
        let plan = bonsai_amt::SortPlan::new(runs, cfg.amt.l);
        assert!(plan.num_passes() >= 3, "{} passes", plan.num_passes());
        let groups: Vec<usize> = (0..plan.num_passes())
            .map(|p| plan.pass(p).groups)
            .collect();
        assert_eq!(groups, vec![33, 9, 3, 1]);
    }
}
