//! Regenerates every table and figure in one run (used to produce
//! EXPERIMENTS.md). Run with `--release`.

fn main() {
    use bonsai_bench::experiments as e;
    let sections: Vec<String> = vec![
        e::table1::render(),
        e::table4::render(),
        e::table5::render(),
        e::table6::render(),
        e::fig5::render(),
        e::fig8_9::render(2_000_000),
        e::fig10::render(),
        e::fig11::render(),
        e::fig12::render(),
        e::fig13::render(),
        e::hbm_validation::render(800_000),
        e::ssd_validation::render(800_000),
        e::width_scaling::render(8_000_000),
        e::host_baseline::render(4_000_000),
    ];
    for s in sections {
        println!("{s}");
        println!("{}", "=".repeat(78));
    }
}
