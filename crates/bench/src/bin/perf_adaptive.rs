//! Adaptive-vs-FIFO scheduling bench: small-job tail latency under a
//! mixed workload, at matched throughput.
//!
//! One fixed job mix — [`BIG_JOBS`] large throughput-class sorts
//! interleaved with [`SMALL_JOBS`] small latency-class sorts, submitted
//! in the same order — runs twice through the same two-worker runtime:
//!
//! - **fifo**: the pipelined scheduler, which executes every job with
//!   `try_sort_pipelined` on the one submitted shape in strict
//!   submission order. This is the one-shape FIFO baseline.
//! - **adaptive**: the adaptive scheduler — same per-job executor, plus
//!   optimizer-driven shape selection (wide trees for the latency
//!   class, Eq. 5 shapes for the throughput class), the compiled-shape
//!   cache, and the two-lane deadline-aware queue that lets small jobs
//!   overtake queued large ones.
//!
//! Both modes sort one untimed warm-up job first. Beyond the usual
//! allocator warm-up this pins the adaptive planner's modeled device to
//! the steady-state throughput shape, exactly as a long-running service
//! would sit: the measured mix then exercises the keep-vs-reprogram
//! policy from a programmed device rather than from the cold-start
//! corner, where whichever job class happens to plan first would pick
//! the device shape for the whole run.
//!
//! The figure of merit is the small-job submit-to-completion p99: under
//! FIFO a small job queues behind every large job submitted before it,
//! under the adaptive scheduler it overtakes them (bounded by the
//! fairness stride). Gates, armed on hosts with ≥ 4 cores like every
//! wall-clock gate in the suite:
//!
//! - adaptive must cut the small-job p99 by ≥ 1.3x vs FIFO, and
//! - adaptive aggregate throughput must stay ≥ 0.95x of FIFO's
//!   (lane priority must not cost the large jobs their bandwidth).
//!
//! Sorted outputs are verified identical across the two modes on every
//! host (the optimizer may change the shape, never the answer).
//!
//! Usage: `perf_adaptive [out.json]` (default `BENCH_11.json`; the
//! `BONSAI_BENCH_OUT` environment variable overrides the default when
//! no argument is given).

use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Instant;

use bonsai_amt::{AmtConfig, SimEngineConfig};
use bonsai_bench::perf::{bench_json, bench_out_path, percentile, JsonField};
use bonsai_gensort::dist::uniform_u32;
use bonsai_records::U32Rec;
use bonsai_runtime::{AdaptiveStats, PassScheduler, Runtime, RuntimeConfig, SortJob};

/// Large throughput-class jobs per run.
const BIG_JOBS: u64 = 8;

/// Records per large job (well above the latency cutoff).
const BIG_RECORDS: usize = 65_536;

/// Small latency-class jobs per run, interleaved between the large
/// ones ([`SMALL_PER_BIG`] after each).
const SMALL_JOBS: u64 = 24;

/// Records per small job (under the default 4096-record cutoff).
const SMALL_RECORDS: usize = 1_024;

const SMALL_PER_BIG: u64 = SMALL_JOBS / BIG_JOBS;

/// Small-job ids start here so the two classes are distinguishable in
/// the completion stream.
const SMALL_ID_BASE: u64 = 1_000;

/// Id of the untimed warm-up job (outside both id ranges).
const WARMUP_ID: u64 = 999;

/// Workers per runtime: two, so one large job in flight never blocks
/// the whole pool and the contrast is purely scheduling order.
const WORKERS: usize = 2;

struct ModeRun {
    mode: &'static str,
    elapsed_s: f64,
    records_per_s: f64,
    /// Small-job submit-to-completion latency in ms, ascending.
    small_lat_ms: Vec<f64>,
    /// Large-job submit-to-completion latency in ms, ascending.
    big_lat_ms: Vec<f64>,
    stats: AdaptiveStats,
    /// `id → sorted output`, for the cross-mode identity check.
    outputs: HashMap<u64, Vec<U32Rec>>,
}

/// Runs the fixed mix under one scheduler and measures every job's
/// submit-to-completion latency through the reply channel.
fn run_mode(mode: &'static str, scheduler: PassScheduler) -> ModeRun {
    let runtime = Runtime::start(RuntimeConfig {
        workers: WORKERS,
        scheduler,
        // Deeper than the whole mix: submission never blocks, so the
        // measured latency is pure queue wait + service time.
        queue_depth: 64,
        ..RuntimeConfig::default()
    });
    let engine = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);

    // Untimed warm-up (see module docs): one large job completes before
    // the clock starts, so the adaptive planner measures from a
    // programmed device, not from the cold-start corner.
    let (warm_tx, warm_rx) = mpsc::channel();
    runtime
        .submit_with_reply(
            SortJob::new(WARMUP_ID, engine, uniform_u32(BIG_RECORDS, 6_999)),
            warm_tx,
        )
        .expect("runtime open");
    let warm = warm_rx.recv().expect("warm-up completes");
    assert!(warm.result.is_ok(), "warm-up job failed");

    let (tx, rx) = mpsc::channel();
    // Completion instants are stamped the moment each result arrives,
    // off the submission thread.
    let receiver = std::thread::spawn(move || {
        rx.iter()
            .map(|result| (result, Instant::now()))
            .collect::<Vec<_>>()
    });

    let start = Instant::now();
    let mut submitted: HashMap<u64, Instant> = HashMap::new();
    for round in 0..BIG_JOBS {
        let data = uniform_u32(BIG_RECORDS, 7_000 + round);
        submitted.insert(round, Instant::now());
        runtime
            .submit_with_reply(SortJob::new(round, engine, data), tx.clone())
            .expect("runtime open");
        for s in 0..SMALL_PER_BIG {
            let id = SMALL_ID_BASE + round * SMALL_PER_BIG + s;
            let data = uniform_u32(SMALL_RECORDS, 9_000 + id);
            submitted.insert(id, Instant::now());
            runtime
                .submit_with_reply(SortJob::new(id, engine, data), tx.clone())
                .expect("runtime open");
        }
    }
    drop(tx);
    let results = receiver.join().expect("receiver thread");
    let elapsed_s = start.elapsed().as_secs_f64();
    let stats = runtime.adaptive_stats();
    let leftover = runtime.finish();
    assert!(
        leftover.is_empty(),
        "all results stream through the reply channel"
    );

    assert_eq!(results.len() as u64, BIG_JOBS + SMALL_JOBS);
    let mut small_lat_ms = Vec::new();
    let mut big_lat_ms = Vec::new();
    let mut outputs = HashMap::new();
    for (result, done_at) in results {
        let sent_at = submitted[&result.id];
        let lat_ms = done_at.duration_since(sent_at).as_secs_f64() * 1e3;
        if result.id >= SMALL_ID_BASE {
            small_lat_ms.push(lat_ms);
        } else {
            big_lat_ms.push(lat_ms);
        }
        let output = result
            .result
            .unwrap_or_else(|e| panic!("{mode}: job {} failed: {e}", result.id));
        outputs.insert(result.id, output.sorted);
    }
    small_lat_ms.sort_unstable_by(f64::total_cmp);
    big_lat_ms.sort_unstable_by(f64::total_cmp);

    let total_records =
        BIG_JOBS as f64 * BIG_RECORDS as f64 + SMALL_JOBS as f64 * SMALL_RECORDS as f64;
    let run = ModeRun {
        mode,
        elapsed_s,
        records_per_s: total_records / elapsed_s.max(1e-9),
        small_lat_ms,
        big_lat_ms,
        stats,
        outputs,
    };
    println!(
        "{mode:<9} {:>6.3}s, {:>11.0} records/sec; small p50 {:>8.3}ms p99 {:>8.3}ms; \
         big p99 {:>8.3}ms; cache {}h/{}m, reprograms {}",
        run.elapsed_s,
        run.records_per_s,
        percentile(&run.small_lat_ms, 50.0),
        percentile(&run.small_lat_ms, 99.0),
        percentile(&run.big_lat_ms, 99.0),
        run.stats.shape_cache_hits,
        run.stats.shape_cache_misses,
        run.stats.reprograms,
    );
    run
}

/// Full latency picture of both modes — printed before a gate panics so
/// the failure shows where the tail moved.
fn print_latency_distributions(runs: &[&ModeRun]) {
    eprintln!("per-mode latency distribution (ms):");
    for r in runs {
        for (class, lat) in [("small", &r.small_lat_ms), ("big", &r.big_lat_ms)] {
            eprintln!(
                "  {:<9} {class:<5}: min {:>9.3}  p50 {:>9.3}  p90 {:>9.3}  p99 {:>9.3}  max {:>9.3}",
                r.mode,
                lat.first().copied().unwrap_or(0.0),
                percentile(lat, 50.0),
                percentile(lat, 90.0),
                percentile(lat, 99.0),
                lat.last().copied().unwrap_or(0.0),
            );
        }
    }
}

fn render_json(fifo: &ModeRun, adaptive: &ModeRun) -> String {
    let mut rows = Vec::new();
    for r in [fifo, adaptive] {
        let mut row = vec![
            ("mode", JsonField::Str(r.mode.into())),
            ("workers", JsonField::U64(WORKERS as u64)),
            ("big_jobs", JsonField::U64(BIG_JOBS)),
            ("big_records", JsonField::U64(BIG_RECORDS as u64)),
            ("small_jobs", JsonField::U64(SMALL_JOBS)),
            ("small_records", JsonField::U64(SMALL_RECORDS as u64)),
            (
                "elapsed_s",
                JsonField::F64 {
                    value: r.elapsed_s,
                    precision: 6,
                },
            ),
            (
                "records_per_s",
                JsonField::F64 {
                    value: r.records_per_s,
                    precision: 0,
                },
            ),
            (
                "small_lat_p50_ms",
                JsonField::F64 {
                    value: percentile(&r.small_lat_ms, 50.0),
                    precision: 3,
                },
            ),
            (
                "small_lat_p99_ms",
                JsonField::F64 {
                    value: percentile(&r.small_lat_ms, 99.0),
                    precision: 3,
                },
            ),
            (
                "big_lat_p99_ms",
                JsonField::F64 {
                    value: percentile(&r.big_lat_ms, 99.0),
                    precision: 3,
                },
            ),
            ("shape_cache_hits", JsonField::U64(r.stats.shape_cache_hits)),
            (
                "shape_cache_misses",
                JsonField::U64(r.stats.shape_cache_misses),
            ),
            ("reprograms", JsonField::U64(r.stats.reprograms)),
        ];
        if r.mode == "adaptive" {
            row.push((
                "small_p99_speedup_vs_fifo",
                JsonField::F64 {
                    value: percentile(&fifo.small_lat_ms, 99.0)
                        / percentile(&r.small_lat_ms, 99.0).max(1e-9),
                    precision: 3,
                },
            ));
            row.push((
                "throughput_ratio_vs_fifo",
                JsonField::F64 {
                    value: r.records_per_s / fifo.records_per_s.max(1e-9),
                    precision: 3,
                },
            ));
        }
        rows.push(row);
    }
    bench_json("perf_adaptive", &rows)
}

fn main() {
    let out_path = bench_out_path("BENCH_11.json");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("== perf_adaptive: adaptive scheduling vs one-shape FIFO ==");
    let fifo = run_mode("fifo", PassScheduler::Pipelined);
    let adaptive = run_mode("adaptive", PassScheduler::Adaptive);

    // Identity across modes, every host: different shapes and dispatch
    // order, same sorted output per job.
    assert_eq!(fifo.outputs.len(), adaptive.outputs.len());
    for (id, sorted) in &fifo.outputs {
        assert_eq!(
            sorted, &adaptive.outputs[id],
            "job {id}: adaptive shape selection changed the sorted output"
        );
    }
    // The adaptive run must exercise the machinery it claims to: both
    // lanes populated, at least one cache hit (the mix repeats shapes),
    // and the FIFO baseline reports no adaptive activity at all.
    assert_eq!(fifo.stats, AdaptiveStats::default());
    assert_eq!(adaptive.stats.latency_jobs, SMALL_JOBS);
    // The warm-up job is throughput class too.
    assert_eq!(adaptive.stats.throughput_jobs, BIG_JOBS + 1);
    assert!(adaptive.stats.shape_cache_hits > 0, "{:?}", adaptive.stats);
    assert!(adaptive.stats.reprograms >= 1, "{:?}", adaptive.stats);

    let small_speedup =
        percentile(&fifo.small_lat_ms, 99.0) / percentile(&adaptive.small_lat_ms, 99.0).max(1e-9);
    let throughput_ratio = adaptive.records_per_s / fifo.records_per_s.max(1e-9);
    println!("small-job p99 speedup {small_speedup:.2}x at {throughput_ratio:.2}x FIFO throughput");

    // The scheduling gates are wall clock, so they arm only where
    // parallel dispatch is possible at all (≥ 4 cores, like every
    // wall-clock gate in the suite).
    if cores >= 4 {
        if small_speedup < 1.3 || throughput_ratio < 0.95 {
            print_latency_distributions(&[&fifo, &adaptive]);
            panic!(
                "adaptive gate failed on a {cores}-core host: small-job p99 speedup \
                 {small_speedup:.2}x (need >= 1.3x), throughput ratio {throughput_ratio:.2}x \
                 (need >= 0.95x)"
            );
        }
        println!("gate passed: >= 1.3x small-job p99 at >= 0.95x throughput");
    } else {
        println!(
            "note: {cores}-core host, adaptive gate not armed \
             (verification ran on both modes)"
        );
    }

    let json = render_json(&fifo, &adaptive);
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
