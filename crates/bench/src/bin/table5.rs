//! Regenerates table5 of the Bonsai paper. Run with `--release`.

fn main() {
    print!("{}", bonsai_bench::experiments::table5::render());
}
