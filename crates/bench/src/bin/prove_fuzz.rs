//! `prove_fuzz`: randomized differential soundness check of the
//! occupancy prover and the static throughput bound.
//!
//! Draws random engine configurations, runs the exhaustive
//! reachability pass on each, and enforces the two soundness contracts
//! the static layer makes about the cycle simulator:
//!
//! 1. a **certified** configuration must actually complete a sort in
//!    `SimEngine` (a certified-but-wedged config means the token-net
//!    abstraction dropped a blocking dependency);
//! 2. the simulated run must finish within the static cycle ceiling —
//!    equivalently, the static throughput *lower bound* must not exceed
//!    the simulated `SortReport` throughput (`BON064` territory: the
//!    ceiling under-counted a cost).
//!
//! Any violation prints the offending configuration and fails the run,
//! which is how CI turns "the bound is conservative" from a comment
//! into an enforced invariant.
//!
//! ```sh
//! prove_fuzz                        # 500 random configs, fixed seed
//! prove_fuzz --configs 120 --seed 7 # bounded CI smoke
//! ```

use bonsai_amt::prove::{net_from_config, NetOptions};
use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig};
use bonsai_check::prove::{prove, ProveOptions, ProveOutcome};
use bonsai_memsim::{LoaderConfig, MemoryConfig};
use bonsai_model::check::static_cycle_ceiling;
use bonsai_model::ArrayParams;
use bonsai_records::U32Rec;
use std::process::ExitCode;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick<T: Copy>(&mut self, choices: &[T]) -> T {
        choices[(self.next() % choices.len() as u64) as usize]
    }
}

fn random_config(rng: &mut XorShift) -> SimEngineConfig {
    let p = rng.pick(&[1usize, 2, 4, 8, 16, 32]);
    let l = rng.pick(&[2usize, 4, 8, 16, 32, 64, 128, 256]);
    let record_bytes = rng.pick(&[4u64, 8, 16]);
    let batch_bytes = rng.pick(&[32u64, 64, 128, 256, 512, 1024, 4096]);
    let buffer_batches = rng.pick(&[1u64, 2, 3]);
    let memory = match rng.next() % 5 {
        0 => MemoryConfig::ddr4_aws_f1(),
        1 => MemoryConfig::ddr4_single_bank(),
        2 => MemoryConfig::hbm_u50(),
        3 => MemoryConfig::throttled_to_ssd(),
        _ => MemoryConfig::ssd_direct(),
    };
    let presort = rng.pick(&[None, Some(16usize)]);
    SimEngineConfig {
        amt: AmtConfig { p, l },
        loader: LoaderConfig {
            batch_bytes,
            record_bytes,
            buffer_batches,
        },
        memory,
        presort,
    }
}

fn usage() -> ! {
    eprintln!("usage: prove_fuzz [--configs N] [--seed N] [--records N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut configs = 500usize;
    let mut seed = 0xb0a5_a1d0_u64;
    let mut records = 4096usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--configs" => configs = value() as usize,
            "--seed" => seed = value(),
            "--records" => records = value() as usize,
            _ => usage(),
        }
    }

    let mut rng = XorShift(seed | 1);
    let mut certified = 0usize;
    let mut refuted = 0usize;
    let mut exhausted = 0usize;
    let mut skipped = 0usize;
    let mut violations = 0usize;

    for i in 0..configs {
        let cfg = random_config(&mut rng);
        if bonsai_check::has_errors(&cfg.validate()) {
            // Malformed shapes are the shape checks' jurisdiction; the
            // prover only judges configurations that could be built.
            skipped += 1;
            continue;
        }
        let Ok(net) = net_from_config(&cfg, &NetOptions::default()) else {
            skipped += 1;
            continue;
        };
        match prove(&net, &ProveOptions::default()) {
            ProveOutcome::Refuted(_) => refuted += 1,
            ProveOutcome::BudgetExhausted(_) => exhausted += 1,
            ProveOutcome::Certified(_) => {
                certified += 1;
                let mut engine = match SimEngine::try_new(cfg) {
                    Ok(engine) => engine,
                    Err(diags) => {
                        println!("VIOLATION #{i}: certified config rejected by engine: {diags:?}");
                        println!("  config: {cfg:?}");
                        violations += 1;
                        continue;
                    }
                };
                let data: Vec<U32Rec> = (0..records)
                    .map(|_| U32Rec::new(rng.next() as u32))
                    .collect();
                let array = ArrayParams {
                    n_records: records as u64,
                    record_bytes: cfg.loader.record_bytes,
                };
                match engine.try_sort(data) {
                    Ok((sorted, report)) => {
                        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
                        if let Some(ceiling) = static_cycle_ceiling(&cfg, &array) {
                            // Cycle inequality == throughput inequality:
                            // floor = bytes·f/ceiling, simulated =
                            // bytes·f/cycles, so floor ≤ simulated ⟺
                            // cycles ≤ ceiling (integer-exact).
                            if report.total_cycles > ceiling {
                                println!(
                                    "VIOLATION #{i}: static bound unsound: simulated \
                                     {} cycles > ceiling {ceiling}",
                                    report.total_cycles
                                );
                                println!("  config: {cfg:?}");
                                violations += 1;
                            }
                        }
                    }
                    Err(e) => {
                        println!(
                            "VIOLATION #{i}: certified config wedged in simulation: {} at \
                             stage {} after {} cycles",
                            e.code(),
                            e.stage,
                            e.cycles
                        );
                        println!("  config: {cfg:?}");
                        violations += 1;
                    }
                }
            }
        }
    }

    println!(
        "prove_fuzz: {configs} config(s): {certified} certified, {refuted} refuted, \
         {exhausted} budget-exhausted, {skipped} skipped, {violations} violation(s)"
    );
    if violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
