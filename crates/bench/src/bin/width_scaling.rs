//! Regenerates the §VI-F2 record-width scaling experiment. Run with
//! `--release`; pass a byte count to change the dataset size.

fn main() {
    let bytes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000_000);
    print!(
        "{}",
        bonsai_bench::experiments::width_scaling::render(bytes)
    );
}
