//! Cycle-level ablation study of the Bonsai design choices (DESIGN.md §5):
//!
//! 1. terminal-record single-cycle flush vs a hypothetical d-cycle flush,
//! 2. data-loader read batching (64 B … 4 KB),
//! 3. the p-vs-ℓ trade-off at a fixed LUT budget.
//!
//! Run with `--release`.

use bonsai_amt::{AmtConfig, PassReport, SimEngine, SimEngineConfig};
use bonsai_bench::table::Table;
use bonsai_gensort::dist::uniform_u32;
use bonsai_model::resource::amt_lut;
use bonsai_model::ComponentLibrary;

fn flush_ablation(n: usize) -> String {
    let mut t = Table::new(vec![
        "initial run len",
        "stages",
        "cycles",
        "root flushes est.",
        "cycles if flush cost 8",
    ]);
    for presort in [1usize, 4, 16] {
        let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(8, 16), 4);
        cfg.presort = (presort > 1).then_some(presort);
        let data = uniform_u32(n, 11);
        let (_, report) = SimEngine::new(cfg).sort(data);
        // Flushes per stage ~ groups = runs_in / fan_in, summed over all
        // mergers; estimate from run counts.
        let flushes: u64 = report.passes.iter().map(|p| p.runs_out * 15).sum();
        t.row(vec![
            presort.to_string(),
            report.stages().to_string(),
            report.total_cycles.to_string(),
            flushes.to_string(),
            (report.total_cycles + 7 * flushes).to_string(),
        ]);
    }
    format!(
        "Ablation 1: terminal-record flush (single-cycle, §V-B) on {n} records.\nShort initial runs flush constantly; a multi-cycle flush scheme would add\nthe final column's overhead.\n\n{}",
        t.render()
    )
}

fn loader_batch_ablation(n: usize) -> String {
    let mut t = Table::new(vec!["batch bytes", "cycles", "effective rec/cycle"]);
    for batch in [64u64, 256, 1024, 4096] {
        let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(8, 16), 4);
        cfg.loader.batch_bytes = batch;
        let data = uniform_u32(n, 12);
        let (_, report) = SimEngine::new(cfg).sort(data);
        let rpc = report
            .passes
            .iter()
            .map(PassReport::records_per_cycle)
            .sum::<f64>()
            / report.passes.len().max(1) as f64;
        t.row(vec![
            batch.to_string(),
            report.total_cycles.to_string(),
            format!("{rpc:.2}"),
        ]);
    }
    format!(
        "Ablation 2: data-loader read batching (§V-A) on {n} records.\nSmall bursts pay DRAM setup latency on every read and starve the tree.\n\n{}",
        t.render()
    )
}

fn p_vs_l(n: usize) -> String {
    let lib = ComponentLibrary::paper();
    let mut t = Table::new(vec!["config", "LUT", "stages", "cycles", "rec/cycle"]);
    for (p, l) in [(32usize, 16usize), (16, 64), (8, 256), (4, 256)] {
        let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4);
        let data = uniform_u32(n, 13);
        let (_, report) = SimEngine::new(cfg).sort(data);
        let rpc = n as f64 * report.stages() as f64 / report.total_cycles as f64;
        t.row(vec![
            format!("AMT({p}, {l})"),
            amt_lut(&lib, p, l, 32).to_string(),
            report.stages().to_string(),
            report.total_cycles.to_string(),
            format!("{rpc:.2}"),
        ]);
    }
    format!(
        "Ablation 3: p vs l at comparable logic budgets on {n} records.\nHigh p finishes each stage faster; high l needs fewer stages. The optimizer\npicks p to just saturate memory bandwidth, then spends the rest on l (§VI-B2).\n\n{}",
        t.render()
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    println!("{}", flush_ablation(n));
    println!("{}", loader_batch_ablation(n));
    println!("{}", p_vs_l(n));
}
