//! Regenerates fig10 of the Bonsai paper. Run with `--release`.

fn main() {
    print!("{}", bonsai_bench::experiments::fig10::render());
}
