//! Regenerates table6 of the Bonsai paper. Run with `--release`.

fn main() {
    print!("{}", bonsai_bench::experiments::table6::render());
}
