//! Wall-clock and virtual-makespan gate for the cross-pass pipelined
//! group-DAG scheduler.
//!
//! Four rows, all verified bit-identical between schedulers (modulo
//! the observability-only `pipeline_overlap_cycles` counter):
//!
//! - `ssd_batch` — **the headline gate.** A batch of 4-pass SSD-scale
//!   sorts executed as one forest DAG (`sort_batch_pipelined`) vs the
//!   same jobs run back to back under the per-pass barrier. A single
//!   merge sort is single-rooted — its final task transitively depends
//!   on every other task, so no schedule can start the tail early and
//!   any scheduler is pinned within a few group-costs of the barrier's
//!   makespan. Across *jobs* that bound disappears: one job's narrow
//!   tail passes (3 → 1 groups leave most of the pool dark at a
//!   barrier) overlap with the next job's 33-group first pass, and the
//!   forest stays work-conserving. This is the batch-runtime workload
//!   cross-pass pipelining exists for.
//! - `ssd_multipass` — one such sort alone, reported for honesty: the
//!   single-root bound caps its speedup near 1x, and the row shows the
//!   measured residual overlap rather than pretending otherwise.
//! - `dram_single` / `hbm_single` — single-pass parity shapes where
//!   the DAG degenerates to one task and must cost nothing.
//!
//! Two speedup notions are reported per row:
//!
//! - **virtual speedup** — barrier virtual makespan / DAG virtual
//!   makespan on the fixed [`VIRTUAL_WORKERS`]-worker reference pool,
//!   computed from per-group *simulated* cycles (the barrier makespan
//!   is `Σ (busy + idle) / VIRTUAL_WORKERS` over passes and jobs; the
//!   DAG makespan subtracts `pipeline_overlap_cycles`). Deterministic
//!   on any host, including single-core CI — this is the always-on
//!   gate.
//! - **wall speedup** — measured wall clock at `workers = max` (one
//!   per core). Meaningful only when the host has cores to overlap, so
//!   its gate follows the `runtime_smoke` precedent and arms only on
//!   multi-core hosts.
//!
//! Gates: virtual speedup ≥ 1.3x on the multi-pass SSD batch (and the
//! wall-clock equivalent on hosts with ≥ 4 cores), wall parity ≥ 0.95x
//! on the single-pass DRAM/HBM shapes.
//!
//! Usage: `perf_pipeline [out.json]` (default `BENCH_7.json`; the
//! `BONSAI_BENCH_OUT` environment variable overrides the default when
//! no argument is given).

use std::time::Instant;

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig, SortReport, VIRTUAL_WORKERS};
use bonsai_bench::perf::{
    bench_json, bench_out_path, no_overlap, ssd_multipass_config, ssd_scale_config, JsonField,
    MULTIPASS_RECORDS,
};
use bonsai_gensort::dist::uniform_u32;
use bonsai_records::U32Rec;

/// Jobs in the `ssd_batch` row: enough wide first passes to keep the
/// virtual pool fed through every earlier job's serial tail.
const BATCH_JOBS: usize = 8;

struct Row {
    name: &'static str,
    records: usize,
    jobs: usize,
    passes: u32,
    barrier_wall_s: f64,
    pipelined_wall_s: f64,
    wall_speedup: f64,
    virtual_speedup: f64,
    pipeline_overlap_cycles: u64,
    total_cycles: u64,
}

/// One wall-clock sample: `iters` back-to-back sorts (these shapes run
/// in well under a millisecond, so a single sort is all timer noise),
/// reported as seconds per sort.
fn time_once(
    cfg: SimEngineConfig,
    data: &[U32Rec],
    pipelined: bool,
    iters: usize,
) -> (f64, (Vec<U32Rec>, SortReport)) {
    let start = Instant::now();
    let mut result = None;
    for _ in 0..iters {
        let mut engine = SimEngine::new(cfg);
        // workers = 0: one per core, the `workers=max` point of the gate.
        result = Some(if pipelined {
            engine.sort_pipelined(data.to_vec(), 0)
        } else {
            engine.sort_sharded(data.to_vec(), 0)
        });
    }
    (
        start.elapsed().as_secs_f64() / iters as f64,
        result.expect("iters > 0"),
    )
}

/// Barrier virtual makespan on the reference pool, from the
/// deterministic utilization counters (`busy + idle` is exactly
/// `VIRTUAL_WORKERS ×` the pass's list-schedule makespan).
fn barrier_virtual_makespan(report: &SortReport) -> u64 {
    report
        .passes
        .iter()
        .map(|p| (p.busy_worker_cycles + p.idle_worker_cycles) / VIRTUAL_WORKERS as u64)
        .sum()
}

fn print_row(row: &Row) {
    println!(
        "{:<14} {:>7} records x{}, {} passes: barrier {:>7.3}s, \
         pipelined {:>7.3}s ({:.2}x wall, {:.2}x virtual)",
        row.name,
        row.records,
        row.jobs,
        row.passes,
        row.barrier_wall_s,
        row.pipelined_wall_s,
        row.wall_speedup,
        row.virtual_speedup,
    );
}

fn measure(name: &'static str, cfg: SimEngineConfig, records: usize) -> Row {
    let data = uniform_u32(records, 2026);
    // Interleave the schedulers and keep each one's best wall time: min
    // absorbs scheduler noise, interleaving cancels thermal/load drift.
    let mut barrier_wall_s = f64::INFINITY;
    let mut pipelined_wall_s = f64::INFINITY;
    let mut outputs = None;
    for _ in 0..5 {
        let (wall_b, out_b) = time_once(cfg, &data, false, 10);
        let (wall_p, out_p) = time_once(cfg, &data, true, 10);
        barrier_wall_s = barrier_wall_s.min(wall_b);
        pipelined_wall_s = pipelined_wall_s.min(wall_p);
        outputs = Some((out_b, out_p));
    }
    let ((out_b, rep_b), (out_p, rep_p)) = outputs.expect("ran at least once");

    assert_eq!(out_b, out_p, "{name}: schedulers sorted differently");
    assert_eq!(rep_b.pipeline_overlap_cycles, 0, "{name}: barrier overlaps");
    assert_eq!(
        rep_b,
        no_overlap(rep_p.clone()),
        "{name}: schedulers reported different accounting"
    );

    // Both makespans are in simulated cycles: `pipeline_overlap_cycles`
    // is defined as barrier makespan − DAG makespan on the same pool.
    let barrier_virtual = barrier_virtual_makespan(&rep_p);
    let dag_virtual = barrier_virtual - rep_p.pipeline_overlap_cycles;
    let row = Row {
        name,
        records,
        jobs: 1,
        passes: rep_p.stages(),
        barrier_wall_s,
        pipelined_wall_s,
        wall_speedup: barrier_wall_s / pipelined_wall_s,
        virtual_speedup: barrier_virtual as f64 / dag_virtual.max(1) as f64,
        pipeline_overlap_cycles: rep_p.pipeline_overlap_cycles,
        total_cycles: rep_p.total_cycles,
    };
    print_row(&row);
    row
}

/// The forest-DAG batch row: `jobs` equal sorts scheduled as one DAG
/// vs the same jobs run back to back under the per-pass barrier.
fn measure_batch(name: &'static str, cfg: SimEngineConfig, records: usize, jobs: usize) -> Row {
    let datasets: Vec<Vec<U32Rec>> = (0..jobs)
        .map(|j| uniform_u32(records, 2026 + j as u64))
        .collect();
    let mut barrier_wall_s = f64::INFINITY;
    let mut pipelined_wall_s = f64::INFINITY;
    let mut outputs = None;
    for _ in 0..5 {
        let start = Instant::now();
        let barrier: Vec<(Vec<U32Rec>, SortReport)> = datasets
            .iter()
            .map(|d| SimEngine::new(cfg).sort_sharded(d.clone(), 0))
            .collect();
        barrier_wall_s = barrier_wall_s.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let pipelined = SimEngine::new(cfg).sort_batch_pipelined(datasets.clone(), 0);
        pipelined_wall_s = pipelined_wall_s.min(start.elapsed().as_secs_f64());
        outputs = Some((barrier, pipelined));
    }
    let (barrier, (pipelined, overlap)) = outputs.expect("ran at least once");

    // Every job bit-identical to sorting it alone under the barrier:
    // same output, same report (per-job overlap is 0 on both sides).
    assert_eq!(barrier.len(), pipelined.len());
    for (j, ((out_b, rep_b), (out_p, rep_p))) in barrier.iter().zip(&pipelined).enumerate() {
        assert_eq!(out_b, out_p, "{name}: job {j} sorted differently");
        assert_eq!(
            rep_b, rep_p,
            "{name}: job {j} reported different accounting"
        );
    }

    let barrier_virtual: u64 = pipelined
        .iter()
        .map(|(_, r)| barrier_virtual_makespan(r))
        .sum();
    let dag_virtual = barrier_virtual - overlap;
    let row = Row {
        name,
        records,
        jobs,
        passes: pipelined[0].1.stages(),
        barrier_wall_s,
        pipelined_wall_s,
        wall_speedup: barrier_wall_s / pipelined_wall_s,
        virtual_speedup: barrier_virtual as f64 / dag_virtual.max(1) as f64,
        pipeline_overlap_cycles: overlap,
        total_cycles: pipelined.iter().map(|(_, r)| r.total_cycles).sum(),
    };
    print_row(&row);
    row
}

fn render_json(rows: &[Row]) -> String {
    let json_rows: Vec<Vec<(&str, JsonField)>> = rows
        .iter()
        .map(|r| {
            vec![
                ("name", JsonField::Str(r.name.to_string())),
                ("records", JsonField::U64(r.records as u64)),
                ("jobs", JsonField::U64(r.jobs as u64)),
                ("passes", JsonField::U64(u64::from(r.passes))),
                (
                    "barrier_wall_s",
                    JsonField::F64 {
                        value: r.barrier_wall_s,
                        precision: 6,
                    },
                ),
                (
                    "pipelined_wall_s",
                    JsonField::F64 {
                        value: r.pipelined_wall_s,
                        precision: 6,
                    },
                ),
                (
                    "wall_speedup",
                    JsonField::F64 {
                        value: r.wall_speedup,
                        precision: 3,
                    },
                ),
                (
                    "virtual_speedup",
                    JsonField::F64 {
                        value: r.virtual_speedup,
                        precision: 3,
                    },
                ),
                (
                    "pipeline_overlap_cycles",
                    JsonField::U64(r.pipeline_overlap_cycles),
                ),
                ("total_cycles", JsonField::U64(r.total_cycles)),
            ]
        })
        .collect();
    bench_json("perf_pipeline", &json_rows)
}

fn main() {
    let out_path = bench_out_path("BENCH_7.json");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("== perf_pipeline: per-pass barrier vs cross-pass group DAG ==");
    // Single-pass parity shapes: 1024 records / 16-record presorted
    // runs = 64 runs on a 64-leaf tree — one pass, one group, nothing
    // to pipeline. The DAG must degenerate gracefully.
    let dram_single = SimEngineConfig::dram_sorter(AmtConfig::new(8, 64), 4);
    let hbm_single = {
        let mut cfg = ssd_scale_config();
        cfg.memory = bonsai_memsim::MemoryConfig::hbm_u50();
        cfg
    };
    let rows = vec![
        measure_batch(
            "ssd_batch",
            ssd_multipass_config(),
            MULTIPASS_RECORDS,
            BATCH_JOBS,
        ),
        measure("ssd_multipass", ssd_multipass_config(), MULTIPASS_RECORDS),
        measure("dram_single", dram_single, 1_024),
        measure("hbm_single", hbm_single, 1_024),
    ];

    let batch = &rows[0];
    let multipass = &rows[1];
    assert!(
        batch.passes >= 3 && multipass.passes >= 3,
        "the SSD shape must be multi-pass, got {} / {}",
        batch.passes,
        multipass.passes
    );
    assert_eq!(rows[2].passes, 1, "dram_single must be single-pass");
    assert_eq!(rows[3].passes, 1, "hbm_single must be single-pass");

    // The always-on gate: deterministic virtual-makespan speedup on the
    // reference pool for the batch workload.
    assert!(
        batch.virtual_speedup >= 1.3,
        "pipelining under 1.3x virtual speedup on the multi-pass SSD batch: {:.3}x",
        batch.virtual_speedup
    );
    // The lone multi-pass sort can't beat its single-root bound, but
    // the DAG must still reclaim *some* straggler idle and never lose.
    assert!(
        multipass.pipeline_overlap_cycles > 0 && multipass.virtual_speedup >= 1.0,
        "a lone multi-pass sort should still overlap stragglers: {:.3}x",
        multipass.virtual_speedup
    );
    // Wall-clock gate arms only where the host can actually overlap
    // groups (runtime_smoke precedent for core-gated perf assertions).
    if cores >= 4 {
        assert!(
            batch.wall_speedup >= 1.3,
            "pipelining under 1.3x wall speedup at workers=max on {cores} cores: {:.3}x",
            batch.wall_speedup
        );
    } else {
        println!(
            "note: {cores} core(s) — wall-clock speedup gate skipped (virtual gate still enforced)"
        );
    }
    // Parity: single-pass shapes run the same single task either way;
    // the DAG scaffolding must cost nothing beyond noise.
    for row in &rows[2..] {
        assert!(
            row.wall_speedup >= 0.95,
            "{}: pipelined scheduler regressed a single-pass shape: {:.3}x",
            row.name,
            row.wall_speedup
        );
        assert_eq!(
            row.pipeline_overlap_cycles, 0,
            "{}: a single-pass sort has nothing to overlap",
            row.name
        );
    }

    std::fs::write(&out_path, render_json(&rows)).expect("write pipeline json");
    println!("gates passed; wrote {out_path}");
}
