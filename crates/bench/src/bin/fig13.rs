//! Regenerates fig13 of the Bonsai paper. Run with `--release`.

fn main() {
    print!("{}", bonsai_bench::experiments::fig13::render());
}
