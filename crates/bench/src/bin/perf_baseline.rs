//! Wall-clock baseline for the event-driven fast-forward scheduler.
//!
//! Sorts the same data on the reference per-cycle loop and on the fast
//! path for three machine shapes — compute-bound small DRAM, HBM, and
//! the memory-bound SSD-scale stream — verifies the two paths agree bit
//! for bit, and writes the measured speedups to `BENCH_5.json`.
//!
//! Gates: the fast path must be no slower than the reference loop on
//! the compute-bound DRAM config (where there is little to skip) and at
//! least 5x faster on the SSD-scale config (where the machine spends
//! most cycles waiting on flash).
//!
//! Usage: `perf_baseline [out.json]` (default `BENCH_5.json`; the
//! `BONSAI_BENCH_OUT` environment variable overrides the default when
//! no argument is given).

use std::time::Instant;

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig, SortReport};
use bonsai_bench::perf::{bench_json, bench_out_path, normalized, ssd_scale_config, JsonField};
use bonsai_gensort::dist::uniform_u32;
use bonsai_memsim::MemoryConfig;

struct Row {
    name: &'static str,
    records: usize,
    reference_wall_s: f64,
    fast_wall_s: f64,
    speedup: f64,
    total_cycles: u64,
    fast_forwarded_cycles: u64,
}

fn time_once(
    cfg: SimEngineConfig,
    data: &[bonsai_records::U32Rec],
    reference: bool,
) -> (f64, (Vec<bonsai_records::U32Rec>, SortReport)) {
    let start = Instant::now();
    let result = SimEngine::new(cfg)
        .with_reference_loop(reference)
        .sort(data.to_vec());
    (start.elapsed().as_secs_f64(), result)
}

fn measure(name: &'static str, cfg: SimEngineConfig, records: usize) -> Row {
    let data = uniform_u32(records, 2025);
    // Interleave the paths and keep each one's best wall time: min
    // absorbs scheduler noise, interleaving cancels thermal/load drift.
    let mut reference_wall_s = f64::INFINITY;
    let mut fast_wall_s = f64::INFINITY;
    let mut outputs = None;
    for _ in 0..5 {
        let (wall_ref, out_ref) = time_once(cfg, &data, true);
        let (wall_fast, out_fast) = time_once(cfg, &data, false);
        reference_wall_s = reference_wall_s.min(wall_ref);
        fast_wall_s = fast_wall_s.min(wall_fast);
        outputs = Some((out_ref, out_fast));
    }
    let ((out_ref, rep_ref), (out_fast, rep_fast)) = outputs.expect("ran at least once");

    assert_eq!(out_ref, out_fast, "{name}: paths sorted differently");
    assert_eq!(
        normalized(rep_ref),
        normalized(rep_fast.clone()),
        "{name}: paths reported different accounting"
    );

    let row = Row {
        name,
        records,
        reference_wall_s,
        fast_wall_s,
        speedup: reference_wall_s / fast_wall_s,
        total_cycles: rep_fast.total_cycles,
        fast_forwarded_cycles: rep_fast.fast_forwarded_cycles,
    };
    println!(
        "{name:<12} {records:>7} records: reference {reference_wall_s:>7.3}s, fast {fast_wall_s:>7.3}s \
         ({:.2}x; {:.1}% of {} cycles fast-forwarded)",
        row.speedup,
        100.0 * row.fast_forwarded_cycles as f64 / row.total_cycles.max(1) as f64,
        row.total_cycles,
    );
    row
}

fn render_json(rows: &[Row]) -> String {
    let json_rows: Vec<Vec<(&str, JsonField)>> = rows
        .iter()
        .map(|r| {
            vec![
                ("name", JsonField::Str(r.name.to_string())),
                ("records", JsonField::U64(r.records as u64)),
                (
                    "reference_wall_s",
                    JsonField::F64 {
                        value: r.reference_wall_s,
                        precision: 6,
                    },
                ),
                (
                    "fast_wall_s",
                    JsonField::F64 {
                        value: r.fast_wall_s,
                        precision: 6,
                    },
                ),
                (
                    "speedup",
                    JsonField::F64 {
                        value: r.speedup,
                        precision: 3,
                    },
                ),
                ("total_cycles", JsonField::U64(r.total_cycles)),
                (
                    "fast_forwarded_cycles",
                    JsonField::U64(r.fast_forwarded_cycles),
                ),
            ]
        })
        .collect();
    bench_json("perf_baseline", &json_rows)
}

fn main() {
    let out_path = bench_out_path("BENCH_5.json");

    println!("== perf_baseline: reference per-cycle loop vs fast-forward ==");
    let rows = vec![
        measure(
            "dram_small",
            SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4),
            150_000,
        ),
        measure(
            "hbm",
            SimEngineConfig::with_memory(AmtConfig::new(8, 64), 4, MemoryConfig::hbm_u50()),
            150_000,
        ),
        measure("ssd_scale", ssd_scale_config(), 150_000),
    ];

    let dram = &rows[0];
    let ssd = &rows[2];
    // Compute-bound gate: the fast path has almost nothing to skip here
    // (< 1% of cycles), so the requirement is parity — it must not
    // regress the per-cycle loop. 5% floor absorbs wall-clock noise on
    // shared CI hosts; the raw single-pass loop measures slightly
    // *faster* than the reference (the quiescent windows it does skip
    // are free wins).
    assert!(
        dram.speedup >= 0.95,
        "fast path regressed the compute-bound config beyond noise: {:.2}x",
        dram.speedup
    );
    assert!(
        ssd.speedup >= 5.0,
        "fast path under 5x on the memory-bound SSD-scale config: {:.2}x",
        ssd.speedup
    );

    std::fs::write(&out_path, render_json(&rows)).expect("write baseline json");
    println!("gates passed; wrote {out_path}");
}
