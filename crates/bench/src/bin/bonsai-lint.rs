//! `bonsai-lint`: the static configuration pass for CI.
//!
//! With no arguments, lints every configuration the experiment suite
//! and examples construct — shape checks, the four pipeline-graph
//! analyses (deadlock, FIFO flush depth, min-cut bandwidth, dead
//! components), the latency-bound certification and one
//! model-vs-simulation drift probe — and exits non-zero if any
//! error-severity `BONxxx` diagnostic fires. With overrides, lints a
//! single raw configuration instead — the hook CI uses to prove the
//! linter rejects a deliberately broken config:
//!
//! ```sh
//! bonsai-lint                        # lint the whole in-repo suite
//! bonsai-lint --p 6 --l 16           # BON001: p not a power of two
//! bonsai-lint --buffer-batches 0     # BON030: zero-credit deadlock
//! bonsai-lint --p 32 --record-bytes 8  # BON032: min-cut infeasible
//! bonsai-lint --json                 # machine-readable report
//! bonsai-lint --dump-graph dot       # emit the pipeline-graph IR
//! ```
//!
//! `--runtime` switches to the BON05x runtime-topology pass over the
//! parallel sort runtime's thread/queue shape instead of the engine
//! configuration:
//!
//! ```sh
//! bonsai-lint --runtime                         # lint in-repo topologies
//! bonsai-lint --runtime --queue-depth 0 --producers 2   # BON050
//! bonsai-lint --runtime --no-close-on-drop      # BON052: drop wedges
//! bonsai-lint --runtime --detach                # BON053: leaked threads
//! bonsai-lint --runtime --workers 4 --pass-workers 4 --cores 4  # BON054
//! bonsai-lint --runtime --dag-width 100 --queue-depth 8 --pass-workers 4
//!                                               # BON056: DAG over capacity
//! bonsai-lint --runtime --reprogram-us 0        # BON080: shape thrash
//! bonsai-lint --runtime --deadline-us 100 --reprogram-us 200
//!                                               # BON081: deadline infeasible
//! bonsai-lint --runtime --cache-shapes 1 --shape-classes 2      # BON082
//! bonsai-lint --runtime --fairness-stride 0     # BON083: starvation
//! ```
//!
//! `--prove` switches to the BON06x occupancy-reachability pass: the
//! configuration is lowered to a bounded token net and exhaustively
//! explored, yielding a machine-checked certificate, a replayable
//! counterexample, or a budget warning:
//!
//! ```sh
//! bonsai-lint --prove                           # certify all in-repo configs
//! bonsai-lint --prove --buffer-batches 0        # BON060: deadlock + replay
//! bonsai-lint --prove --credit-slack 2          # BON061: FIFO overflow
//! bonsai-lint --prove --state-budget 4          # BON062: budget exhausted
//! bonsai-lint --prove --assume-throughput 1     # BON064: bound vs observed
//! bonsai-lint --prove-selftest                  # BON063: checker liveness
//! ```

use bonsai_amt::graph::{lower_to_graph, LowerOptions};
use bonsai_amt::prove::{net_from_config, NetOptions};
use bonsai_bench::lint::{
    self, LintFinding, ProveLintOptions, RawAdaptiveLint, RawEngineLint, RawRuntimeLint,
};
use bonsai_check::prove::certificate_selftest;
use bonsai_memsim::MemoryConfig;
use std::process::ExitCode;

#[derive(Debug, Default)]
struct Overrides {
    p: Option<usize>,
    l: Option<usize>,
    batch_bytes: Option<u64>,
    record_bytes: Option<u64>,
    buffer_batches: Option<u64>,
    presort: Option<usize>,
    memory: Option<MemoryConfig>,
    banks: Option<usize>,
    payload_bytes: Option<u64>,
    json: bool,
    dump_graph: Option<DumpFormat>,
    runtime: bool,
    workers: Option<usize>,
    pass_workers: Option<usize>,
    queue_depth: Option<usize>,
    producers: Option<usize>,
    cores: Option<usize>,
    records: Option<usize>,
    dag_width: Option<usize>,
    detach: bool,
    no_close_on_drop: bool,
    cache_shapes: Option<usize>,
    shape_classes: Option<usize>,
    reprogram_us: Option<u64>,
    deadline_us: Option<u64>,
    fairness_stride: Option<u32>,
    prove: bool,
    prove_selftest: bool,
    state_budget: Option<usize>,
    credit_slack: Option<u32>,
    replay_records: Option<usize>,
    assume_throughput: Option<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DumpFormat {
    Dot,
    Json,
}

impl Overrides {
    fn any_config(&self) -> bool {
        self.p.is_some()
            || self.l.is_some()
            || self.batch_bytes.is_some()
            || self.record_bytes.is_some()
            || self.buffer_batches.is_some()
            || self.presort.is_some()
            || self.memory.is_some()
            || self.banks.is_some()
            || self.payload_bytes.is_some()
    }

    fn raw(&self) -> RawEngineLint {
        let defaults = RawEngineLint::default();
        RawEngineLint {
            p: self.p.unwrap_or(defaults.p),
            l: self.l.unwrap_or(defaults.l),
            batch_bytes: self.batch_bytes.unwrap_or(defaults.batch_bytes),
            record_bytes: self.record_bytes.unwrap_or(defaults.record_bytes),
            buffer_batches: self.buffer_batches.unwrap_or(defaults.buffer_batches),
            presort: Some(self.presort.unwrap_or(16)),
            memory: self.memory.unwrap_or(defaults.memory),
            banks: self.banks,
            payload_bytes: self.payload_bytes,
        }
    }

    fn any_adaptive_config(&self) -> bool {
        self.cache_shapes.is_some()
            || self.shape_classes.is_some()
            || self.reprogram_us.is_some()
            || self.deadline_us.is_some()
            || self.fairness_stride.is_some()
    }

    fn any_runtime_config(&self) -> bool {
        self.workers.is_some()
            || self.pass_workers.is_some()
            || self.queue_depth.is_some()
            || self.producers.is_some()
            || self.records.is_some()
            || self.dag_width.is_some()
            || self.detach
            || self.no_close_on_drop
            || self.any_adaptive_config()
    }

    fn raw_runtime(&self) -> RawRuntimeLint {
        let defaults = RawRuntimeLint::default();
        // Any adaptive flag arms the BON08x pass; unset knobs keep the
        // runtime's `AdaptiveConfig` defaults.
        let adaptive = self.any_adaptive_config().then(|| {
            let a = RawAdaptiveLint::default();
            RawAdaptiveLint {
                cache_shapes: self.cache_shapes.unwrap_or(a.cache_shapes),
                shape_classes: self.shape_classes.unwrap_or(a.shape_classes),
                reprogram_us: self.reprogram_us.unwrap_or(a.reprogram_us),
                deadline_us: self.deadline_us.unwrap_or(a.deadline_us),
                fairness_stride: self.fairness_stride.unwrap_or(a.fairness_stride),
            }
        });
        RawRuntimeLint {
            workers: self.workers.unwrap_or(defaults.workers),
            pass_workers: self.pass_workers.unwrap_or(defaults.pass_workers),
            queue_depth: self.queue_depth.unwrap_or(defaults.queue_depth),
            producers: self.producers.unwrap_or(defaults.producers),
            close_on_drop: !self.no_close_on_drop,
            join_on_drop: !self.detach,
            cores: self.cores,
            records: self.records,
            dag_width: self.dag_width,
            adaptive,
        }
    }

    fn any_prove_config(&self) -> bool {
        self.state_budget.is_some()
            || self.credit_slack.is_some()
            || self.replay_records.is_some()
            || self.assume_throughput.is_some()
    }

    fn prove_options(&self) -> ProveLintOptions {
        let defaults = ProveLintOptions::default();
        ProveLintOptions {
            state_budget: self.state_budget.unwrap_or(defaults.state_budget),
            credit_slack: self.credit_slack.unwrap_or(defaults.credit_slack),
            replay_records: self.replay_records.unwrap_or(defaults.replay_records),
            assume_throughput: self.assume_throughput,
        }
    }
}

/// Every mode funnels its findings through this one serializer so
/// `--json`'s schema and the 0/1 exit contract are identical across
/// config-lint, `--runtime`, `--prove` and `--prove-selftest`.
fn emit(findings: &[LintFinding], json: bool) -> ExitCode {
    let (report, errors, _warnings) = if json {
        let (json, errors, warnings) = lint::render_json(findings);
        (format!("{json}\n"), errors, warnings)
    } else {
        lint::render(findings)
    };
    print!("{report}");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "usage: bonsai-lint [--p N] [--l N] [--batch-bytes N] \
[--record-bytes N] [--buffer-batches N] [--presort N] \
[--memory ddr4|single|hbm|ssd] [--banks N] [--payload-bytes N] \
[--json] [--dump-graph dot|json]
       bonsai-lint --runtime [--workers N] [--pass-workers N] \
[--queue-depth N] [--producers N] [--cores N] [--records N] \
[--dag-width N] [--detach] [--no-close-on-drop] [--cache-shapes N] \
[--shape-classes N] [--reprogram-us N] [--deadline-us N] \
[--fairness-stride N] [--json]
       bonsai-lint --prove [engine flags] [--state-budget N] \
[--credit-slack N] [--replay-records N] [--assume-throughput B/S] [--json]
       bonsai-lint --prove-selftest [engine flags] [--json]

Without overrides, lints every in-repo experiment configuration (shape
checks, pipeline-graph analyses, latency-bound certification, drift
probe) plus every in-repo runtime topology. With overrides, lints a
single raw engine configuration.

  --json             emit the report as a JSON object for CI annotation
  --dump-graph FMT   print the lowered pipeline-graph IR (Graphviz `dot`
                     or the documented `json` schema, docs/GRAPH_IR.md)
                     instead of a lint report

`--runtime` runs the BON05x thread/queue topology pass instead. Without
further overrides it lints the in-repo runtime shapes; with overrides it
judges one raw topology (docs/diagnostics.md, Runtime topology):

  --workers N        job workers (0 = one per core)
  --pass-workers N   per-job pass-sharding threads (0 = one per core)
  --queue-depth N    bounded job-queue depth
  --producers N      concurrent submitting threads
  --cores N          judge against an N-core host (default: this host)
  --records N        also bound pass-workers by the merge groups of an
                     N-record job on the reference DRAM engine (BON051)
  --dag-width N      judge a pipelined group-DAG whose ready set can
                     reach N tasks against the queue + pass-worker
                     capacity (BON056)
  --detach           model join_on_drop = false (BON053)
  --no-close-on-drop model close_on_drop = false (BON052)

Any adaptive-scheduler flag additionally runs the BON08x knob checks
(docs/diagnostics.md, Adaptive runtime); unset knobs keep the
runtime's lint-clean `AdaptiveConfig` defaults:

  --cache-shapes N    compiled-shape cache capacity (BON082)
  --shape-classes N   job classes shapes are selected for (default 2:
                      the latency and throughput lanes)
  --reprogram-us N    modeled shape-switch cost in microseconds; 0 is
                      the shape-thrash probe (BON080)
  --deadline-us N     per-job latency deadline in microseconds, 0 =
                      none; must exceed the reprogram cost (BON081)
  --fairness-stride N latency-lane dispatches before a waiting
                      throughput job runs; 0 is the starvation probe
                      (BON083)

`--prove` runs the BON06x occupancy-reachability pass: exhaustive
explicit-state exploration of the configuration's bounded token net.
Without engine flags it proves every in-repo engine configuration; with
engine flags it proves that one raw configuration. Certified configs get
their inductive occupancy certificate independently re-verified (BON063)
and their static throughput floor cross-checked (BON064); refuted ones
get a minimal counterexample trace replayed against SimEngine (BON060/
BON061, BON065 on divergence); exhausted budgets warn (BON062):

  --state-budget N       explored-state budget (default 262144)
  --credit-slack N       grant N extra leaf credits beyond capacity —
                         the deliberate FIFO-overflow probe (BON061)
  --replay-records N     records for counterexample replay (0 = skip)
  --assume-throughput B  cross-check the static floor against an
                         observed throughput of B bytes/second (BON064)

`--prove-selftest` checks the certificate checker itself is alive: it
corrupts a valid certificate and exits 1 with BON063 when the checker
rejects it (a vacuous checker is reported distinctly and exits 1
without BON063).

exit codes:
  0  no error-severity diagnostics (warnings allowed)
  1  at least one BONxxx error diagnostic fired
  2  invalid command line (unknown flag or malformed value)";

fn usage_error() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Overrides {
    let mut over = Overrides::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("bonsai-lint: {what} needs an integer value");
                usage_error()
            })
        };
        match flag.as_str() {
            "--p" => over.p = Some(value("--p") as usize),
            "--l" => over.l = Some(value("--l") as usize),
            "--batch-bytes" => over.batch_bytes = Some(value("--batch-bytes")),
            "--record-bytes" => over.record_bytes = Some(value("--record-bytes")),
            "--buffer-batches" => over.buffer_batches = Some(value("--buffer-batches")),
            "--presort" => over.presort = Some(value("--presort") as usize),
            "--banks" => over.banks = Some(value("--banks") as usize),
            "--payload-bytes" => over.payload_bytes = Some(value("--payload-bytes")),
            "--memory" => {
                over.memory = Some(match args.next().as_deref() {
                    Some("ddr4") => MemoryConfig::ddr4_aws_f1(),
                    Some("single") => MemoryConfig::ddr4_single_bank(),
                    Some("hbm") => MemoryConfig::hbm_u50(),
                    Some("ssd") => MemoryConfig::throttled_to_ssd(),
                    other => {
                        eprintln!("bonsai-lint: --memory wants ddr4|single|hbm|ssd, got {other:?}");
                        usage_error()
                    }
                });
            }
            "--json" => over.json = true,
            "--runtime" => over.runtime = true,
            "--prove" => over.prove = true,
            "--prove-selftest" => over.prove_selftest = true,
            "--state-budget" => over.state_budget = Some(value("--state-budget") as usize),
            "--credit-slack" => over.credit_slack = Some(value("--credit-slack") as u32),
            "--replay-records" => over.replay_records = Some(value("--replay-records") as usize),
            "--assume-throughput" => {
                over.assume_throughput = Some(
                    args.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|v| v.is_finite() && *v >= 0.0)
                        .unwrap_or_else(|| {
                            eprintln!(
                                "bonsai-lint: --assume-throughput needs bytes/second (a \
                                 non-negative number)"
                            );
                            usage_error()
                        }),
                );
            }
            "--workers" => over.workers = Some(value("--workers") as usize),
            "--pass-workers" => over.pass_workers = Some(value("--pass-workers") as usize),
            "--queue-depth" => over.queue_depth = Some(value("--queue-depth") as usize),
            "--producers" => over.producers = Some(value("--producers") as usize),
            "--cores" => over.cores = Some(value("--cores") as usize),
            "--records" => over.records = Some(value("--records") as usize),
            "--dag-width" => over.dag_width = Some(value("--dag-width") as usize),
            "--detach" => over.detach = true,
            "--no-close-on-drop" => over.no_close_on_drop = true,
            "--cache-shapes" => over.cache_shapes = Some(value("--cache-shapes") as usize),
            "--shape-classes" => over.shape_classes = Some(value("--shape-classes") as usize),
            "--reprogram-us" => over.reprogram_us = Some(value("--reprogram-us")),
            "--deadline-us" => over.deadline_us = Some(value("--deadline-us")),
            "--fairness-stride" => over.fairness_stride = Some(value("--fairness-stride") as u32),
            "--dump-graph" => {
                over.dump_graph = Some(match args.next().as_deref() {
                    Some("dot") => DumpFormat::Dot,
                    Some("json") => DumpFormat::Json,
                    other => {
                        eprintln!("bonsai-lint: --dump-graph wants dot|json, got {other:?}");
                        usage_error()
                    }
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("bonsai-lint: unknown flag {other}");
                usage_error()
            }
        }
    }
    over
}

fn main() -> ExitCode {
    let over = parse_args();

    // Each mode's flags only make sense in that mode; a mixed line is a
    // usage error, not a silently ignored knob.
    let proving = over.prove || over.prove_selftest;
    if over.runtime && (over.any_config() || over.dump_graph.is_some() || proving) {
        eprintln!("bonsai-lint: --runtime cannot be combined with engine or prove flags");
        usage_error();
    }
    if !over.runtime && over.any_runtime_config() {
        eprintln!("bonsai-lint: runtime topology flags need --runtime");
        usage_error();
    }
    if proving && over.dump_graph.is_some() {
        eprintln!("bonsai-lint: --prove cannot be combined with --dump-graph");
        usage_error();
    }
    if !proving && over.any_prove_config() {
        eprintln!("bonsai-lint: prove flags need --prove");
        usage_error();
    }

    if over.runtime {
        let findings = if over.any_runtime_config() || over.cores.is_some() {
            vec![over.raw_runtime().lint()]
        } else {
            lint::lint_runtime_all()
        };
        return emit(&findings, over.json);
    }

    if over.prove_selftest {
        // Arm the checker against the configuration's own net (the
        // default raw engine unless overridden) and demand it reject a
        // deliberately corrupted certificate.
        let cfg = over.raw().config();
        let net = match net_from_config(&cfg, &NetOptions::default()) {
            Ok(net) => net,
            Err(fatal) => {
                return emit(
                    &[LintFinding {
                        target: "prove/selftest".into(),
                        diagnostics: fatal,
                    }],
                    over.json,
                );
            }
        };
        return match certificate_selftest(&net) {
            Ok(diag) => emit(
                &[LintFinding {
                    target: "prove/selftest".into(),
                    diagnostics: vec![diag],
                }],
                over.json,
            ),
            Err(why) => {
                eprintln!("bonsai-lint: certificate checker selftest FAILED: {why}");
                ExitCode::FAILURE
            }
        };
    }

    if over.prove {
        let opts = over.prove_options();
        let findings = if over.any_config() {
            let raw = over.raw();
            vec![LintFinding {
                target: format!(
                    "prove/cli/p{}_l{}_b{}_r{}",
                    raw.p, raw.l, raw.batch_bytes, raw.record_bytes
                ),
                diagnostics: lint::engine_prove_diagnostics(&raw.config(), &opts),
            }]
        } else {
            lint::prove_all(&opts)
        };
        return emit(&findings, over.json);
    }

    if let Some(format) = over.dump_graph {
        let raw = over.raw();
        let opts = LowerOptions {
            payload_bytes: raw.payload_bytes,
        };
        return match lower_to_graph(&raw.config(), &opts) {
            Ok(graph) => {
                match format {
                    DumpFormat::Dot => print!("{}", graph.to_dot()),
                    DumpFormat::Json => println!("{}", graph.to_json()),
                }
                ExitCode::SUCCESS
            }
            Err(diags) => {
                for d in diags {
                    eprintln!("{d}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let findings = if over.any_config() {
        vec![over.raw().lint()]
    } else {
        lint::lint_all()
    };
    emit(&findings, over.json)
}
