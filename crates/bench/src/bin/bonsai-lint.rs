//! `bonsai-lint`: the static configuration pass for CI.
//!
//! With no arguments, lints every configuration the experiment suite
//! and examples construct and exits non-zero if any error-severity
//! `BONxxx` diagnostic fires. With overrides, lints a single raw
//! configuration instead — the hook CI uses to prove the linter rejects
//! a deliberately broken config:
//!
//! ```sh
//! bonsai-lint                      # lint the whole in-repo suite
//! bonsai-lint --p 6 --l 16        # BON001: p not a power of two
//! bonsai-lint --batch-bytes 16    # BON010: batch below one DRAM burst
//! ```

use bonsai_bench::lint;
use std::process::ExitCode;

#[derive(Debug, Default)]
struct Overrides {
    p: Option<usize>,
    l: Option<usize>,
    batch_bytes: Option<u64>,
    record_bytes: Option<u64>,
    buffer_batches: Option<u64>,
    presort: Option<usize>,
}

impl Overrides {
    fn any(&self) -> bool {
        self.p.is_some()
            || self.l.is_some()
            || self.batch_bytes.is_some()
            || self.record_bytes.is_some()
            || self.buffer_batches.is_some()
            || self.presort.is_some()
    }
}

const USAGE: &str = "usage: bonsai-lint [--p N] [--l N] [--batch-bytes N] \
                     [--record-bytes N] [--buffer-batches N] [--presort N]\n\
                     Without overrides, lints every in-repo experiment configuration.";

fn usage_error() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Overrides {
    let mut over = Overrides::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("bonsai-lint: {what} needs an integer value");
                usage_error()
            })
        };
        match flag.as_str() {
            "--p" => over.p = Some(value("--p") as usize),
            "--l" => over.l = Some(value("--l") as usize),
            "--batch-bytes" => over.batch_bytes = Some(value("--batch-bytes")),
            "--record-bytes" => over.record_bytes = Some(value("--record-bytes")),
            "--buffer-batches" => over.buffer_batches = Some(value("--buffer-batches")),
            "--presort" => over.presort = Some(value("--presort") as usize),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("bonsai-lint: unknown flag {other}");
                usage_error()
            }
        }
    }
    over
}

fn main() -> ExitCode {
    let over = parse_args();
    let findings = if over.any() {
        vec![lint::lint_raw_engine(
            over.p.unwrap_or(32),
            over.l.unwrap_or(64),
            over.batch_bytes.unwrap_or(4096),
            over.record_bytes.unwrap_or(4),
            over.buffer_batches.unwrap_or(2),
            Some(over.presort.unwrap_or(16)),
        )]
    } else {
        lint::lint_all()
    };
    let (report, errors, _warnings) = lint::render(&findings);
    print!("{report}");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
