//! `bonsai-lint`: the static configuration pass for CI.
//!
//! With no arguments, lints every configuration the experiment suite
//! and examples construct — shape checks, the four pipeline-graph
//! analyses (deadlock, FIFO flush depth, min-cut bandwidth, dead
//! components), the latency-bound certification and one
//! model-vs-simulation drift probe — and exits non-zero if any
//! error-severity `BONxxx` diagnostic fires. With overrides, lints a
//! single raw configuration instead — the hook CI uses to prove the
//! linter rejects a deliberately broken config:
//!
//! ```sh
//! bonsai-lint                        # lint the whole in-repo suite
//! bonsai-lint --p 6 --l 16           # BON001: p not a power of two
//! bonsai-lint --buffer-batches 0     # BON030: zero-credit deadlock
//! bonsai-lint --p 32 --record-bytes 8  # BON032: min-cut infeasible
//! bonsai-lint --json                 # machine-readable report
//! bonsai-lint --dump-graph dot       # emit the pipeline-graph IR
//! ```
//!
//! `--runtime` switches to the BON05x runtime-topology pass over the
//! parallel sort runtime's thread/queue shape instead of the engine
//! configuration:
//!
//! ```sh
//! bonsai-lint --runtime                         # lint in-repo topologies
//! bonsai-lint --runtime --queue-depth 0 --producers 2   # BON050
//! bonsai-lint --runtime --no-close-on-drop      # BON052: drop wedges
//! bonsai-lint --runtime --detach                # BON053: leaked threads
//! bonsai-lint --runtime --workers 4 --pass-workers 4 --cores 4  # BON054
//! bonsai-lint --runtime --dag-width 100 --queue-depth 8 --pass-workers 4
//!                                               # BON056: DAG over capacity
//! ```

use bonsai_amt::graph::{lower_to_graph, LowerOptions};
use bonsai_bench::lint::{self, RawEngineLint, RawRuntimeLint};
use bonsai_memsim::MemoryConfig;
use std::process::ExitCode;

#[derive(Debug, Default)]
struct Overrides {
    p: Option<usize>,
    l: Option<usize>,
    batch_bytes: Option<u64>,
    record_bytes: Option<u64>,
    buffer_batches: Option<u64>,
    presort: Option<usize>,
    memory: Option<MemoryConfig>,
    banks: Option<usize>,
    payload_bytes: Option<u64>,
    json: bool,
    dump_graph: Option<DumpFormat>,
    runtime: bool,
    workers: Option<usize>,
    pass_workers: Option<usize>,
    queue_depth: Option<usize>,
    producers: Option<usize>,
    cores: Option<usize>,
    records: Option<usize>,
    dag_width: Option<usize>,
    detach: bool,
    no_close_on_drop: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DumpFormat {
    Dot,
    Json,
}

impl Overrides {
    fn any_config(&self) -> bool {
        self.p.is_some()
            || self.l.is_some()
            || self.batch_bytes.is_some()
            || self.record_bytes.is_some()
            || self.buffer_batches.is_some()
            || self.presort.is_some()
            || self.memory.is_some()
            || self.banks.is_some()
            || self.payload_bytes.is_some()
    }

    fn raw(&self) -> RawEngineLint {
        let defaults = RawEngineLint::default();
        RawEngineLint {
            p: self.p.unwrap_or(defaults.p),
            l: self.l.unwrap_or(defaults.l),
            batch_bytes: self.batch_bytes.unwrap_or(defaults.batch_bytes),
            record_bytes: self.record_bytes.unwrap_or(defaults.record_bytes),
            buffer_batches: self.buffer_batches.unwrap_or(defaults.buffer_batches),
            presort: Some(self.presort.unwrap_or(16)),
            memory: self.memory.unwrap_or(defaults.memory),
            banks: self.banks,
            payload_bytes: self.payload_bytes,
        }
    }

    fn any_runtime_config(&self) -> bool {
        self.workers.is_some()
            || self.pass_workers.is_some()
            || self.queue_depth.is_some()
            || self.producers.is_some()
            || self.records.is_some()
            || self.dag_width.is_some()
            || self.detach
            || self.no_close_on_drop
    }

    fn raw_runtime(&self) -> RawRuntimeLint {
        let defaults = RawRuntimeLint::default();
        RawRuntimeLint {
            workers: self.workers.unwrap_or(defaults.workers),
            pass_workers: self.pass_workers.unwrap_or(defaults.pass_workers),
            queue_depth: self.queue_depth.unwrap_or(defaults.queue_depth),
            producers: self.producers.unwrap_or(defaults.producers),
            close_on_drop: !self.no_close_on_drop,
            join_on_drop: !self.detach,
            cores: self.cores,
            records: self.records,
            dag_width: self.dag_width,
        }
    }
}

const USAGE: &str = "usage: bonsai-lint [--p N] [--l N] [--batch-bytes N] \
[--record-bytes N] [--buffer-batches N] [--presort N] \
[--memory ddr4|single|hbm|ssd] [--banks N] [--payload-bytes N] \
[--json] [--dump-graph dot|json]
       bonsai-lint --runtime [--workers N] [--pass-workers N] \
[--queue-depth N] [--producers N] [--cores N] [--records N] \
[--dag-width N] [--detach] [--no-close-on-drop] [--json]

Without overrides, lints every in-repo experiment configuration (shape
checks, pipeline-graph analyses, latency-bound certification, drift
probe) plus every in-repo runtime topology. With overrides, lints a
single raw engine configuration.

  --json             emit the report as a JSON object for CI annotation
  --dump-graph FMT   print the lowered pipeline-graph IR (Graphviz `dot`
                     or the documented `json` schema, docs/GRAPH_IR.md)
                     instead of a lint report

`--runtime` runs the BON05x thread/queue topology pass instead. Without
further overrides it lints the in-repo runtime shapes; with overrides it
judges one raw topology (docs/diagnostics.md, Runtime topology):

  --workers N        job workers (0 = one per core)
  --pass-workers N   per-job pass-sharding threads (0 = one per core)
  --queue-depth N    bounded job-queue depth
  --producers N      concurrent submitting threads
  --cores N          judge against an N-core host (default: this host)
  --records N        also bound pass-workers by the merge groups of an
                     N-record job on the reference DRAM engine (BON051)
  --dag-width N      judge a pipelined group-DAG whose ready set can
                     reach N tasks against the queue + pass-worker
                     capacity (BON056)
  --detach           model join_on_drop = false (BON053)
  --no-close-on-drop model close_on_drop = false (BON052)

exit codes:
  0  no error-severity diagnostics (warnings allowed)
  1  at least one BONxxx error diagnostic fired
  2  invalid command line (unknown flag or malformed value)";

fn usage_error() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Overrides {
    let mut over = Overrides::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("bonsai-lint: {what} needs an integer value");
                usage_error()
            })
        };
        match flag.as_str() {
            "--p" => over.p = Some(value("--p") as usize),
            "--l" => over.l = Some(value("--l") as usize),
            "--batch-bytes" => over.batch_bytes = Some(value("--batch-bytes")),
            "--record-bytes" => over.record_bytes = Some(value("--record-bytes")),
            "--buffer-batches" => over.buffer_batches = Some(value("--buffer-batches")),
            "--presort" => over.presort = Some(value("--presort") as usize),
            "--banks" => over.banks = Some(value("--banks") as usize),
            "--payload-bytes" => over.payload_bytes = Some(value("--payload-bytes")),
            "--memory" => {
                over.memory = Some(match args.next().as_deref() {
                    Some("ddr4") => MemoryConfig::ddr4_aws_f1(),
                    Some("single") => MemoryConfig::ddr4_single_bank(),
                    Some("hbm") => MemoryConfig::hbm_u50(),
                    Some("ssd") => MemoryConfig::throttled_to_ssd(),
                    other => {
                        eprintln!("bonsai-lint: --memory wants ddr4|single|hbm|ssd, got {other:?}");
                        usage_error()
                    }
                });
            }
            "--json" => over.json = true,
            "--runtime" => over.runtime = true,
            "--workers" => over.workers = Some(value("--workers") as usize),
            "--pass-workers" => over.pass_workers = Some(value("--pass-workers") as usize),
            "--queue-depth" => over.queue_depth = Some(value("--queue-depth") as usize),
            "--producers" => over.producers = Some(value("--producers") as usize),
            "--cores" => over.cores = Some(value("--cores") as usize),
            "--records" => over.records = Some(value("--records") as usize),
            "--dag-width" => over.dag_width = Some(value("--dag-width") as usize),
            "--detach" => over.detach = true,
            "--no-close-on-drop" => over.no_close_on_drop = true,
            "--dump-graph" => {
                over.dump_graph = Some(match args.next().as_deref() {
                    Some("dot") => DumpFormat::Dot,
                    Some("json") => DumpFormat::Json,
                    other => {
                        eprintln!("bonsai-lint: --dump-graph wants dot|json, got {other:?}");
                        usage_error()
                    }
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("bonsai-lint: unknown flag {other}");
                usage_error()
            }
        }
    }
    over
}

fn main() -> ExitCode {
    let over = parse_args();

    // Runtime flags only make sense in --runtime mode, and the engine /
    // graph flags only outside it; a mixed line is a usage error, not a
    // silently ignored knob.
    if over.runtime && (over.any_config() || over.dump_graph.is_some()) {
        eprintln!("bonsai-lint: --runtime cannot be combined with engine flags");
        usage_error();
    }
    if !over.runtime && over.any_runtime_config() {
        eprintln!("bonsai-lint: runtime topology flags need --runtime");
        usage_error();
    }

    if over.runtime {
        let findings = if over.any_runtime_config() || over.cores.is_some() {
            vec![over.raw_runtime().lint()]
        } else {
            lint::lint_runtime_all()
        };
        let (report, errors, _warnings) = if over.json {
            let (json, errors, warnings) = lint::render_json(&findings);
            (format!("{json}\n"), errors, warnings)
        } else {
            lint::render(&findings)
        };
        print!("{report}");
        return if errors > 0 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if let Some(format) = over.dump_graph {
        let raw = over.raw();
        let opts = LowerOptions {
            payload_bytes: raw.payload_bytes,
        };
        return match lower_to_graph(&raw.config(), &opts) {
            Ok(graph) => {
                match format {
                    DumpFormat::Dot => print!("{}", graph.to_dot()),
                    DumpFormat::Json => println!("{}", graph.to_json()),
                }
                ExitCode::SUCCESS
            }
            Err(diags) => {
                for d in diags {
                    eprintln!("{d}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let findings = if over.any_config() {
        vec![over.raw().lint()]
    } else {
        lint::lint_all()
    };
    let (report, errors, _warnings) = if over.json {
        let (json, errors, warnings) = lint::render_json(&findings);
        (format!("{json}\n"), errors, warnings)
    } else {
        lint::render(&findings)
    };
    print!("{report}");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
