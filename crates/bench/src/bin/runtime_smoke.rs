//! Parallel-throughput smoke bench for the batch sort runtime.
//!
//! CI gate for the sharded runtime: sorts the same batch of jobs with a
//! single worker and with one worker per core, verifies the results are
//! bit-identical (the determinism contract), and — on a multi-core host
//! — fails if the multi-worker runtime is slower than single-threaded
//! on the DRAM config. On the HBM config it reports the speedup the
//! acceptance bar measures on a ≥ 4-core host.
//!
//! Usage: `runtime_smoke [jobs] [records_per_job] [workers]`
//! (defaults 8 × 60 000 on one worker per core). The serial/parallel
//! rows — wall time, jobs/sec and per-job latency p50/p99 — are also
//! written as `BENCH_10.json` (the `BONSAI_BENCH_OUT` environment
//! variable overrides the path).

use std::time::{Duration, Instant};

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig, VIRTUAL_WORKERS};
use bonsai_bench::perf::{
    bench_json, normalized, percentile, resolve_bench_out, ssd_multipass_config, ssd_scale_config,
    JsonField, MULTIPASS_RECORDS,
};
use bonsai_gensort::dist::uniform_u32;
use bonsai_memsim::MemoryConfig;
use bonsai_records::U32Rec;
use bonsai_runtime::{JobOutput, PassScheduler, Runtime, RuntimeConfig, SortJob};

/// One serial-or-parallel batch run, as a `BENCH_10.json` row.
struct SmokeRow {
    config: &'static str,
    workers: usize,
    jobs: u64,
    records: usize,
    elapsed_s: f64,
    /// Per-job submit-to-completion latency in milliseconds, ascending.
    latencies_ms: Vec<f64>,
}

/// Sorts `jobs` copies of `data` under `cfg` on `workers` threads,
/// returning the batch wall time, every job's output, and each job's
/// own wall time (ascending, in milliseconds).
fn run_batch(
    cfg: SimEngineConfig,
    data: &[U32Rec],
    jobs: u64,
    workers: usize,
) -> (Duration, Vec<JobOutput<U32Rec>>, Vec<f64>) {
    let runtime = Runtime::start(RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    });
    let start = Instant::now();
    for id in 0..jobs {
        runtime
            .submit(SortJob::new(id, cfg, data.to_vec()))
            .expect("runtime open");
    }
    let results = runtime.finish();
    let wall = start.elapsed();
    let mut latencies_ms: Vec<f64> = results.iter().map(|r| r.wall.as_secs_f64() * 1e3).collect();
    latencies_ms.sort_unstable_by(f64::total_cmp);
    let outputs = results
        .into_iter()
        .map(|r| r.result.unwrap_or_else(|e| panic!("job failed: {e}")))
        .collect();
    (wall, outputs, latencies_ms)
}

/// One config's smoke run: serial vs parallel wall time, with the
/// determinism check. Returns `(serial_s, parallel_s)` and pushes both
/// runs onto `rows` for the JSON report.
fn smoke(
    name: &'static str,
    cfg: SimEngineConfig,
    data: &[U32Rec],
    jobs: u64,
    cores: usize,
    rows: &mut Vec<SmokeRow>,
) -> (f64, f64) {
    let (wall_1, out_1, lat_1) = run_batch(cfg, data, jobs, 1);
    let (wall_n, out_n, lat_n) = run_batch(cfg, data, jobs, cores);
    assert_eq!(
        out_1, out_n,
        "{name}: runtime output depends on worker count"
    );
    let (s, p) = (wall_1.as_secs_f64(), wall_n.as_secs_f64());
    println!(
        "{name:<12} {jobs} jobs x {} records: 1 worker {s:>7.3}s, {cores} workers {p:>7.3}s ({:.2}x) \
         [job p50 {:.3}ms p99 {:.3}ms]",
        data.len(),
        s / p,
        percentile(&lat_n, 50.0),
        percentile(&lat_n, 99.0),
    );
    for (workers, elapsed_s, latencies_ms) in [(1, s, lat_1), (cores, p, lat_n)] {
        rows.push(SmokeRow {
            config: name,
            workers,
            jobs,
            records: data.len(),
            elapsed_s,
            latencies_ms,
        });
    }
    (s, p)
}

fn render_json(rows: &[SmokeRow]) -> String {
    let json_rows: Vec<Vec<(&str, JsonField)>> = rows
        .iter()
        .map(|r| {
            vec![
                ("config", JsonField::Str(r.config.into())),
                ("workers", JsonField::U64(r.workers as u64)),
                ("jobs", JsonField::U64(r.jobs)),
                ("records", JsonField::U64(r.records as u64)),
                (
                    "elapsed_s",
                    JsonField::F64 {
                        value: r.elapsed_s,
                        precision: 6,
                    },
                ),
                (
                    "jobs_per_s",
                    JsonField::F64 {
                        value: r.jobs as f64 / r.elapsed_s.max(1e-9),
                        precision: 1,
                    },
                ),
                (
                    "lat_p50_ms",
                    JsonField::F64 {
                        value: percentile(&r.latencies_ms, 50.0),
                        precision: 3,
                    },
                ),
                (
                    "lat_p99_ms",
                    JsonField::F64 {
                        value: percentile(&r.latencies_ms, 99.0),
                        precision: 3,
                    },
                ),
            ]
        })
        .collect();
    bench_json("runtime_smoke", &json_rows)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let records: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60_000);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = args
        .next()
        .and_then(|a| a.parse().ok())
        .filter(|&w| w > 0)
        .unwrap_or(cores);
    let data = uniform_u32(records, 2024);

    println!("== runtime_smoke ({cores} core(s), {workers} worker(s)) ==");
    let mut rows = Vec::new();
    let dram = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    let (serial, parallel) = smoke("dram", dram, &data, jobs, workers, &mut rows);
    let hbm = SimEngineConfig::with_memory(AmtConfig::new(8, 64), 4, MemoryConfig::hbm_u50());
    smoke("hbm", hbm, &data, jobs, workers, &mut rows);

    // The positional CLI args are workload numbers, so the JSON path is
    // env-only here (unlike the `[out.json]` benches).
    let out_path = resolve_bench_out(
        None,
        std::env::var("BONSAI_BENCH_OUT").ok(),
        "BENCH_10.json",
    );
    std::fs::write(&out_path, render_json(&rows)).expect("write bench json");
    println!("wrote {out_path}");

    // Worker-utilization observability: one multi-pass job through the
    // runtime's pipelined DAG scheduler, reporting each pass's busy vs
    // idle worker time on the deterministic virtual reference pool and
    // the pipeline_overlap_cycles the DAG reclaimed from the barrier.
    let runtime = Runtime::start(RuntimeConfig {
        workers,
        scheduler: PassScheduler::Pipelined,
        ..RuntimeConfig::default()
    });
    runtime
        .submit(SortJob::new(
            0,
            ssd_multipass_config(),
            uniform_u32(MULTIPASS_RECORDS, 2026),
        ))
        .expect("runtime open");
    let report = runtime
        .finish()
        .remove(0)
        .result
        .unwrap_or_else(|e| panic!("utilization smoke job failed: {e}"))
        .report;
    println!(
        "pipelined    {} records, {} passes on the {VIRTUAL_WORKERS}-worker reference pool:",
        MULTIPASS_RECORDS,
        report.stages()
    );
    for p in &report.passes {
        let total = p.busy_worker_cycles + p.idle_worker_cycles;
        println!(
            "  stage {}: {:>4} groups, busy {:>9} idle {:>9} cycles ({:>5.1}% utilized)",
            p.stage,
            p.runs_out,
            p.busy_worker_cycles,
            p.idle_worker_cycles,
            100.0 * p.busy_worker_cycles as f64 / total.max(1) as f64,
        );
    }
    println!(
        "  pipeline_overlap_cycles {} (barrier-makespan cycles the DAG reclaimed)",
        report.pipeline_overlap_cycles
    );
    assert!(
        report.stages() >= 3 && report.pipeline_overlap_cycles > 0,
        "the utilization smoke must overlap a multi-pass shape: {report:?}"
    );

    // Fast-forward perf smoke: on the SSD-scale shape the event-driven
    // fast path must beat the reference per-cycle loop by >= 2x (the
    // full perf_baseline measures >= 5x; the smoke bound leaves room
    // for CI noise), while agreeing with it bit for bit.
    let ssd = ssd_scale_config();
    let ssd_data = uniform_u32(100_000, 77);
    let start = Instant::now();
    let (out_ref, rep_ref) = SimEngine::new(ssd)
        .with_reference_loop(true)
        .sort(ssd_data.clone());
    let wall_ref = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let (out_fast, rep_fast) = SimEngine::new(ssd)
        .with_reference_loop(false)
        .sort(ssd_data);
    let wall_fast = start.elapsed().as_secs_f64();
    assert_eq!(out_ref, out_fast, "ssd smoke: paths sorted differently");
    assert_eq!(
        normalized(rep_ref),
        normalized(rep_fast),
        "ssd smoke: paths reported different accounting"
    );
    println!(
        "ssd_scale    fast-forward smoke: reference {wall_ref:>7.3}s, fast {wall_fast:>7.3}s ({:.2}x)",
        wall_ref / wall_fast
    );
    assert!(
        wall_fast * 2.0 <= wall_ref,
        "fast path under 2x on the SSD-scale smoke: {:.2}x",
        wall_ref / wall_fast
    );
    println!("gate passed: fast path is >= 2x the reference loop on the SSD-scale smoke");

    if cores < 2 {
        println!("single-core host: skipping the speedup gate");
        return;
    }
    // The gate the satellite demands: N workers must not be slower than
    // one on the DRAM config. 10% slack absorbs scheduler noise.
    assert!(
        parallel <= serial * 1.10,
        "parallel runtime is slower than single-threaded: {parallel:.3}s vs {serial:.3}s"
    );
    println!("gate passed: {workers}-worker batch is not slower than single-threaded");
}
