//! Regenerates fig5 of the Bonsai paper. Run with `--release`.

fn main() {
    print!("{}", bonsai_bench::experiments::fig5::render());
}
