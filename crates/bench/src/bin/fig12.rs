//! Regenerates fig12 of the Bonsai paper. Run with `--release`.

fn main() {
    print!("{}", bonsai_bench::experiments::fig12::render());
}
