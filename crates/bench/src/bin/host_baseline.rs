//! Measures the runnable host-CPU sorters (std, radix, AMT functional).
//! Run with `--release`; pass a record count to change scale.

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000_000);
    print!("{}", bonsai_bench::experiments::host_baseline::render(n));
}
