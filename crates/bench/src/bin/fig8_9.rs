//! Regenerates Figures 8/9 (simulated vs predicted AMT sort times).
//!
//! Pass a record count to override the default scale, e.g.
//! `cargo run -p bonsai-bench --bin fig8_9 --release -- 4000000`.

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    print!("{}", bonsai_bench::experiments::fig8_9::render(n));
}
