//! Regenerates fig11 of the Bonsai paper. Run with `--release`.

fn main() {
    print!("{}", bonsai_bench::experiments::fig11::render());
}
