//! Regenerates the §VI-D (unrolling) and §VI-E (throttled SSD) hardware
//! validation experiments. Run with `--release`.

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(800_000);
    println!("{}", bonsai_bench::experiments::hbm_validation::render(n));
    println!("{}", bonsai_bench::experiments::ssd_validation::render(n));
}
