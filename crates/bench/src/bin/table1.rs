//! Regenerates table1 of the Bonsai paper. Run with `--release`.

fn main() {
    print!("{}", bonsai_bench::experiments::table1::render());
}
