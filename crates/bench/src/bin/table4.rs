//! Regenerates table4 of the Bonsai paper. Run with `--release`.

fn main() {
    print!("{}", bonsai_bench::experiments::table4::render());
}
