//! Saturation bench for the sort service: jobs/sec over loopback at
//! 1, 8, and 64 concurrent clients.
//!
//! Each row starts a fresh in-process [`bonsai_net::Server`] on an
//! ephemeral loopback port, splits the same fixed total of
//! [`TOTAL_JOBS`] jobs across its clients, pipelines up to
//! [`WINDOW`] jobs per connection, and verifies every reply
//! (exactly-once acknowledgement, output equal to sanitize-then-sort
//! of the input). The figure of merit is aggregate jobs/sec; with the
//! total fixed, rows differ only in concurrency, so the 64-client row
//! measures what contention costs — accept loop, per-connection
//! threads, the shared bounded queue — and none of it is workload
//! noise.
//!
//! Gate: the 64-client row must reach at least the 1-client rate. On a
//! multi-core host saturation should *win* (more connections keep more
//! runtime workers fed); like the other wall-clock gates
//! (`perf_pipeline`, `runtime_smoke`) it arms only on hosts with ≥ 4
//! cores, because on one core concurrency can only add overhead.
//! Exactly-once verification is always on, every row, every host.
//!
//! Every row also records each job's send-to-reply latency and emits
//! `lat_p50_ms`/`lat_p99_ms` columns; when the gate fails, the
//! per-clients latency distribution is printed so the failure shows
//! whether the regression is queueing (p99 blowup at 64 clients) or a
//! uniform slowdown.
//!
//! Usage: `net_saturation [out.json]` (default `BENCH_9.json`; the
//! `BONSAI_BENCH_OUT` environment variable overrides the default when
//! no argument is given).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Instant;

use bonsai_amt::{AmtConfig, SimEngineConfig};
use bonsai_bench::perf::{bench_json, bench_out_path, percentile, JsonField};
use bonsai_gensort::dist::uniform_u32;
use bonsai_net::{Client, Reply, Server, ServerConfig};
use bonsai_records::{Record, U32Rec};
use bonsai_runtime::RuntimeConfig;

/// Jobs per row, split across that row's clients (64 divides it, so
/// every concurrency level gets whole shares).
const TOTAL_JOBS: u64 = 192;

/// Records per job.
const RECORDS: usize = 2048;

/// Max pipelined jobs per connection.
const WINDOW: usize = 4;

/// Concurrency levels, one row each.
const CLIENTS: [u64; 3] = [1, 8, 64];

struct Row {
    clients: u64,
    jobs: u64,
    elapsed_s: f64,
    jobs_per_s: f64,
    /// Per-job send-to-reply latency in milliseconds, ascending.
    latencies_ms: Vec<f64>,
}

/// Runs one client's share of the jobs; returns each job's
/// send-to-reply latency in milliseconds (so `len()` is the
/// acknowledged-job count).
fn run_client(addr: SocketAddr, client_idx: u64, jobs: u64) -> Vec<f64> {
    let mut client = Client::<U32Rec>::connect(addr).expect("connect loopback");
    let mut pending: HashMap<u64, (Vec<U32Rec>, Instant)> = HashMap::new();
    let mut latencies_ms = Vec::with_capacity(jobs as usize);
    let recv_one =
        |client: &mut Client<U32Rec>,
         pending: &mut HashMap<_, (Vec<U32Rec>, Instant)>,
         latencies_ms: &mut Vec<f64>| match client.recv().expect("recv") {
            Reply::Sorted { job_id, records } => {
                let (expected, sent_at) = pending
                    .remove(&job_id)
                    .expect("each job acknowledged exactly once");
                assert_eq!(records, expected, "job {job_id}: output mismatch");
                latencies_ms.push(sent_at.elapsed().as_secs_f64() * 1e3);
            }
            Reply::ServerError { code, message, .. } => panic!("{code}: {message}"),
        };
    for job in 0..jobs {
        let seed = client_idx * 1_000_003 + job;
        let data = uniform_u32(RECORDS, seed);
        let mut expected: Vec<U32Rec> = data.iter().map(|r| r.sanitize()).collect();
        expected.sort_unstable();
        pending.insert(job, (expected, Instant::now()));
        client.send(job, &data).expect("send");
        while pending.len() >= WINDOW {
            recv_one(&mut client, &mut pending, &mut latencies_ms);
        }
    }
    while !pending.is_empty() {
        recv_one(&mut client, &mut pending, &mut latencies_ms);
    }
    latencies_ms
}

fn measure(clients: u64) -> Row {
    let config = ServerConfig {
        runtime: RuntimeConfig {
            workers: 0, // one per core
            queue_depth: 64,
            ..RuntimeConfig::default()
        },
        engine: SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4),
        ..ServerConfig::default()
    };
    let server = Server::<U32Rec>::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();

    let start = Instant::now();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| scope.spawn(move || run_client(addr, c, TOTAL_JOBS / clients)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    assert_eq!(
        latencies_ms.len() as u64,
        TOTAL_JOBS,
        "every job acknowledged exactly once"
    );
    let stats = server.shutdown();
    assert_eq!(stats.jobs_ok, TOTAL_JOBS);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.wire_errors, 0);
    assert_eq!(stats.connections, clients);

    latencies_ms.sort_unstable_by(f64::total_cmp);
    let row = Row {
        clients,
        jobs: TOTAL_JOBS,
        elapsed_s,
        jobs_per_s: TOTAL_JOBS as f64 / elapsed_s.max(1e-9),
        latencies_ms,
    };
    println!(
        "{:>3} clients: {} jobs x {} records in {:>6.3}s = {:>8.1} jobs/sec \
         (lat p50 {:>7.3}ms p99 {:>7.3}ms)",
        row.clients,
        row.jobs,
        RECORDS,
        row.elapsed_s,
        row.jobs_per_s,
        percentile(&row.latencies_ms, 50.0),
        percentile(&row.latencies_ms, 99.0),
    );
    row
}

/// One line per concurrency row summarizing where the per-job wall time
/// went — printed before the saturation gate panics so a CI failure
/// shows whether the regression is queueing (p99 blowup at 64c) or
/// uniform slowdown (p50 shift everywhere).
fn print_latency_distributions(rows: &[Row]) {
    eprintln!("per-clients latency distribution (ms):");
    for r in rows {
        eprintln!(
            "  {:>3} clients: min {:>8.3}  p50 {:>8.3}  p90 {:>8.3}  p99 {:>8.3}  max {:>8.3}",
            r.clients,
            r.latencies_ms.first().copied().unwrap_or(0.0),
            percentile(&r.latencies_ms, 50.0),
            percentile(&r.latencies_ms, 90.0),
            percentile(&r.latencies_ms, 99.0),
            r.latencies_ms.last().copied().unwrap_or(0.0),
        );
    }
}

fn render_json(rows: &[Row]) -> String {
    let base_rate = rows[0].jobs_per_s;
    let json_rows: Vec<Vec<(&str, JsonField)>> = rows
        .iter()
        .map(|r| {
            vec![
                ("clients", JsonField::U64(r.clients)),
                ("jobs", JsonField::U64(r.jobs)),
                ("records", JsonField::U64(RECORDS as u64)),
                (
                    "elapsed_s",
                    JsonField::F64 {
                        value: r.elapsed_s,
                        precision: 6,
                    },
                ),
                (
                    "jobs_per_s",
                    JsonField::F64 {
                        value: r.jobs_per_s,
                        precision: 1,
                    },
                ),
                (
                    "speedup_vs_1c",
                    JsonField::F64 {
                        value: r.jobs_per_s / base_rate,
                        precision: 3,
                    },
                ),
                (
                    "lat_p50_ms",
                    JsonField::F64 {
                        value: percentile(&r.latencies_ms, 50.0),
                        precision: 3,
                    },
                ),
                (
                    "lat_p99_ms",
                    JsonField::F64 {
                        value: percentile(&r.latencies_ms, 99.0),
                        precision: 3,
                    },
                ),
            ]
        })
        .collect();
    bench_json("net_saturation", &json_rows)
}

fn main() {
    let out_path = bench_out_path("BENCH_9.json");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("== net_saturation: sort-service jobs/sec over loopback ==");
    let rows: Vec<Row> = CLIENTS.into_iter().map(measure).collect();

    // The saturation gate: concurrency must not cost throughput. Wall
    // clock, so it arms only where parallel speedup is possible at all
    // (same ≥ 4 core rule as the other wall-clock gates).
    let single = &rows[0];
    let saturated = rows.last().expect("rows is non-empty");
    if cores >= 4 {
        if saturated.jobs_per_s < single.jobs_per_s {
            print_latency_distributions(&rows);
            panic!(
                "64-client throughput ({:.1} jobs/sec) fell below 1-client ({:.1}) on a {cores}-core host",
                saturated.jobs_per_s, single.jobs_per_s,
            );
        }
    } else {
        println!(
            "note: {cores}-core host, saturation gate not armed \
             (64c {:.2}x vs 1c; verification ran on every row)",
            saturated.jobs_per_s / single.jobs_per_s,
        );
    }

    let json = render_json(&rows);
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
