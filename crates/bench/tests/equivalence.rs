//! Cross-path equivalence over every in-repo experiment configuration.
//!
//! Companion to the determinism suite: on all the configs the
//! experiment suite actually runs (`lint::engine_targets`), the
//! event-driven fast path and the reference per-cycle loop must produce
//! bit-identical sorted output and `SortReport`s — fused and sharded,
//! at every worker count — modulo only the `fast_forwarded_cycles`
//! observability counters.

use bonsai_amt::SimEngine;
use bonsai_bench::lint::engine_targets;
use bonsai_bench::perf::normalized;
use bonsai_gensort::dist::uniform_u32;

/// Worker count compared alongside 1 and max; `BONSAI_TEST_WORKERS`
/// overrides (CI runs the matrix at 1, 2 and max).
fn test_workers() -> usize {
    std::env::var("BONSAI_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

#[test]
fn every_experiment_config_agrees_across_paths() {
    let workers = test_workers();
    let n_records = 20_000;
    for (target, cfg) in engine_targets() {
        let data = uniform_u32(n_records, 47);

        let (out_ref, rep_ref) = SimEngine::new(cfg)
            .with_reference_loop(true)
            .sort(data.clone());
        let (out_fast, rep_fast) = SimEngine::new(cfg)
            .with_reference_loop(false)
            .sort(data.clone());
        assert_eq!(out_ref, out_fast, "{target}: fused outputs diverge");
        assert_eq!(
            rep_ref.fast_forwarded_cycles, 0,
            "{target}: reference path must never fast-forward"
        );
        assert_eq!(
            normalized(rep_ref),
            normalized(rep_fast),
            "{target}: fused reports diverge"
        );

        let (out_s, rep_s) = SimEngine::new(cfg)
            .with_reference_loop(true)
            .sort_sharded(data.clone(), 1);
        // 0 = one worker per core, the "max" point of the matrix.
        for w in [1usize, workers, 0] {
            let (o, r) = SimEngine::new(cfg)
                .with_reference_loop(false)
                .sort_sharded(data.clone(), w);
            assert_eq!(out_s, o, "{target} workers={w}: sharded outputs diverge");
            assert_eq!(
                normalized(rep_s.clone()),
                normalized(r),
                "{target} workers={w}: sharded reports diverge"
            );
        }
    }
}
