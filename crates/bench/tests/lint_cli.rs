//! Exit-code and `--json` schema contract test for the `bonsai-lint`
//! binary, across every mode: the default config pass, `--runtime`,
//! `--dag-width`, `--prove` and `--prove-selftest`.
//!
//! The contract under test (documented in the binary's `--help`):
//!
//! - exit 0: no error-severity diagnostics (warnings allowed),
//! - exit 1: at least one `BONxxx` error fired,
//! - exit 2: invalid command line,
//! - `--json` emits one JSON object with the same
//!   `{"targets": [...], "errors": N, "warnings": N}` schema in every
//!   mode — one serializer, no per-mode dialects.

use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bonsai-lint"))
        .args(args)
        .output()
        .expect("bonsai-lint runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("not signal-killed")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

/// Asserts the `--json` output is one syntactically valid JSON object
/// carrying the shared schema keys. The strict JSON reader in
/// `bonsai_check::graph` doubles as the syntax validator: it parses the
/// text fully before rejecting it for lacking a `version` field.
fn assert_shared_json_schema(out: &Output) {
    let json = stdout(out);
    assert!(
        bonsai_check::graph::PipelineGraph::from_json(&json)
            .unwrap_err()
            .contains("version"),
        "must be syntactically valid JSON: {json}"
    );
    for key in [
        "\"targets\":",
        "\"status\":",
        "\"errors\":",
        "\"warnings\":",
    ] {
        assert!(json.contains(key), "missing {key}: {json}");
    }
}

#[test]
fn clean_invocations_exit_zero_in_every_mode() {
    for args in [
        &["--p", "4", "--l", "16"][..],
        &["--runtime", "--cores", "8"],
        &[
            "--runtime",
            "--dag-width",
            "8",
            "--queue-depth",
            "8",
            "--pass-workers",
            "4",
            "--cores",
            "8",
        ],
        &["--prove", "--p", "4", "--l", "16"],
    ] {
        let out = lint(args);
        assert_eq!(exit_code(&out), 0, "{args:?}: {}", stdout(&out));
    }
}

#[test]
fn error_findings_exit_one_in_every_mode() {
    for (args, code) in [
        (&["--p", "6", "--l", "16"][..], "BON001"),
        (
            &[
                "--runtime",
                "--queue-depth",
                "0",
                "--producers",
                "2",
                "--cores",
                "8",
            ],
            "BON050",
        ),
        (
            &[
                "--runtime",
                "--dag-width",
                "100",
                "--queue-depth",
                "8",
                "--pass-workers",
                "4",
                "--cores",
                "8",
            ],
            "BON056",
        ),
        (&["--prove", "--buffer-batches", "0"], "BON060"),
        (&["--prove", "--credit-slack", "2"], "BON061"),
        (&["--prove-selftest"], "BON063"),
        (&["--prove", "--assume-throughput", "1"], "BON064"),
    ] {
        let out = lint(args);
        assert_eq!(exit_code(&out), 1, "{args:?}: {}", stdout(&out));
        assert!(stdout(&out).contains(code), "{args:?}: {}", stdout(&out));
    }
}

#[test]
fn warnings_alone_keep_exit_zero() {
    // A 4-state budget cannot exhaust any net: BON062 is a warning.
    let out = lint(&["--prove", "--p", "4", "--l", "16", "--state-budget", "4"]);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    assert!(stdout(&out).contains("BON062"), "{}", stdout(&out));
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["--frobnicate"][..],
        &["--p"],                            // missing value
        &["--runtime", "--p", "4"],          // mixed modes
        &["--prove", "--runtime"],           // mixed modes
        &["--state-budget", "4"],            // prove flag without --prove
        &["--workers", "2"],                 // runtime flag without --runtime
        &["--prove", "--dump-graph", "dot"], // prove vs dump
        &["--prove", "--assume-throughput", "nan"],
    ] {
        let out = lint(args);
        assert_eq!(exit_code(&out), 2, "{args:?}");
    }
}

#[test]
fn json_schema_is_identical_across_all_modes() {
    for args in [
        &["--json", "--p", "6", "--l", "16"][..],
        &["--json", "--runtime", "--cores", "8"],
        &[
            "--json",
            "--runtime",
            "--dag-width",
            "100",
            "--queue-depth",
            "8",
            "--pass-workers",
            "4",
            "--cores",
            "8",
        ],
        &["--json", "--prove", "--p", "4", "--l", "16"],
        &["--json", "--prove", "--buffer-batches", "0"],
        &["--json", "--prove-selftest"],
    ] {
        let out = lint(args);
        assert_shared_json_schema(&out);
    }
}

#[test]
fn json_counts_agree_with_exit_codes() {
    let clean = lint(&["--json", "--prove", "--p", "4", "--l", "16"]);
    assert_eq!(exit_code(&clean), 0);
    assert!(
        stdout(&clean).contains("\"errors\":0"),
        "{}",
        stdout(&clean)
    );

    let failing = lint(&["--json", "--prove", "--buffer-batches", "0"]);
    assert_eq!(exit_code(&failing), 1);
    assert!(
        stdout(&failing).contains("\"code\":\"BON060\""),
        "{}",
        stdout(&failing)
    );
    assert!(
        !stdout(&failing).contains("\"errors\":0"),
        "{}",
        stdout(&failing)
    );
}
