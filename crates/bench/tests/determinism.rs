//! Worker-count invariance over every in-repo experiment configuration.
//!
//! The acceptance bar for the parallel runtime: single-threaded and
//! N-worker runs must produce bit-identical `SortReport`s on all the
//! configs the experiment suite actually runs (`lint::engine_targets`).

use bonsai_amt::SimEngine;
use bonsai_bench::lint::engine_targets;
use bonsai_gensort::dist::uniform_u32;

/// Worker count compared against 1; `BONSAI_TEST_WORKERS` overrides
/// (CI runs the matrix at 1, 2 and max).
fn test_workers() -> usize {
    std::env::var("BONSAI_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

#[test]
fn every_experiment_config_is_worker_count_invariant() {
    let workers = test_workers();
    // Small enough to keep the widest (l = 256, SSD-throttled) targets
    // fast, large enough that every target runs at least two passes.
    let n_records = 20_000;
    for (target, cfg) in engine_targets() {
        // Width-scaling targets use 8/16-byte records in hardware, but
        // the simulator's data path is record-typed; u32 keys exercise
        // the same schedule.
        let data = uniform_u32(n_records, 41);
        let (out_1, report_1) = SimEngine::new(cfg).sort_sharded(data.clone(), 1);
        let (out_n, report_n) = SimEngine::new(cfg).sort_sharded(data.clone(), workers);
        assert_eq!(out_1, out_n, "{target}: output depends on worker count");
        assert_eq!(
            report_1, report_n,
            "{target}: SortReport depends on worker count"
        );
        let (out_fused, _) = SimEngine::new(cfg).sort(data);
        assert_eq!(out_1, out_fused, "{target}: sharded output diverges");
    }
}
