//! Criterion ablation benchmarks for the design choices DESIGN.md calls
//! out: presorter on/off, p-vs-ℓ trade-off, and flush-heavy inputs.
//!
//! Host time of the functional path tracks total merge work (stages ×
//! N), so these expose the *algorithmic* effect of each choice; the
//! cycle-level counterparts live in the `ablation_report` binary.

use bonsai_amt::functional;
use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig};
use bonsai_gensort::dist::uniform_u32;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_presort_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("presort_ablation");
    let data = uniform_u32(1 << 18, 7);
    g.throughput(Throughput::Elements(data.len() as u64));
    for presort in [1usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("functional_sort_l16", presort),
            &presort,
            |b, &presort| {
                b.iter(|| functional::sort_balanced(black_box(data.clone()), 16, presort))
            },
        );
    }
    g.finish();
}

fn bench_p_vs_l(c: &mut Criterion) {
    // Same LUT-class budget, different shapes: wide-and-shallow vs
    // narrow-and-deep (§VI-B2's trade-off), on the cycle simulator.
    let mut g = c.benchmark_group("p_vs_l");
    g.sample_size(10);
    let data = uniform_u32(1 << 16, 8);
    for (p, l) in [(16usize, 16usize), (8, 64), (4, 256)] {
        g.bench_with_input(
            BenchmarkId::new("sim_sort", format!("p{p}_l{l}")),
            &(p, l),
            |b, &(p, l)| {
                b.iter(|| {
                    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4);
                    SimEngine::new(cfg).sort(black_box(data.clone()))
                })
            },
        );
    }
    g.finish();
}

fn bench_flush_heavy_input(c: &mut Criterion) {
    // Many tiny runs stress the terminal-record flush path (§V-B).
    let mut g = c.benchmark_group("flush");
    g.sample_size(10);
    let data = uniform_u32(1 << 15, 9);
    for presort in [1usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("sim_sort_initial_run_len", presort),
            &presort,
            |b, &presort| {
                b.iter(|| {
                    let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
                    cfg.presort = Some(presort);
                    SimEngine::new(cfg).sort(black_box(data.clone()))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_presort_ablation,
    bench_p_vs_l,
    bench_flush_heavy_input
);
criterion_main!(benches);
