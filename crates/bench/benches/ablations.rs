//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! presorter on/off, p-vs-ℓ trade-off, and flush-heavy inputs.
//!
//! Host time of the functional path tracks total merge work (stages ×
//! N), so these expose the *algorithmic* effect of each choice; the
//! cycle-level counterparts live in the `ablation_report` binary.

use bonsai_amt::functional;
use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig};
use bonsai_bench::harness::{bench, header, Throughput};
use bonsai_gensort::dist::uniform_u32;
use std::hint::black_box;

fn main() {
    header("ablations");

    let data = uniform_u32(1 << 18, 7);
    for presort in [1usize, 16] {
        let elems = Throughput::Elements(data.len() as u64);
        bench(
            "presort_ablation",
            &format!("functional_sort_l16/presort{presort}"),
            elems,
            || functional::sort_balanced(black_box(data.clone()), 16, presort),
        );
    }

    // Same LUT-class budget, different shapes: wide-and-shallow vs
    // narrow-and-deep (§VI-B2's trade-off), on the cycle simulator.
    let data = uniform_u32(1 << 16, 8);
    for (p, l) in [(16usize, 16usize), (8, 64), (4, 256)] {
        bench(
            "p_vs_l",
            &format!("sim_sort/p{p}_l{l}"),
            Throughput::Elements(data.len() as u64),
            || {
                let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4);
                SimEngine::new(cfg).sort(black_box(data.clone()))
            },
        );
    }

    // Many tiny runs stress the terminal-record flush path (§V-B).
    let data = uniform_u32(1 << 15, 9);
    for presort in [1usize, 16] {
        bench(
            "flush",
            &format!("sim_sort_initial_run_len/{presort}"),
            Throughput::Elements(data.len() as u64),
            || {
                let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
                cfg.presort = Some(presort);
                SimEngine::new(cfg).sort(black_box(data.clone()))
            },
        );
    }
}
