//! Criterion micro-benchmarks of the hardware component models.

use bonsai_amt::functional::kway_merge;
use bonsai_amt::loser_tree_merge;
use bonsai_bitonic::{sorter_network, HalfMerger, Presorter};
use bonsai_gensort::dist::uniform_u32;
use bonsai_merge_hw::{KMerger, Side};
use bonsai_records::{Record, U32Rec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_bitonic_networks(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitonic");
    for width in [16usize, 64, 256] {
        let net = sorter_network(width);
        let data = uniform_u32(width, 1);
        g.throughput(Throughput::Elements(width as u64));
        g.bench_with_input(BenchmarkId::new("sorter_network", width), &width, |b, _| {
            b.iter(|| {
                let mut lanes = data.clone();
                net.apply(black_box(&mut lanes));
                lanes
            })
        });
    }
    g.finish();
}

fn bench_half_merger(c: &mut Criterion) {
    let mut g = c.benchmark_group("half_merger");
    for k in [4usize, 16, 32] {
        let hm = HalfMerger::new(k);
        let mut a = uniform_u32(k, 2);
        let mut b2 = uniform_u32(k, 3);
        a.sort_unstable();
        b2.sort_unstable();
        g.throughput(Throughput::Elements(2 * k as u64));
        g.bench_with_input(BenchmarkId::new("merge", k), &k, |b, _| {
            b.iter(|| hm.merge(black_box(&a), black_box(&b2)))
        });
    }
    g.finish();
}

fn bench_presorter(c: &mut Criterion) {
    let mut g = c.benchmark_group("presorter");
    let ps = Presorter::new(16);
    let data = uniform_u32(65_536, 4);
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("presort_64k", |b| {
        b.iter(|| {
            let mut d = data.clone();
            ps.presort(black_box(&mut d));
            d
        })
    });
    g.finish();
}

fn bench_kmerger_cycles(c: &mut Criterion) {
    // End-to-end cycle simulation rate of one 8-merger on long runs.
    let mut g = c.benchmark_group("kmerger");
    let n = 32_768u32;
    let left: Vec<U32Rec> = (0..n).map(|i| U32Rec::new(2 * i + 1)).collect();
    let right: Vec<U32Rec> = (0..n).map(|i| U32Rec::new(2 * i + 2)).collect();
    g.throughput(Throughput::Elements(2 * n as u64));
    g.bench_function("simulate_8_merger_64k_records", |b| {
        b.iter(|| {
            let mut m: KMerger<U32Rec> = KMerger::new(8, 32);
            let mut li = 0usize;
            let mut ri = 0usize;
            let mut out = 0u64;
            while out < u64::from(2 * n) + 1 {
                while m.input_free(Side::Left) > 0 && li <= left.len() {
                    if li < left.len() {
                        m.push_left(left[li]).expect("space checked");
                    } else {
                        m.push_left(U32Rec::TERMINAL).expect("space checked");
                    }
                    li += 1;
                }
                while m.input_free(Side::Right) > 0 && ri <= right.len() {
                    if ri < right.len() {
                        m.push_right(right[ri]).expect("space checked");
                    } else {
                        m.push_right(U32Rec::TERMINAL).expect("space checked");
                    }
                    ri += 1;
                }
                m.tick();
                while m.pop_output().is_some() {
                    out += 1;
                }
            }
            out
        })
    });
    g.finish();
}

fn bench_kway_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("kway_merge");
    for fan_in in [4usize, 64, 256] {
        let runs: Vec<Vec<U32Rec>> = (0..fan_in)
            .map(|i| {
                let mut r = uniform_u32(4096, i as u64);
                r.sort_unstable();
                r
            })
            .collect();
        let slices: Vec<&[U32Rec]> = runs.iter().map(Vec::as_slice).collect();
        g.throughput(Throughput::Elements((fan_in * 4096) as u64));
        g.bench_with_input(BenchmarkId::new("heap", fan_in), &fan_in, |b, _| {
            b.iter(|| kway_merge(black_box(&slices)))
        });
        g.bench_with_input(BenchmarkId::new("loser_tree", fan_in), &fan_in, |b, _| {
            b.iter(|| loser_tree_merge(black_box(&slices)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bitonic_networks,
    bench_half_merger,
    bench_presorter,
    bench_kmerger_cycles,
    bench_kway_merge
);
criterion_main!(benches);
