//! Micro-benchmarks of the hardware component models.

use bonsai_amt::functional::kway_merge;
use bonsai_amt::loser_tree_merge;
use bonsai_bench::harness::{bench, header, Throughput};
use bonsai_bitonic::{sorter_network, HalfMerger, Presorter};
use bonsai_gensort::dist::uniform_u32;
use bonsai_merge_hw::{KMerger, Side};
use bonsai_records::{Record, U32Rec};
use std::hint::black_box;

fn bench_bitonic_networks() {
    for width in [16usize, 64, 256] {
        let net = sorter_network(width);
        let data = uniform_u32(width, 1);
        bench(
            "bitonic",
            &format!("sorter_network/{width}"),
            Throughput::Elements(width as u64),
            || {
                let mut lanes = data.clone();
                net.apply(black_box(&mut lanes));
                lanes
            },
        );
    }
}

fn bench_half_merger() {
    for k in [4usize, 16, 32] {
        let hm = HalfMerger::new(k);
        let mut a = uniform_u32(k, 2);
        let mut b2 = uniform_u32(k, 3);
        a.sort_unstable();
        b2.sort_unstable();
        bench(
            "half_merger",
            &format!("merge/{k}"),
            Throughput::Elements(2 * k as u64),
            || hm.merge(black_box(&a), black_box(&b2)),
        );
    }
}

fn bench_presorter() {
    let ps = Presorter::new(16);
    let data = uniform_u32(65_536, 4);
    bench(
        "presorter",
        "presort_64k",
        Throughput::Elements(data.len() as u64),
        || {
            let mut d = data.clone();
            ps.presort(black_box(&mut d));
            d
        },
    );
}

fn bench_kmerger_cycles() {
    // End-to-end cycle simulation rate of one 8-merger on long runs.
    let n = 32_768u32;
    let left: Vec<U32Rec> = (0..n).map(|i| U32Rec::new(2 * i + 1)).collect();
    let right: Vec<U32Rec> = (0..n).map(|i| U32Rec::new(2 * i + 2)).collect();
    bench(
        "kmerger",
        "simulate_8_merger_64k_records",
        Throughput::Elements(2 * u64::from(n)),
        || {
            let mut m: KMerger<U32Rec> = KMerger::new(8, 32);
            let mut li = 0usize;
            let mut ri = 0usize;
            let mut out = 0u64;
            while out < u64::from(2 * n) + 1 {
                while m.input_free(Side::Left) > 0 && li <= left.len() {
                    if li < left.len() {
                        m.push_left(left[li]).expect("space checked");
                    } else {
                        m.push_left(U32Rec::TERMINAL).expect("space checked");
                    }
                    li += 1;
                }
                while m.input_free(Side::Right) > 0 && ri <= right.len() {
                    if ri < right.len() {
                        m.push_right(right[ri]).expect("space checked");
                    } else {
                        m.push_right(U32Rec::TERMINAL).expect("space checked");
                    }
                    ri += 1;
                }
                m.tick();
                while m.pop_output().is_some() {
                    out += 1;
                }
            }
            out
        },
    );
}

fn bench_kway_merge() {
    for fan_in in [4usize, 64, 256] {
        let runs: Vec<Vec<U32Rec>> = (0..fan_in)
            .map(|i| {
                let mut r = uniform_u32(4096, i as u64);
                r.sort_unstable();
                r
            })
            .collect();
        let slices: Vec<&[U32Rec]> = runs.iter().map(Vec::as_slice).collect();
        let elems = Throughput::Elements((fan_in * 4096) as u64);
        bench("kway_merge", &format!("heap/{fan_in}"), elems, || {
            kway_merge(black_box(&slices))
        });
        bench("kway_merge", &format!("loser_tree/{fan_in}"), elems, || {
            loser_tree_merge(black_box(&slices))
        });
    }
}

fn main() {
    header("components");
    bench_bitonic_networks();
    bench_half_merger();
    bench_presorter();
    bench_kmerger_cycles();
    bench_kway_merge();
}
