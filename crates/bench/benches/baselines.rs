//! Criterion benchmarks of the CPU baseline sorters on the host.

use bonsai_amt::functional;
use bonsai_baselines::radix::parallel_radix_sort;
use bonsai_gensort::dist::uniform_u32;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_host_sorters(c: &mut Criterion) {
    let mut g = c.benchmark_group("host_sorters");
    g.sample_size(10);
    for log_n in [16u32, 20] {
        let n = 1usize << log_n;
        let data = uniform_u32(n, u64::from(log_n));
        g.throughput(Throughput::Bytes(4 * n as u64));
        g.bench_with_input(BenchmarkId::new("std_sort_unstable", n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                d.sort_unstable();
                black_box(d)
            })
        });
        g.bench_with_input(BenchmarkId::new("radix_1_thread", n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                parallel_radix_sort(&mut d, 1);
                black_box(d)
            })
        });
        g.bench_with_input(BenchmarkId::new("radix_4_threads", n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                parallel_radix_sort(&mut d, 4);
                black_box(d)
            })
        });
        g.bench_with_input(BenchmarkId::new("amt_functional_l256", n), &n, |b, _| {
            b.iter(|| functional::sort_balanced(black_box(data.clone()), 256, 16))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_host_sorters);
criterion_main!(benches);
