//! Micro-benchmarks of the CPU baseline sorters on the host.

use bonsai_amt::functional;
use bonsai_baselines::radix::parallel_radix_sort;
use bonsai_bench::harness::{bench, header, Throughput};
use bonsai_gensort::dist::uniform_u32;
use std::hint::black_box;

fn main() {
    header("host_sorters");
    for log_n in [16u32, 20] {
        let n = 1usize << log_n;
        let data = uniform_u32(n, u64::from(log_n));
        let bytes = Throughput::Bytes(4 * n as u64);
        bench(
            "host_sorters",
            &format!("std_sort_unstable/{n}"),
            bytes,
            || {
                let mut d = data.clone();
                d.sort_unstable();
                black_box(d)
            },
        );
        bench(
            "host_sorters",
            &format!("radix_1_thread/{n}"),
            bytes,
            || {
                let mut d = data.clone();
                parallel_radix_sort(&mut d, 1);
                black_box(d)
            },
        );
        bench(
            "host_sorters",
            &format!("radix_4_threads/{n}"),
            bytes,
            || {
                let mut d = data.clone();
                parallel_radix_sort(&mut d, 4);
                black_box(d)
            },
        );
        bench(
            "host_sorters",
            &format!("amt_functional_l256/{n}"),
            bytes,
            || functional::sort_balanced(black_box(data.clone()), 256, 16),
        );
    }
}
