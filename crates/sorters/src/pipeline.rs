//! Discrete-event model of AMT pipelining (§III-A3, Figure 4).
//!
//! A `λ_pipe`-deep pipeline assigns each merge stage of the sort to a
//! different AMT: array `a` occupies stage `s` while array `a+1`
//! occupies stage `s-1`, so data is read from and written to the I/O bus
//! at a constant rate and the bus never idles. This module simulates
//! that schedule at array granularity — each (array, stage) occupancy is
//! one event whose duration comes from the stage's sustained rate — and
//! measures the steady-state throughput and per-array latency that
//! Equations 3 and 4 predict.

use bonsai_check::Diagnostic;

use crate::calibration::STREAM_EFFICIENCY;

/// Configuration of a pipelined sorting run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Pipeline depth `λ_pipe` (one AMT per merge stage).
    pub depth: usize,
    /// Per-stage AMT throughput `p·f·r` in bytes/s.
    pub tree_rate: f64,
    /// Total DRAM bandwidth in bytes/s, shared by the stages.
    pub beta_dram: f64,
    /// I/O bus bandwidth in bytes/s (array ingress and egress).
    pub beta_io: f64,
}

impl PipelineConfig {
    /// The paper's SSD phase-one pipeline: 4× AMT(8, 64) on the F1
    /// (8 GB/s trees, 32 GB/s DRAM over 4 banks, 8 GB/s I/O).
    pub fn ssd_phase_one() -> Self {
        Self {
            depth: 4,
            tree_rate: 8e9,
            beta_dram: 32e9,
            beta_io: 8e9,
        }
    }

    /// Checks the configuration, reporting a `BON024` diagnostic for a
    /// zero pipeline depth (which would otherwise make [`Self::eq3_rate`]
    /// silently return `inf` from the `β_DRAM / λ_pipe` term).
    pub fn validate(&self) -> Vec<Diagnostic> {
        bonsai_check::check_copies(1, self.depth)
    }

    /// The Equation 3 stage rate: `min(p·f·r, β_DRAM/λ_pipe, β_I/O)`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`Self::validate`] (zero
    /// pipeline depth).
    pub fn eq3_rate(&self) -> f64 {
        let diagnostics = self.validate();
        assert!(
            !bonsai_check::has_errors(&diagnostics),
            "invalid pipeline configuration: {diagnostics:?}"
        );
        self.tree_rate
            .min(self.beta_dram / self.depth as f64)
            .min(self.beta_io)
    }
}

/// Result of simulating a stream of arrays through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    /// Completion time of each array (seconds from stream start).
    pub completion_times: Vec<f64>,
    /// Latency of each array (completion − arrival at the bus).
    pub latencies: Vec<f64>,
    /// Total bytes sorted.
    pub total_bytes: u64,
}

impl PipelineRun {
    /// Steady-state throughput: bytes per second over the whole stream.
    pub fn throughput(&self) -> f64 {
        match self.completion_times.last() {
            Some(&end) if end > 0.0 => self.total_bytes as f64 / end,
            _ => 0.0,
        }
    }

    /// Mean per-array latency.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            0.0
        } else {
            self.latencies.iter().sum::<f64>() / self.latencies.len() as f64
        }
    }
}

/// Simulates `arrays` (each `array_bytes` long) streaming back-to-back
/// through the pipeline.
///
/// Event model: stage `s` of array `a` can start when (i) stage `s-1`
/// of array `a` has finished and (ii) stage `s` of array `a-1` has
/// freed the AMT. Stage duration is `array_bytes / (eq3-stage-rate ×
/// STREAM_EFFICIENCY)`; ingress and egress each occupy the I/O bus for
/// `array_bytes / β_I/O`.
///
/// # Panics
///
/// Panics if the configuration fails [`PipelineConfig::validate`]
/// (zero depth) or `array_bytes` is zero.
pub fn simulate(config: &PipelineConfig, arrays: usize, array_bytes: u64) -> PipelineRun {
    let diagnostics = config.validate();
    assert!(
        !bonsai_check::has_errors(&diagnostics),
        "invalid pipeline configuration: {diagnostics:?}"
    );
    assert!(array_bytes > 0, "arrays must be nonempty");
    // Per-stage processing rate: each stage gets an equal DRAM share and
    // cannot exceed its tree rate; the measured streaming derate applies.
    let stage_rate =
        config.tree_rate.min(config.beta_dram / config.depth as f64) * STREAM_EFFICIENCY;
    let stage_time = array_bytes as f64 / stage_rate;
    let io_time = array_bytes as f64 / config.beta_io;

    // stage_free[s]: when AMT s can next accept an array. The I/O bus
    // is full duplex (§III-A3: constant-rate reads AND writes), so
    // ingress and egress have independent channels.
    let mut stage_free = vec![0.0f64; config.depth];
    let mut in_bus_free = 0.0f64;
    let mut out_bus_free = 0.0f64;
    // Back-pressure: each stage's DRAM bank double-buffers one array, so
    // ingress of array a cannot begin before stage 0 started array a-1.
    let mut prev_stage0_start = 0.0f64;
    let mut completion_times = Vec::with_capacity(arrays);
    let mut latencies = Vec::with_capacity(arrays);

    for _ in 0..arrays {
        // Ingress: the array streams over the bus into stage 0's bank.
        let arrival = in_bus_free.max(prev_stage0_start);
        in_bus_free = arrival + io_time;
        let mut ready = in_bus_free;
        // The merge stages, each on its own AMT.
        for (s, free) in stage_free.iter_mut().enumerate() {
            let start = ready.max(*free);
            if s == 0 {
                prev_stage0_start = start;
            }
            let end = start + stage_time;
            *free = end;
            ready = end;
        }
        // Egress on the outbound channel.
        let out_start = ready.max(out_bus_free);
        let done = out_start + io_time;
        out_bus_free = done;
        completion_times.push(done);
        latencies.push(done - arrival);
    }
    PipelineRun {
        completion_times,
        latencies,
        total_bytes: arrays as u64 * array_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_depth_is_a_bon024_error_not_inf() {
        let cfg = PipelineConfig {
            depth: 0,
            ..PipelineConfig::ssd_phase_one()
        };
        let diagnostics = cfg.validate();
        assert!(bonsai_check::has_errors(&diagnostics));
        assert!(diagnostics
            .iter()
            .any(|d| d.code == bonsai_check::codes::COPIES_ZERO));
        assert!(std::panic::catch_unwind(|| cfg.eq3_rate()).is_err());
        assert!(PipelineConfig::ssd_phase_one().validate().is_empty());
    }

    #[test]
    fn steady_state_throughput_matches_eq3() {
        let cfg = PipelineConfig::ssd_phase_one();
        // Many arrays: startup transient amortizes away.
        let run = simulate(&cfg, 64, 8_000_000_000);
        let eq3 = cfg.eq3_rate() * STREAM_EFFICIENCY;
        let ratio = run.throughput() / eq3;
        assert!((0.85..1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_array_latency_matches_eq4_shape() {
        // Equation 4: latency = N·r·λ_pipe / throughput (plus bus time).
        let cfg = PipelineConfig::ssd_phase_one();
        let run = simulate(&cfg, 16, 8_000_000_000);
        let eq4 = 8e9 * cfg.depth as f64 / (cfg.eq3_rate() * STREAM_EFFICIENCY);
        // Eq. 4 counts merge-stage time; the simulated latency adds one
        // bus transfer at each end.
        let io_time = 2.0 * 8e9 / cfg.beta_io;
        let mean = run.mean_latency() - io_time;
        assert!(
            (mean / eq4 - 1.0).abs() < 0.15,
            "stage latency {mean:.1}s vs Eq.4 {eq4:.1}s"
        );
    }

    #[test]
    fn deeper_pipelines_trade_latency_for_constant_output() {
        let shallow = simulate(
            &PipelineConfig {
                depth: 2,
                ..PipelineConfig::ssd_phase_one()
            },
            32,
            8_000_000_000,
        );
        let deep = simulate(&PipelineConfig::ssd_phase_one(), 32, 8_000_000_000);
        // Depth-4 sorts more-merged data per trip, so its per-array
        // latency is higher...
        assert!(deep.mean_latency() > shallow.mean_latency());
        // ...but throughput is bus-bound for both (8 GB/s trees on a
        // 32 GB/s DRAM: neither depth starves the bus).
        let r = deep.throughput() / shallow.throughput();
        assert!((0.9..1.1).contains(&r), "{r}");
    }

    #[test]
    fn single_array_has_no_overlap_benefit() {
        let cfg = PipelineConfig::ssd_phase_one();
        let run = simulate(&cfg, 1, 8_000_000_000);
        assert_eq!(run.completion_times.len(), 1);
        assert!((run.latencies[0] - run.completion_times[0]).abs() < 1e-9);
    }

    #[test]
    fn dram_bound_pipelines_slow_per_stage() {
        // 16 GB/s trees on a 32 GB/s DRAM with depth 4: each stage gets
        // 8 GB/s, not 16 (Equation 3's beta/lambda term binds).
        let cfg = PipelineConfig {
            depth: 4,
            tree_rate: 16e9,
            beta_dram: 32e9,
            beta_io: 16e9,
        };
        assert!((cfg.eq3_rate() - 8e9).abs() < 1.0);
    }
}
