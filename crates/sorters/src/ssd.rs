//! The two-phase terabyte-scale SSD sorter of §IV-C.

use bonsai_amt::functional;
use bonsai_model::HardwareParams;
use bonsai_records::Record;

use crate::calibration::REPROGRAM_SECONDS;
use crate::dram::SorterError;
use crate::report::{Phase, SorterReport, Timing};

/// The two-phase SSD sorter (§IV-C, Figure 6):
///
/// - **Phase one** (throughput-optimal, pipelined `4× AMT(8, 64)`):
///   streams the input over the I/O bus and writes back DRAM-sized
///   sorted subsequences, saturating the 8 GB/s SSD bandwidth.
/// - **Reprogramming**: the FPGA is reconfigured to the phase-two
///   design (4.3 s measured, Table V).
/// - **Phase two** (latency-optimal `AMT(8, 256)`): merges 256 sorted
///   subsequences per stage, each stage one full SSD round trip.
///
/// 2 TB therefore sorts in one phase-two stage (`256 × 8 GB`), and
/// every further factor of 256 adds one more round trip — the paper's
/// 512 s for 2 TB and 8/3 GB/s up to 512 TB.
///
/// # Example
///
/// ```
/// use bonsai_model::HardwareParams;
/// use bonsai_sorters::SsdSorter;
///
/// let sorter = SsdSorter::new(HardwareParams::aws_f1_ssd());
/// let report = sorter.project(2_048_000_000_000, 4); // 2 TB
/// assert!((report.ms_per_gb() - 252.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct SsdSorter {
    hw: HardwareParams,
    /// Phase-one output run size in bytes (8 GB on F1, §IV-C).
    chunk_bytes: u64,
    /// Phase-two merge fan-in (256 on F1).
    phase2_leaves: usize,
    /// Run each phase on its own FPGA (Figure 6), eliminating the
    /// reprogramming gap. Table V measures the single-FPGA variant.
    dual_fpga: bool,
}

impl SsdSorter {
    /// Creates an SSD sorter for the given hardware (expects
    /// `hw.c_storage > 0` and `hw.beta_io` set to the SSD bandwidth).
    pub fn new(hw: HardwareParams) -> Self {
        Self {
            hw,
            chunk_bytes: 8_000_000_000,
            phase2_leaves: 256,
            dual_fpga: false,
        }
    }

    /// Deploys the two phases on two FPGAs (Figure 6), removing the
    /// reprogramming phase — the deployment Table I's 250 ms/GB assumes.
    #[must_use]
    pub fn with_dual_fpga(mut self) -> Self {
        self.dual_fpga = true;
        self
    }

    /// The target hardware.
    pub fn hardware(&self) -> &HardwareParams {
        &self.hw
    }

    /// Overrides the phase-one chunk size (testing / exploration).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero or exceeds DRAM capacity.
    #[must_use]
    pub fn with_chunk_bytes(mut self, chunk_bytes: u64) -> Self {
        assert!(
            chunk_bytes > 0 && chunk_bytes <= self.hw.c_dram,
            "chunk must fit in DRAM"
        );
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Number of phase-two merge stages for an array of `bytes`.
    pub fn phase2_stages(&self, bytes: u64) -> u32 {
        let runs = bytes.div_ceil(self.chunk_bytes);
        bonsai_records::run::stages_needed(runs, self.phase2_leaves as u64)
    }

    /// Projects the sorting time for `bytes` of `record_bytes`-wide
    /// records — the paper's own methodology for its terabyte results
    /// (§IV-C validated per phase in §VI-E).
    pub fn project(&self, bytes: u64, record_bytes: u64) -> SorterReport {
        let _ = record_bytes; // both phases stream at the I/O bound
        let io_secs = bytes as f64 / self.hw.beta_io;
        let mut phases = vec![Phase {
            name: "phase one (pipelined sort to 8 GB runs)".into(),
            seconds: io_secs,
            bytes_moved: 2 * bytes,
        }];
        let stages = self.phase2_stages(bytes);
        if stages > 0 {
            if !self.dual_fpga {
                phases.push(Phase {
                    name: "FPGA reprogramming".into(),
                    seconds: REPROGRAM_SECONDS,
                    bytes_moved: 0,
                });
            }
            for i in 1..=stages {
                phases.push(Phase {
                    name: format!("phase two merge stage {i}"),
                    seconds: io_secs,
                    bytes_moved: 2 * bytes,
                });
            }
        }
        SorterReport {
            name: "Bonsai SSD sorter".into(),
            config: format!(
                "phase 1: 4-pipe AMT(8, 64); phase 2: AMT(8, {})",
                self.phase2_leaves
            ),
            bytes,
            phases,
            timing: Timing::Modeled,
        }
    }

    /// Sorts `data` with the two-phase schedule (functional execution)
    /// and reports modeled timing for the target hardware.
    ///
    /// # Errors
    ///
    /// [`SorterError::TooLarge`] when the data exceeds SSD capacity.
    pub fn sort<R: Record>(&self, data: Vec<R>) -> Result<(Vec<R>, SorterReport), SorterError> {
        let bytes = (data.len() * R::WIDTH_BYTES) as u64;
        if self.hw.c_storage > 0 && bytes > self.hw.c_storage {
            return Err(SorterError::TooLarge {
                bytes,
                capacity: self.hw.c_storage,
            });
        }
        let report = self.project(bytes, R::WIDTH_BYTES as u64);

        // Phase one: sort each DRAM-sized chunk independently.
        let chunk_records = (self.chunk_bytes as usize / R::WIDTH_BYTES).max(1);
        let mut sorted = data;
        let mut run_bounds = Vec::new();
        let mut offset = 0;
        while offset < sorted.len() {
            let end = (offset + chunk_records).min(sorted.len());
            sorted[offset..end].sort_unstable();
            run_bounds.push(offset);
            offset = end;
        }
        // Phase two: merge the chunk runs 256 at a time.
        let runs = bonsai_records::run::RunSet::from_parts(sorted, run_bounds);
        let mut runs = runs;
        while runs.num_runs() > 1 {
            runs = functional::merge_pass(&runs, self.phase2_leaves);
        }
        Ok((runs.into_records(), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_gensort::dist::uniform_u32;

    fn sorter() -> SsdSorter {
        SsdSorter::new(HardwareParams::aws_f1_ssd())
    }

    const TB: u64 = 1_000_000_000_000;

    #[test]
    fn table_v_breakdown_for_2tb() {
        // Table V: phase one 256 s, reprogramming 4.3 s, phase two 256 s,
        // total 516.3 s (2 TiB = 2048 GB).
        let report = sorter().project(2_048_000_000_000, 4);
        assert_eq!(report.phases.len(), 3);
        assert!((report.phases[0].seconds - 256.0).abs() < 1.0);
        assert!((report.phases[1].seconds - 4.3).abs() < 1e-9);
        assert!((report.phases[2].seconds - 256.0).abs() < 1.0);
        assert!((report.seconds() - 516.3).abs() < 1.0);
    }

    #[test]
    fn table_i_ssd_points() {
        // Table I Bonsai row: 128 GB–2 TB at ~250 ms/GB (two SSD round
        // trips at 8 GB/s), 100 TB at 375 (three round trips). The
        // 4.3 s reprogramming adds up to ~34 ms/GB at the small end
        // (Table I quotes the idealized 250).
        for gb in [128u64, 512, 2048] {
            let ms = sorter().project(gb * 1_000_000_000, 4).ms_per_gb();
            let reprogram_ms = 4.3 * 1e3 / gb as f64;
            assert!((ms - 250.0 - reprogram_ms).abs() < 10.0, "{gb} GB: {ms:.0}");
        }
        let ms = sorter().project(100 * 1024 * 1_000_000_000, 4).ms_per_gb();
        assert!((ms - 375.0).abs() < 10.0, "100 TB: {ms:.0}");
    }

    #[test]
    fn stage_boundaries_follow_powers_of_256() {
        let s = sorter();
        // Up to 256 chunks (2.048 TB): one phase-two stage.
        assert_eq!(s.phase2_stages(2 * TB), 1);
        // Beyond: two stages up to 256^2 chunks (524 TB).
        assert_eq!(s.phase2_stages(4 * TB), 2);
        assert_eq!(s.phase2_stages(512 * TB), 2);
        // 17.3x claim vs TerabyteSort: 1 TB in ~254 s.
        let one_tb = s.project(TB, 4);
        assert!((one_tb.seconds() - (125.0 + 4.3 + 125.0)).abs() < 1.0);
    }

    #[test]
    fn dual_fpga_removes_reprogramming() {
        let single = sorter().project(2_048_000_000_000, 4);
        let dual = sorter().with_dual_fpga().project(2_048_000_000_000, 4);
        assert_eq!(dual.phases.len(), single.phases.len() - 1);
        assert!((single.seconds() - dual.seconds() - 4.3).abs() < 1e-9);
        assert!((dual.ms_per_gb() - 250.0).abs() < 1.0);
    }

    #[test]
    fn sorts_data_with_two_phase_schedule() {
        // Scale the chunk down so phase two actually merges many runs.
        let s = sorter().with_chunk_bytes(4_000);
        let data = uniform_u32(100_000, 9);
        let mut expected = data.clone();
        expected.sort_unstable();
        let (sorted, report) = s.sort(data).expect("fits");
        assert_eq!(sorted, expected);
        assert_eq!(report.timing, Timing::Modeled);
    }

    #[test]
    fn oversized_input_rejected() {
        let s = sorter();
        // 3 TB of pretend data exceeds the 2 TB SSD. Use project-level
        // check through sort() with an impossible length? Simulate via
        // capacity math instead: the report itself is still computable.
        assert!(s.hw.c_storage < 3 * TB);
        let report = s.project(3 * TB, 4);
        assert!(report.seconds() > 0.0);
    }
}
