//! End-to-end Bonsai sorting systems (§IV of the paper).
//!
//! Three complete sorters built from the AMT engine, the memory models
//! and the Bonsai optimizer:
//!
//! - [`DramSorter`]: the latency-optimized DRAM-scale sorter of §IV-A
//!   (single `AMT(32, 256)`-class tree on AWS F1),
//! - [`HbmSorter`]: the unrolled high-bandwidth-memory sorter of §IV-B
//!   (λ_unrl trees with idle-halving merge-down stages),
//! - [`SsdSorter`]: the two-phase terabyte-scale SSD sorter of §IV-C
//!   (throughput-optimal pipelined phase one, FPGA reprogramming,
//!   latency-optimal wide-leaf phase two).
//!
//! Each sorter really sorts data (through the fast functional path, or
//! cycle-accurately via [`DramSorter::simulate`]) and reports timing for
//! the *target hardware*, flagged by [`Timing`] as `Simulated` (from the
//! cycle-level engine) or `Modeled` (from the validated analytic model,
//! the paper's own methodology for projected results).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration;
mod dram;
pub mod external;
mod hbm;
pub mod pipeline;
mod report;
mod ssd;

pub use dram::{DramSorter, SorterError};
pub use external::{ExternalSortStats, ExternalSorter};
pub use hbm::HbmSorter;
pub use report::{Phase, SorterReport, Timing};
pub use ssd::SsdSorter;
