//! Calibration constants tying the analytic model to measured behavior.

/// Decimal gigabyte, the unit of all Table I / figure axes.
pub const GB: f64 = 1e9;

/// Effective fraction of nominal DRAM bandwidth a merge stage sustains
/// end to end.
///
/// Two sources agree on this value:
///
/// 1. **The paper's own numbers**: Figure 13 reports 129 ms/GB for
///    3-stage sorts and 172 ms/GB for 4-stage sorts on the 32 GB/s F1
///    DRAM, implying `3 / 0.129 ≈ 4 / 0.172 ≈ 23.3 GB/s` sustained —
///    0.727 of nominal (the paper's footnote already concedes 29 GB/s
///    measured peak; burst setup, run boundaries and queueing take the
///    rest).
/// 2. **Our cycle-level simulator**: full-tree stages sustain 0.72–0.92
///    of nominal depending on entry-rate slack (see
///    `bonsai-amt::schedule`).
pub const DRAM_STAGE_EFFICIENCY: f64 = 0.727;

/// FPGA reprogramming time between SSD-sorter phases (measured 4.3 s in
/// §VI-E, Table V).
pub const REPROGRAM_SECONDS: f64 = 4.3;

/// Streaming (single-pass, pipelined) efficiency against nominal
/// bandwidth: the paper measures its phase-one pipeline at 7.19 GB/s on
/// the nominal 8 GB/s bound (§VI-C2), i.e. ~0.9 — higher than
/// [`DRAM_STAGE_EFFICIENCY`] because a unidirectional stream suffers no
/// run-boundary or queueing losses, only burst setup.
pub const STREAM_EFFICIENCY: f64 = 0.9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_reproduces_figure_13_steps() {
        let beta_eff = 32.0 * DRAM_STAGE_EFFICIENCY; // GB/s
        let ms_per_gb_3 = 3.0 / beta_eff * 1e3;
        let ms_per_gb_4 = 4.0 / beta_eff * 1e3;
        assert!((ms_per_gb_3 - 129.0).abs() < 2.0, "{ms_per_gb_3}");
        assert!((ms_per_gb_4 - 172.0).abs() < 2.0, "{ms_per_gb_4}");
    }
}
