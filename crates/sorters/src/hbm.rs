//! The high-bandwidth-memory sorter of §IV-B.

use bonsai_amt::functional::kway_merge;
use bonsai_model::{ArrayParams, BonsaiOptimizer, HardwareParams};
use bonsai_records::run::RunSet;
use bonsai_records::Record;

use crate::calibration::DRAM_STAGE_EFFICIENCY;
use crate::dram::SorterError;
use crate::report::{Phase, SorterReport, Timing};

/// The unrolled HBM sorter (§IV-B): `λ_unrl` AMTs sort predefined
/// address ranges in parallel, then the remaining `log₂ λ` merge-down
/// stages run with half the trees idled each time ("half of the AMTs
/// are idled, and the remaining AMTs do one more merge stage").
///
/// # Example
///
/// ```
/// use bonsai_model::HardwareParams;
/// use bonsai_sorters::HbmSorter;
///
/// let sorter = HbmSorter::new(HardwareParams::hbm_u50());
/// let report = sorter.project(8_000_000_000, 4).expect("feasible");
/// // The HBM sorter beats the single-tree DRAM sorter handily.
/// assert!(report.ms_per_gb() < 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct HbmSorter {
    hw: HardwareParams,
    optimizer: BonsaiOptimizer,
}

impl HbmSorter {
    /// Creates an HBM sorter for the given hardware.
    pub fn new(hw: HardwareParams) -> Self {
        Self {
            hw,
            optimizer: BonsaiOptimizer::new(hw),
        }
    }

    /// The target hardware.
    pub fn hardware(&self) -> &HardwareParams {
        &self.hw
    }

    fn plan(&self, array: &ArrayParams) -> Result<bonsai_model::RankedConfig, SorterError> {
        if array.total_bytes() > self.hw.c_dram {
            return Err(SorterError::TooLarge {
                bytes: array.total_bytes(),
                capacity: self.hw.c_dram,
            });
        }
        // Unrolling is the whole point on HBM: take the best unrolled
        // configuration (the paper's §IV-B uses λ_unrl = 16).
        self.optimizer
            .ranked_by_latency(array)
            .into_iter()
            .find(|c| c.config.unroll > 1)
            .ok_or(SorterError::Infeasible)
    }

    /// Projects the sorting time for `bytes` of `record_bytes`-wide
    /// records: the parallel phase at full aggregate bandwidth, then
    /// `log₂ λ` merge-down stages with the active-tree count (and hence
    /// usable bandwidth) halving each stage.
    ///
    /// # Errors
    ///
    /// [`SorterError::TooLarge`] when the array exceeds HBM capacity,
    /// [`SorterError::Infeasible`] when no unrolled configuration fits.
    pub fn project(&self, bytes: u64, record_bytes: u64) -> Result<SorterReport, SorterError> {
        let array = ArrayParams::new(bytes / record_bytes, record_bytes);
        let plan = self.plan(&array)?;
        let lambda = plan.config.unroll;
        let p = plan.config.throughput_p;
        let tree_rate = p as f64 * self.hw.freq_hz * record_bytes as f64;
        let beta_eff = self.hw.beta_dram * DRAM_STAGE_EFFICIENCY;

        let mut phases = Vec::new();
        // Parallel phase: every tree sorts its own address range.
        let per_tree_bytes = bytes as f64 / lambda as f64;
        let rate = tree_rate.min(beta_eff / lambda as f64);
        for i in 1..=plan.stages {
            phases.push(Phase {
                name: format!("parallel stage {i} ({lambda} trees)"),
                seconds: per_tree_bytes / rate,
                bytes_moved: 2 * bytes,
            });
        }
        // Merge-down: λ runs -> 1, halving active trees each stage.
        let mut active = lambda;
        let mut step = 1;
        while active > 1 {
            let pairs = active / 2;
            let aggregate = (pairs as f64 * tree_rate).min(beta_eff);
            phases.push(Phase {
                name: format!("merge-down stage {step} ({pairs} trees active)"),
                seconds: bytes as f64 / aggregate,
                bytes_moved: 2 * bytes,
            });
            active = pairs;
            step += 1;
        }
        Ok(SorterReport {
            name: "Bonsai HBM sorter".into(),
            config: plan.config.to_string(),
            bytes,
            phases,
            timing: Timing::Modeled,
        })
    }

    /// Sorts `data` with the HBM schedule (functional execution):
    /// address-range partitions sorted independently, then pairwise
    /// merge-down.
    ///
    /// # Errors
    ///
    /// [`SorterError::TooLarge`] when the array exceeds HBM capacity,
    /// [`SorterError::Infeasible`] when no unrolled configuration fits.
    pub fn sort<R: Record>(&self, data: Vec<R>) -> Result<(Vec<R>, SorterReport), SorterError> {
        let array = ArrayParams::new(data.len() as u64, R::WIDTH_BYTES as u64);
        let plan = self.plan(&array)?;
        let report = self.project(array.total_bytes(), array.record_bytes)?;
        let lambda = plan.config.unroll;

        // Parallel phase: sort λ address ranges independently.
        let mut sorted = data;
        let n = sorted.len();
        let chunk = n.div_ceil(lambda).max(1);
        let mut starts = Vec::new();
        let mut off = 0;
        while off < n {
            let end = (off + chunk).min(n);
            sorted[off..end].sort_unstable();
            starts.push(off);
            off = end;
        }
        // Merge-down: pairwise merges until one run remains.
        let mut runs = RunSet::from_parts(sorted, starts);
        while runs.num_runs() > 1 {
            let mut records = Vec::with_capacity(runs.len());
            let mut new_starts = Vec::new();
            let mut i = 0;
            while i < runs.num_runs() {
                let merged = if i + 1 < runs.num_runs() {
                    kway_merge(&[runs.run(i), runs.run(i + 1)])
                } else {
                    runs.run(i).to_vec()
                };
                if !merged.is_empty() {
                    new_starts.push(records.len());
                    records.extend(merged);
                }
                i += 2;
            }
            runs = RunSet::from_parts(records, new_starts);
        }
        Ok((runs.into_records(), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_gensort::dist::uniform_u32;

    fn sorter() -> HbmSorter {
        HbmSorter::new(HardwareParams::hbm_u50())
    }

    #[test]
    fn hbm_beats_dram_sorter() {
        let hbm = sorter().project(8_000_000_000, 4).expect("feasible");
        let dram = crate::DramSorter::new(HardwareParams::aws_f1())
            .project(8_000_000_000, 4)
            .expect("feasible");
        assert!(
            hbm.seconds() < dram.seconds() / 2.0,
            "hbm {:.3}s dram {:.3}s",
            hbm.seconds(),
            dram.seconds()
        );
    }

    #[test]
    fn merge_down_halves_active_trees() {
        let report = sorter().project(8_000_000_000, 4).expect("feasible");
        let merge_down: Vec<&Phase> = report
            .phases
            .iter()
            .filter(|p| p.name.contains("merge-down"))
            .collect();
        assert!(!merge_down.is_empty());
        // Later merge-down stages have less aggregate bandwidth and thus
        // take at least as long.
        assert!(merge_down
            .windows(2)
            .all(|w| w[0].seconds <= w[1].seconds + 1e-12));
    }

    #[test]
    fn sorts_correctly() {
        let data = uniform_u32(150_000, 17);
        let mut expected = data.clone();
        expected.sort_unstable();
        let (sorted, report) = sorter().sort(data).expect("fits");
        assert_eq!(sorted, expected);
        assert_eq!(report.timing, Timing::Modeled);
    }

    #[test]
    fn oversized_input_rejected() {
        let err = sorter().project(32_000_000_000, 4).unwrap_err();
        assert!(matches!(err, SorterError::TooLarge { .. }));
    }
}
