//! The DRAM-scale sorter of §IV-A.

use bonsai_amt::{functional, AmtConfig, SimEngine, SimEngineConfig};
use bonsai_memsim::{LoaderConfig, MemoryConfig};
use bonsai_model::{ArrayParams, BonsaiOptimizer, HardwareParams, RankedConfig};
use bonsai_records::Record;

use crate::calibration::DRAM_STAGE_EFFICIENCY;
use crate::report::{Phase, SorterReport, Timing};

/// Errors from the end-to-end sorters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SorterError {
    /// The array exceeds the sorter's memory capacity; use the SSD
    /// sorter instead (§IV-A: "for input size over 64 GB, the SSD
    /// sorter offers better performance").
    TooLarge {
        /// Requested array bytes.
        bytes: u64,
        /// Capacity of the sorter's memory in bytes.
        capacity: u64,
    },
    /// No AMT configuration fits the hardware.
    Infeasible,
}

impl core::fmt::Display for SorterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SorterError::TooLarge { bytes, capacity } => write!(
                f,
                "array of {bytes} bytes exceeds the {capacity}-byte memory"
            ),
            SorterError::Infeasible => write!(f, "no AMT configuration fits the hardware"),
        }
    }
}

impl std::error::Error for SorterError {}

/// The latency-optimized DRAM sorter (§IV-A): a single Bonsai-chosen
/// `AMT(p, ℓ)` that recursively merges the array in DRAM.
///
/// # Example
///
/// ```
/// use bonsai_model::HardwareParams;
/// use bonsai_sorters::DramSorter;
/// use bonsai_gensort::dist::uniform_u32;
///
/// let sorter = DramSorter::new(HardwareParams::aws_f1());
/// let data = uniform_u32(100_000, 7);
/// let (sorted, report) = sorter.sort(data)?;
/// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
/// assert!(report.seconds() > 0.0);
/// # Ok::<(), bonsai_sorters::SorterError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DramSorter {
    hw: HardwareParams,
    optimizer: BonsaiOptimizer,
}

impl DramSorter {
    /// Creates a DRAM sorter for the given hardware.
    pub fn new(hw: HardwareParams) -> Self {
        Self {
            hw,
            optimizer: BonsaiOptimizer::new(hw),
        }
    }

    /// The target hardware.
    pub fn hardware(&self) -> &HardwareParams {
        &self.hw
    }

    /// Picks the latency-optimal AMT configuration for `array`.
    ///
    /// # Errors
    ///
    /// [`SorterError::Infeasible`] when nothing fits the device,
    /// [`SorterError::TooLarge`] when the array exceeds DRAM.
    pub fn plan(&self, array: &ArrayParams) -> Result<RankedConfig, SorterError> {
        if array.total_bytes() > self.hw.c_dram {
            return Err(SorterError::TooLarge {
                bytes: array.total_bytes(),
                capacity: self.hw.c_dram,
            });
        }
        // §IV-A's DRAM sorter is a single AMT (the optimizer's ranked
        // list may also contain unrolled partitioned variants, which the
        // paper leaves to future work for DRAM — §III-A2 footnote).
        self.optimizer
            .ranked_by_latency(array)
            .into_iter()
            .find(|c| c.config.unroll == 1 && c.config.pipeline == 1)
            .ok_or(SorterError::Infeasible)
    }

    /// Sorts `data` through the AMT merge schedule (fast functional
    /// path) and reports modeled timing for the target hardware.
    ///
    /// # Errors
    ///
    /// See [`DramSorter::plan`].
    pub fn sort<R: Record>(&self, data: Vec<R>) -> Result<(Vec<R>, SorterReport), SorterError> {
        let array = ArrayParams::new(data.len() as u64, R::WIDTH_BYTES as u64);
        let plan = self.plan(&array)?;
        let (sorted, stages) =
            functional::sort_balanced(data, plan.config.leaves_l, plan.presort.max(1));
        debug_assert_eq!(stages, plan.stages);
        let report = self.modeled_report(&array, &plan);
        Ok((sorted, report))
    }

    /// Sorts `data` on the full cycle-approximate simulator (slower;
    /// intended for validation-sized inputs).
    ///
    /// # Errors
    ///
    /// See [`DramSorter::plan`].
    pub fn simulate<R: Record>(&self, data: Vec<R>) -> Result<(Vec<R>, SorterReport), SorterError> {
        let array = ArrayParams::new(data.len() as u64, R::WIDTH_BYTES as u64);
        let plan = self.plan(&array)?;
        let cfg = self.engine_config(&array, &plan);
        let (sorted, sim) = SimEngine::new(cfg).sort(data);
        Ok((sorted, self.simulated_report(&array, &plan, &sim)))
    }

    /// Like [`DramSorter::simulate`], but shards each merge pass across
    /// its independent merge groups on `workers` threads (`0` = one per
    /// core). The report is bit-identical for every worker count; see
    /// [`bonsai_amt::shard`] for the sharded timing model.
    ///
    /// # Errors
    ///
    /// See [`DramSorter::plan`].
    pub fn simulate_parallel<R: Record>(
        &self,
        data: Vec<R>,
        workers: usize,
    ) -> Result<(Vec<R>, SorterReport), SorterError> {
        let array = ArrayParams::new(data.len() as u64, R::WIDTH_BYTES as u64);
        let plan = self.plan(&array)?;
        let cfg = self.engine_config(&array, &plan);
        let (sorted, sim) = SimEngine::new(cfg).sort_sharded(data, workers);
        Ok((sorted, self.simulated_report(&array, &plan, &sim)))
    }

    /// The cycle-simulator configuration for this plan, with the memory
    /// model's bandwidth scaled to this sorter's hardware.
    fn engine_config(&self, array: &ArrayParams, plan: &RankedConfig) -> SimEngineConfig {
        let amt = AmtConfig::new(plan.config.throughput_p, plan.config.leaves_l);
        let scale = self.hw.beta_dram / 32e9;
        SimEngineConfig {
            amt,
            loader: LoaderConfig::paper_default(array.record_bytes),
            memory: MemoryConfig::ddr4_aws_f1().with_bandwidth_scale(scale),
            presort: (plan.presort > 1).then_some(plan.presort),
        }
    }

    fn simulated_report(
        &self,
        array: &ArrayParams,
        plan: &RankedConfig,
        sim: &bonsai_amt::SortReport,
    ) -> SorterReport {
        SorterReport {
            name: "Bonsai DRAM sorter".into(),
            config: plan.config.to_string(),
            bytes: array.total_bytes(),
            phases: sim
                .passes
                .iter()
                .map(|p| Phase {
                    name: format!("merge stage {}", p.stage),
                    seconds: p.cycles as f64 / sim.freq_hz,
                    bytes_moved: p.bytes_read + p.bytes_written,
                })
                .collect(),
            timing: Timing::Simulated,
        }
    }

    /// Projects the sorting time for an array of `bytes` without
    /// touching data — the methodology behind Table I and Figure 13.
    ///
    /// # Errors
    ///
    /// See [`DramSorter::plan`].
    pub fn project(&self, bytes: u64, record_bytes: u64) -> Result<SorterReport, SorterError> {
        let array = ArrayParams::new(bytes / record_bytes, record_bytes);
        let plan = self.plan(&array)?;
        Ok(self.modeled_report(&array, &plan))
    }

    fn modeled_report(&self, array: &ArrayParams, plan: &RankedConfig) -> SorterReport {
        // Each stage is one full read+write round trip at the sustained
        // (calibrated) share of DRAM bandwidth.
        let beta_eff = self.hw.beta_dram * DRAM_STAGE_EFFICIENCY;
        let bytes = array.total_bytes();
        let per_tree_bytes = bytes as f64 / plan.config.unroll as f64;
        let rate = (plan.config.throughput_p as f64 * self.hw.freq_hz * array.record_bytes as f64)
            .min(beta_eff / plan.config.unroll as f64);
        let phases = (1..=plan.stages)
            .map(|i| Phase {
                name: format!("merge stage {i}"),
                seconds: per_tree_bytes / rate,
                bytes_moved: 2 * bytes,
            })
            .collect();
        SorterReport {
            name: "Bonsai DRAM sorter".into(),
            config: plan.config.to_string(),
            bytes,
            phases,
            timing: Timing::Modeled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_gensort::dist::uniform_u32;

    fn sorter() -> DramSorter {
        DramSorter::new(HardwareParams::aws_f1())
    }

    #[test]
    fn sorts_and_reports() {
        let data = uniform_u32(200_000, 3);
        let mut expected = data.clone();
        expected.sort_unstable();
        let (sorted, report) = sorter().sort(data).expect("fits DRAM");
        assert_eq!(sorted, expected);
        assert_eq!(report.timing, Timing::Modeled);
        assert!(report.seconds() > 0.0);
    }

    #[test]
    fn simulate_agrees_with_functional_output() {
        // Large enough that per-stage pipeline-fill overheads are small
        // relative to steady-state streaming.
        let data = uniform_u32(400_000, 4);
        let (a, ra) = sorter().sort(data.clone()).expect("fits");
        let (b, rb) = sorter().simulate(data).expect("fits");
        assert_eq!(a, b, "both paths must produce identical output");
        assert_eq!(rb.timing, Timing::Simulated);
        // Simulated and modeled times agree within the validation band.
        let ratio = rb.seconds() / ra.seconds();
        assert!((0.5..1.7).contains(&ratio), "sim/model ratio {ratio}");
    }

    #[test]
    fn parallel_simulate_matches_serial_output() {
        let data = uniform_u32(100_000, 9);
        let (serial, _) = sorter().simulate(data.clone()).expect("fits");
        let (w1, r1) = sorter().simulate_parallel(data.clone(), 1).expect("fits");
        let (w4, r4) = sorter().simulate_parallel(data, 4).expect("fits");
        assert_eq!(serial, w1, "sharded path must sort identically");
        assert_eq!(w1, w4);
        assert_eq!(r1, r4, "reports must not depend on worker count");
    }

    #[test]
    fn projection_reproduces_table_i() {
        // Table I Bonsai row: 4–64 GB at 172 ms/GB.
        for gb in [4u64, 8, 16, 32, 64] {
            let report = sorter().project(gb * 1_000_000_000, 4).expect("fits");
            let ms = report.ms_per_gb();
            assert!(
                (ms - 172.0).abs() < 10.0,
                "{gb} GB: {ms:.0} ms/GB (paper: 172)"
            );
        }
    }

    #[test]
    fn small_arrays_take_three_stages() {
        // Figure 13: 0.5–2 GB sorts take 3 stages = 129 ms/GB.
        let report = sorter().project(1_000_000_000, 4).expect("fits");
        assert!(
            (report.ms_per_gb() - 129.0).abs() < 10.0,
            "{}",
            report.ms_per_gb()
        );
    }

    #[test]
    fn oversized_array_is_rejected() {
        let err = sorter().project(128_000_000_000, 4).unwrap_err();
        assert!(matches!(err, SorterError::TooLarge { .. }));
    }
}
