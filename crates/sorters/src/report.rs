//! Sorter-level reports.

use crate::calibration::GB;

/// Where a report's timing came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timing {
    /// Cycle-approximate simulation of the full datapath on real data.
    Simulated,
    /// The validated analytic model (the paper's methodology for sizes
    /// beyond what can be run directly, e.g. its SSD projections).
    Modeled,
}

/// One phase of a sorting system (e.g. "phase one", "reprogramming").
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Human-readable phase name.
    pub name: String,
    /// Phase duration in seconds.
    pub seconds: f64,
    /// Bytes moved through off-chip memory or I/O during the phase.
    pub bytes_moved: u64,
}

/// Timing report of an end-to-end sorter run.
#[derive(Debug, Clone, PartialEq)]
pub struct SorterReport {
    /// Sorter name ("Bonsai DRAM sorter", …).
    pub name: String,
    /// AMT configuration description.
    pub config: String,
    /// Bytes sorted.
    pub bytes: u64,
    /// Phases in execution order.
    pub phases: Vec<Phase>,
    /// Timing provenance.
    pub timing: Timing,
}

impl SorterReport {
    /// Total sorting time in seconds.
    pub fn seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Sorting time in milliseconds per (decimal) gigabyte — the Table I
    /// metric, lower is better.
    pub fn ms_per_gb(&self) -> f64 {
        if self.bytes == 0 {
            return 0.0;
        }
        self.seconds() * 1e3 / (self.bytes as f64 / GB)
    }

    /// End-to-end throughput in bytes/second.
    pub fn throughput(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.bytes as f64 / s
        }
    }

    /// Bandwidth-efficiency (§VI-C2): throughput over the available
    /// off-chip bandwidth.
    pub fn bandwidth_efficiency(&self, beta_bytes_per_sec: f64) -> f64 {
        self.throughput() / beta_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SorterReport {
        SorterReport {
            name: "test".into(),
            config: "AMT(32, 256)".into(),
            bytes: 8_000_000_000,
            phases: vec![
                Phase {
                    name: "merge".into(),
                    seconds: 1.0,
                    bytes_moved: 16_000_000_000,
                },
                Phase {
                    name: "io".into(),
                    seconds: 1.0,
                    bytes_moved: 8_000_000_000,
                },
            ],
            timing: Timing::Modeled,
        }
    }

    #[test]
    fn totals_add_up() {
        let r = report();
        assert!((r.seconds() - 2.0).abs() < 1e-12);
        assert!((r.ms_per_gb() - 250.0).abs() < 1e-9);
        assert!((r.throughput() - 4e9).abs() < 1e-3);
        assert!((r.bandwidth_efficiency(32e9) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = SorterReport {
            bytes: 0,
            phases: vec![],
            ..report()
        };
        assert_eq!(r.seconds(), 0.0);
        assert_eq!(r.ms_per_gb(), 0.0);
        assert_eq!(r.throughput(), 0.0);
    }
}
