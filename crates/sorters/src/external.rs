//! A real external merge sorter over files, structured exactly like the
//! paper's two-phase SSD sorter (§IV-C).
//!
//! Phase one reads the input in memory-budget-sized chunks, sorts each
//! with the AMT merge schedule, and writes sorted *run files* to a
//! scratch directory — the software image of "sort as much data as would
//! fit onto DRAM before sending the data back to SSD". Phase two
//! streams up to `fan_in` run files at a time through a k-way merge into
//! longer runs until one remains — one "SSD round trip" per pass, with
//! the same `ceil(log_fan_in(runs))` pass count the paper's model uses.

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bonsai_amt::functional;
use bonsai_records::wire::WireRecord;

/// Statistics from one external sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalSortStats {
    /// Records sorted.
    pub records: u64,
    /// Sorted run files produced by phase one.
    pub initial_runs: u64,
    /// Merge passes executed in phase two.
    pub merge_passes: u32,
    /// Total bytes written to scratch + output (write amplification
    /// numerator; the paper's per-stage round-trip accounting).
    pub bytes_written: u64,
}

/// Configuration of the external sorter.
#[derive(Debug, Clone)]
pub struct ExternalSorter {
    /// In-memory chunk budget in bytes (the "DRAM capacity").
    mem_budget_bytes: usize,
    /// Merge fan-in per pass (the phase-two `ℓ`; 256 in the paper).
    fan_in: usize,
    /// Scratch directory for run files.
    scratch_dir: PathBuf,
}

impl ExternalSorter {
    /// Creates an external sorter with the given memory budget, using
    /// the system temp directory for scratch files.
    ///
    /// # Panics
    ///
    /// Panics if `mem_budget_bytes` is zero or `fan_in < 2`.
    pub fn new(mem_budget_bytes: usize, fan_in: usize) -> Self {
        assert!(mem_budget_bytes > 0, "memory budget must be positive");
        assert!(fan_in >= 2, "merge fan-in must be at least 2");
        let mut scratch_dir = std::env::temp_dir();
        scratch_dir.push(format!("bonsai-external-{}", std::process::id()));
        Self {
            mem_budget_bytes,
            fan_in,
            scratch_dir,
        }
    }

    /// Overrides the scratch directory.
    #[must_use]
    pub fn with_scratch_dir(mut self, dir: PathBuf) -> Self {
        self.scratch_dir = dir;
        self
    }

    /// Sorts the wire-format record file `input` into `output`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; fails with `InvalidData` on ragged files.
    pub fn sort_file<R: WireRecord>(
        &self,
        input: &Path,
        output: &Path,
    ) -> io::Result<ExternalSortStats> {
        fs::create_dir_all(&self.scratch_dir)?;
        let result = self.sort_file_inner::<R>(input, output);
        let _ = fs::remove_dir_all(&self.scratch_dir);
        result
    }

    fn sort_file_inner<R: WireRecord>(
        &self,
        input: &Path,
        output: &Path,
    ) -> io::Result<ExternalSortStats> {
        let chunk_records = (self.mem_budget_bytes / R::WIRE_BYTES).max(1);
        let mut stats = ExternalSortStats {
            records: 0,
            initial_runs: 0,
            merge_passes: 0,
            bytes_written: 0,
        };

        // Phase one: chunk -> AMT schedule sort in memory -> run file.
        let mut reader = RecordReader::<R>::open(input)?;
        let mut runs: Vec<PathBuf> = Vec::new();
        loop {
            let chunk = reader.read_chunk(chunk_records)?;
            if chunk.is_empty() {
                break;
            }
            stats.records += chunk.len() as u64;
            let (sorted, _) = functional::sort_balanced(chunk, self.fan_in.max(2), 16);
            let path = self.scratch_dir.join(format!("run-0-{}.bin", runs.len()));
            stats.bytes_written += write_run(&path, &sorted)?;
            runs.push(path);
        }
        stats.initial_runs = runs.len() as u64;
        if runs.is_empty() {
            File::create(output)?;
            return Ok(stats);
        }

        // Phase two: repeated fan-in-way merge passes over run files.
        let mut pass = 1;
        while runs.len() > 1 {
            let mut next: Vec<PathBuf> = Vec::new();
            for (g, group) in runs.chunks(self.fan_in).enumerate() {
                let path = self.scratch_dir.join(format!("run-{pass}-{g}.bin"));
                stats.bytes_written += merge_run_files::<R>(group, &path)?;
                next.push(path);
            }
            for old in &runs {
                let _ = fs::remove_file(old);
            }
            runs = next;
            stats.merge_passes += 1;
            pass += 1;
        }
        fs::rename(&runs[0], output).or_else(|_| fs::copy(&runs[0], output).map(|_| ()))?;
        Ok(stats)
    }
}

/// Buffered fixed-width record reader.
struct RecordReader<R> {
    inner: BufReader<File>,
    buf: Vec<u8>,
    _marker: core::marker::PhantomData<R>,
}

impl<R: WireRecord> RecordReader<R> {
    fn open(path: &Path) -> io::Result<Self> {
        Ok(Self {
            inner: BufReader::new(File::open(path)?),
            buf: vec![0u8; R::WIRE_BYTES],
            _marker: core::marker::PhantomData,
        })
    }

    fn read_one(&mut self) -> io::Result<Option<R>> {
        match self.inner.read_exact(&mut self.buf) {
            Ok(()) => Ok(Some(R::read_from(&self.buf))),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn read_chunk(&mut self, n: usize) -> io::Result<Vec<R>> {
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            match self.read_one()? {
                Some(r) => out.push(r),
                None => break,
            }
        }
        Ok(out)
    }
}

fn write_run<R: WireRecord>(path: &Path, records: &[R]) -> io::Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut buf = vec![0u8; R::WIRE_BYTES];
    for rec in records {
        rec.write_to(&mut buf);
        w.write_all(&buf)?;
    }
    w.flush()?;
    Ok((records.len() * R::WIRE_BYTES) as u64)
}

/// Streams a k-way merge of sorted run files into `output` (a software
/// loser-tree pass — one phase-two "stage").
fn merge_run_files<R: WireRecord>(inputs: &[PathBuf], output: &Path) -> io::Result<u64> {
    merge_readers::<R>(
        inputs
            .iter()
            .map(|p| RecordReader::open(p))
            .collect::<io::Result<Vec<_>>>()?,
        output,
    )
}

fn merge_readers<R: WireRecord>(
    mut readers: Vec<RecordReader<R>>,
    output: &Path,
) -> io::Result<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut heap: BinaryHeap<Reverse<(R, usize)>> = BinaryHeap::with_capacity(readers.len());
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(rec) = r.read_one()? {
            heap.push(Reverse((rec, i)));
        }
    }
    let mut w = BufWriter::new(File::create(output)?);
    let mut buf = vec![0u8; R::WIRE_BYTES];
    let mut written = 0u64;
    while let Some(Reverse((rec, i))) = heap.pop() {
        rec.write_to(&mut buf);
        w.write_all(&buf)?;
        written += R::WIRE_BYTES as u64;
        if let Some(next) = readers[i].read_one()? {
            heap.push(Reverse((next, i)));
        }
    }
    w.flush()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_gensort::dist::uniform_u32;
    use bonsai_gensort::io::{read_wire_file, valsort, write_wire_file};
    use bonsai_records::U32Rec;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "bonsai-external-test-{name}-{}",
            std::process::id()
        ));
        p
    }

    fn run_case(n: usize, budget: usize, fan_in: usize, name: &str) -> ExternalSortStats {
        let input = tmp(&format!("{name}-in"));
        let output = tmp(&format!("{name}-out"));
        let data = uniform_u32(n, n as u64 + 1);
        write_wire_file(&input, &data).expect("write input");

        let sorter =
            ExternalSorter::new(budget, fan_in).with_scratch_dir(tmp(&format!("{name}-scratch")));
        let stats = sorter.sort_file::<U32Rec>(&input, &output).expect("sort");

        let sorted: Vec<U32Rec> = read_wire_file(&output).expect("read output");
        let summary = valsort(&sorted);
        assert!(summary.is_sorted(), "{name}: output not sorted");
        assert_eq!(summary.records, n as u64);
        assert_eq!(
            summary.checksum,
            valsort(&data).checksum,
            "{name}: permutation"
        );

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
        stats
    }

    #[test]
    fn sorts_with_many_runs_and_multiple_passes() {
        // 50k records at 4 B, 8 KB budget -> 25 runs; fan-in 4 -> 3 passes.
        let stats = run_case(50_000, 8 * 1024, 4, "multi");
        assert_eq!(stats.initial_runs, 25);
        assert_eq!(stats.merge_passes, 3); // 25 -> 7 -> 2 -> 1
        assert_eq!(stats.records, 50_000);
    }

    #[test]
    fn single_chunk_skips_phase_two() {
        let stats = run_case(1_000, 1 << 20, 256, "single");
        assert_eq!(stats.initial_runs, 1);
        assert_eq!(stats.merge_passes, 0);
    }

    #[test]
    fn wide_fan_in_single_pass() {
        let stats = run_case(60_000, 4 * 1024, 256, "wide");
        assert_eq!(stats.initial_runs, 59);
        assert_eq!(stats.merge_passes, 1);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let input = tmp("empty-in");
        let output = tmp("empty-out");
        fs::write(&input, []).expect("write");
        let sorter = ExternalSorter::new(1024, 4).with_scratch_dir(tmp("empty-scratch"));
        let stats = sorter.sort_file::<U32Rec>(&input, &output).expect("sort");
        assert_eq!(stats.records, 0);
        assert_eq!(fs::metadata(&output).expect("exists").len(), 0);
        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn write_amplification_matches_pass_count() {
        // Each pass rewrites all data once: bytes_written =
        // (1 + merge_passes) * records * width.
        let stats = run_case(20_000, 4 * 1024, 4, "amp");
        let expected = (1 + stats.merge_passes as u64) * stats.records * 4;
        assert_eq!(stats.bytes_written, expected);
    }
}
