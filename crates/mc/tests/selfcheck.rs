//! Self-checks for the model checker: each failure class it claims to
//! detect is provoked by a minimal known-bad model, and known-good
//! models come back clean with a complete exploration.

use std::str::FromStr;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use bonsai_mc::{sync, Checker, Failure, Schedule};

#[test]
fn correct_mutex_counter_passes_and_explores_many_schedules() {
    let stats = Checker::new()
        .check(|| {
            let counter = Arc::new(sync::Mutex::named("counter", 0_u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    sync::thread::spawn(move || *counter.lock() += 1)
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock(), 2);
        })
        .expect("correct counter must have no failures");
    assert!(stats.complete, "exploration must finish within bounds");
    assert!(
        stats.schedules > 1,
        "two contending threads must yield more than one interleaving, got {}",
        stats.schedules
    );
}

#[test]
fn racy_read_modify_write_is_caught_as_assertion_panic() {
    // Classic lost update: load and store are separate scheduling
    // points, so a preemption in between drops one increment.
    let report = Checker::new()
        .check(|| {
            let counter = Arc::new(sync::atomic::AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    sync::thread::spawn(move || {
                        let seen = counter.load(Ordering::SeqCst);
                        counter.store(seen + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("the racy counter must be caught");
    match &report.failure {
        Failure::Panic { message, .. } => {
            assert!(
                message.contains("lost update"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected a panic failure, got {other:?}"),
    }
    assert!(!report.trace.is_empty(), "failure must carry a trace");
}

#[test]
fn ab_ba_lock_ordering_deadlocks() {
    let report = Checker::new()
        .check(|| {
            let a = Arc::new(sync::Mutex::named("a", ()));
            let b = Arc::new(sync::Mutex::named("b", ()));
            let t = {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                sync::thread::spawn(move || {
                    let _b = b.lock();
                    let _a = a.lock();
                })
            };
            {
                let _a = a.lock();
                let _b = b.lock();
            }
            t.join().unwrap();
        })
        .expect_err("AB-BA ordering must deadlock under some schedule");
    match &report.failure {
        Failure::Deadlock { blocked } => {
            assert_eq!(
                blocked.len(),
                2,
                "both threads must be blocked: {blocked:?}"
            );
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

#[test]
fn forgotten_notify_is_reported_as_lost_wakeup() {
    // The flag setter updates state but never notifies: the waiter's
    // predicate turns false while it stays parked forever.
    let report = Checker::new()
        .check(|| {
            let flag = Arc::new((
                sync::Mutex::named("flag", false),
                sync::Condvar::named("flag_set"),
            ));
            let waiter = {
                let flag = Arc::clone(&flag);
                sync::thread::spawn(move || {
                    let guard = flag.0.lock();
                    drop(flag.1.wait_while(guard, |set| !*set));
                })
            };
            *flag.0.lock() = true; // bug: no notify_one/notify_all
            waiter.join().unwrap();
        })
        .expect_err("missing notify must be caught");
    match &report.failure {
        Failure::LostWakeup { condvar, .. } => {
            assert!(
                condvar.contains("flag_set"),
                "report should name the condvar: {condvar}"
            );
        }
        other => panic!("expected a lost wakeup, got {other:?}"),
    }
}

#[test]
fn genuine_deadlock_is_not_misreported_as_lost_wakeup() {
    // The waiter's predicate never turns false — nobody sets the flag.
    // The probe must re-park it and classify this as a deadlock.
    let report = Checker::new()
        .check(|| {
            let flag = Arc::new((sync::Mutex::new(false), sync::Condvar::new()));
            let guard = flag.0.lock();
            drop(flag.1.wait_while(guard, |set| !*set));
        })
        .expect_err("waiting forever must be caught");
    assert!(
        matches!(report.failure, Failure::Deadlock { .. }),
        "expected deadlock, got {:?}",
        report.failure
    );
}

#[test]
fn failing_schedule_replays_to_the_same_failure() {
    let model = || {
        let counter = Arc::new(sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                sync::thread::spawn(move || {
                    let seen = counter.load(Ordering::SeqCst);
                    counter.store(seen + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    };
    let checker = Checker::new();
    let report = checker.check(model).expect_err("model is buggy");

    // Round-trip the schedule through its printed form, as a user
    // pasting it from a CI log would.
    let printed = report.schedule.to_string();
    let parsed = Schedule::from_str(&printed).expect("printed schedule must parse");
    assert_eq!(parsed, report.schedule);

    let replayed = checker
        .replay(&parsed, model)
        .expect("replaying the failing schedule must reproduce the failure");
    assert_eq!(
        std::mem::discriminant(&replayed.failure),
        std::mem::discriminant(&report.failure),
        "replay must reproduce the same failure class"
    );
}

#[test]
fn preemption_budget_zero_hides_the_race_and_budget_two_finds_it() {
    let model = || {
        let counter = Arc::new(sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                sync::thread::spawn(move || {
                    let seen = counter.load(Ordering::SeqCst);
                    counter.store(seen + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    };
    // With zero preemptions each thread runs its two atomic ops
    // back-to-back, so the lost update cannot manifest...
    let stats = Checker::new()
        .preemption_budget(0)
        .check(model)
        .expect("budget 0 cannot interleave load/store");
    assert!(stats.complete);
    // ...while a budget of two explores the racy interleaving.
    Checker::new()
        .preemption_budget(2)
        .check(model)
        .expect_err("budget 2 must expose the lost update");
}

#[test]
fn unbounded_exploration_matches_bounded_on_a_correct_model() {
    let model = || {
        let value = Arc::new(sync::Mutex::new(0_u8));
        let t = {
            let value = Arc::clone(&value);
            sync::thread::spawn(move || *value.lock() |= 1)
        };
        *value.lock() |= 2;
        t.join().unwrap();
        assert_eq!(*value.lock(), 3);
    };
    let bounded = Checker::new().check(model).expect("correct model");
    let unbounded = Checker::new()
        .unbounded_preemptions()
        .check(model)
        .expect("correct model");
    assert!(bounded.complete && unbounded.complete);
    assert!(
        unbounded.schedules >= bounded.schedules,
        "unbounded search covers at least the bounded space ({} vs {})",
        unbounded.schedules,
        bounded.schedules
    );
}

#[test]
fn livelock_bound_trips_on_a_spin_loop() {
    let report = Checker::new()
        .max_steps(200)
        .check(|| {
            let flag = Arc::new(sync::atomic::AtomicBool::new(false));
            // Nobody ever sets the flag; the spin loop burns steps
            // until the livelock bound trips.
            while !flag.load(Ordering::SeqCst) {}
        })
        .expect_err("unbounded spin must trip the step bound");
    assert!(
        matches!(report.failure, Failure::Livelock { .. }),
        "expected livelock, got {:?}",
        report.failure
    );
}

#[test]
fn report_display_names_the_failure_and_schedule() {
    let report = Checker::new()
        .check(|| {
            let a = Arc::new(sync::Mutex::named("left", ()));
            let b = Arc::new(sync::Mutex::named("right", ()));
            let t = {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                sync::thread::spawn(move || {
                    let _b = b.lock();
                    let _a = a.lock();
                })
            };
            let _a = a.lock();
            let _b = b.lock();
            drop((_a, _b));
            t.join().unwrap();
        })
        .expect_err("deadlock expected");
    let rendered = report.to_string();
    assert!(rendered.contains("deadlock"), "display: {rendered}");
    assert!(
        rendered.contains("schedule (replayable)"),
        "display: {rendered}"
    );
    assert!(
        rendered.contains("left") || rendered.contains("right"),
        "display: {rendered}"
    );
}
