//! Round-trip property tests for the `Schedule` print/parse contract.
//!
//! The dotted-index format is shared infrastructure: `bonsai-mc`
//! reports print schedules for `Checker::replay`, and the occupancy
//! prover's counterexample traces (`bonsai_check::prove::Trace`) reuse
//! the same grammar — so the contract is pinned here, property-style.

use bonsai_mc::Schedule;

/// `display(parse(s))` is canonical and `parse` is its left inverse.
fn roundtrip(s: &str) -> Schedule {
    let parsed: Schedule = s.parse().expect("parses");
    let printed = parsed.to_string();
    let reparsed: Schedule = printed.parse().expect("canonical form reparses");
    assert_eq!(reparsed, parsed, "{s:?} -> {printed:?} not a fixed point");
    parsed
}

#[test]
fn empty_forms_parse_to_the_default_schedule() {
    for s in ["", "   ", "(default)", " (default) "] {
        let parsed = roundtrip(s);
        assert!(parsed.choices().is_empty(), "{s:?}");
        assert_eq!(parsed, Schedule::default());
        assert_eq!(parsed.to_string(), "(default)");
    }
}

#[test]
fn single_step_roundtrips() {
    let parsed = roundtrip("7");
    assert_eq!(parsed.choices(), &[7]);
    assert_eq!(parsed.to_string(), "7");
}

#[test]
fn large_indices_roundtrip_exactly() {
    let max = usize::MAX;
    let s = format!("{max}.0.{max}");
    let parsed = roundtrip(&s);
    assert_eq!(parsed.choices(), &[max, 0, max]);
    assert_eq!(parsed.to_string(), s);
}

#[test]
fn interior_whitespace_is_tolerated_and_canonicalized() {
    let parsed = roundtrip(" 3 . 1 . 2 ");
    assert_eq!(parsed.choices(), &[3, 1, 2]);
    assert_eq!(parsed.to_string(), "3.1.2");
}

#[test]
fn randomized_schedules_roundtrip() {
    // xorshift64*: bonsai-mc deliberately has no dependencies, dev or
    // otherwise, so the property loop brings its own generator.
    let mut state = 0x9e37_79b9_97f4_a7c5_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for _ in 0..500 {
        let len = (next() % 20) as usize;
        let choices: Vec<usize> = (0..len)
            .map(|_| match next() % 3 {
                0 => (next() % 4) as usize,              // small, the common case
                1 => next() as usize,                    // full-width
                _ => usize::MAX - (next() % 2) as usize, // boundary
            })
            .collect();
        let rendered = if choices.is_empty() {
            "(default)".to_string()
        } else {
            choices
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(".")
        };
        let parsed = roundtrip(&rendered);
        assert_eq!(parsed.choices(), &choices[..], "{rendered:?}");
    }
}

#[test]
fn malformed_inputs_are_rejected_with_the_offending_component() {
    for bad in [
        "1..2",
        "a.b",
        "1.-2",
        "1.2.",
        ".",
        "0x10",
        "1,2",
        "(default).1",
        "18446744073709551616", // usize::MAX + 1 overflows the parse
    ] {
        let err = bad.parse::<Schedule>().expect_err(bad);
        assert!(err.starts_with("bad schedule component "), "{bad:?}: {err}");
    }
}
