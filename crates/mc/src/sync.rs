//! Model-checked synchronization shims.
//!
//! Drop-in lookalikes for the `std::sync` primitives the runtime uses,
//! routed through the execution controller so
//! that every acquire, wait, notify, atomic access, spawn and join is a
//! scheduling decision the explorer can branch on. Only meaningful
//! inside a [`crate::Checker`] run; constructing a shim outside one
//! panics with a descriptive message.
//!
//! The shims are deliberately narrower than `std`:
//!
//! - no `try_lock`, no wait timeouts (a model must not depend on time);
//! - condvars never wake spuriously — every wakeup in a trace has a
//!   cause, which is what makes lost-wakeup reports crisp;
//! - atomics are sequentially consistent regardless of the `Ordering`
//!   argument (the checker explores interleavings, not memory-model
//!   reorderings).

use std::cell::{Cell, RefCell, UnsafeCell};
use std::ops::{Deref, DerefMut};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Once};

use crate::controller::{Controller, McAbort, Tid};
use crate::facade::SyncOps;

thread_local! {
    /// The controller + tid of the model thread running on this real
    /// thread, if any.
    static CURRENT: RefCell<Option<(Arc<Controller>, Tid)>> = const { RefCell::new(None) };
    /// Set while model code runs so the global panic hook can suppress
    /// the (expected) teardown unwinds instead of spamming stderr.
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

pub(crate) fn set_current(controller: Arc<Controller>, tid: Tid) {
    CURRENT.with(|c| *c.borrow_mut() = Some((controller, tid)));
    IN_MODEL.with(|f| f.set(true));
}

pub(crate) fn clear_current() {
    IN_MODEL.with(|f| f.set(false));
    CURRENT.with(|c| *c.borrow_mut() = None);
}

fn current() -> (Arc<Controller>, Tid) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("bonsai-mc sync shims may only be used inside Checker::check / Checker::replay")
    })
}

/// Installs (once, process-wide) a panic hook that silences unwinds of
/// model threads; their payloads are captured and reported through
/// [`crate::Report`] instead.
pub(crate) fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(Cell::get) {
                return;
            }
            previous(info);
        }));
    });
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "model thread panicked".to_string())
}

/// Runs `f` as model thread `tid`, reporting its outcome to the
/// controller. Used for both the model main (tid 0) and spawned
/// threads.
pub(crate) fn run_model_thread(controller: &Arc<Controller>, tid: Tid, f: impl FnOnce()) {
    install_panic_hook();
    set_current(Arc::clone(controller), tid);
    controller.initial_park(tid);
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
    match outcome {
        Ok(()) => controller.thread_finished(tid, None),
        Err(payload) if payload.is::<McAbort>() => controller.thread_aborted(tid),
        Err(payload) => controller.thread_finished(tid, Some(panic_message(payload.as_ref()))),
    }
    clear_current();
}

// --- Mutex --------------------------------------------------------------

/// Model-checked [`std::sync::Mutex`] lookalike.
pub struct Mutex<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is serialized by the controller — at most
// one model thread holds the (virtual) lock, and only the lock holder
// constructs references into the cell.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T: Send> Mutex<T> {
    /// Creates a mutex registered with the active checker.
    pub fn new(value: T) -> Self {
        Self::named_opt(None, value)
    }

    /// Creates a mutex whose `name` appears in failure traces.
    pub fn named(name: &'static str, value: T) -> Self {
        Self::named_opt(Some(name), value)
    }

    fn named_opt(name: Option<&'static str>, value: T) -> Self {
        let (controller, _) = current();
        Self {
            id: controller.register_mutex(name),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the mutex, blocking (in model time) until free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (controller, tid) = current();
        controller.mutex_lock(tid, self.id);
        MutexGuard {
            mutex: self,
            controller,
            tid,
            armed: true,
        }
    }
}

/// Guard for a [`Mutex`]; releases through the controller on drop.
pub struct MutexGuard<'a, T: Send> {
    mutex: &'a Mutex<T>,
    controller: Arc<Controller>,
    tid: Tid,
    armed: bool,
}

impl<T: Send> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: this thread holds the virtual lock (see `Mutex`).
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: Send> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; exclusive by virtual lock ownership.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: Send> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            self.controller.mutex_unlock(self.tid, self.mutex.id);
        }
    }
}

// --- Condvar ------------------------------------------------------------

/// Model-checked [`std::sync::Condvar`] lookalike (no spurious
/// wakeups, no timeouts).
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// Creates a condvar registered with the active checker.
    #[must_use]
    pub fn new() -> Self {
        let (controller, _) = current();
        Self {
            id: controller.register_condvar(None),
        }
    }

    /// Creates a condvar whose `name` appears in failure traces.
    #[must_use]
    pub fn named(name: &'static str) -> Self {
        let (controller, _) = current();
        Self {
            id: controller.register_condvar(Some(name)),
        }
    }

    /// Blocks while `condition` returns `true`, releasing and
    /// re-acquiring the mutex around each wait, exactly like
    /// [`std::sync::Condvar::wait_while`].
    pub fn wait_while<'a, T: Send, F: FnMut(&mut T) -> bool>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> MutexGuard<'a, T> {
        loop {
            if !condition(&mut *guard) {
                return guard;
            }
            let mutex = guard.mutex;
            let controller = Arc::clone(&guard.controller);
            let tid = guard.tid;
            // Hand the unlock to the controller as part of the wait
            // transition (release + park is atomic in model time), so
            // the guard itself must not unlock on drop.
            guard.armed = false;
            drop(guard);
            controller.condvar_wait(tid, self.id, mutex.id);
            guard = MutexGuard {
                mutex,
                controller: Arc::clone(&controller),
                tid,
                armed: true,
            };
            if controller.probing(tid) {
                // Stuck-state probe: report whether this waiter could
                // in fact proceed. Never returns if it could (that is
                // a lost wakeup); otherwise we loop and re-park.
                let can_proceed = !condition(&mut *guard);
                controller.probe_verdict(tid, self.id, can_proceed);
            }
        }
    }

    /// Wakes one waiter (the checker branches over which).
    pub fn notify_one(&self) {
        let (controller, tid) = current();
        controller.notify(tid, self.id, false);
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        let (controller, tid) = current();
        controller.notify(tid, self.id, true);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

// --- Atomics ------------------------------------------------------------

/// Sequentially-consistent model-checked atomics. The `Ordering`
/// argument is accepted for signature compatibility and ignored.
pub mod atomic {
    use super::{current, Ordering, UnsafeCell};

    macro_rules! mc_atomic {
        ($name:ident, $prim:ty, $label:expr) => {
            /// Model-checked atomic; every access is a scheduling
            /// point explored by the checker.
            pub struct $name {
                id: usize,
                value: UnsafeCell<$prim>,
            }

            // SAFETY: all accesses go through `Controller::atomic_op`,
            // which runs them serialized under the controller lock.
            unsafe impl Send for $name {}
            unsafe impl Sync for $name {}

            impl $name {
                /// Creates the atomic registered with the active
                /// checker.
                #[must_use]
                pub fn new(value: $prim) -> Self {
                    let (controller, _) = current();
                    Self {
                        id: controller.register_atomic(Some($label)),
                        value: UnsafeCell::new(value),
                    }
                }

                fn op<R>(&self, name: &'static str, f: impl FnOnce(*mut $prim) -> R) -> R {
                    let (controller, tid) = current();
                    let ptr = self.value.get();
                    controller.atomic_op(tid, self.id, name, || f(ptr))
                }

                /// Loads the value (a scheduling point).
                #[must_use]
                pub fn load(&self, _order: Ordering) -> $prim {
                    // SAFETY: serialized by the controller.
                    self.op("load", |p| unsafe { *p })
                }

                /// Stores `value` (a scheduling point).
                pub fn store(&self, value: $prim, _order: Ordering) {
                    // SAFETY: serialized by the controller.
                    self.op("store", |p| unsafe { *p = value });
                }

                /// Adds `delta`, returning the previous value.
                pub fn fetch_add(&self, delta: $prim, _order: Ordering) -> $prim {
                    // SAFETY: serialized by the controller.
                    self.op("fetch_add", |p| unsafe {
                        let old = *p;
                        *p = old.wrapping_add(delta);
                        old
                    })
                }

                /// Swaps in `value`, returning the previous value.
                pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                    // SAFETY: serialized by the controller.
                    self.op("swap", |p| unsafe {
                        let old = *p;
                        *p = value;
                        old
                    })
                }
            }
        };
    }

    mc_atomic!(AtomicUsize, usize, "usize");

    /// Model-checked `AtomicBool`; every access is a scheduling point.
    pub struct AtomicBool {
        id: usize,
        value: UnsafeCell<bool>,
    }

    // SAFETY: accesses serialized via `Controller::atomic_op`.
    unsafe impl Send for AtomicBool {}
    unsafe impl Sync for AtomicBool {}

    impl AtomicBool {
        /// Creates the atomic registered with the active checker.
        #[must_use]
        pub fn new(value: bool) -> Self {
            let (controller, _) = current();
            Self {
                id: controller.register_atomic(Some("bool")),
                value: UnsafeCell::new(value),
            }
        }

        fn op<R>(&self, name: &'static str, f: impl FnOnce(*mut bool) -> R) -> R {
            let (controller, tid) = current();
            let ptr = self.value.get();
            controller.atomic_op(tid, self.id, name, || f(ptr))
        }

        /// Loads the value (a scheduling point).
        #[must_use]
        pub fn load(&self, _order: Ordering) -> bool {
            // SAFETY: serialized by the controller.
            self.op("load", |p| unsafe { *p })
        }

        /// Stores `value` (a scheduling point).
        pub fn store(&self, value: bool, _order: Ordering) {
            // SAFETY: serialized by the controller.
            self.op("store", |p| unsafe { *p = value });
        }

        /// Swaps in `value`, returning the previous value.
        pub fn swap(&self, value: bool, _order: Ordering) -> bool {
            // SAFETY: serialized by the controller.
            self.op("swap", |p| unsafe {
                let old = *p;
                *p = value;
                old
            })
        }
    }
}

// --- Threads ------------------------------------------------------------

/// Model-checked `std::thread` lookalike.
pub mod thread {
    use super::{current, run_model_thread, Arc, Tid};

    /// Handle to a spawned model thread.
    pub struct JoinHandle {
        tid: Tid,
    }

    impl JoinHandle {
        /// Waits (in model time) for the thread to finish.
        ///
        /// # Errors
        ///
        /// Never returns `Err` in practice: a panicking model thread
        /// aborts the whole execution with
        /// [`Failure::Panic`](crate::Failure::Panic) instead. The
        /// `Result` mirrors the `std` signature so facade code is
        /// identical in both worlds.
        pub fn join(self) -> Result<(), String> {
            let (controller, me) = current();
            controller.thread_join(me, self.tid);
            Ok(())
        }
    }

    /// Spawns a model thread; it becomes schedulable immediately and
    /// runs only when the explorer hands it the processor.
    pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
        let (controller, me) = current();
        let tid = controller.thread_spawn(me);
        let for_child = Arc::clone(&controller);
        let real = std::thread::Builder::new()
            .name(format!("bonsai-mc-{tid}"))
            .spawn(move || run_model_thread(&for_child, tid, f))
            .expect("bonsai-mc: failed to spawn model thread");
        controller.adopt_real_handle(real);
        JoinHandle { tid }
    }
}

// --- Facade implementation ----------------------------------------------

/// [`SyncOps`] implementation backed by the model-checked shims.
#[derive(Debug, Clone, Copy)]
pub struct McSync;

impl SyncOps for McSync {
    type Mutex<T: Send> = Mutex<T>;
    type Guard<'a, T: Send + 'a> = MutexGuard<'a, T>;
    type Condvar = Condvar;
    type JoinHandle = thread::JoinHandle;

    fn mutex<T: Send>(value: T) -> Self::Mutex<T> {
        Mutex::new(value)
    }

    fn mutex_named<T: Send>(name: &'static str, value: T) -> Self::Mutex<T> {
        Mutex::named(name, value)
    }

    fn lock<'a, T: Send>(mutex: &'a Self::Mutex<T>) -> Self::Guard<'a, T> {
        mutex.lock()
    }

    fn condvar() -> Self::Condvar {
        Condvar::new()
    }

    fn condvar_named(name: &'static str) -> Self::Condvar {
        Condvar::named(name)
    }

    fn wait_while<'a, T: Send, F: FnMut(&mut T) -> bool>(
        condvar: &Self::Condvar,
        _mutex: &'a Self::Mutex<T>,
        guard: Self::Guard<'a, T>,
        condition: F,
    ) -> Self::Guard<'a, T> {
        condvar.wait_while(guard, condition)
    }

    fn notify_one(condvar: &Self::Condvar) {
        condvar.notify_one();
    }

    fn notify_all(condvar: &Self::Condvar) {
        condvar.notify_all();
    }

    fn spawn<F: FnOnce() + Send + 'static>(f: F) -> Self::JoinHandle {
        thread::spawn(f)
    }

    fn join(handle: Self::JoinHandle) -> Result<(), String> {
        handle.join()
    }
}
