//! The sync facade: a trait over the handful of synchronization
//! primitives the Bonsai runtime uses, with a production implementation
//! backed by `std::sync` and a model-checked implementation backed by
//! the [`crate::sync`] shims.
//!
//! Code written against [`SyncOps`] runs unchanged in both worlds; the
//! `std` path compiles down to direct `std::sync` calls with zero
//! added indirection (every method is a monomorphized inline-able
//! static call, no vtables).

use std::ops::DerefMut;

/// The synchronization operations the runtime is generic over.
///
/// The contract mirrors `std::sync` semantics:
///
/// - [`SyncOps::wait_while`] blocks **while** the predicate returns
///   `true` (exactly like [`std::sync::Condvar::wait_while`]). The
///   predicate travels through the facade so the model checker can
///   re-evaluate it when probing a stuck state for lost wakeups.
/// - [`SyncOps::lock`] recovers from poisoning: the runtime's critical
///   sections never leave shared state mid-invariant on panic, and a
///   poisoned-lock abort would turn one failed job into a wedged pool.
/// - [`SyncOps::join`] surfaces a panicking thread as `Err` with a
///   best-effort message rather than propagating the payload.
pub trait SyncOps: Sized + Send + Sync + 'static {
    /// Mutual-exclusion cell.
    type Mutex<T: Send>: Send + Sync;
    /// RAII lock guard dereferencing to the protected value.
    type Guard<'a, T: Send + 'a>: DerefMut<Target = T>;
    /// Condition variable paired with `Self::Mutex`.
    type Condvar: Send + Sync;
    /// Handle to a spawned thread.
    type JoinHandle;

    /// Creates a mutex protecting `value`.
    fn mutex<T: Send>(value: T) -> Self::Mutex<T>;

    /// Creates a mutex with a debug name (shown in model-checker
    /// traces; the `std` implementation ignores it).
    fn mutex_named<T: Send>(name: &'static str, value: T) -> Self::Mutex<T> {
        let _ = name;
        Self::mutex(value)
    }

    /// Acquires `mutex`, blocking until it is free.
    fn lock<'a, T: Send>(mutex: &'a Self::Mutex<T>) -> Self::Guard<'a, T>;

    /// Creates a condition variable.
    fn condvar() -> Self::Condvar;

    /// Creates a condition variable with a debug name (shown in
    /// model-checker traces; the `std` implementation ignores it).
    fn condvar_named(name: &'static str) -> Self::Condvar {
        let _ = name;
        Self::condvar()
    }

    /// Releases `guard` and blocks on `condvar` while `condition`
    /// returns `true`; returns with the lock re-acquired and the
    /// condition `false`.
    fn wait_while<'a, T: Send, F: FnMut(&mut T) -> bool>(
        condvar: &Self::Condvar,
        mutex: &'a Self::Mutex<T>,
        guard: Self::Guard<'a, T>,
        condition: F,
    ) -> Self::Guard<'a, T>;

    /// Wakes one thread blocked on `condvar`.
    fn notify_one(condvar: &Self::Condvar);

    /// Wakes every thread blocked on `condvar`.
    fn notify_all(condvar: &Self::Condvar);

    /// Spawns a thread running `f`.
    fn spawn<F: FnOnce() + Send + 'static>(f: F) -> Self::JoinHandle;

    /// Joins a spawned thread.
    ///
    /// # Errors
    ///
    /// A best-effort panic message when the thread panicked.
    fn join(handle: Self::JoinHandle) -> Result<(), String>;
}

/// Production implementation: plain `std::sync` primitives.
#[derive(Debug, Clone, Copy)]
pub struct StdSync;

impl SyncOps for StdSync {
    type Mutex<T: Send> = std::sync::Mutex<T>;
    type Guard<'a, T: Send + 'a> = std::sync::MutexGuard<'a, T>;
    type Condvar = std::sync::Condvar;
    type JoinHandle = std::thread::JoinHandle<()>;

    fn mutex<T: Send>(value: T) -> Self::Mutex<T> {
        std::sync::Mutex::new(value)
    }

    fn lock<'a, T: Send>(mutex: &'a Self::Mutex<T>) -> Self::Guard<'a, T> {
        mutex
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn condvar() -> Self::Condvar {
        std::sync::Condvar::new()
    }

    fn wait_while<'a, T: Send, F: FnMut(&mut T) -> bool>(
        condvar: &Self::Condvar,
        _mutex: &'a Self::Mutex<T>,
        guard: Self::Guard<'a, T>,
        condition: F,
    ) -> Self::Guard<'a, T> {
        condvar
            .wait_while(guard, condition)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn notify_one(condvar: &Self::Condvar) {
        condvar.notify_one();
    }

    fn notify_all(condvar: &Self::Condvar) {
        condvar.notify_all();
    }

    fn spawn<F: FnOnce() + Send + 'static>(f: F) -> Self::JoinHandle {
        std::thread::spawn(f)
    }

    fn join(handle: Self::JoinHandle) -> Result<(), String> {
        handle.join().map_err(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker thread panicked".to_string())
        })
    }
}
