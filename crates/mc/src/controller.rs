//! The execution controller: serializes one model execution onto real
//! threads and records every scheduling decision.
//!
//! Exactly one model thread runs at any time. Every visible operation
//! (lock, wait, notify, atomic access, spawn, join) passes through a
//! *gate* where the controller may hand the processor to another
//! runnable thread. The sequence of gate decisions is the *schedule*;
//! replaying a schedule prefix reproduces an execution bit for bit,
//! which is what the DFS explorer in [`crate::Checker`] relies on.

use std::sync::{Arc, Condvar, Mutex};

/// Thread identifier inside one model execution (0 = the model main).
pub(crate) type Tid = usize;

/// Panic payload used to unwind model threads when an execution is torn
/// down (failure found, or exploration aborted). Never surfaced to the
/// user: the thread wrappers swallow it.
pub(crate) struct McAbort;

/// Why a model thread cannot currently run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    /// Waiting to acquire a shim mutex.
    Mutex(usize),
    /// Waiting on a shim condvar (the mutex it released on entry).
    Condvar { cv: usize, mutex: usize },
    /// Waiting for another model thread to finish.
    Join(Tid),
}

/// Scheduling state of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    Runnable,
    Blocked(Block),
    Finished,
}

/// One entry of the execution trace.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    Spawn(Tid),
    Lock(usize),
    LockBlocked(usize),
    Unlock(usize),
    Wait { cv: usize, mutex: usize },
    WakeFromWait(usize),
    Notify { cv: usize, all: bool, woken: usize },
    Atomic { name: &'static str, id: usize },
    Join(Tid),
    JoinBlocked(Tid),
    Finish,
    ProbeWake(usize),
    ProbeRepark(usize),
}

/// Why one explored execution failed. See [`crate::Failure`] for the
/// public projection.
#[derive(Debug, Clone)]
pub(crate) enum RawFailure {
    Deadlock { blocked: Vec<(Tid, Block)> },
    LostWakeup { thread: Tid, cv: usize },
    Livelock { steps: usize },
    Panic { thread: Tid, message: String },
}

/// The kind of a recorded scheduling choice, which determines whether
/// its unexplored alternatives cost preemption budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChoiceKind {
    /// Taken at an operation gate while the current thread was still
    /// runnable: option 0 is "continue the current thread", every other
    /// option is a preemption.
    OpStart,
    /// Taken because the current thread blocked or finished; all
    /// options are free.
    Forced,
    /// Which of several condvar waiters a `notify_one` wakes; free.
    NotifyPick,
}

/// One recorded branch point of the schedule.
#[derive(Debug, Clone)]
pub(crate) struct ChoicePoint {
    pub kind: ChoiceKind,
    /// Number of options that were available.
    pub options: usize,
    /// Index of the option taken this execution.
    pub taken: usize,
    /// Preemptions already spent when this choice was made.
    pub preemptions_before: usize,
}

struct MutexSt {
    held_by: Option<Tid>,
    name: Option<&'static str>,
}

struct CvSt {
    name: Option<&'static str>,
}

/// A stuck execution is probed one condvar waiter at a time: each
/// candidate is woken spuriously and re-evaluates its wait predicate.
struct Probe {
    /// The thread currently granted a probe wakeup.
    current: Option<Tid>,
    /// Remaining candidate waiters to probe.
    pending: Vec<Tid>,
}

pub(crate) struct Exec {
    /// Choice indices to replay before defaulting.
    schedule: Vec<usize>,
    pub(crate) choices: Vec<ChoicePoint>,
    pub(crate) trace: Vec<(Tid, Op)>,
    threads: Vec<TState>,
    /// Real handles of spawned model threads (main is held by the
    /// checker).
    real: Vec<std::thread::JoinHandle<()>>,
    active: Tid,
    preemptions: usize,
    max_preemptions: Option<usize>,
    steps: usize,
    max_steps: usize,
    mutexes: Vec<MutexSt>,
    condvars: Vec<CvSt>,
    atomics: Vec<Option<&'static str>>,
    pub(crate) failure: Option<RawFailure>,
    aborting: bool,
    done: bool,
    probe: Option<Probe>,
}

impl Exec {
    fn runnable_others(&self, me: Tid) -> Vec<Tid> {
        (0..self.threads.len())
            .filter(|&t| t != me && self.threads[t] == TState::Runnable)
            .collect()
    }

    fn live_blocked(&self) -> Vec<(Tid, Block)> {
        (0..self.threads.len())
            .filter_map(|t| match self.threads[t] {
                TState::Blocked(b) => Some((t, b)),
                _ => None,
            })
            .collect()
    }

    pub(crate) fn mutex_name(&self, id: usize) -> Option<&'static str> {
        self.mutexes.get(id).and_then(|m| m.name)
    }

    pub(crate) fn condvar_name(&self, id: usize) -> Option<&'static str> {
        self.condvars.get(id).and_then(|c| c.name)
    }

    pub(crate) fn atomic_name(&self, id: usize) -> Option<&'static str> {
        self.atomics.get(id).copied().flatten()
    }
}

/// Serializes one execution of the model closure.
pub(crate) struct Controller {
    state: Mutex<Exec>,
    cv: Condvar,
}

impl Controller {
    pub(crate) fn new(
        schedule: Vec<usize>,
        max_preemptions: Option<usize>,
        max_steps: usize,
    ) -> Self {
        Self {
            state: Mutex::new(Exec {
                schedule,
                choices: Vec::new(),
                trace: Vec::new(),
                threads: vec![TState::Runnable], // tid 0: model main
                real: Vec::new(),
                active: 0,
                preemptions: 0,
                max_preemptions,
                steps: 0,
                max_steps,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                atomics: Vec::new(),
                failure: None,
                aborting: false,
                done: false,
                probe: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Exec> {
        // The controller's own mutex is never poisoned on purpose:
        // model panics unwind through shim guards whose drops take this
        // lock, so recover instead of propagating.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    // --- registration ---------------------------------------------------

    pub(crate) fn register_mutex(&self, name: Option<&'static str>) -> usize {
        let mut ex = self.lock();
        ex.mutexes.push(MutexSt {
            held_by: None,
            name,
        });
        ex.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self, name: Option<&'static str>) -> usize {
        let mut ex = self.lock();
        ex.condvars.push(CvSt { name });
        ex.condvars.len() - 1
    }

    pub(crate) fn register_atomic(&self, name: Option<&'static str>) -> usize {
        let mut ex = self.lock();
        ex.atomics.push(name);
        ex.atomics.len() - 1
    }

    // --- scheduling core ------------------------------------------------

    /// Aborts the execution: wakes every parked thread so it can unwind
    /// with [`McAbort`].
    fn abort_all(&self, ex: &mut Exec) {
        ex.aborting = true;
        ex.done = true;
        self.cv.notify_all();
    }

    fn fail(&self, ex: &mut Exec, failure: RawFailure) -> ! {
        if ex.failure.is_none() {
            ex.failure = Some(failure);
        }
        self.abort_all(ex);
        std::panic::panic_any(McAbort);
    }

    /// Picks `options[idx]` where `idx` comes from the replay prefix or
    /// defaults to 0, recording the branch point when it is a real
    /// choice (more than one option).
    fn choose(&self, ex: &mut Exec, kind: ChoiceKind, options: &[Tid]) -> Tid {
        debug_assert!(!options.is_empty());
        if options.len() == 1 {
            return options[0];
        }
        let idx = if ex.choices.len() < ex.schedule.len() {
            let idx = ex.schedule[ex.choices.len()];
            assert!(
                idx < options.len(),
                "bonsai-mc internal error: schedule replay diverged \
                 (choice {} wants option {idx} of {})",
                ex.choices.len(),
                options.len()
            );
            idx
        } else {
            0
        };
        ex.choices.push(ChoicePoint {
            kind,
            options: options.len(),
            taken: idx,
            preemptions_before: ex.preemptions,
        });
        options[idx]
    }

    /// Parks the calling thread until it is scheduled again (or the
    /// execution aborts, in which case this never returns).
    fn park<'a>(
        &'a self,
        mut ex: std::sync::MutexGuard<'a, Exec>,
        me: Tid,
    ) -> std::sync::MutexGuard<'a, Exec> {
        loop {
            if ex.aborting {
                drop(ex);
                std::panic::panic_any(McAbort);
            }
            if ex.active == me && ex.threads[me] == TState::Runnable {
                return ex;
            }
            ex = self
                .cv
                .wait(ex)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The operation gate: called by the active thread right before a
    /// visible operation. May hand the processor to another runnable
    /// thread (a preemption); returns once `me` is active again.
    fn gate<'a>(
        &'a self,
        mut ex: std::sync::MutexGuard<'a, Exec>,
        me: Tid,
    ) -> std::sync::MutexGuard<'a, Exec> {
        if ex.aborting {
            drop(ex);
            std::panic::panic_any(McAbort);
        }
        ex.steps += 1;
        if ex.steps > ex.max_steps {
            let steps = ex.steps;
            self.fail(&mut ex, RawFailure::Livelock { steps });
        }
        let others = ex.runnable_others(me);
        if others.is_empty() {
            return ex;
        }
        // Alternatives beyond "continue me" are preemptions; once the
        // budget is spent the gate offers no choice at all. This must
        // not depend on whether we are replaying a prefix: preemption
        // counts evolve identically along a replayed prefix, so
        // recording and replay skip exactly the same gates.
        let budget_left = ex
            .max_preemptions
            .is_none_or(|budget| ex.preemptions < budget);
        if !budget_left {
            return ex;
        }
        let mut options = Vec::with_capacity(1 + others.len());
        options.push(me);
        options.extend(others);
        let chosen = self.choose(&mut ex, ChoiceKind::OpStart, &options);
        if chosen != me {
            ex.preemptions += 1;
            ex.active = chosen;
            self.cv.notify_all();
            ex = self.park(ex, me);
        }
        ex
    }

    /// Hands the processor onward after `me` blocked or finished.
    /// Handles the stuck case (nothing runnable): probing, deadlock
    /// classification, or normal completion.
    fn pass_on(&self, ex: &mut Exec, me: Tid) {
        let options = ex.runnable_others(me);
        match options.len() {
            0 => self.stuck(ex),
            1 => {
                ex.active = options[0];
                self.cv.notify_all();
            }
            _ => {
                let chosen = self.choose(ex, ChoiceKind::Forced, &options);
                ex.active = chosen;
                self.cv.notify_all();
            }
        }
    }

    /// No thread is runnable. Either everything finished (execution
    /// complete), or the survivors are blocked: probe condvar waiters
    /// for lost wakeups, then report deadlock.
    fn stuck(&self, ex: &mut Exec) {
        let blocked = ex.live_blocked();
        if blocked.is_empty() {
            ex.done = true;
            self.cv.notify_all();
            return;
        }
        // Wake each condvar waiter whose mutex is free: if its wait
        // predicate no longer holds, it was parked while able to
        // proceed — a lost wakeup.
        let candidates: Vec<Tid> = blocked
            .iter()
            .filter_map(|&(t, b)| match b {
                Block::Condvar { mutex, .. } if ex.mutexes[mutex].held_by.is_none() => Some(t),
                _ => None,
            })
            .collect();
        if let Some((&first, rest)) = candidates.split_first() {
            ex.probe = Some(Probe {
                current: Some(first),
                pending: rest.to_vec(),
            });
            let cv = match ex.threads[first] {
                TState::Blocked(Block::Condvar { cv, .. }) => cv,
                _ => unreachable!("probe candidates are condvar waiters"),
            };
            ex.trace.push((first, Op::ProbeWake(cv)));
            ex.threads[first] = TState::Runnable;
            ex.active = first;
            self.cv.notify_all();
        } else {
            let failure = RawFailure::Deadlock { blocked };
            if ex.failure.is_none() {
                ex.failure = Some(failure);
            }
            self.abort_all(ex);
        }
    }

    /// Whether `me` is currently executing a probe wakeup (so the shim
    /// `wait_while` must report its predicate verdict).
    pub(crate) fn probing(&self, me: Tid) -> bool {
        let ex = self.lock();
        ex.probe.as_ref().is_some_and(|p| p.current == Some(me))
    }

    /// Reports the probed thread's verdict. `can_proceed == true` means
    /// the wait predicate no longer holds — the thread was blocked on a
    /// wakeup nobody was ever going to send. Never returns in that
    /// case; otherwise the caller loops back into its wait.
    pub(crate) fn probe_verdict(&self, me: Tid, cv: usize, can_proceed: bool) {
        let mut ex = self.lock();
        if can_proceed {
            self.fail(&mut ex, RawFailure::LostWakeup { thread: me, cv });
        }
        if let Some(probe) = ex.probe.as_mut() {
            probe.current = None;
        }
    }

    // --- shim operations ------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: Tid, mid: usize) {
        let mut ex = self.gate(self.lock(), me);
        loop {
            if ex.mutexes[mid].held_by.is_none() {
                ex.mutexes[mid].held_by = Some(me);
                ex.trace.push((me, Op::Lock(mid)));
                return;
            }
            ex.trace.push((me, Op::LockBlocked(mid)));
            ex.threads[me] = TState::Blocked(Block::Mutex(mid));
            self.pass_on(&mut ex, me);
            ex = self.park(ex, me);
        }
    }

    fn release_mutex(&self, ex: &mut Exec, me: Tid, mid: usize) {
        debug_assert_eq!(ex.mutexes[mid].held_by, Some(me), "unlock by non-owner");
        ex.mutexes[mid].held_by = None;
        ex.trace.push((me, Op::Unlock(mid)));
        for t in 0..ex.threads.len() {
            if ex.threads[t] == TState::Blocked(Block::Mutex(mid)) {
                ex.threads[t] = TState::Runnable;
            }
        }
    }

    pub(crate) fn mutex_unlock(&self, me: Tid, mid: usize) {
        let mut ex = self.lock();
        if ex.aborting {
            // Guard drops during unwind: just update state, never park.
            ex.mutexes[mid].held_by = None;
            return;
        }
        self.release_mutex(&mut ex, me, mid);
    }

    /// Atomically releases `mid` and blocks on `cvid`; returns once the
    /// thread has been notified (or probed) *and* has reacquired `mid`.
    pub(crate) fn condvar_wait(&self, me: Tid, cvid: usize, mid: usize) {
        let mut ex = self.lock();
        let reparking = ex.probe.is_some();
        if reparking {
            // This thread was probed, re-evaluated its predicate and
            // decided to keep waiting. Repark it and move the probe to
            // the next candidate (or conclude deadlock).
            if let Some(probe) = ex.probe.as_mut() {
                probe.current = None;
            }
            ex.trace.push((me, Op::ProbeRepark(cvid)));
            debug_assert_eq!(ex.mutexes[mid].held_by, Some(me));
            ex.mutexes[mid].held_by = None;
            ex.threads[me] = TState::Blocked(Block::Condvar {
                cv: cvid,
                mutex: mid,
            });
            let mut pending = ex
                .probe
                .as_mut()
                .map(|p| std::mem::take(&mut p.pending))
                .unwrap_or_default();
            let mut next = None;
            while let Some(t) = pending.pop() {
                if matches!(ex.threads[t], TState::Blocked(Block::Condvar { .. })) {
                    next = Some(t);
                    break;
                }
            }
            if let Some(probe) = ex.probe.as_mut() {
                probe.pending = pending;
            }
            match next {
                Some(t) => {
                    let cv = match ex.threads[t] {
                        TState::Blocked(Block::Condvar { cv, .. }) => cv,
                        _ => unreachable!("probe candidates are condvar waiters"),
                    };
                    if let Some(probe) = ex.probe.as_mut() {
                        probe.current = Some(t);
                    }
                    ex.trace.push((t, Op::ProbeWake(cv)));
                    ex.threads[t] = TState::Runnable;
                    ex.active = t;
                    self.cv.notify_all();
                }
                None => {
                    ex.probe = None;
                    let blocked = ex.live_blocked();
                    let failure = RawFailure::Deadlock { blocked };
                    if ex.failure.is_none() {
                        ex.failure = Some(failure);
                    }
                    self.abort_all(&mut ex);
                }
            }
        } else {
            ex = self.gate(ex, me);
            self.release_mutex(&mut ex, me, mid);
            ex.trace.push((
                me,
                Op::Wait {
                    cv: cvid,
                    mutex: mid,
                },
            ));
            ex.threads[me] = TState::Blocked(Block::Condvar {
                cv: cvid,
                mutex: mid,
            });
            self.pass_on(&mut ex, me);
        }
        ex = self.park(ex, me);
        if ex.probe.as_ref().and_then(|p| p.current) != Some(me) {
            ex.trace.push((me, Op::WakeFromWait(cvid)));
        }
        // Reacquire the mutex before returning to the wait loop.
        loop {
            if ex.mutexes[mid].held_by.is_none() {
                ex.mutexes[mid].held_by = Some(me);
                return;
            }
            ex.threads[me] = TState::Blocked(Block::Mutex(mid));
            self.pass_on(&mut ex, me);
            ex = self.park(ex, me);
        }
    }

    pub(crate) fn notify(&self, me: Tid, cvid: usize, all: bool) {
        let mut ex = self.gate(self.lock(), me);
        let waiters: Vec<Tid> = (0..ex.threads.len())
            .filter(|&t| {
                matches!(ex.threads[t], TState::Blocked(Block::Condvar { cv, .. }) if cv == cvid)
            })
            .collect();
        if waiters.is_empty() {
            ex.trace.push((
                me,
                Op::Notify {
                    cv: cvid,
                    all,
                    woken: 0,
                },
            ));
            return;
        }
        if all {
            let woken = waiters.len();
            for t in waiters {
                ex.threads[t] = TState::Runnable;
            }
            ex.trace.push((
                me,
                Op::Notify {
                    cv: cvid,
                    all,
                    woken,
                },
            ));
        } else {
            // Which waiter a notify_one wakes is genuinely
            // nondeterministic: make it an explored (free) choice.
            let chosen = self.choose(&mut ex, ChoiceKind::NotifyPick, &waiters);
            ex.threads[chosen] = TState::Runnable;
            ex.trace.push((
                me,
                Op::Notify {
                    cv: cvid,
                    all,
                    woken: 1,
                },
            ));
        }
    }

    pub(crate) fn atomic_op<R>(
        &self,
        me: Tid,
        id: usize,
        name: &'static str,
        op: impl FnOnce() -> R,
    ) -> R {
        let mut ex = self.gate(self.lock(), me);
        let result = op();
        ex.trace.push((me, Op::Atomic { name, id }));
        result
    }

    /// Registers a new model thread and returns its tid. The real
    /// thread is spawned by the caller; it must park via
    /// [`Controller::initial_park`] before touching any model state.
    pub(crate) fn thread_spawn(&self, me: Tid) -> Tid {
        let mut ex = self.gate(self.lock(), me);
        let tid = ex.threads.len();
        assert!(
            tid < crate::MAX_THREADS,
            "bonsai-mc: model spawned more than {} threads",
            crate::MAX_THREADS
        );
        ex.threads.push(TState::Runnable);
        ex.trace.push((me, Op::Spawn(tid)));
        tid
    }

    pub(crate) fn adopt_real_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock().real.push(handle);
    }

    /// First park of a freshly spawned thread: waits until scheduled.
    pub(crate) fn initial_park(&self, me: Tid) {
        let ex = self.lock();
        drop(self.park(ex, me));
    }

    pub(crate) fn thread_join(&self, me: Tid, target: Tid) {
        let mut ex = self.gate(self.lock(), me);
        loop {
            if ex.threads[target] == TState::Finished {
                ex.trace.push((me, Op::Join(target)));
                return;
            }
            ex.trace.push((me, Op::JoinBlocked(target)));
            ex.threads[me] = TState::Blocked(Block::Join(target));
            self.pass_on(&mut ex, me);
            ex = self.park(ex, me);
        }
    }

    /// Marks `me` finished and schedules a successor. `panic_message`
    /// carries a real model panic (assertion failure etc.), which is a
    /// reportable failure.
    pub(crate) fn thread_finished(&self, me: Tid, panic_message: Option<String>) {
        let mut ex = self.lock();
        ex.threads[me] = TState::Finished;
        ex.trace.push((me, Op::Finish));
        if let Some(message) = panic_message {
            if ex.failure.is_none() {
                ex.failure = Some(RawFailure::Panic {
                    thread: me,
                    message,
                });
            }
            self.abort_all(&mut ex);
            return;
        }
        if ex.aborting {
            return;
        }
        for t in 0..ex.threads.len() {
            if ex.threads[t] == TState::Blocked(Block::Join(me)) {
                ex.threads[t] = TState::Runnable;
            }
        }
        self.pass_on(&mut ex, me);
    }

    /// Marks `me` torn down by an abort (no failure of its own).
    pub(crate) fn thread_aborted(&self, me: Tid) {
        let mut ex = self.lock();
        ex.threads[me] = TState::Finished;
    }

    // --- checker-side API -----------------------------------------------

    /// Blocks the checker until the execution completed or aborted.
    pub(crate) fn wait_done(&self) {
        let mut ex = self.lock();
        while !ex.done {
            ex = self
                .cv
                .wait(ex)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Takes the real handles of spawned model threads for joining.
    pub(crate) fn take_real_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.lock().real)
    }

    /// Consumes the execution record once every real thread has been
    /// joined.
    pub(crate) fn into_exec(self: Arc<Self>) -> Exec {
        let controller = Arc::try_unwrap(self)
            .unwrap_or_else(|_| panic!("bonsai-mc internal error: execution state still shared"));
        controller
            .state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
