//! `bonsai-mc` — a systematic concurrency model checker for the Bonsai
//! runtime, in the spirit of `loom` but dependency-free (this workspace
//! builds offline).
//!
//! A *model* is a closure that exercises a concurrent protocol using
//! the shims in [`sync`] (or any code generic over
//! [`facade::SyncOps`], instantiated with [`sync::McSync`]). The
//! [`Checker`] runs the model repeatedly, fully serializing its threads
//! and branching on every scheduling decision — which thread runs at
//! each operation, and which waiter a `notify_one` wakes — via a
//! depth-first search over schedule prefixes.
//!
//! Detected failures:
//!
//! - **Deadlock** — every live thread is blocked and no blocked waiter
//!   could proceed if woken.
//! - **Lost wakeup** — a condvar waiter is parked forever even though
//!   its wait predicate no longer holds (someone forgot a notify, or
//!   used `notify_one` where `notify_all` was required).
//! - **Livelock** — an execution exceeds the step bound.
//! - **Panic** — model code panicked (assertion failure, etc.).
//!
//! Any failure comes with a [`Report`]: a human-readable event trace
//! plus the [`Schedule`] that reproduces it deterministically via
//! [`Checker::replay`].
//!
//! # Exploration bounds
//!
//! Exhaustive search over all interleavings is exponential, so the
//! checker uses *iterative context bounding*: schedules are explored
//! exhaustively up to a budget of preemptions (scheduling switches at
//! points where the running thread could have continued). Switches at
//! blocking points are free. Empirically almost all concurrency bugs
//! manifest within two or three preemptions; a [`Stats::complete`]
//! result means the space within the budget was fully explored.
//!
//! ```
//! use bonsai_mc::{sync, Checker};
//! use std::sync::Arc;
//!
//! let stats = Checker::new()
//!     .check(|| {
//!         let lock = Arc::new(sync::Mutex::new(0_u32));
//!         let t = {
//!             let lock = Arc::clone(&lock);
//!             sync::thread::spawn(move || *lock.lock() += 1)
//!         };
//!         *lock.lock() += 1;
//!         t.join().unwrap();
//!         assert_eq!(*lock.lock(), 2);
//!     })
//!     .expect("no concurrency bugs");
//! assert!(stats.complete);
//! ```

mod controller;
pub mod facade;
pub mod sync;

pub use facade::{StdSync, SyncOps};

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use controller::{Block, ChoiceKind, Controller, Exec, Op, RawFailure};

/// Upper bound on model threads per execution; a model spawning more
/// is almost certainly a runaway loop, not a protocol worth checking.
pub(crate) const MAX_THREADS: usize = 16;

/// What one failed execution looked like. See [`Report`] for the
/// trace and reproduction schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// Every live thread is blocked and none could proceed if woken.
    Deadlock {
        /// Human-readable description of each blocked thread.
        blocked: Vec<String>,
    },
    /// A condvar waiter was parked forever although its wait predicate
    /// no longer holds.
    LostWakeup {
        /// The starved thread.
        thread: usize,
        /// The condvar it was parked on.
        condvar: String,
    },
    /// The execution exceeded the step bound without finishing.
    Livelock {
        /// Steps executed when the bound tripped.
        steps: usize,
    },
    /// Model code panicked.
    Panic {
        /// The panicking thread.
        thread: usize,
        /// The panic message.
        message: String,
    },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Deadlock { blocked } => {
                write!(f, "deadlock: ")?;
                for (i, b) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{b}")?;
                }
                Ok(())
            }
            Self::LostWakeup { thread, condvar } => write!(
                f,
                "lost wakeup: t{thread} parked on {condvar} although its predicate allows it to proceed"
            ),
            Self::Livelock { steps } => {
                write!(f, "livelock: no progress after {steps} steps")
            }
            Self::Panic { thread, message } => write!(f, "panic in t{thread}: {message}"),
        }
    }
}

/// A reproducible scheduling decision sequence. `Display` renders it
/// as dot-separated choice indices (e.g. `1.0.2`) suitable for pasting
/// into [`Checker::replay`] via [`Schedule::from_str`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule(Vec<usize>);

impl Schedule {
    /// The recorded choice indices.
    #[must_use]
    pub fn choices(&self) -> &[usize] {
        &self.0
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "(default)");
        }
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "(default)" {
            return Ok(Self(Vec::new()));
        }
        s.split('.')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad schedule component {part:?}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Self)
    }
}

/// Everything needed to understand and reproduce a failing execution.
#[derive(Debug, Clone)]
pub struct Report {
    /// What went wrong.
    pub failure: Failure,
    /// The schedule that reproduces the failure via
    /// [`Checker::replay`].
    pub schedule: Schedule,
    /// Human-readable event trace of the failing execution, one line
    /// per visible operation.
    pub trace: Vec<String>,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "bonsai-mc failure: {}", self.failure)?;
        writeln!(f, "schedule (replayable): {}", self.schedule)?;
        writeln!(f, "trace ({} events):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Report {}

/// Exploration statistics for a model with no detected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// Whether the search space (within the preemption budget) was
    /// fully explored, as opposed to cut off by
    /// [`Checker::max_schedules`].
    pub complete: bool,
}

/// The systematic scheduler/explorer. Construct with [`Checker::new`],
/// tune bounds with the builder methods, then call [`Checker::check`].
#[derive(Debug, Clone, Copy)]
pub struct Checker {
    preemption_budget: Option<usize>,
    max_steps: usize,
    max_schedules: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

impl Checker {
    /// Default bounds: 2 preemptions, 10 000 steps per execution,
    /// 100 000 schedules.
    #[must_use]
    pub fn new() -> Self {
        Self {
            preemption_budget: Some(2),
            max_steps: 10_000,
            max_schedules: 100_000,
        }
    }

    /// Sets the preemption budget (iterative context bound).
    #[must_use]
    pub fn preemption_budget(mut self, budget: usize) -> Self {
        self.preemption_budget = Some(budget);
        self
    }

    /// Removes the preemption budget: explore *every* interleaving.
    /// Only tractable for very small models.
    #[must_use]
    pub fn unbounded_preemptions(mut self) -> Self {
        self.preemption_budget = None;
        self
    }

    /// Sets the per-execution step bound (livelock detector).
    #[must_use]
    pub fn max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps;
        self
    }

    /// Sets the schedule-count cutoff. Hitting it yields
    /// `Stats { complete: false, .. }`, never a false failure.
    #[must_use]
    pub fn max_schedules(mut self, schedules: usize) -> Self {
        self.max_schedules = schedules;
        self
    }

    /// Explores the model. Returns exploration [`Stats`] when every
    /// explored schedule ran clean.
    ///
    /// # Errors
    ///
    /// The [`Report`] of the first failing schedule found.
    pub fn check<F>(&self, model: F) -> Result<Stats, Box<Report>>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model = Arc::new(model);
        let mut schedule: Vec<usize> = Vec::new();
        let mut schedules = 0_usize;
        loop {
            let exec = self.run_one(schedule, &model);
            schedules += 1;
            if exec.failure.is_some() {
                return Err(Box::new(make_report(&exec)));
            }
            match next_schedule(&exec, self.preemption_budget) {
                Some(next) => {
                    if schedules >= self.max_schedules {
                        return Ok(Stats {
                            schedules,
                            complete: false,
                        });
                    }
                    schedule = next;
                }
                None => {
                    return Ok(Stats {
                        schedules,
                        complete: true,
                    })
                }
            }
        }
    }

    /// Re-runs the model under one specific schedule (from a
    /// [`Report`], or parsed from its printed form). Returns the
    /// failure report it reproduces, or `None` if the execution ran
    /// clean (e.g. the bug was since fixed).
    pub fn replay<F>(&self, schedule: &Schedule, model: F) -> Option<Box<Report>>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model = Arc::new(model);
        let exec = self.run_one(schedule.0.clone(), &model);
        exec.failure.as_ref().map(|_| Box::new(make_report(&exec)))
    }

    /// Runs one fully-controlled execution of the model under the
    /// given schedule prefix.
    fn run_one<F>(&self, schedule: Vec<usize>, model: &Arc<F>) -> Exec
    where
        F: Fn() + Send + Sync + 'static,
    {
        let controller = Arc::new(Controller::new(
            schedule,
            self.preemption_budget,
            self.max_steps,
        ));
        let main = {
            let controller = Arc::clone(&controller);
            let model = Arc::clone(model);
            std::thread::Builder::new()
                .name("bonsai-mc-0".to_string())
                .spawn(move || sync::run_model_thread(&controller, 0, move || model()))
                .expect("bonsai-mc: failed to spawn model main thread")
        };
        controller.wait_done();
        main.join().expect("bonsai-mc: model main thread wedged");
        for handle in controller.take_real_handles() {
            handle
                .join()
                .expect("bonsai-mc: model worker thread wedged");
        }
        controller.into_exec()
    }
}

/// Computes the next DFS schedule prefix from a completed execution,
/// or `None` when the (budget-bounded) space is exhausted.
fn next_schedule(exec: &Exec, budget: Option<usize>) -> Option<Vec<usize>> {
    let mut choices = exec.choices.clone();
    loop {
        let point = choices.pop()?;
        let mut candidate = point.taken + 1;
        while candidate < point.options {
            let allowed = match point.kind {
                // Option 0 is "continue the current thread" (free);
                // everything else costs one preemption.
                ChoiceKind::OpStart => {
                    candidate == 0 || budget.is_none_or(|b| point.preemptions_before < b)
                }
                ChoiceKind::Forced | ChoiceKind::NotifyPick => true,
            };
            if allowed {
                let mut next: Vec<usize> = choices.iter().map(|c| c.taken).collect();
                next.push(candidate);
                return Some(next);
            }
            candidate += 1;
        }
    }
}

fn mutex_label(exec: &Exec, id: usize) -> String {
    exec.mutex_name(id)
        .map_or_else(|| format!("mutex#{id}"), |n| format!("mutex \"{n}\""))
}

fn condvar_label(exec: &Exec, id: usize) -> String {
    exec.condvar_name(id)
        .map_or_else(|| format!("condvar#{id}"), |n| format!("condvar \"{n}\""))
}

fn atomic_label(exec: &Exec, id: usize) -> String {
    exec.atomic_name(id)
        .map_or_else(|| format!("atomic#{id}"), |n| format!("atomic#{id} ({n})"))
}

fn block_label(exec: &Exec, tid: usize, block: Block) -> String {
    match block {
        Block::Mutex(m) => format!("t{tid} waiting to lock {}", mutex_label(exec, m)),
        Block::Condvar { cv, mutex } => format!(
            "t{tid} parked on {} (guards {})",
            condvar_label(exec, cv),
            mutex_label(exec, mutex)
        ),
        Block::Join(t) => format!("t{tid} joining t{t}"),
    }
}

fn make_report(exec: &Exec) -> Report {
    let failure = match exec
        .failure
        .as_ref()
        .expect("make_report called without failure")
    {
        RawFailure::Deadlock { blocked } => Failure::Deadlock {
            blocked: blocked
                .iter()
                .map(|&(tid, block)| block_label(exec, tid, block))
                .collect(),
        },
        RawFailure::LostWakeup { thread, cv } => Failure::LostWakeup {
            thread: *thread,
            condvar: condvar_label(exec, *cv),
        },
        RawFailure::Livelock { steps } => Failure::Livelock { steps: *steps },
        RawFailure::Panic { thread, message } => Failure::Panic {
            thread: *thread,
            message: message.clone(),
        },
    };
    let trace = exec
        .trace
        .iter()
        .map(|&(tid, ref op)| {
            let event = match *op {
                Op::Spawn(t) => format!("spawns t{t}"),
                Op::Lock(m) => format!("locks {}", mutex_label(exec, m)),
                Op::LockBlocked(m) => format!("blocks on {}", mutex_label(exec, m)),
                Op::Unlock(m) => format!("unlocks {}", mutex_label(exec, m)),
                Op::Wait { cv, mutex } => format!(
                    "waits on {} (releases {})",
                    condvar_label(exec, cv),
                    mutex_label(exec, mutex)
                ),
                Op::WakeFromWait(cv) => format!("wakes from {}", condvar_label(exec, cv)),
                Op::Notify { cv, all, woken } => format!(
                    "{} {} (woke {woken})",
                    if all { "notify_all" } else { "notify_one" },
                    condvar_label(exec, cv)
                ),
                Op::Atomic { name, id } => {
                    format!("atomic {name} on {}", atomic_label(exec, id))
                }
                Op::Join(t) => format!("joins t{t}"),
                Op::JoinBlocked(t) => format!("blocks joining t{t}"),
                Op::Finish => "finishes".to_string(),
                Op::ProbeWake(cv) => format!(
                    "probe: woken from {} to re-check its predicate",
                    condvar_label(exec, cv)
                ),
                Op::ProbeRepark(cv) => format!(
                    "probe: predicate still holds, re-parks on {}",
                    condvar_label(exec, cv)
                ),
            };
            format!("t{tid} {event}")
        })
        .collect();
    Report {
        failure,
        schedule: Schedule(exec.choices.iter().map(|c| c.taken).collect()),
        trace,
    }
}
