//! Randomized property tests for record ordering and run-set
//! invariants, driven by a seeded deterministic generator.

use bonsai_records::run::{initial_runs, is_sorted, stages_needed, RunSet};
use bonsai_records::{KvRec, Packed16, Record, U32Rec, U64Rec, W256Rec};
use bonsai_rng::Rng;

const CASES: usize = 256;

#[test]
fn u32_order_agrees_with_key_order() {
    let mut rng = Rng::seed_from_u64(0x5EC0_0001);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u32(), rng.next_u32());
        let (ra, rb) = (U32Rec::new(a), U32Rec::new(b));
        assert_eq!(ra.cmp(&rb), a.cmp(&b));
        assert_eq!(ra.key().cmp(&rb.key()), a.cmp(&b));
    }
}

#[test]
fn kv_order_is_key_major() {
    let mut rng = Rng::seed_from_u64(0x5EC0_0002);
    for _ in 0..CASES {
        let (k1, v1, k2, v2) = (
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        );
        let (ra, rb) = (KvRec::new(k1, v1), KvRec::new(k2, v2));
        if k1 != k2 {
            assert_eq!(ra.cmp(&rb), k1.cmp(&k2));
        }
    }
}

#[test]
fn packed16_order_is_key_major() {
    let mut rng = Rng::seed_from_u64(0x5EC0_0003);
    for _ in 0..CASES {
        let k1 = u128::from(rng.next_u64()) << 16 | u128::from(rng.next_u32() & 0xFFFF);
        let k2 = u128::from(rng.next_u64()) << 16 | u128::from(rng.next_u32() & 0xFFFF);
        let i1 = rng.next_u64() & ((1 << 48) - 1);
        let i2 = rng.next_u64() & ((1 << 48) - 1);
        let (ra, rb) = (Packed16::from_parts(k1, i1), Packed16::from_parts(k2, i2));
        if k1 != k2 {
            assert_eq!(ra.cmp(&rb), k1.cmp(&k2));
        } else {
            assert_eq!(ra.cmp(&rb), i1.cmp(&i2));
        }
    }
}

#[test]
fn sanitize_is_idempotent_and_nonterminal() {
    let mut rng = Rng::seed_from_u64(0x5EC0_0004);
    // Include the adversarial zero explicitly alongside random values.
    let mut cases = vec![0u64, 1, u64::MAX];
    cases.extend((0..CASES).map(|_| rng.next_u64()));
    for v in cases {
        let r = U64Rec::new(v).sanitize();
        assert!(!r.is_terminal());
        assert_eq!(r.sanitize(), r);
    }
}

#[test]
fn wide_sanitize_nonterminal() {
    let mut rng = Rng::seed_from_u64(0x5EC0_0005);
    let mut cases = vec![[0u64; 4]];
    cases.extend((0..CASES).map(|_| {
        [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ]
    }));
    for limbs in cases {
        assert!(!W256Rec::new(limbs).sanitize().is_terminal());
    }
}

#[test]
fn stages_needed_is_minimal() {
    let mut rng = Rng::seed_from_u64(0x5EC0_0006);
    for _ in 0..CASES {
        let n_runs = rng.range_u64(1, 999_999);
        let fan_in = rng.range_u64(2, 511);
        let s = stages_needed(n_runs, fan_in);
        // fan_in^s >= n_runs > fan_in^(s-1)
        let covers = fan_in.checked_pow(s).is_none_or(|c| c >= n_runs);
        assert!(covers, "fan_in^s must cover all runs");
        if s > 0 {
            let prev = fan_in.checked_pow(s - 1).expect("small exponent");
            assert!(prev < n_runs, "s must be minimal");
        }
    }
}

#[test]
fn initial_runs_covers_all_records() {
    let mut rng = Rng::seed_from_u64(0x5EC0_0007);
    for _ in 0..CASES {
        let n = rng.range_u64(1, 9_999_999);
        let presort = rng.range_u64(1, 63);
        let runs = initial_runs(n, presort);
        assert!(runs * presort >= n);
        assert!((runs - 1) * presort < n);
    }
}

#[test]
fn from_chunks_yields_sorted_runs() {
    let mut rng = Rng::seed_from_u64(0x5EC0_0008);
    for _ in 0..64 {
        let len = rng.below_usize(200);
        let chunk = rng.range_usize(1, 31);
        let vals: Vec<u32> = (0..len).map(|_| rng.next_u32().max(1)).collect();
        let data: Vec<U32Rec> = vals.iter().map(|&v| U32Rec::new(v)).collect();
        let rs = RunSet::from_chunks(data, chunk);
        assert!(rs.validate().is_ok());
        for run in rs.iter_runs() {
            assert!(is_sorted(run));
            assert!(run.len() <= chunk);
        }
        assert_eq!(rs.len(), vals.len());
    }
}
