//! Property-based tests for record ordering and run-set invariants.

use bonsai_records::run::{initial_runs, is_sorted, stages_needed, RunSet};
use bonsai_records::{KvRec, Packed16, Record, U32Rec, U64Rec, W256Rec};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u32_order_agrees_with_key_order(a: u32, b: u32) {
        let (ra, rb) = (U32Rec::new(a), U32Rec::new(b));
        prop_assert_eq!(ra.cmp(&rb), a.cmp(&b));
        prop_assert_eq!(ra.key().cmp(&rb.key()), a.cmp(&b));
    }

    #[test]
    fn kv_order_is_key_major(k1: u64, v1: u64, k2: u64, v2: u64) {
        let (ra, rb) = (KvRec::new(k1, v1), KvRec::new(k2, v2));
        if k1 != k2 {
            prop_assert_eq!(ra.cmp(&rb), k1.cmp(&k2));
        }
    }

    #[test]
    fn packed16_order_is_key_major(k1 in 0u128..(1 << 80), i1 in 0u64..(1 << 48),
                                   k2 in 0u128..(1 << 80), i2 in 0u64..(1 << 48)) {
        let (ra, rb) = (Packed16::from_parts(k1, i1), Packed16::from_parts(k2, i2));
        if k1 != k2 {
            prop_assert_eq!(ra.cmp(&rb), k1.cmp(&k2));
        } else {
            prop_assert_eq!(ra.cmp(&rb), i1.cmp(&i2));
        }
    }

    #[test]
    fn sanitize_is_idempotent_and_nonterminal(v: u64) {
        let r = U64Rec::new(v).sanitize();
        prop_assert!(!r.is_terminal());
        prop_assert_eq!(r.sanitize(), r);
    }

    #[test]
    fn wide_sanitize_nonterminal(limbs: [u64; 4]) {
        prop_assert!(!W256Rec::new(limbs).sanitize().is_terminal());
    }

    #[test]
    fn stages_needed_is_minimal(n_runs in 1u64..1_000_000, fan_in in 2u64..512) {
        let s = stages_needed(n_runs, fan_in);
        // fan_in^s >= n_runs > fan_in^(s-1)
        let covers = fan_in.checked_pow(s).is_none_or(|c| c >= n_runs);
        prop_assert!(covers, "fan_in^s must cover all runs");
        if s > 0 {
            let prev = fan_in.checked_pow(s - 1).expect("small exponent");
            prop_assert!(prev < n_runs, "s must be minimal");
        }
    }

    #[test]
    fn initial_runs_covers_all_records(n in 1u64..10_000_000, presort in 1u64..64) {
        let runs = initial_runs(n, presort);
        prop_assert!(runs * presort >= n);
        prop_assert!((runs - 1) * presort < n);
    }

    #[test]
    fn from_chunks_yields_sorted_runs(mut vals in proptest::collection::vec(1u32..u32::MAX, 0..200),
                                      chunk in 1usize..32) {
        vals.iter_mut().for_each(|v| *v = v.max(&mut 1u32).to_owned());
        let data: Vec<U32Rec> = vals.iter().map(|&v| U32Rec::new(v)).collect();
        let rs = RunSet::from_chunks(data, chunk);
        prop_assert!(rs.validate().is_ok());
        for run in rs.iter_runs() {
            prop_assert!(is_sorted(run));
            prop_assert!(run.len() <= chunk);
        }
        prop_assert_eq!(rs.len(), vals.len());
    }
}
