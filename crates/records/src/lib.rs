//! Record and key abstractions for the Bonsai adaptive merge tree sorter.
//!
//! The Bonsai paper (ISCA 2020) sorts fixed-width records whose width ranges
//! from 32 bits up to 512 bits. The hardware datapath reserves one record
//! value — the all-zero *terminal record* — to delimit sorted runs as they
//! flow through the merge tree (§V-B of the paper). This crate defines:
//!
//! - [`Record`]: the trait every sortable record type implements, including
//!   the terminal-record convention,
//! - concrete record types ([`U32Rec`], [`U64Rec`], [`U128Rec`],
//!   [`KvRec`], [`W256Rec`], [`W512Rec`], [`Packed16`]),
//! - [`run`]: utilities for describing and validating sorted runs.
//!
//! # Example
//!
//! ```
//! use bonsai_records::{Record, U32Rec};
//!
//! let a = U32Rec::new(7);
//! let b = U32Rec::new(9);
//! assert!(a < b);
//! assert_eq!(U32Rec::WIDTH_BYTES, 4);
//! assert!(U32Rec::TERMINAL.is_terminal());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod record;
pub mod run;
pub mod wire;

pub use record::{KvRec, Packed16, Record, U128Rec, U32Rec, U64Rec, W256Rec, W512Rec};
