//! Fixed-width wire formats for records stored in off-chip memory or
//! files.
//!
//! The hardware moves records as fixed-width little-endian words over
//! the 512-bit AXI bus (Figure 7); [`WireRecord`] is the software
//! contract for that layout, used by the external (file-backed) sorter
//! and the gensort tooling.

use crate::{KvRec, Packed16, Record, U128Rec, U32Rec, U64Rec};

/// A record with a fixed-width binary wire format.
///
/// Implementations must round-trip: `read_from(write_to(r)) == r`, with
/// `WIRE_BYTES == Self::WIDTH_BYTES`.
///
/// # Example
///
/// ```
/// use bonsai_records::wire::WireRecord;
/// use bonsai_records::U32Rec;
///
/// let mut buf = [0u8; 4];
/// U32Rec::new(0xABCD).write_to(&mut buf);
/// assert_eq!(U32Rec::read_from(&buf), U32Rec::new(0xABCD));
/// ```
pub trait WireRecord: Record {
    /// Serialized width in bytes (equals [`Record::WIDTH_BYTES`]).
    const WIRE_BYTES: usize;

    /// Writes the record into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != WIRE_BYTES`.
    fn write_to(&self, buf: &mut [u8]);

    /// Reads a record from `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != WIRE_BYTES`.
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! le_wire {
    ($ty:ident, $inner:ty, $bytes:expr) => {
        impl WireRecord for $ty {
            const WIRE_BYTES: usize = $bytes;

            fn write_to(&self, buf: &mut [u8]) {
                assert_eq!(buf.len(), $bytes, "wire buffer size mismatch");
                buf.copy_from_slice(&self.0.to_le_bytes());
            }

            fn read_from(buf: &[u8]) -> Self {
                assert_eq!(buf.len(), $bytes, "wire buffer size mismatch");
                let mut raw = [0u8; $bytes];
                raw.copy_from_slice(buf);
                Self(<$inner>::from_le_bytes(raw))
            }
        }
    };
}

le_wire!(U32Rec, u32, 4);
le_wire!(U64Rec, u64, 8);
le_wire!(U128Rec, u128, 16);

impl WireRecord for KvRec {
    const WIRE_BYTES: usize = 16;

    fn write_to(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), 16, "wire buffer size mismatch");
        buf[..8].copy_from_slice(&self.key().to_le_bytes());
        buf[8..].copy_from_slice(&self.value().to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        assert_eq!(buf.len(), 16, "wire buffer size mismatch");
        let mut k = [0u8; 8];
        let mut v = [0u8; 8];
        k.copy_from_slice(&buf[..8]);
        v.copy_from_slice(&buf[8..]);
        KvRec::new(u64::from_le_bytes(k), u64::from_le_bytes(v))
    }
}

impl WireRecord for Packed16 {
    const WIRE_BYTES: usize = 16;

    fn write_to(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), 16, "wire buffer size mismatch");
        buf.copy_from_slice(&self.into_inner().to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        assert_eq!(buf.len(), 16, "wire buffer size mismatch");
        let mut raw = [0u8; 16];
        raw.copy_from_slice(buf);
        let v = u128::from_le_bytes(raw);
        Packed16::from_parts(
            v >> Self::INDEX_BITS,
            (v & ((1 << Self::INDEX_BITS) - 1)) as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: WireRecord>(r: R) {
        let mut buf = vec![0u8; R::WIRE_BYTES];
        r.write_to(&mut buf);
        assert_eq!(R::read_from(&buf), r);
    }

    #[test]
    fn all_wire_formats_roundtrip() {
        roundtrip(U32Rec::new(0xDEAD_BEEF));
        roundtrip(U64Rec::new(u64::MAX - 3));
        roundtrip(U128Rec::new(u128::MAX / 7));
        roundtrip(KvRec::new(42, u64::MAX));
        roundtrip(Packed16::from_parts((1 << 80) - 1, (1 << 48) - 1));
    }

    #[test]
    fn wire_width_matches_record_width() {
        assert_eq!(U32Rec::WIRE_BYTES, U32Rec::WIDTH_BYTES);
        assert_eq!(KvRec::WIRE_BYTES, KvRec::WIDTH_BYTES);
        assert_eq!(Packed16::WIRE_BYTES, Packed16::WIDTH_BYTES);
    }

    #[test]
    fn byte_order_preserves_key_order_after_decode() {
        // Encoding need not be order-preserving on raw bytes; decoding
        // must restore ordering.
        let a = Packed16::from_parts(5, 1);
        let b = Packed16::from_parts(6, 0);
        let mut ba = [0u8; 16];
        let mut bb = [0u8; 16];
        a.write_to(&mut ba);
        b.write_to(&mut bb);
        assert!(Packed16::read_from(&ba) < Packed16::read_from(&bb));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn short_buffer_panics() {
        let mut buf = [0u8; 3];
        U32Rec::new(1).write_to(&mut buf);
    }
}
