//! Sorted-run bookkeeping.
//!
//! A merge sort proceeds in *stages* (§II of the paper): at each stage the
//! AMT merges `ℓ` sorted runs into one, so the `k`-th stage produces
//! `ℓ^k`-record runs and sorting an `N`-record array takes
//! `ceil(log_ℓ N)` stages. [`RunSet`] is the in-memory representation of an
//! array partitioned into sorted runs, and the free functions here compute
//! the stage arithmetic the performance model relies on.

use crate::Record;

/// Number of merge stages required to reduce `n_runs` sorted runs to one
/// by merging `fan_in` runs at a time — `ceil(log_fan_in(n_runs))`.
///
/// Returns 0 when the input is already a single run (or empty).
///
/// # Panics
///
/// Panics if `fan_in < 2`.
///
/// # Example
///
/// ```
/// use bonsai_records::run::stages_needed;
///
/// assert_eq!(stages_needed(1, 16), 0);
/// assert_eq!(stages_needed(16, 16), 1);
/// assert_eq!(stages_needed(17, 16), 2);
/// assert_eq!(stages_needed(256, 16), 2);
/// ```
pub fn stages_needed(n_runs: u64, fan_in: u64) -> u32 {
    assert!(fan_in >= 2, "merge fan-in must be at least 2");
    if n_runs <= 1 {
        return 0;
    }
    let mut stages = 0u32;
    let mut runs = n_runs;
    while runs > 1 {
        runs = runs.div_ceil(fan_in);
        stages += 1;
    }
    stages
}

/// Number of initial sorted runs for an `n`-record array whose input is
/// pre-sorted into `presort`-record chunks (the paper presorts into
/// 16-record runs with a bitonic network, §VI-C1).
///
/// With `presort == 1` (no presorter) every record is its own run.
///
/// # Panics
///
/// Panics if `presort` is zero.
pub fn initial_runs(n: u64, presort: u64) -> u64 {
    assert!(presort >= 1, "presort run length must be at least 1");
    n.div_ceil(presort).max(1)
}

/// Checks that a slice is sorted (non-decreasing).
///
/// # Example
///
/// ```
/// use bonsai_records::run::is_sorted;
/// use bonsai_records::U32Rec;
///
/// let sorted = [U32Rec::new(1), U32Rec::new(2), U32Rec::new(2)];
/// assert!(is_sorted(&sorted));
/// ```
pub fn is_sorted<R: Record>(records: &[R]) -> bool {
    records.windows(2).all(|w| w[0] <= w[1])
}

/// An array of records partitioned into consecutive sorted runs.
///
/// This is the software image of the paper's off-chip memory layout: runs
/// occupy disjoint contiguous address ranges, and each stage of the sort
/// reads `ℓ` runs and writes one longer run.
///
/// # Example
///
/// ```
/// use bonsai_records::run::RunSet;
/// use bonsai_records::U32Rec;
///
/// let data: Vec<U32Rec> = [3u32, 1, 4, 1, 5, 9].iter().map(|&v| U32Rec::new(v)).collect();
/// let runs = RunSet::from_unsorted(data);
/// assert_eq!(runs.num_runs(), 6);
/// assert!(runs.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSet<R> {
    records: Vec<R>,
    /// Run start offsets; always begins with 0 and the implicit end is
    /// `records.len()`. Empty iff `records` is empty.
    starts: Vec<usize>,
}

/// Error returned by [`RunSet::validate`] when a run is not sorted or a
/// record holds the reserved terminal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunSetError {
    /// Run `run` is out of order at index `at` (global index).
    Unsorted {
        /// Which run (by index) is broken.
        run: usize,
        /// Global record index where the order violation occurs.
        at: usize,
    },
    /// A record at global index `at` equals the reserved terminal record.
    TerminalRecord {
        /// Global record index of the offending record.
        at: usize,
    },
}

impl core::fmt::Display for RunSetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunSetError::Unsorted { run, at } => {
                write!(f, "run {run} is not sorted at record index {at}")
            }
            RunSetError::TerminalRecord { at } => {
                write!(f, "record at index {at} holds the reserved terminal value")
            }
        }
    }
}

impl std::error::Error for RunSetError {}

impl<R: Record> RunSet<R> {
    /// Builds a run set from unsorted data: every record is a 1-record run.
    pub fn from_unsorted(records: Vec<R>) -> Self {
        let starts = (0..records.len()).collect();
        Self { records, starts }
    }

    /// Builds a run set whose runs are consecutive `chunk_len`-record
    /// chunks (the last run may be shorter). Each chunk is sorted in
    /// place — this models the hardware presorter (§VI-C1).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn from_chunks(mut records: Vec<R>, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        let mut starts = Vec::with_capacity(records.len().div_ceil(chunk_len));
        let mut offset = 0;
        while offset < records.len() {
            starts.push(offset);
            let end = (offset + chunk_len).min(records.len());
            records[offset..end].sort_unstable();
            offset = end;
        }
        Self { records, starts }
    }

    /// Builds a run set from already-sorted runs given by start offsets.
    ///
    /// # Panics
    ///
    /// Panics if `starts` is not strictly increasing from 0, or exceeds
    /// `records.len()`.
    pub fn from_parts(records: Vec<R>, starts: Vec<usize>) -> Self {
        if records.is_empty() {
            assert!(starts.is_empty(), "empty run set must have no runs");
        } else {
            assert_eq!(starts.first(), Some(&0), "first run must start at 0");
            assert!(
                starts.windows(2).all(|w| w[0] < w[1]),
                "run starts must be strictly increasing"
            );
            assert!(
                *starts.last().expect("nonempty") < records.len(),
                "last run must be nonempty"
            );
        }
        Self { records, starts }
    }

    /// Builds a single-run set from fully sorted data.
    pub fn single_run(records: Vec<R>) -> Self {
        let starts = if records.is_empty() { vec![] } else { vec![0] };
        Self { records, starts }
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the set holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of sorted runs.
    pub fn num_runs(&self) -> usize {
        self.starts.len()
    }

    /// Returns `true` when the whole array is one sorted run.
    pub fn is_fully_sorted(&self) -> bool {
        self.num_runs() <= 1
    }

    /// Borrows the underlying records.
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// Consumes the set, returning the underlying records.
    pub fn into_records(self) -> Vec<R> {
        self.records
    }

    /// Returns the `i`-th run as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_runs()`.
    pub fn run(&self, i: usize) -> &[R] {
        let start = self.starts[i];
        let end = self
            .starts
            .get(i + 1)
            .copied()
            .unwrap_or(self.records.len());
        &self.records[start..end]
    }

    /// Iterates over the runs as slices.
    pub fn iter_runs(&self) -> impl Iterator<Item = &[R]> + '_ {
        (0..self.num_runs()).map(move |i| self.run(i))
    }

    /// Validates that every run is sorted and no record holds the reserved
    /// terminal value.
    ///
    /// # Errors
    ///
    /// Returns a [`RunSetError`] identifying the first violation.
    pub fn validate(&self) -> Result<(), RunSetError> {
        for (run_idx, run_start) in self.starts.iter().copied().enumerate() {
            let run = self.run(run_idx);
            for (off, pair) in run.windows(2).enumerate() {
                if pair[0] > pair[1] {
                    return Err(RunSetError::Unsorted {
                        run: run_idx,
                        at: run_start + off + 1,
                    });
                }
            }
        }
        if let Some(at) = self.records.iter().position(Record::is_terminal) {
            return Err(RunSetError::TerminalRecord { at });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::U32Rec;

    fn recs(vals: &[u32]) -> Vec<U32Rec> {
        vals.iter().map(|&v| U32Rec::new(v)).collect()
    }

    #[test]
    fn stages_needed_matches_log_formula() {
        // ceil(log_16(2^30)) = ceil(30/4) = 8 for single-record runs.
        assert_eq!(stages_needed(1 << 30, 16), 8);
        assert_eq!(stages_needed(256, 256), 1);
        assert_eq!(stages_needed(257, 256), 2);
        assert_eq!(stages_needed(0, 2), 0);
    }

    #[test]
    #[should_panic(expected = "fan-in")]
    fn stages_needed_rejects_fan_in_one() {
        let _ = stages_needed(10, 1);
    }

    #[test]
    fn initial_runs_with_presorter() {
        assert_eq!(initial_runs(1000, 16), 63);
        assert_eq!(initial_runs(1024, 16), 64);
        assert_eq!(initial_runs(5, 16), 1);
        assert_eq!(initial_runs(7, 1), 7);
    }

    #[test]
    fn from_chunks_sorts_each_chunk() {
        let rs = RunSet::from_chunks(recs(&[9, 3, 7, 1, 5, 2, 8]), 4);
        assert_eq!(rs.num_runs(), 2);
        assert_eq!(rs.run(0), recs(&[1, 3, 7, 9]).as_slice());
        assert_eq!(rs.run(1), recs(&[2, 5, 8]).as_slice());
        assert!(rs.validate().is_ok());
    }

    #[test]
    fn from_unsorted_has_unit_runs() {
        let rs = RunSet::from_unsorted(recs(&[5, 4, 3]));
        assert_eq!(rs.num_runs(), 3);
        assert!(rs.validate().is_ok());
        assert!(!rs.is_fully_sorted());
    }

    #[test]
    fn validate_catches_unsorted_run() {
        let rs = RunSet::from_parts(recs(&[1, 3, 2]), vec![0]);
        assert_eq!(rs.validate(), Err(RunSetError::Unsorted { run: 0, at: 2 }));
    }

    #[test]
    fn validate_catches_terminal_record() {
        let rs = RunSet::from_parts(recs(&[0, 1, 2]), vec![0]);
        assert_eq!(rs.validate(), Err(RunSetError::TerminalRecord { at: 0 }));
    }

    #[test]
    fn empty_run_set_is_sorted() {
        let rs: RunSet<U32Rec> = RunSet::from_unsorted(vec![]);
        assert!(rs.is_empty());
        assert!(rs.is_fully_sorted());
        assert!(rs.validate().is_ok());
    }

    #[test]
    fn single_run_roundtrip() {
        let rs = RunSet::single_run(recs(&[1, 2, 3]));
        assert!(rs.is_fully_sorted());
        assert_eq!(rs.iter_runs().count(), 1);
        assert_eq!(rs.into_records(), recs(&[1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_rejects_bad_starts() {
        let _ = RunSet::from_parts(recs(&[1, 2, 3]), vec![0, 2, 2]);
    }
}
