//! The [`Record`] trait and the concrete record types used throughout Bonsai.

use core::fmt;

/// A fixed-width sortable record, as laid out in off-chip memory.
///
/// The Bonsai datapath (§II, §V of the paper) treats records as opaque
/// fixed-width tuples ordered by a sort key. One value — the all-zero
/// *terminal record* — is reserved to delimit sorted runs inside the merge
/// tree (§V-B); real data must therefore never contain the terminal value.
/// Use [`Record::sanitize`] on untrusted inputs to enforce this, exactly as
/// the hardware's *zero append / zero filter* units assume.
///
/// The `Ord` implementation of a `Record` must order records by
/// [`Record::key`] first (ties may be broken arbitrarily but must be
/// consistent), and the terminal record must compare strictly less than
/// every non-terminal record so it naturally drains first out of a merger.
///
/// # Example
///
/// ```
/// use bonsai_records::{Record, U64Rec};
///
/// let rec = U64Rec::new(42);
/// assert_eq!(rec.key(), 42);
/// assert!(!rec.is_terminal());
/// assert!(U64Rec::TERMINAL < rec);
/// ```
pub trait Record:
    Copy + Clone + Eq + Ord + core::hash::Hash + Send + Sync + fmt::Debug + 'static
{
    /// The sort key extracted from the record.
    type Key: Ord + Copy + fmt::Debug;

    /// Record width in bytes as laid out in off-chip memory.
    ///
    /// This is the `r` parameter of the paper's performance model
    /// (Table II): all bandwidth and capacity math is in units of
    /// `WIDTH_BYTES` per record.
    const WIDTH_BYTES: usize;

    /// The reserved all-zero terminal record (§V-B).
    const TERMINAL: Self;

    /// The maximum representable record, used to pad partial tuples fed
    /// into bitonic networks.
    const MAX: Self;

    /// Returns this record's sort key.
    fn key(&self) -> Self::Key;

    /// Returns `true` if this is the reserved terminal record.
    fn is_terminal(&self) -> bool {
        *self == Self::TERMINAL
    }

    /// Maps the reserved terminal value to the smallest legal record so
    /// that arbitrary input data can be safely fed through the datapath.
    ///
    /// The hardware reserves the zero record (§V-B: "Although we reserve
    /// zero for the terminal record, any other value may be used"); data
    /// sources are expected to avoid it. `sanitize` is the software
    /// equivalent of that contract.
    fn sanitize(self) -> Self;
}

macro_rules! uint_record {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $width:expr) => {
        $(#[$doc])*
        #[derive(
            Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Creates a new record from its raw integer representation.
            #[inline]
            pub const fn new(value: $inner) -> Self {
                Self(value)
            }

            /// Returns the raw integer representation.
            #[inline]
            pub const fn into_inner(self) -> $inner {
                self.0
            }
        }

        impl Record for $name {
            type Key = $inner;
            const WIDTH_BYTES: usize = $width;
            const TERMINAL: Self = Self(0);
            const MAX: Self = Self(<$inner>::MAX);

            #[inline]
            fn key(&self) -> $inner {
                self.0
            }

            #[inline]
            fn sanitize(self) -> Self {
                if self.0 == 0 {
                    Self(1)
                } else {
                    self
                }
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(value: $inner) -> Self {
                Self(value)
            }
        }

        impl From<$name> for $inner {
            #[inline]
            fn from(rec: $name) -> $inner {
                rec.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }
    };
}

uint_record!(
    /// A 32-bit record: the paper's primary benchmark record ("32-bit
    /// integers generated uniformly at random", §VI-A).
    U32Rec,
    u32,
    4
);

uint_record!(
    /// A 64-bit record keyed by its full value.
    U64Rec,
    u64,
    8
);

uint_record!(
    /// A 128-bit record keyed by its full value (the "128-bit records" of
    /// Table VI).
    U128Rec,
    u128,
    16
);

/// A 128-bit key/value record: 64-bit sort key plus 64-bit payload.
///
/// Ordered by key, then payload (so `Ord` is total and merging is
/// deterministic).
///
/// # Example
///
/// ```
/// use bonsai_records::{KvRec, Record};
///
/// let a = KvRec::new(1, 99);
/// let b = KvRec::new(2, 0);
/// assert!(a < b);
/// assert_eq!(a.key(), 1);
/// assert_eq!(a.value(), 99);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct KvRec {
    key: u64,
    value: u64,
}

impl KvRec {
    /// Creates a key/value record.
    #[inline]
    pub const fn new(key: u64, value: u64) -> Self {
        Self { key, value }
    }

    /// Returns the payload value.
    #[inline]
    pub const fn value(&self) -> u64 {
        self.value
    }
}

impl Record for KvRec {
    type Key = u64;
    const WIDTH_BYTES: usize = 16;
    const TERMINAL: Self = Self { key: 0, value: 0 };
    const MAX: Self = Self {
        key: u64::MAX,
        value: u64::MAX,
    };

    #[inline]
    fn key(&self) -> u64 {
        self.key
    }

    #[inline]
    fn sanitize(self) -> Self {
        if self == Self::TERMINAL {
            Self { key: 0, value: 1 }
        } else {
            self
        }
    }
}

/// The packed 16-byte gensort record of §VI-A.
///
/// The paper benchmarks Jim Gray's sort-benchmark records (100 bytes:
/// 10-byte key, 90-byte value) by hashing the 90-byte value down to a
/// 6-byte index and feeding the resulting `10 + 6 = 16` byte record into a
/// 16-byte AMT sorter. `Packed16` is that 16-byte record: the 80-bit key
/// occupies the most significant bits so that plain integer comparison
/// orders records by key first and index second.
///
/// # Example
///
/// ```
/// use bonsai_records::{Packed16, Record};
///
/// let rec = Packed16::from_parts(0xAABB, 7);
/// assert_eq!(rec.key(), 0xAABB);
/// assert_eq!(rec.index(), 7);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Packed16(u128);

impl Packed16 {
    /// Number of bits in the packed index (6 bytes).
    pub const INDEX_BITS: u32 = 48;
    /// Number of bits in the key (10 bytes).
    pub const KEY_BITS: u32 = 80;

    /// Builds a packed record from an 80-bit key and a 48-bit index.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in 80 bits or `index` in 48 bits.
    #[inline]
    pub fn from_parts(key: u128, index: u64) -> Self {
        assert!(key < (1u128 << Self::KEY_BITS), "key exceeds 80 bits");
        assert!(index < (1u64 << Self::INDEX_BITS), "index exceeds 48 bits");
        Self((key << Self::INDEX_BITS) | u128::from(index))
    }

    /// Returns the raw 128-bit representation.
    #[inline]
    pub const fn into_inner(self) -> u128 {
        self.0
    }

    /// Returns the 80-bit sort key.
    #[inline]
    pub const fn key_bits(&self) -> u128 {
        self.0 >> Self::INDEX_BITS
    }

    /// Returns the 48-bit hashed value index.
    #[inline]
    pub const fn index(&self) -> u64 {
        (self.0 & ((1u128 << Self::INDEX_BITS) - 1)) as u64
    }
}

impl Record for Packed16 {
    type Key = u128;
    const WIDTH_BYTES: usize = 16;
    const TERMINAL: Self = Self(0);
    const MAX: Self = Self(u128::MAX);

    #[inline]
    fn key(&self) -> u128 {
        self.key_bits()
    }

    #[inline]
    fn sanitize(self) -> Self {
        if self.0 == 0 {
            Self(1)
        } else {
            self
        }
    }
}

impl fmt::Debug for Packed16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Packed16 {{ key: {:#x}, index: {} }}",
            self.key_bits(),
            self.index()
        )
    }
}

macro_rules! wide_record {
    ($(#[$doc:meta])* $name:ident, $limbs:expr, $width:expr) => {
        $(#[$doc])*
        #[derive(
            Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug,
        )]
        pub struct $name(pub [u64; $limbs]);

        impl $name {
            /// Creates a wide record from its big-endian limb representation
            /// (limb 0 is the most significant and dominates ordering).
            #[inline]
            pub const fn new(limbs: [u64; $limbs]) -> Self {
                Self(limbs)
            }

            /// Returns the limb representation.
            #[inline]
            pub const fn into_inner(self) -> [u64; $limbs] {
                self.0
            }
        }

        impl Record for $name {
            type Key = [u64; $limbs];
            const WIDTH_BYTES: usize = $width;
            const TERMINAL: Self = Self([0; $limbs]);
            const MAX: Self = Self([u64::MAX; $limbs]);

            #[inline]
            fn key(&self) -> [u64; $limbs] {
                self.0
            }

            #[inline]
            fn sanitize(self) -> Self {
                if self == Self::TERMINAL {
                    let mut limbs = [0u64; $limbs];
                    limbs[$limbs - 1] = 1;
                    Self(limbs)
                } else {
                    self
                }
            }
        }
    };
}

wide_record!(
    /// A 256-bit record (four 64-bit limbs, lexicographically ordered).
    ///
    /// The AMT architecture supports "any key and value width up to 512
    /// bits without any resource utilization overhead" (§II); this type
    /// exercises the wide-record path.
    W256Rec,
    4,
    32
);

wide_record!(
    /// A 512-bit record (eight 64-bit limbs, lexicographically ordered) —
    /// the widest record the AMT supports natively (§II).
    W512Rec,
    8,
    64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_ordering_matches_key() {
        let a = U32Rec::new(3);
        let b = U32Rec::new(5);
        assert!(a < b);
        assert_eq!(a.key(), 3);
    }

    #[test]
    fn terminal_is_minimum_for_uint_records() {
        assert!(U32Rec::TERMINAL <= U32Rec::new(0));
        assert!(U32Rec::TERMINAL < U32Rec::new(1));
        assert!(U64Rec::TERMINAL < U64Rec::new(1));
        assert!(U128Rec::TERMINAL < U128Rec::new(1));
    }

    #[test]
    fn sanitize_removes_terminal_value() {
        assert!(!U32Rec::new(0).sanitize().is_terminal());
        assert!(!KvRec::new(0, 0).sanitize().is_terminal());
        assert!(!Packed16::from_parts(0, 0).sanitize().is_terminal());
        assert!(!W256Rec::new([0; 4]).sanitize().is_terminal());
        assert_eq!(U32Rec::new(9).sanitize(), U32Rec::new(9));
    }

    #[test]
    fn sanitize_preserves_order_of_nonterminals() {
        let a = KvRec::new(1, 2).sanitize();
        let b = KvRec::new(1, 3).sanitize();
        assert!(a < b);
    }

    #[test]
    fn kv_orders_by_key_then_value() {
        assert!(KvRec::new(1, 9) < KvRec::new(2, 0));
        assert!(KvRec::new(1, 1) < KvRec::new(1, 2));
        assert_eq!(KvRec::new(4, 4).value(), 4);
    }

    #[test]
    fn packed16_roundtrip() {
        let key = (1u128 << 79) | 0x1234;
        let idx = (1u64 << 47) | 0x99;
        let rec = Packed16::from_parts(key, idx);
        assert_eq!(rec.key(), key);
        assert_eq!(rec.index(), idx);
    }

    #[test]
    fn packed16_orders_by_key_first() {
        // A smaller key with a huge index must sort before a larger key.
        let small_key = Packed16::from_parts(10, (1 << 48) - 1);
        let large_key = Packed16::from_parts(11, 0);
        assert!(small_key < large_key);
    }

    #[test]
    #[should_panic(expected = "key exceeds 80 bits")]
    fn packed16_rejects_oversized_key() {
        let _ = Packed16::from_parts(1u128 << 80, 0);
    }

    #[test]
    #[should_panic(expected = "index exceeds 48 bits")]
    fn packed16_rejects_oversized_index() {
        let _ = Packed16::from_parts(0, 1u64 << 48);
    }

    #[test]
    fn wide_records_order_lexicographically() {
        let a = W256Rec::new([0, 0, 0, 5]);
        let b = W256Rec::new([0, 0, 1, 0]);
        assert!(a < b);
        let c = W512Rec::new([1, 0, 0, 0, 0, 0, 0, 0]);
        let d = W512Rec::new([0, u64::MAX, 0, 0, 0, 0, 0, 0]);
        assert!(d < c);
    }

    #[test]
    fn widths_match_declared_layout() {
        assert_eq!(U32Rec::WIDTH_BYTES, 4);
        assert_eq!(U64Rec::WIDTH_BYTES, 8);
        assert_eq!(U128Rec::WIDTH_BYTES, 16);
        assert_eq!(KvRec::WIDTH_BYTES, 16);
        assert_eq!(Packed16::WIDTH_BYTES, 16);
        assert_eq!(W256Rec::WIDTH_BYTES, 32);
        assert_eq!(W512Rec::WIDTH_BYTES, 64);
    }

    #[test]
    fn max_is_maximum() {
        assert!(U32Rec::new(u32::MAX - 1) < U32Rec::MAX);
        assert!(Packed16::from_parts((1 << 80) - 1, (1 << 48) - 1) <= Packed16::MAX);
    }

    #[test]
    fn records_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<U32Rec>();
        assert_send_sync::<U64Rec>();
        assert_send_sync::<U128Rec>();
        assert_send_sync::<KvRec>();
        assert_send_sync::<Packed16>();
        assert_send_sync::<W512Rec>();
    }
}
