//! Static configuration analyzer and diagnostic framework for Bonsai.
//!
//! The analytical model (PAPER.md, §IV) exists so that a configuration
//! can be proven sane *before* committing to a multi-minute cycle
//! simulation or an FPGA build. This crate is the substrate for that
//! guarantee: a [`Diagnostic`] type with **stable `BONxxx` codes**, a
//! machine-readable [`codes`] registry, and dependency-free numeric
//! checks that the configuration types in `bonsai-amt`, `bonsai-memsim`
//! and `bonsai-model` call from their `try_new` constructors.
//!
//! Three code ranges are reserved:
//!
//! | Range      | Layer                | Example |
//! |------------|----------------------|---------|
//! | `BON00x`   | AMT / record shape   | [`codes::P_NOT_POWER_OF_TWO`] |
//! | `BON01x`   | Loader / memory      | [`codes::BATCH_BELOW_BUS_WIDTH`] |
//! | `BON02x`   | Resource model       | [`codes::LUT_BUDGET_EXCEEDED`] |
//! | `BON03x`   | Pipeline graph       | [`codes::GRAPH_DEADLOCK`] |
//! | `BON04x`   | Simulation runtime   | [`codes::SIM_PASS_LIVELOCK`] |
//! | `BON05x`   | Runtime topology     | [`codes::RUNTIME_QUEUE_ZERO`] |
//! | `BON06x`   | Occupancy reachability | [`codes::PROVE_DEADLOCK_REACHABLE`] |
//! | `BON07x`   | Wire protocol        | [`codes::WIRE_BAD_MAGIC`] |
//! | `BON1xx`   | Simulation sanitizer | [`codes::SAN_FIFO_OVERFLOW`] |
//!
//! Every code is catalogued with cause and fix in
//! [`docs/diagnostics.md`](https://github.com/bonsai-sort/bonsai/blob/main/docs/diagnostics.md);
//! a test in this crate keeps that catalogue in sync with the registry.
//!
//! This crate deliberately has **no dependencies** — not even on
//! `bonsai-records` — so that every other crate in the workspace can
//! depend on it without cycles. The integration tests reach back up the
//! stack through dev-dependencies.

pub mod graph;
pub mod prove;

use std::fmt;

/// How severe a diagnostic is.
///
/// `Error` means the configuration cannot work (it would panic, wedge
/// the simulator, or fail synthesis); `Warning` means it will run but
/// contradicts the paper's design intent (e.g. wasted bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable configuration.
    Warning,
    /// The configuration is invalid and must be rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single finding from the static analyzer or the simulation
/// sanitizer.
///
/// The `code` is stable across releases: scripts and CI may match on
/// it. The `context` carries the numbers that triggered the finding as
/// `(name, value)` pairs so callers can render or assert on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `"BON001"`.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable, single-sentence description of the finding.
    pub message: String,
    /// `(name, value)` pairs recording the offending quantities.
    pub context: Vec<(&'static str, String)>,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    #[must_use]
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Error,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Construct a warning diagnostic.
    #[must_use]
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Warning,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Attach a named quantity to the diagnostic (builder style).
    #[must_use]
    pub fn with(mut self, name: &'static str, value: impl fmt::Display) -> Self {
        self.context.push((name, value.to_string()));
        self
    }

    /// `true` if this diagnostic is an [`Severity::Error`].
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.code, self.severity, self.message)?;
        if !self.context.is_empty() {
            write!(f, " (")?;
            for (i, (name, value)) in self.context.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}={value}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// `true` if any diagnostic in the slice is an error.
#[must_use]
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(Diagnostic::is_error)
}

/// Partition a finding list: `(errors, warnings)`.
#[must_use]
pub fn partition(diagnostics: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    diagnostics.into_iter().partition(Diagnostic::is_error)
}

/// The stable diagnostic code registry.
///
/// Codes are never renumbered or reused; retired codes would be kept as
/// tombstones. Each constant documents its own trigger; cause and fix
/// live in `docs/diagnostics.md`.
pub mod codes {
    use super::Severity;

    /// Static metadata about one diagnostic code.
    #[derive(Debug, Clone, Copy)]
    pub struct CodeInfo {
        /// The stable code string, e.g. `"BON001"`.
        pub code: &'static str,
        /// Default severity the analyzer emits this code with.
        pub severity: Severity,
        /// One-line summary (matches the catalogue heading).
        pub summary: &'static str,
    }

    // --- BON00x: AMT / record shape -------------------------------------

    /// Root throughput `p` is not a power of two (or is zero).
    pub const P_NOT_POWER_OF_TWO: &str = "BON001";
    /// Leaf count `l` is not a power of two >= 2.
    pub const L_NOT_POWER_OF_TWO: &str = "BON002";
    /// Root width `p` exceeds the leaf count `l`.
    pub const P_EXCEEDS_LEAVES: &str = "BON003";
    /// Record width is zero bytes.
    pub const RECORD_WIDTH_ZERO: &str = "BON004";
    /// Loader batch is not a whole number of records.
    pub const BATCH_NOT_RECORD_MULTIPLE: &str = "BON005";

    // --- BON01x: loader / memory ----------------------------------------

    /// Loader batch smaller than one DRAM bus beat.
    pub const BATCH_BELOW_BUS_WIDTH: &str = "BON010";
    /// Leaf buffers are not double-buffered.
    pub const BUFFER_NOT_DOUBLE: &str = "BON011";
    /// Loader batch size is zero bytes.
    pub const BATCH_ZERO: &str = "BON012";
    /// Memory model has zero banks.
    pub const MEMORY_ZERO_BANKS: &str = "BON013";
    /// Memory port bandwidth is zero bytes/cycle.
    pub const MEMORY_ZERO_BANDWIDTH: &str = "BON014";
    /// Memory capacity cannot hold a single loader batch.
    pub const CAPACITY_BELOW_BATCH: &str = "BON015";
    /// Burst setup overhead wastes most of the bandwidth.
    pub const BURST_EFFICIENCY_LOW: &str = "BON016";
    /// Write-back payload width is zero bytes.
    pub const WRITE_PAYLOAD_ZERO: &str = "BON017";

    // --- BON02x: resource model -----------------------------------------

    /// Configuration exceeds the LUT budget (Eq. 9).
    pub const LUT_BUDGET_EXCEEDED: &str = "BON020";
    /// Configuration exceeds the BRAM budget (Eq. 10).
    pub const BRAM_BUDGET_EXCEEDED: &str = "BON021";
    /// `p` exceeds the hardware's maximum synthesizable root width.
    pub const P_EXCEEDS_MAX: &str = "BON022";
    /// `l` exceeds the hardware's maximum routable leaf count.
    pub const L_EXCEEDS_MAX: &str = "BON023";
    /// Unroll or pipeline factor is zero.
    pub const COPIES_ZERO: &str = "BON024";
    /// Presorter chunk is not a power of two >= 2.
    pub const PRESORT_NOT_POWER_OF_TWO: &str = "BON025";
    /// Presorter chunk exceeds one loader batch of records.
    pub const PRESORT_EXCEEDS_BATCH: &str = "BON026";

    // --- BON04x: simulation runtime -------------------------------------

    /// A simulated merge pass exceeded its livelock cycle bound.
    pub const SIM_PASS_LIVELOCK: &str = "BON040";

    // --- BON05x: runtime topology ---------------------------------------

    /// Job queue depth is zero while more than one producer submits.
    pub const RUNTIME_QUEUE_ZERO: &str = "BON050";
    /// Pass workers exceed the merge groups any pass can offer.
    pub const RUNTIME_WORKERS_EXCEED_GROUPS: &str = "BON051";
    /// Drop joins workers without closing the queue first (wedge).
    pub const RUNTIME_JOIN_WITHOUT_CLOSE: &str = "BON052";
    /// Drop leaks detached worker threads (join disabled).
    pub const RUNTIME_UNJOINED_WORKERS: &str = "BON053";
    /// Worker × pass-worker product oversubscribes the host cores.
    pub const RUNTIME_OVERSUBSCRIBED: &str = "BON054";
    /// Queue depth below the worker count starves the pool.
    pub const RUNTIME_QUEUE_BELOW_WORKERS: &str = "BON055";
    /// A task DAG's peak ready width exceeds queue + worker capacity.
    pub const RUNTIME_DAG_OVER_CAPACITY: &str = "BON056";

    // --- BON06x: occupancy reachability (bonsai-prove) ------------------

    /// Exhaustive occupancy reachability found a deadlocked marking.
    pub const PROVE_DEADLOCK_REACHABLE: &str = "BON060";
    /// Exhaustive occupancy reachability found a FIFO/credit overflow.
    pub const PROVE_OVERFLOW_REACHABLE: &str = "BON061";
    /// The reachability state budget ran out before coverage.
    pub const PROVE_BUDGET_EXHAUSTED: &str = "BON062";
    /// A certified occupancy bound failed independent re-verification.
    pub const PROVE_CERTIFICATE_INVALID: &str = "BON063";
    /// The static throughput floor exceeds an observed/model throughput.
    pub const PROVE_BOUND_UNSOUND: &str = "BON064";
    /// A static refutation did not reproduce in simulation.
    pub const PROVE_REPLAY_DIVERGED: &str = "BON065";

    // --- BON07x: wire protocol (bonsai-net) -----------------------------

    /// A wire frame's magic word did not match; the byte stream is
    /// desynchronized and the connection cannot be trusted further.
    pub const WIRE_BAD_MAGIC: &str = "BON070";
    /// A wire frame carried an unsupported protocol version.
    pub const WIRE_BAD_VERSION: &str = "BON071";
    /// The connection closed mid-frame (truncated header or payload).
    pub const WIRE_TRUNCATED: &str = "BON072";
    /// A wire frame declared a payload larger than the server accepts.
    pub const WIRE_PAYLOAD_OVERSIZED: &str = "BON073";
    /// A wire payload is not a whole number of records.
    pub const WIRE_PAYLOAD_RAGGED: &str = "BON074";
    /// A wire frame's record width does not match the server's record
    /// type.
    pub const WIRE_WIDTH_UNSUPPORTED: &str = "BON075";
    /// The server is shutting down; the job was rejected, not run.
    pub const WIRE_SERVER_CLOSED: &str = "BON076";
    /// The job was accepted but failed server-side (invalid config,
    /// BON040 livelock, or a panicking job); the payload carries the
    /// underlying diagnostic text.
    pub const WIRE_JOB_FAILED: &str = "BON077";

    // --- BON08x: adaptive runtime ---------------------------------------

    /// Zero reprogram cost disables the keep-vs-switch comparison: the
    /// planner chases the per-job optimum and thrashes shapes.
    pub const ADAPTIVE_RECONFIG_THRASH: &str = "BON080";
    /// The latency deadline is no larger than the reprogram cost, so
    /// any job that needs a shape switch has already missed it.
    pub const ADAPTIVE_DEADLINE_INFEASIBLE: &str = "BON081";
    /// The compiled-shape cache holds fewer shapes than the scheduler's
    /// job classes; the classes evict each other on every alternation.
    pub const ADAPTIVE_CACHE_BELOW_CLASSES: &str = "BON082";
    /// A zero fairness stride lets latency-class jobs starve the
    /// throughput lane indefinitely.
    pub const ADAPTIVE_FAIRNESS_STARVATION: &str = "BON083";

    // --- BON03x: pipeline-graph analyses --------------------------------

    /// The pipeline graph can deadlock (zero-credit edge or dataflow
    /// cycle over the credit/backpressure dependency graph).
    pub const GRAPH_DEADLOCK: &str = "BON030";
    /// An edge FIFO is shallower than the consumer's flush requirement.
    pub const GRAPH_FIFO_BELOW_FLUSH: &str = "BON031";
    /// Source→sink min-cut bandwidth below the required throughput.
    pub const GRAPH_BANDWIDTH_INFEASIBLE: &str = "BON032";
    /// The analytical model predicts below the graph's static latency
    /// lower bound (critical path / min-cut certification failed).
    pub const GRAPH_LATENCY_BOUND_VIOLATION: &str = "BON033";
    /// A node lies on no source→sink dataflow path.
    pub const GRAPH_DEAD_COMPONENT: &str = "BON034";
    /// A memory-channel node has zero assigned banks.
    pub const GRAPH_CHANNEL_ZERO_BANKS: &str = "BON035";
    /// Model latency drifted beyond tolerance from a SimEngine probe.
    pub const GRAPH_MODEL_DRIFT: &str = "BON036";
    /// The graph IR itself is malformed (dangling edge, missing
    /// source/sink).
    pub const GRAPH_MALFORMED: &str = "BON037";

    // --- BON1xx: simulation sanitizer -----------------------------------

    /// A FIFO rejected a push (overflow) during simulation.
    pub const SAN_FIFO_OVERFLOW: &str = "BON101";
    /// A merger emitted a descending record inside one run.
    pub const SAN_OUT_OF_ORDER: &str = "BON102";
    /// A merger consumed and produced different record counts.
    pub const SAN_RECORD_CONSERVATION: &str = "BON103";
    /// A simulation pass lost or duplicated records end to end.
    pub const SAN_PASS_CONSERVATION: &str = "BON104";
    /// Per-bank byte accounting disagrees with aggregate counters.
    pub const SAN_BYTE_ACCOUNTING: &str = "BON105";
    /// Terminal-record flush protocol violated at the root.
    pub const SAN_FLUSH_PROTOCOL: &str = "BON106";

    /// Every registered code, in catalogue order.
    pub const ALL: &[CodeInfo] = &[
        CodeInfo {
            code: P_NOT_POWER_OF_TWO,
            severity: Severity::Error,
            summary: "p not a power of two",
        },
        CodeInfo {
            code: L_NOT_POWER_OF_TWO,
            severity: Severity::Error,
            summary: "l not a power of two >= 2",
        },
        CodeInfo {
            code: P_EXCEEDS_LEAVES,
            severity: Severity::Warning,
            summary: "p exceeds leaf count l",
        },
        CodeInfo {
            code: RECORD_WIDTH_ZERO,
            severity: Severity::Error,
            summary: "record width is zero",
        },
        CodeInfo {
            code: BATCH_NOT_RECORD_MULTIPLE,
            severity: Severity::Error,
            summary: "batch not a whole number of records",
        },
        CodeInfo {
            code: BATCH_BELOW_BUS_WIDTH,
            severity: Severity::Error,
            summary: "loader batch smaller than one DRAM burst",
        },
        CodeInfo {
            code: BUFFER_NOT_DOUBLE,
            severity: Severity::Warning,
            summary: "leaf buffers not double-buffered",
        },
        CodeInfo {
            code: BATCH_ZERO,
            severity: Severity::Error,
            summary: "loader batch size is zero",
        },
        CodeInfo {
            code: MEMORY_ZERO_BANKS,
            severity: Severity::Error,
            summary: "memory has zero banks",
        },
        CodeInfo {
            code: MEMORY_ZERO_BANDWIDTH,
            severity: Severity::Error,
            summary: "memory port bandwidth is zero",
        },
        CodeInfo {
            code: CAPACITY_BELOW_BATCH,
            severity: Severity::Error,
            summary: "memory capacity below one batch",
        },
        CodeInfo {
            code: BURST_EFFICIENCY_LOW,
            severity: Severity::Warning,
            summary: "burst efficiency below 50%",
        },
        CodeInfo {
            code: WRITE_PAYLOAD_ZERO,
            severity: Severity::Error,
            summary: "write-back payload width is zero",
        },
        CodeInfo {
            code: LUT_BUDGET_EXCEEDED,
            severity: Severity::Error,
            summary: "LUT budget exceeded (Eq. 9)",
        },
        CodeInfo {
            code: BRAM_BUDGET_EXCEEDED,
            severity: Severity::Error,
            summary: "BRAM budget exceeded (Eq. 10)",
        },
        CodeInfo {
            code: P_EXCEEDS_MAX,
            severity: Severity::Error,
            summary: "p exceeds hardware max_p",
        },
        CodeInfo {
            code: L_EXCEEDS_MAX,
            severity: Severity::Error,
            summary: "l exceeds hardware max_l",
        },
        CodeInfo {
            code: COPIES_ZERO,
            severity: Severity::Error,
            summary: "unroll or pipeline factor is zero",
        },
        CodeInfo {
            code: PRESORT_NOT_POWER_OF_TWO,
            severity: Severity::Error,
            summary: "presort chunk not a power of two >= 2",
        },
        CodeInfo {
            code: PRESORT_EXCEEDS_BATCH,
            severity: Severity::Warning,
            summary: "presort chunk exceeds one batch",
        },
        CodeInfo {
            code: SIM_PASS_LIVELOCK,
            severity: Severity::Error,
            summary: "simulated pass exceeded its livelock cycle bound",
        },
        CodeInfo {
            code: RUNTIME_QUEUE_ZERO,
            severity: Severity::Error,
            summary: "zero-depth job queue with concurrent producers",
        },
        CodeInfo {
            code: RUNTIME_WORKERS_EXCEED_GROUPS,
            severity: Severity::Warning,
            summary: "pass workers exceed available merge groups",
        },
        CodeInfo {
            code: RUNTIME_JOIN_WITHOUT_CLOSE,
            severity: Severity::Error,
            summary: "drop joins workers without closing the queue",
        },
        CodeInfo {
            code: RUNTIME_UNJOINED_WORKERS,
            severity: Severity::Warning,
            summary: "drop leaks detached worker threads",
        },
        CodeInfo {
            code: RUNTIME_OVERSUBSCRIBED,
            severity: Severity::Warning,
            summary: "worker x pass-worker product oversubscribes cores",
        },
        CodeInfo {
            code: RUNTIME_QUEUE_BELOW_WORKERS,
            severity: Severity::Warning,
            summary: "queue depth below worker count starves the pool",
        },
        CodeInfo {
            code: RUNTIME_DAG_OVER_CAPACITY,
            severity: Severity::Error,
            summary: "DAG ready set can exceed queue + worker capacity",
        },
        CodeInfo {
            code: PROVE_DEADLOCK_REACHABLE,
            severity: Severity::Error,
            summary: "occupancy reachability found a deadlock",
        },
        CodeInfo {
            code: PROVE_OVERFLOW_REACHABLE,
            severity: Severity::Error,
            summary: "occupancy reachability found an overflow",
        },
        CodeInfo {
            code: PROVE_BUDGET_EXHAUSTED,
            severity: Severity::Warning,
            summary: "reachability state budget exhausted",
        },
        CodeInfo {
            code: PROVE_CERTIFICATE_INVALID,
            severity: Severity::Error,
            summary: "occupancy certificate failed re-verification",
        },
        CodeInfo {
            code: PROVE_BOUND_UNSOUND,
            severity: Severity::Error,
            summary: "static throughput floor exceeds observed throughput",
        },
        CodeInfo {
            code: PROVE_REPLAY_DIVERGED,
            severity: Severity::Warning,
            summary: "static refutation did not reproduce in simulation",
        },
        CodeInfo {
            code: WIRE_BAD_MAGIC,
            severity: Severity::Error,
            summary: "wire frame magic mismatch (stream desynchronized)",
        },
        CodeInfo {
            code: WIRE_BAD_VERSION,
            severity: Severity::Error,
            summary: "wire protocol version unsupported",
        },
        CodeInfo {
            code: WIRE_TRUNCATED,
            severity: Severity::Error,
            summary: "wire frame truncated mid-header or mid-payload",
        },
        CodeInfo {
            code: WIRE_PAYLOAD_OVERSIZED,
            severity: Severity::Error,
            summary: "wire payload exceeds the server's frame limit",
        },
        CodeInfo {
            code: WIRE_PAYLOAD_RAGGED,
            severity: Severity::Error,
            summary: "wire payload not a whole number of records",
        },
        CodeInfo {
            code: WIRE_WIDTH_UNSUPPORTED,
            severity: Severity::Error,
            summary: "wire record width unsupported by the server",
        },
        CodeInfo {
            code: WIRE_SERVER_CLOSED,
            severity: Severity::Error,
            summary: "server shutting down; job rejected at submit",
        },
        CodeInfo {
            code: WIRE_JOB_FAILED,
            severity: Severity::Error,
            summary: "accepted job failed server-side",
        },
        CodeInfo {
            code: ADAPTIVE_RECONFIG_THRASH,
            severity: Severity::Warning,
            summary: "zero reprogram cost makes the planner thrash shapes",
        },
        CodeInfo {
            code: ADAPTIVE_DEADLINE_INFEASIBLE,
            severity: Severity::Error,
            summary: "latency deadline not larger than the reprogram cost",
        },
        CodeInfo {
            code: ADAPTIVE_CACHE_BELOW_CLASSES,
            severity: Severity::Warning,
            summary: "shape cache smaller than the scheduler's job classes",
        },
        CodeInfo {
            code: ADAPTIVE_FAIRNESS_STARVATION,
            severity: Severity::Warning,
            summary: "zero fairness stride starves the throughput lane",
        },
        CodeInfo {
            code: GRAPH_DEADLOCK,
            severity: Severity::Error,
            summary: "pipeline graph can deadlock",
        },
        CodeInfo {
            code: GRAPH_FIFO_BELOW_FLUSH,
            severity: Severity::Error,
            summary: "FIFO below the consumer's flush requirement",
        },
        CodeInfo {
            code: GRAPH_BANDWIDTH_INFEASIBLE,
            severity: Severity::Error,
            summary: "min-cut bandwidth below required throughput",
        },
        CodeInfo {
            code: GRAPH_LATENCY_BOUND_VIOLATION,
            severity: Severity::Error,
            summary: "model predicts below the static latency bound",
        },
        CodeInfo {
            code: GRAPH_DEAD_COMPONENT,
            severity: Severity::Error,
            summary: "node on no source->sink path",
        },
        CodeInfo {
            code: GRAPH_CHANNEL_ZERO_BANKS,
            severity: Severity::Error,
            summary: "memory channel has zero assigned banks",
        },
        CodeInfo {
            code: GRAPH_MODEL_DRIFT,
            severity: Severity::Warning,
            summary: "model drifted from simulation beyond tolerance",
        },
        CodeInfo {
            code: GRAPH_MALFORMED,
            severity: Severity::Error,
            summary: "pipeline graph IR is malformed",
        },
        CodeInfo {
            code: SAN_FIFO_OVERFLOW,
            severity: Severity::Error,
            summary: "sanitizer: FIFO overflow",
        },
        CodeInfo {
            code: SAN_OUT_OF_ORDER,
            severity: Severity::Error,
            summary: "sanitizer: out-of-order output in run",
        },
        CodeInfo {
            code: SAN_RECORD_CONSERVATION,
            severity: Severity::Error,
            summary: "sanitizer: merger record conservation",
        },
        CodeInfo {
            code: SAN_PASS_CONSERVATION,
            severity: Severity::Error,
            summary: "sanitizer: pass record conservation",
        },
        CodeInfo {
            code: SAN_BYTE_ACCOUNTING,
            severity: Severity::Error,
            summary: "sanitizer: byte accounting mismatch",
        },
        CodeInfo {
            code: SAN_FLUSH_PROTOCOL,
            severity: Severity::Error,
            summary: "sanitizer: flush protocol violation",
        },
    ];

    /// Look up a code's registry entry.
    #[must_use]
    pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
        ALL.iter().find(|info| info.code == code)
    }
}

/// Check the AMT shape parameters `p` (root throughput, records/cycle)
/// and `l` (leaf count). Emits `BON001`, `BON002`, `BON003`.
#[must_use]
pub fn check_amt_shape(p: usize, l: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if p == 0 || !p.is_power_of_two() {
        out.push(
            Diagnostic::error(
                codes::P_NOT_POWER_OF_TWO,
                "root throughput p must be a power of two >= 1",
            )
            .with("p", p),
        );
    }
    if l < 2 || !l.is_power_of_two() {
        out.push(
            Diagnostic::error(
                codes::L_NOT_POWER_OF_TWO,
                "leaf count l must be a power of two >= 2",
            )
            .with("l", l),
        );
    }
    if p.is_power_of_two() && l.is_power_of_two() && p > l {
        out.push(
            Diagnostic::warning(
                codes::P_EXCEEDS_LEAVES,
                "root width p exceeds leaf count l; levels above log2(l) add no throughput",
            )
            .with("p", p)
            .with("l", l),
        );
    }
    out
}

/// Check the loader's internal shape: batch size, record width and leaf
/// buffering. Emits `BON012`, `BON004`, `BON005`, `BON011`.
#[must_use]
pub fn check_loader_shape(
    batch_bytes: usize,
    record_bytes: usize,
    buffer_batches: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if batch_bytes == 0 {
        out.push(
            Diagnostic::error(codes::BATCH_ZERO, "loader batch size must be positive")
                .with("batch_bytes", batch_bytes),
        );
    }
    if record_bytes == 0 {
        out.push(
            Diagnostic::error(codes::RECORD_WIDTH_ZERO, "record width must be positive")
                .with("record_bytes", record_bytes),
        );
    } else if !batch_bytes.is_multiple_of(record_bytes) {
        out.push(
            Diagnostic::error(
                codes::BATCH_NOT_RECORD_MULTIPLE,
                "loader batch must hold a whole number of records",
            )
            .with("batch_bytes", batch_bytes)
            .with("record_bytes", record_bytes),
        );
    }
    if buffer_batches < 2 {
        out.push(
            Diagnostic::warning(
                codes::BUFFER_NOT_DOUBLE,
                "leaf buffers should be at least double-buffered to hide refill latency",
            )
            .with("buffer_batches", buffer_batches),
        );
    }
    out
}

/// Check the memory model's own parameters. Emits `BON013`, `BON014`.
#[must_use]
pub fn check_memory_shape(
    banks: usize,
    read_bytes_per_cycle: usize,
    write_bytes_per_cycle: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if banks == 0 {
        out.push(
            Diagnostic::error(
                codes::MEMORY_ZERO_BANKS,
                "memory must have at least one bank",
            )
            .with("banks", banks),
        );
    }
    if read_bytes_per_cycle == 0 || write_bytes_per_cycle == 0 {
        out.push(
            Diagnostic::error(
                codes::MEMORY_ZERO_BANDWIDTH,
                "memory port bandwidth must be positive in both directions",
            )
            .with("read_bytes_per_cycle", read_bytes_per_cycle)
            .with("write_bytes_per_cycle", write_bytes_per_cycle),
        );
    }
    out
}

/// Cross-check the loader against the memory it reads from. Emits
/// `BON010`, `BON015`, `BON016`.
#[must_use]
pub fn check_loader_against_memory(
    batch_bytes: usize,
    read_bytes_per_cycle: usize,
    burst_setup_cycles: u64,
    capacity_bytes: u64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if batch_bytes == 0 || read_bytes_per_cycle == 0 {
        // Shape errors are reported by the shape checks; nothing to
        // cross-validate here.
        return out;
    }
    if batch_bytes < read_bytes_per_cycle {
        out.push(
            Diagnostic::error(
                codes::BATCH_BELOW_BUS_WIDTH,
                "loader batch is smaller than one DRAM burst; the bus cannot issue a partial beat",
            )
            .with("batch_bytes", batch_bytes)
            .with("read_bytes_per_cycle", read_bytes_per_cycle),
        );
    }
    if capacity_bytes < batch_bytes as u64 {
        out.push(
            Diagnostic::error(
                codes::CAPACITY_BELOW_BATCH,
                "memory capacity cannot hold a single loader batch",
            )
            .with("capacity_bytes", capacity_bytes)
            .with("batch_bytes", batch_bytes),
        );
    }
    // Burst efficiency = transfer / (transfer + setup); below 50% the
    // setup overhead dominates and batching has failed its purpose.
    let transfer_cycles = batch_bytes.div_ceil(read_bytes_per_cycle) as u64;
    if batch_bytes >= read_bytes_per_cycle && transfer_cycles < burst_setup_cycles {
        out.push(
            Diagnostic::warning(
                codes::BURST_EFFICIENCY_LOW,
                "burst setup cycles dominate the transfer; grow the batch to amortize them",
            )
            .with("transfer_cycles", transfer_cycles)
            .with("burst_setup_cycles", burst_setup_cycles),
        );
    }
    out
}

/// Check synthesis limits for the tree shape. Emits `BON022`, `BON023`.
#[must_use]
pub fn check_tool_limits(p: usize, l: usize, max_p: usize, max_l: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if p > max_p {
        out.push(
            Diagnostic::error(
                codes::P_EXCEEDS_MAX,
                "root width p exceeds the maximum the tools can synthesize",
            )
            .with("p", p)
            .with("max_p", max_p),
        );
    }
    if l > max_l {
        out.push(
            Diagnostic::error(
                codes::L_EXCEEDS_MAX,
                "leaf count l exceeds the maximum the tools can route",
            )
            .with("l", l)
            .with("max_l", max_l),
        );
    }
    out
}

/// Check the LUT budget (paper Eq. 9). Emits `BON020`.
#[must_use]
pub fn check_lut_budget(required_lut: f64, available_lut: f64) -> Vec<Diagnostic> {
    if required_lut > available_lut {
        vec![Diagnostic::error(
            codes::LUT_BUDGET_EXCEEDED,
            "configuration exceeds the device LUT budget (Eq. 9)",
        )
        .with("required_lut", format!("{required_lut:.0}"))
        .with("available_lut", format!("{available_lut:.0}"))]
    } else {
        Vec::new()
    }
}

/// Check the BRAM budget (paper Eq. 10). Emits `BON021`.
#[must_use]
pub fn check_bram_budget(required_bytes: u64, available_bytes: u64) -> Vec<Diagnostic> {
    if required_bytes > available_bytes {
        vec![Diagnostic::error(
            codes::BRAM_BUDGET_EXCEEDED,
            "configuration exceeds the device BRAM budget (Eq. 10)",
        )
        .with("required_bytes", required_bytes)
        .with("available_bytes", available_bytes)]
    } else {
        Vec::new()
    }
}

/// Check unroll/pipeline replication factors. Emits `BON024`.
#[must_use]
pub fn check_copies(unroll: usize, pipeline: usize) -> Vec<Diagnostic> {
    if unroll == 0 || pipeline == 0 {
        vec![Diagnostic::error(
            codes::COPIES_ZERO,
            "unroll and pipeline factors must both be at least 1",
        )
        .with("unroll", unroll)
        .with("pipeline", pipeline)]
    } else {
        Vec::new()
    }
}

/// Check the presorter chunk length against the loader batch. Emits
/// `BON025`, `BON026`.
#[must_use]
pub fn check_presort(chunk: usize, batch_records: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if chunk < 2 || !chunk.is_power_of_two() {
        out.push(
            Diagnostic::error(
                codes::PRESORT_NOT_POWER_OF_TWO,
                "presorter chunk must be a power of two >= 2 (it is a bitonic network)",
            )
            .with("chunk", chunk),
        );
    } else if batch_records > 0 && chunk > batch_records {
        out.push(
            Diagnostic::warning(
                codes::PRESORT_EXCEEDS_BATCH,
                "presorter chunk spans more than one loader batch; runs will straddle refills",
            )
            .with("chunk", chunk)
            .with("batch_records", batch_records),
        );
    }
    out
}

/// Check the parallel runtime's thread/queue topology. Emits `BON050`,
/// `BON052`, `BON053`, `BON054`, `BON055`.
///
/// `workers` and `pass_workers` follow the runtime convention that `0`
/// means "one per core"; `cores` is the host core count used to resolve
/// them (and the oversubscription bound). `producers` is the number of
/// threads submitting jobs concurrently. `close_on_drop` /
/// `join_on_drop` describe the runtime's shutdown-on-drop behavior.
#[must_use]
pub fn check_runtime_shape(
    workers: usize,
    pass_workers: usize,
    queue_depth: usize,
    producers: usize,
    close_on_drop: bool,
    join_on_drop: bool,
    cores: usize,
) -> Vec<Diagnostic> {
    let cores = cores.max(1);
    let resolved_workers = if workers == 0 { cores } else { workers };
    let resolved_pass_workers = if pass_workers == 0 {
        cores
    } else {
        pass_workers
    };
    let mut out = Vec::new();
    if queue_depth == 0 && producers > 1 {
        out.push(
            Diagnostic::error(
                codes::RUNTIME_QUEUE_ZERO,
                "a zero-depth job queue serializes concurrent producers through a single \
                 clamped slot; give the queue real capacity",
            )
            .with("queue_depth", queue_depth)
            .with("producers", producers),
        );
    }
    if join_on_drop && !close_on_drop {
        out.push(
            Diagnostic::error(
                codes::RUNTIME_JOIN_WITHOUT_CLOSE,
                "dropping the runtime would join workers that are still parked in pop \
                 because the queue is never closed; drop wedges forever",
            )
            .with("close_on_drop", close_on_drop)
            .with("join_on_drop", join_on_drop),
        );
    }
    if !join_on_drop {
        out.push(
            Diagnostic::warning(
                codes::RUNTIME_UNJOINED_WORKERS,
                "dropping the runtime without joining leaks detached worker threads; \
                 they may outlive the results they write to",
            )
            .with("join_on_drop", join_on_drop),
        );
    }
    if resolved_workers * resolved_pass_workers > cores {
        out.push(
            Diagnostic::warning(
                codes::RUNTIME_OVERSUBSCRIBED,
                "job workers times pass workers exceeds the host cores; threads will \
                 time-slice instead of running in parallel",
            )
            .with("workers", resolved_workers)
            .with("pass_workers", resolved_pass_workers)
            .with("cores", cores),
        );
    }
    // Only an *explicit* worker count can contradict the queue depth;
    // the auto (`0`) sentinel sizes the pool to whatever host it lands
    // on, so there is no stated intent for the depth to mismatch.
    if queue_depth > 0 && workers > 0 && queue_depth < workers {
        out.push(
            Diagnostic::warning(
                codes::RUNTIME_QUEUE_BELOW_WORKERS,
                "queue depth below the worker count cannot keep every worker fed; \
                 idle workers will starve behind the submitters",
            )
            .with("queue_depth", queue_depth)
            .with("workers", workers),
        );
    }
    out
}

/// Check a task DAG's peak ready width against a dispatcher that holds
/// at most `workers` tasks in flight plus `queue_depth` buffered ready
/// tasks. Emits `BON056`.
///
/// `max_ready_width` is the largest ready set the DAG can ever expose
/// (for the sort engine's layered group DAG, the widest pass's group
/// count). A ready task that fits in neither a worker nor the queue has
/// nowhere to go: a dispatcher that blocks on the publish side can then
/// deadlock against its own workers, and one that drops loses the task.
/// Either `0` sentinel (unbounded queue / auto-sized pool) leaves the
/// capacity unstated, so — as with `BON055` — only explicit values can
/// contradict the DAG and nothing is emitted.
#[must_use]
pub fn check_dag_capacity(
    max_ready_width: usize,
    queue_depth: usize,
    workers: usize,
) -> Vec<Diagnostic> {
    if queue_depth > 0 && workers > 0 && max_ready_width > queue_depth + workers {
        vec![Diagnostic::error(
            codes::RUNTIME_DAG_OVER_CAPACITY,
            "the task DAG can expose more ready tasks than the queue and workers \
             can hold; a bounded dispatcher would block or drop tasks",
        )
        .with("max_ready_width", max_ready_width)
        .with("queue_depth", queue_depth)
        .with("workers", workers)]
    } else {
        Vec::new()
    }
}

/// Check one job's pass-sharding width against the merge groups the
/// engine can actually offer. Emits `BON051`.
///
/// `pass_workers` must already be resolved (no `0` sentinel);
/// `max_groups` is the group count of the widest merge pass — for the
/// first pass, `ceil(initial_runs / fan_in)`; later passes only shrink.
#[must_use]
pub fn check_pass_sharding(pass_workers: usize, max_groups: usize) -> Vec<Diagnostic> {
    if max_groups > 0 && pass_workers > max_groups {
        vec![Diagnostic::warning(
            codes::RUNTIME_WORKERS_EXCEED_GROUPS,
            "pass workers exceed the merge groups of the widest pass; the surplus \
             threads never claim a group",
        )
        .with("pass_workers", pass_workers)
        .with("max_groups", max_groups)]
    } else {
        Vec::new()
    }
}

/// Check the adaptive scheduler's knobs (`BON080`–`BON083`).
///
/// `cache_shapes` is the compiled-shape cache capacity, `shape_classes`
/// the number of distinct job classes the scheduler selects shapes for
/// (the two-lane runtime has 2: latency and throughput),
/// `reprogram_cost_us` the modeled shape-switch cost,
/// `latency_deadline_us` the per-job deadline (`0` = none) and
/// `fairness_stride` how many consecutive latency-lane jobs may run
/// while the throughput lane waits (`0` = pure priority).
#[must_use]
pub fn check_adaptive_runtime(
    cache_shapes: usize,
    shape_classes: usize,
    reprogram_cost_us: u64,
    latency_deadline_us: u64,
    fairness_stride: u32,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if reprogram_cost_us == 0 {
        out.push(
            Diagnostic::warning(
                codes::ADAPTIVE_RECONFIG_THRASH,
                "a zero reprogram cost disables the keep-vs-switch comparison; the \
                 planner reprograms to every job's optimum and thrashes shapes",
            )
            .with("reprogram_cost_us", reprogram_cost_us),
        );
    }
    if latency_deadline_us > 0 && reprogram_cost_us >= latency_deadline_us {
        out.push(
            Diagnostic::error(
                codes::ADAPTIVE_DEADLINE_INFEASIBLE,
                "the latency deadline is not larger than the reprogram cost; any job \
                 whose shape must switch has missed its deadline before sorting starts",
            )
            .with("latency_deadline_us", latency_deadline_us)
            .with("reprogram_cost_us", reprogram_cost_us),
        );
    }
    if cache_shapes < shape_classes {
        out.push(
            Diagnostic::warning(
                codes::ADAPTIVE_CACHE_BELOW_CLASSES,
                "the compiled-shape cache holds fewer shapes than the scheduler's job \
                 classes; alternating classes evict each other and every lookup misses",
            )
            .with("cache_shapes", cache_shapes)
            .with("shape_classes", shape_classes),
        );
    }
    if fairness_stride == 0 {
        out.push(
            Diagnostic::warning(
                codes::ADAPTIVE_FAIRNESS_STARVATION,
                "a zero fairness stride never yields the queue to the throughput lane; \
                 a steady latency-class stream starves large jobs indefinitely",
            )
            .with("fairness_stride", fairness_stride),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_severity_and_context() {
        let d =
            Diagnostic::error(codes::P_NOT_POWER_OF_TWO, "p must be a power of two").with("p", 6);
        let s = d.to_string();
        assert!(s.contains("BON001"), "{s}");
        assert!(s.contains("error"), "{s}");
        assert!(s.contains("p=6"), "{s}");
    }

    #[test]
    fn registry_codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for info in codes::ALL {
            assert!(info.code.starts_with("BON"), "{}", info.code);
            assert_eq!(info.code.len(), 6, "{}", info.code);
            assert!(seen.insert(info.code), "duplicate code {}", info.code);
        }
    }

    #[test]
    fn lookup_finds_registered_codes() {
        assert!(codes::lookup("BON001").is_some());
        assert!(codes::lookup("BON999").is_none());
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let warns = vec![Diagnostic::warning(codes::BUFFER_NOT_DOUBLE, "w")];
        assert!(!has_errors(&warns));
        let errs = vec![
            Diagnostic::warning(codes::BUFFER_NOT_DOUBLE, "w"),
            Diagnostic::error(codes::BATCH_ZERO, "e"),
        ];
        assert!(has_errors(&errs));
    }

    #[test]
    fn valid_shapes_produce_no_diagnostics() {
        assert!(check_amt_shape(16, 64).is_empty());
        assert!(check_loader_shape(4096, 4, 2).is_empty());
        assert!(check_memory_shape(4, 32, 32).is_empty());
        assert!(check_loader_against_memory(4096, 32, 8, 1 << 30).is_empty());
        assert!(check_tool_limits(16, 64, 32, 256).is_empty());
        assert!(check_lut_budget(1000.0, 2000.0).is_empty());
        assert!(check_bram_budget(1 << 20, 1 << 21).is_empty());
        assert!(check_copies(1, 2).is_empty());
        assert!(check_presort(16, 1024).is_empty());
        assert!(check_runtime_shape(2, 1, 16, 1, true, true, 8).is_empty());
        assert!(check_pass_sharding(2, 8).is_empty());
    }
}
