//! The pipeline-graph IR and its static analyses.
//!
//! `bonsai-check`'s shape checks validate each configuration struct in
//! isolation; this module reasons about the *composed* design. Any
//! loader → merge-tree → coupler → memory-channel dataflow lowers into a
//! [`PipelineGraph`]: nodes for the hardware units, edges annotated with
//! FIFO depth (records), credit count (producer send credits) and peak
//! byte rate per cycle. Four analyses run over the IR, each with its own
//! stable `BON03x` code:
//!
//! 1. **Deadlock freedom** ([`PipelineGraph::analyze_deadlock`], `BON030`
//!    / `BON031`): zero-credit edges and dependency cycles wedge the
//!    pipeline; FIFOs shallower than the consumer's flush requirement
//!    stall a merger forever.
//! 2. **Bandwidth feasibility** ([`PipelineGraph::analyze_bandwidth`],
//!    `BON032`): max-flow from the source to the sink must reach the
//!    required sustained throughput; on failure the min-cut localizes
//!    the bottleneck edges.
//! 3. **Latency-bound certification** (`BON033`, driven from
//!    `bonsai-model::check` which owns the analytical side):
//!    [`PipelineGraph::critical_path_cycles`] and
//!    [`PipelineGraph::max_flow_bytes_per_cycle`] provide the static
//!    lower bound the model is certified against.
//! 4. **Dead components** ([`PipelineGraph::analyze_dead_components`],
//!    `BON034` / `BON035`): nodes on no source→sink path and memory
//!    channels backed by zero banks are design bugs.
//!
//! The IR round-trips through JSON ([`PipelineGraph::to_json`] /
//! [`PipelineGraph::from_json`]) and renders to Graphviz DOT
//! ([`PipelineGraph::to_dot`]); `docs/GRAPH_IR.md` documents both
//! formats. Lowering from the configuration types lives in
//! `bonsai-amt::graph` (this crate stays dependency-free).

use crate::{codes, Diagnostic};

/// Index of a node inside [`PipelineGraph::nodes`].
pub type NodeId = usize;

/// What hardware unit a node models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Virtual super-source feeding the read-side memory channels.
    Source,
    /// An off-chip memory channel backed by `banks` physical banks.
    /// `write` distinguishes the write-back side from the read side.
    MemoryChannel {
        /// Physical banks backing this channel (0 is a `BON035` error).
        banks: usize,
        /// `true` for the write-back direction.
        write: bool,
    },
    /// The batching data loader (§V-A).
    Loader,
    /// A `width`-merger at tree `level` (root = level 0).
    Merger {
        /// Tree level, root = 0.
        level: usize,
        /// Records per cycle this merger emits (`k`).
        width: usize,
    },
    /// A serial-to-parallel coupler feeding a `width`-merger at `level`.
    Coupler {
        /// Level of the parent merger the coupler feeds.
        level: usize,
        /// Output tuple width of the coupler.
        width: usize,
    },
    /// The write drain collecting the root output.
    WriteDrain,
    /// Virtual super-sink behind the write-side memory channels.
    Sink,
}

impl NodeKind {
    fn kind_str(&self) -> &'static str {
        match self {
            NodeKind::Source => "source",
            NodeKind::MemoryChannel { .. } => "memory_channel",
            NodeKind::Loader => "loader",
            NodeKind::Merger { .. } => "merger",
            NodeKind::Coupler { .. } => "coupler",
            NodeKind::WriteDrain => "write_drain",
            NodeKind::Sink => "sink",
        }
    }
}

/// One hardware unit in the pipeline graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Stable name, e.g. `"merger_l2_3"` (used in diagnostics and DOT).
    pub name: String,
    /// Unit kind with its static parameters.
    pub kind: NodeKind,
    /// Pipeline latency through the unit in cycles (critical path).
    pub latency_cycles: u64,
}

/// One dataflow link with its backpressure annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// FIFO depth in records between the two units.
    pub fifo_depth: u64,
    /// Producer send credits (how many transfers may be in flight
    /// before an acknowledgement returns). Zero means the producer can
    /// never send: a hard deadlock.
    pub credits: u64,
    /// Peak sustained byte rate per cycle over this link.
    pub bytes_per_cycle: u64,
}

/// The pipeline-graph IR. See the module docs for the analyses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineGraph {
    /// All nodes; a [`NodeId`] indexes this vector.
    pub nodes: Vec<Node>,
    /// All edges, in insertion order.
    pub edges: Vec<Edge>,
}

/// How many offending items a single aggregated diagnostic names before
/// eliding the rest (the full count is always reported).
const MAX_NAMED: usize = 4;

impl PipelineGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
        latency_cycles: u64,
    ) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            kind,
            latency_cycles,
        });
        self.nodes.len() - 1
    }

    /// Adds an edge between two existing nodes.
    pub fn add_edge(&mut self, edge: Edge) {
        self.edges.push(edge);
    }

    /// The unique [`NodeKind::Source`] node, if the graph is well formed.
    #[must_use]
    pub fn source(&self) -> Option<NodeId> {
        self.find_unique(NodeKind::Source)
    }

    /// The unique [`NodeKind::Sink`] node, if the graph is well formed.
    #[must_use]
    pub fn sink(&self) -> Option<NodeId> {
        self.find_unique(NodeKind::Sink)
    }

    fn find_unique(&self, kind: NodeKind) -> Option<NodeId> {
        let mut found = None;
        for (id, n) in self.nodes.iter().enumerate() {
            if n.kind == kind {
                if found.is_some() {
                    return None;
                }
                found = Some(id);
            }
        }
        found
    }

    fn edge_name(&self, e: &Edge) -> String {
        format!("{}->{}", self.nodes[e.from].name, self.nodes[e.to].name)
    }

    fn name_some(&self, items: &[String]) -> String {
        let shown: Vec<&str> = items.iter().take(MAX_NAMED).map(String::as_str).collect();
        if items.len() > MAX_NAMED {
            format!("{} (+{} more)", shown.join(", "), items.len() - MAX_NAMED)
        } else {
            shown.join(", ")
        }
    }

    /// Structural validation (`BON037`): edge endpoints must exist and
    /// exactly one source and one sink must be present.
    #[must_use]
    pub fn validate(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let dangling: Vec<String> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from >= self.nodes.len() || e.to >= self.nodes.len())
            .map(|(i, e)| format!("edge#{i}({}->{})", e.from, e.to))
            .collect();
        if !dangling.is_empty() {
            out.push(
                Diagnostic::error(
                    codes::GRAPH_MALFORMED,
                    "graph edge references a node that does not exist",
                )
                .with("dangling", self.name_some(&dangling)),
            );
        }
        if self.source().is_none() || self.sink().is_none() {
            out.push(Diagnostic::error(
                codes::GRAPH_MALFORMED,
                "graph must have exactly one source and one sink node",
            ));
        }
        out
    }

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.from].push(i);
        }
        adj
    }

    /// Deadlock-freedom analysis (`BON030`, `BON031`).
    ///
    /// `BON030` fires once for the set of zero-credit edges (a producer
    /// that can never obtain a send credit is wedged from cycle 0) and
    /// once per dependency cycle found in the dataflow graph (bounded
    /// FIFOs around a cycle deadlock as soon as they fill). `BON031`
    /// fires once for the set of edges whose FIFO is shallower than the
    /// consuming merger's flush requirement: a `k`-merger must be able
    /// to hold one full `k`-record tuple plus the flush terminal (§V-B),
    /// so its input FIFOs need at least `k + 1` records; every other
    /// edge needs at least 1.
    ///
    /// This analysis looks only at `credits` and `fifo_depth`, never at
    /// `bytes_per_cycle` — the three annotations map one-to-one onto
    /// `BON030`/`BON031`/`BON032` so a single corrupted annotation flips
    /// exactly one diagnostic.
    #[must_use]
    pub fn analyze_deadlock(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();

        let zero_credit: Vec<String> = self
            .edges
            .iter()
            .filter(|e| e.credits == 0)
            .map(|e| self.edge_name(e))
            .collect();
        if !zero_credit.is_empty() {
            out.push(
                Diagnostic::error(
                    codes::GRAPH_DEADLOCK,
                    "zero-credit edge: the producer can never obtain a send credit",
                )
                .with("edges", self.name_some(&zero_credit))
                .with("count", zero_credit.len()),
            );
        }

        if let Some(cycle) = self.find_cycle() {
            let names: Vec<String> = cycle
                .iter()
                .map(|&id| self.nodes[id].name.clone())
                .collect();
            out.push(
                Diagnostic::error(
                    codes::GRAPH_DEADLOCK,
                    "dataflow cycle: bounded FIFOs around a cycle deadlock once full",
                )
                .with("cycle", names.join(" -> ")),
            );
        }

        let shallow: Vec<String> = self
            .edges
            .iter()
            .filter(|e| {
                e.to < self.nodes.len() && e.fifo_depth < self.min_fifo_for(&self.nodes[e.to].kind)
            })
            .map(|e| {
                format!(
                    "{} (depth {}, need {})",
                    self.edge_name(e),
                    e.fifo_depth,
                    self.min_fifo_for(&self.nodes[e.to].kind)
                )
            })
            .collect();
        if !shallow.is_empty() {
            out.push(
                Diagnostic::error(
                    codes::GRAPH_FIFO_BELOW_FLUSH,
                    "FIFO depth below the consumer's flush requirement (k-record tuple + terminal)",
                )
                .with("edges", self.name_some(&shallow))
                .with("count", shallow.len()),
            );
        }
        out
    }

    /// Minimum FIFO records an input edge into `kind` needs to make
    /// forward progress.
    fn min_fifo_for(&self, kind: &NodeKind) -> u64 {
        match kind {
            NodeKind::Merger { width, .. } | NodeKind::Coupler { width, .. } => *width as u64 + 1,
            _ => 1,
        }
    }

    /// DFS cycle detection over the dataflow edges. Returns one cycle's
    /// node path when the graph is not a DAG.
    fn find_cycle(&self) -> Option<Vec<NodeId>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let adj = self.adjacency();
        let mut color = vec![WHITE; self.nodes.len()];
        let mut parent = vec![usize::MAX; self.nodes.len()];
        for start in 0..self.nodes.len() {
            if color[start] != WHITE {
                continue;
            }
            // Iterative DFS: (node, next edge index in adj).
            let mut stack = vec![(start, 0usize)];
            color[start] = GRAY;
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                if *i < adj[u].len() {
                    let e = &self.edges[adj[u][*i]];
                    *i += 1;
                    if e.to >= self.nodes.len() {
                        continue;
                    }
                    match color[e.to] {
                        WHITE => {
                            color[e.to] = GRAY;
                            parent[e.to] = u;
                            stack.push((e.to, 0));
                        }
                        GRAY => {
                            // Found a back edge u -> e.to: unwind the path.
                            let mut path = vec![e.to];
                            let mut v = u;
                            while v != e.to && v != usize::MAX {
                                path.push(v);
                                v = parent[v];
                            }
                            path.reverse();
                            return Some(path);
                        }
                        _ => {}
                    }
                } else {
                    color[u] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Maximum sustained byte rate per cycle from source to sink
    /// (Edmonds–Karp max-flow over the `bytes_per_cycle` capacities).
    /// Returns `None` when the graph has no unique source/sink.
    #[must_use]
    pub fn max_flow_bytes_per_cycle(&self) -> Option<u64> {
        let (s, t) = (self.source()?, self.sink()?);
        // Residual capacities: forward = edge index, backward = edge
        // index + E.
        let e_count = self.edges.len();
        let mut cap: Vec<u64> = self
            .edges
            .iter()
            .map(|e| e.bytes_per_cycle)
            .chain(std::iter::repeat_n(0, e_count))
            .collect();
        // adjacency of residual arcs per node.
        let mut radj = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            if e.from >= self.nodes.len() || e.to >= self.nodes.len() {
                return None;
            }
            radj[e.from].push(i);
            radj[e.to].push(i + e_count);
        }
        let arc_ends = |i: usize| -> (usize, usize) {
            if i < e_count {
                (self.edges[i].from, self.edges[i].to)
            } else {
                (self.edges[i - e_count].to, self.edges[i - e_count].from)
            }
        };
        let mut flow = 0u64;
        loop {
            // BFS for an augmenting path.
            let mut pred_arc = vec![usize::MAX; self.nodes.len()];
            let mut seen = vec![false; self.nodes.len()];
            let mut queue = std::collections::VecDeque::from([s]);
            seen[s] = true;
            while let Some(u) = queue.pop_front() {
                for &arc in &radj[u] {
                    let (_, v) = arc_ends(arc);
                    if !seen[v] && cap[arc] > 0 {
                        seen[v] = true;
                        pred_arc[v] = arc;
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                return Some(flow);
            }
            // Bottleneck along the path.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let arc = pred_arc[v];
                bottleneck = bottleneck.min(cap[arc]);
                v = arc_ends(arc).0;
            }
            let mut v = t;
            while v != s {
                let arc = pred_arc[v];
                cap[arc] -= bottleneck;
                let rev = if arc < e_count {
                    arc + e_count
                } else {
                    arc - e_count
                };
                cap[rev] += bottleneck;
                v = arc_ends(arc).0;
            }
            flow += bottleneck;
        }
    }

    /// Bandwidth-feasibility analysis (`BON032`): the max-flow from the
    /// source to the sink must reach `required_bytes_per_cycle`. On
    /// failure the min-cut (source-reachable side of the saturated
    /// residual graph) localizes the bottleneck edges in the diagnostic
    /// instead of just failing.
    #[must_use]
    pub fn analyze_bandwidth(&self, required_bytes_per_cycle: u64) -> Vec<Diagnostic> {
        let Some(flow) = self.max_flow_bytes_per_cycle() else {
            return Vec::new(); // structural errors are BON037's job
        };
        if flow >= required_bytes_per_cycle {
            return Vec::new();
        }
        let cut: Vec<String> = self
            .min_cut_edges()
            .iter()
            .map(|&i| {
                let e = &self.edges[i];
                format!("{} ({} B/cyc)", self.edge_name(e), e.bytes_per_cycle)
            })
            .collect();
        vec![Diagnostic::error(
            codes::GRAPH_BANDWIDTH_INFEASIBLE,
            "pipeline min-cut bandwidth is below the required sustained throughput",
        )
        .with("max_flow_bytes_per_cycle", flow)
        .with("required_bytes_per_cycle", required_bytes_per_cycle)
        .with("bottleneck", self.name_some(&cut))]
    }

    /// Edge indices forming the min cut (computed by re-running max-flow
    /// and taking saturated edges crossing the reachable frontier).
    #[must_use]
    pub fn min_cut_edges(&self) -> Vec<usize> {
        let (Some(s), Some(_t)) = (self.source(), self.sink()) else {
            return Vec::new();
        };
        // Recompute residual reachability with a fresh max-flow run.
        let e_count = self.edges.len();
        let mut cap: Vec<u64> = self
            .edges
            .iter()
            .map(|e| e.bytes_per_cycle)
            .chain(std::iter::repeat_n(0, e_count))
            .collect();
        let mut radj = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            radj[e.from].push(i);
            radj[e.to].push(i + e_count);
        }
        let arc_ends = |i: usize| -> (usize, usize) {
            if i < e_count {
                (self.edges[i].from, self.edges[i].to)
            } else {
                (self.edges[i - e_count].to, self.edges[i - e_count].from)
            }
        };
        let t = self.sink().unwrap_or(0);
        loop {
            let mut pred_arc = vec![usize::MAX; self.nodes.len()];
            let mut seen = vec![false; self.nodes.len()];
            let mut queue = std::collections::VecDeque::from([s]);
            seen[s] = true;
            while let Some(u) = queue.pop_front() {
                for &arc in &radj[u] {
                    let (_, v) = arc_ends(arc);
                    if !seen[v] && cap[arc] > 0 {
                        seen[v] = true;
                        pred_arc[v] = arc;
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                // `seen` is the source side of the min cut.
                return self
                    .edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| seen[e.from] && !seen[e.to])
                    .map(|(i, _)| i)
                    .collect();
            }
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let arc = pred_arc[v];
                bottleneck = bottleneck.min(cap[arc]);
                v = arc_ends(arc).0;
            }
            let mut v = t;
            while v != s {
                let arc = pred_arc[v];
                cap[arc] -= bottleneck;
                let rev = if arc < e_count {
                    arc + e_count
                } else {
                    arc - e_count
                };
                cap[rev] += bottleneck;
                v = arc_ends(arc).0;
            }
        }
    }

    /// Static pipeline-fill latency: the longest source→sink path,
    /// summing node latencies. Returns `None` if the graph is cyclic or
    /// has no unique source/sink (those are deadlock/structural errors).
    #[must_use]
    pub fn critical_path_cycles(&self) -> Option<u64> {
        let (s, t) = (self.source()?, self.sink()?);
        if self.find_cycle().is_some() {
            return None;
        }
        // Longest path over the DAG in topological order (Kahn).
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.to < n {
                indeg[e.to] += 1;
            }
        }
        let adj = self.adjacency();
        let mut order = Vec::with_capacity(n);
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &ei in &adj[u] {
                let v = self.edges[ei].to;
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        let mut best: Vec<Option<u64>> = vec![None; n];
        best[s] = Some(self.nodes[s].latency_cycles);
        for &u in &order {
            let Some(b) = best[u] else { continue };
            for &ei in &adj[u] {
                let v = self.edges[ei].to;
                let cand = b + self.nodes[v].latency_cycles;
                if best[v].is_none_or(|cur| cand > cur) {
                    best[v] = Some(cand);
                }
            }
        }
        best[t]
    }

    /// Dead-component analysis (`BON034`, `BON035`): every non-virtual
    /// node must lie on some source→sink path, and every memory channel
    /// must be backed by at least one physical bank.
    #[must_use]
    pub fn analyze_dead_components(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if let (Some(s), Some(t)) = (self.source(), self.sink()) {
            let fwd = self.reachable(s, false);
            let bwd = self.reachable(t, true);
            let dead: Vec<String> = (0..self.nodes.len())
                .filter(|&i| i != s && i != t && !(fwd[i] && bwd[i]))
                .map(|i| self.nodes[i].name.clone())
                .collect();
            if !dead.is_empty() {
                out.push(
                    Diagnostic::error(
                        codes::GRAPH_DEAD_COMPONENT,
                        "node lies on no source->sink dataflow path (dead hardware)",
                    )
                    .with("nodes", self.name_some(&dead))
                    .with("count", dead.len()),
                );
            }
        }
        let zero_bank: Vec<String> = self
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::MemoryChannel { banks: 0, .. }))
            .map(|n| n.name.clone())
            .collect();
        if !zero_bank.is_empty() {
            out.push(
                Diagnostic::error(
                    codes::GRAPH_CHANNEL_ZERO_BANKS,
                    "memory channel has zero assigned banks",
                )
                .with("channels", self.name_some(&zero_bank))
                .with("count", zero_bank.len()),
            );
        }
        out
    }

    fn reachable(&self, from: NodeId, reverse: bool) -> Vec<bool> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if e.from < self.nodes.len() && e.to < self.nodes.len() {
                if reverse {
                    adj[e.to].push(e.from);
                } else {
                    adj[e.from].push(e.to);
                }
            }
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Runs structure, deadlock, bandwidth and dead-component analyses
    /// in order (the latency certification additionally needs the
    /// analytical model and lives in `bonsai-model::check`).
    #[must_use]
    pub fn analyze_all(&self, required_bytes_per_cycle: u64) -> Vec<Diagnostic> {
        let mut out = self.validate();
        if !out.is_empty() {
            return out; // the other passes assume a structurally sound graph
        }
        out.extend(self.analyze_deadlock());
        out.extend(self.analyze_bandwidth(required_bytes_per_cycle));
        out.extend(self.analyze_dead_components());
        out
    }

    // --- Emitters --------------------------------------------------------

    /// Renders the graph as Graphviz DOT.
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph bonsai_pipeline {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = match n.kind {
                NodeKind::Source | NodeKind::Sink => "circle",
                NodeKind::MemoryChannel { .. } => "cylinder",
                NodeKind::Loader | NodeKind::WriteDrain => "box",
                NodeKind::Merger { .. } => "trapezium",
                NodeKind::Coupler { .. } => "hexagon",
            };
            let _ = writeln!(
                s,
                "  n{i} [label=\"{}\\n{}\" shape={shape}];",
                escape(&n.name),
                n.kind.kind_str()
            );
        }
        for e in &self.edges {
            let _ = writeln!(
                s,
                "  n{} -> n{} [label=\"{}B/cyc f={} c={}\"];",
                e.from, e.to, e.bytes_per_cycle, e.fifo_depth, e.credits
            );
        }
        s.push_str("}\n");
        s
    }

    /// Serializes the graph to the documented JSON schema
    /// (`docs/GRAPH_IR.md`). [`PipelineGraph::from_json`] round-trips it.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\"version\":1,\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"kind\":\"{}\"",
                escape(&n.name),
                n.kind.kind_str()
            );
            match n.kind {
                NodeKind::MemoryChannel { banks, write } => {
                    let _ = write!(s, ",\"banks\":{banks},\"write\":{write}");
                }
                NodeKind::Merger { level, width } | NodeKind::Coupler { level, width } => {
                    let _ = write!(s, ",\"level\":{level},\"width\":{width}");
                }
                _ => {}
            }
            let _ = write!(s, ",\"latency_cycles\":{}}}", n.latency_cycles);
        }
        s.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"from\":{},\"to\":{},\"fifo_depth\":{},\"credits\":{},\"bytes_per_cycle\":{}}}",
                e.from, e.to, e.fifo_depth, e.credits, e.bytes_per_cycle
            );
        }
        s.push_str("]}");
        s
    }

    /// Parses a graph from the documented JSON schema. Structural
    /// problems (dangling edges) are *not* rejected here — they surface
    /// as `BON037` from [`PipelineGraph::validate`] so tooling can load
    /// and inspect a broken dump.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let version = json::get(obj, "version")
            .and_then(json::Value::as_u64)
            .ok_or("missing integer field: version")?;
        if version != 1 {
            return Err(format!("unsupported graph schema version {version}"));
        }
        let mut g = PipelineGraph::new();
        for nv in json::get(obj, "nodes")
            .and_then(json::Value::as_arr)
            .ok_or("missing array field: nodes")?
        {
            let n = nv.as_obj().ok_or("node must be an object")?;
            let name = json::get(n, "name")
                .and_then(json::Value::as_str)
                .ok_or("node missing string field: name")?;
            let kind_str = json::get(n, "kind")
                .and_then(json::Value::as_str)
                .ok_or("node missing string field: kind")?;
            let u = |key: &str| -> Result<u64, String> {
                json::get(n, key)
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| format!("node {name} missing integer field: {key}"))
            };
            let kind = match kind_str {
                "source" => NodeKind::Source,
                "sink" => NodeKind::Sink,
                "loader" => NodeKind::Loader,
                "write_drain" => NodeKind::WriteDrain,
                "memory_channel" => NodeKind::MemoryChannel {
                    banks: u("banks")? as usize,
                    write: json::get(n, "write")
                        .and_then(json::Value::as_bool)
                        .ok_or_else(|| format!("node {name} missing bool field: write"))?,
                },
                "merger" => NodeKind::Merger {
                    level: u("level")? as usize,
                    width: u("width")? as usize,
                },
                "coupler" => NodeKind::Coupler {
                    level: u("level")? as usize,
                    width: u("width")? as usize,
                },
                other => return Err(format!("unknown node kind: {other}")),
            };
            g.add_node(name, kind, u("latency_cycles")?);
        }
        for ev in json::get(obj, "edges")
            .and_then(json::Value::as_arr)
            .ok_or("missing array field: edges")?
        {
            let e = ev.as_obj().ok_or("edge must be an object")?;
            let u = |key: &str| -> Result<u64, String> {
                json::get(e, key)
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| format!("edge missing integer field: {key}"))
            };
            g.add_edge(Edge {
                from: u("from")? as usize,
                to: u("to")? as usize,
                fifo_depth: u("fifo_depth")?,
                credits: u("credits")?,
                bytes_per_cycle: u("bytes_per_cycle")?,
            });
        }
        Ok(g)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A minimal JSON reader for the graph schema: objects, arrays, strings
/// (with basic escapes), non-negative integers, booleans and null. The
/// workspace is deliberately dependency-free, so this lives here rather
/// than pulling in a serde stack for one fixed schema.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Non-negative integer (the schema has no floats or negatives).
        UInt(u64),
        /// String
        Str(String),
        /// Array
        Arr(Vec<Value>),
        /// Object as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::UInt(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Field lookup on an object.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parses `text` as a single JSON value (trailing whitespace only).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_obj(b, pos),
            Some(b'[') => parse_arr(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, b"true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, b"false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, b"null", Value::Null),
            Some(c) if c.is_ascii_digit() => parse_uint(b, pos),
            _ => Err(format!("unexpected input at byte {}", *pos)),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8], v: Value) -> Result<Value, String> {
        if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_uint(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos < b.len() && matches!(b[*pos], b'.' | b'e' | b'E' | b'-' | b'+') {
            return Err(format!(
                "the graph schema only uses non-negative integers (byte {})",
                *pos
            ));
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::UInt)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = Vec::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".into());
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        _ => return Err(format!("unsupported escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                c => {
                    out.push(c);
                    *pos += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(items));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            items.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(items));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal healthy pipeline: source -> channel -> loader ->
    /// merger(l1) x2 -> coupler -> root merger -> drain -> channel ->
    /// sink, sized for p=2, r=4 (required 8 B/cyc).
    fn tiny_graph() -> PipelineGraph {
        let mut g = PipelineGraph::new();
        let s = g.add_node("source", NodeKind::Source, 0);
        let cr = g.add_node(
            "chan_r0",
            NodeKind::MemoryChannel {
                banks: 1,
                write: false,
            },
            8,
        );
        let ld = g.add_node("loader", NodeKind::Loader, 1);
        let m1a = g.add_node("merger_l1_0", NodeKind::Merger { level: 1, width: 1 }, 1);
        let m1b = g.add_node("merger_l1_1", NodeKind::Merger { level: 1, width: 1 }, 1);
        let cp = g.add_node("coupler_l0_0", NodeKind::Coupler { level: 0, width: 2 }, 1);
        let root = g.add_node("merger_l0_0", NodeKind::Merger { level: 0, width: 2 }, 1);
        let dr = g.add_node("drain", NodeKind::WriteDrain, 1);
        let cw = g.add_node(
            "chan_w0",
            NodeKind::MemoryChannel {
                banks: 1,
                write: true,
            },
            8,
        );
        let t = g.add_node("sink", NodeKind::Sink, 0);
        let e = |from, to, fifo, credits, bytes| Edge {
            from,
            to,
            fifo_depth: fifo,
            credits,
            bytes_per_cycle: bytes,
        };
        g.add_edge(e(s, cr, 1024, 2, 32));
        g.add_edge(e(cr, ld, 1024, 2, 32));
        g.add_edge(e(ld, m1a, 64, 2, 8));
        g.add_edge(e(ld, m1b, 64, 2, 8));
        g.add_edge(e(m1a, cp, 16, 8, 4));
        g.add_edge(e(m1b, cp, 16, 8, 4));
        g.add_edge(e(cp, root, 16, 8, 8));
        g.add_edge(e(root, dr, 16, 8, 8));
        g.add_edge(e(dr, cw, 1024, 2, 32));
        g.add_edge(e(cw, t, 1024, 2, 32));
        g
    }

    #[test]
    fn healthy_graph_passes_all_analyses() {
        let g = tiny_graph();
        assert!(g.validate().is_empty());
        assert!(g.analyze_all(8).is_empty(), "{:?}", g.analyze_all(8));
    }

    #[test]
    fn zero_credit_edge_is_bon030() {
        let mut g = tiny_graph();
        g.edges[2].credits = 0;
        let d = g.analyze_deadlock();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, codes::GRAPH_DEADLOCK);
    }

    #[test]
    fn dataflow_cycle_is_bon030() {
        let mut g = tiny_graph();
        // Feed the drain back into the loader: a backpressure loop.
        g.add_edge(Edge {
            from: 7,
            to: 2,
            fifo_depth: 16,
            credits: 2,
            bytes_per_cycle: 8,
        });
        let d = g.analyze_deadlock();
        assert!(d.iter().any(|d| d.code == codes::GRAPH_DEADLOCK), "{d:?}");
        let cycle = d.iter().find(|d| d.message.contains("cycle")).unwrap();
        let path = &cycle.context.iter().find(|(k, _)| *k == "cycle").unwrap().1;
        assert!(path.contains("loader") && path.contains("drain"), "{path}");
    }

    #[test]
    fn shallow_fifo_is_bon031() {
        let mut g = tiny_graph();
        // The root is a 2-merger: its input FIFO needs >= 3 records.
        g.edges[6].fifo_depth = 2;
        let d = g.analyze_deadlock();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, codes::GRAPH_FIFO_BELOW_FLUSH);
    }

    #[test]
    fn min_cut_localizes_the_bottleneck() {
        let mut g = tiny_graph();
        // Starve one leaf merger: flow drops to 4 + 8 capped by... the
        // two leaf edges now carry 8 + 2 = 10, but merger_l1_a's output
        // edge caps its side at 4 anyway; required 8 still feasible.
        // Throttle the root edge instead: hard bottleneck of 4 B/cyc.
        g.edges[7].bytes_per_cycle = 4;
        assert_eq!(g.max_flow_bytes_per_cycle(), Some(4));
        let d = g.analyze_bandwidth(8);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::GRAPH_BANDWIDTH_INFEASIBLE);
        let cut = &d[0]
            .context
            .iter()
            .find(|(k, _)| *k == "bottleneck")
            .unwrap()
            .1;
        assert!(cut.contains("merger_l0_0->drain"), "{cut}");
    }

    #[test]
    fn max_flow_matches_hand_computation() {
        let g = tiny_graph();
        // Leaf edges carry 8 each but each l1 merger only outputs 4;
        // coupler/root carry 8: max flow is 8.
        assert_eq!(g.max_flow_bytes_per_cycle(), Some(8));
    }

    #[test]
    fn dead_node_is_bon034_and_zero_bank_channel_is_bon035() {
        let mut g = tiny_graph();
        g.add_node("orphan_merger", NodeKind::Merger { level: 3, width: 1 }, 1);
        g.add_node(
            "chan_r_dead",
            NodeKind::MemoryChannel {
                banks: 0,
                write: false,
            },
            8,
        );
        let d = g.analyze_dead_components();
        let codes_seen: Vec<_> = d.iter().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::GRAPH_DEAD_COMPONENT), "{d:?}");
        assert!(
            codes_seen.contains(&codes::GRAPH_CHANNEL_ZERO_BANKS),
            "{d:?}"
        );
    }

    #[test]
    fn dangling_edge_is_bon037() {
        let mut g = tiny_graph();
        g.add_edge(Edge {
            from: 0,
            to: 999,
            fifo_depth: 1,
            credits: 1,
            bytes_per_cycle: 1,
        });
        let d = g.validate();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::GRAPH_MALFORMED);
        // analyze_all stops at structural errors.
        assert_eq!(g.analyze_all(8).len(), 1);
    }

    #[test]
    fn missing_source_is_bon037() {
        let mut g = tiny_graph();
        g.nodes[0].kind = NodeKind::Loader;
        assert!(g
            .validate()
            .iter()
            .any(|d| d.code == codes::GRAPH_MALFORMED));
    }

    #[test]
    fn critical_path_sums_longest_route() {
        let g = tiny_graph();
        // source(0) + chan(8) + loader(1) + merger_l1(1) + coupler(1) +
        // root(1) + drain(1) + chan_w(8) + sink(0) = 21.
        assert_eq!(g.critical_path_cycles(), Some(21));
    }

    #[test]
    fn json_round_trips_exactly() {
        let g = tiny_graph();
        let text = g.to_json();
        let back = PipelineGraph::from_json(&text).expect("round trip");
        assert_eq!(g, back);
        // And the re-serialization is stable.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn json_rejects_garbage_and_wrong_versions() {
        assert!(PipelineGraph::from_json("not json").is_err());
        assert!(PipelineGraph::from_json("{\"version\":2,\"nodes\":[],\"edges\":[]}").is_err());
        assert!(PipelineGraph::from_json("{\"version\":1,\"nodes\":[]}").is_err());
        // Floats are not part of the schema.
        assert!(PipelineGraph::from_json("{\"version\":1.5,\"nodes\":[],\"edges\":[]}").is_err());
    }

    #[test]
    fn json_with_escapes_round_trips() {
        let mut g = PipelineGraph::new();
        g.add_node("weird\"name\\x", NodeKind::Source, 0);
        g.add_node("sink", NodeKind::Sink, 0);
        let back = PipelineGraph::from_json(&g.to_json()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn dot_mentions_every_node_and_edge() {
        let g = tiny_graph();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph bonsai_pipeline {"));
        for (i, _) in g.nodes.iter().enumerate() {
            assert!(dot.contains(&format!("n{i} ")), "missing node n{i}");
        }
        assert_eq!(dot.matches(" -> ").count(), g.edges.len());
        assert!(dot.trim_end().ends_with('}'));
    }
}
