//! Exhaustive occupancy-state reachability over bounded token nets.
//!
//! The pipeline-graph analyses (`BON030`–`BON037`) are *structural*:
//! they inspect annotations edge by edge. This module closes the gap to
//! a *behavioral* guarantee: the pipeline is abstracted into a bounded
//! Petri-net-style [`TokenNet`] — places are FIFO slots, producer
//! credits and memory-channel outstanding-request windows; transitions
//! are loader feeds, merger steps and drain pops — and every reachable
//! occupancy marking is enumerated explicitly. The answer is
//! three-valued:
//!
//! - **Certified** ([`ProveOutcome::Certified`]): the full state space
//!   was covered without finding a deadlock or an overflow. The result
//!   carries a [`Certificate`] whose per-place occupancy bounds are
//!   entailed by conservation invariants (P-invariants of the net) that
//!   a small independent checker, [`verify_certificate`], re-verifies
//!   against the net structure alone — it never trusts the search.
//! - **Refuted** ([`ProveOutcome::Refuted`]): a reachable marking
//!   deadlocks (no transition enabled) or overflows a bounded place.
//!   The witness is a [`Trace`] — printable and parseable exactly like
//!   `bonsai_mc::Schedule` — that [`TokenNet::replay`] and
//!   [`verify_refutation`] can re-execute step by step.
//! - **Budget-exhausted** ([`ProveOutcome::BudgetExhausted`]): the
//!   state budget ran out first; frontier statistics are reported as
//!   `BON062` so the caller can retry with a bigger budget.
//!
//! # Partial-order reduction and why it is sound here
//!
//! The search uses Valmari-style stubborn sets: at each marking only a
//! closed subset of the enabled transitions is expanded. The closure
//! rules guarantee that any transition sequence outside the set
//! commutes with the chosen ones, which preserves **all deadlocks**
//! without a cycle proviso. Overflow is a safety property that plain
//! stubborn sets do *not* preserve, so the prover first derives the
//! net's conservation invariants: if they entail that every place's
//! occupancy is bounded by its capacity, overflow is unreachable by
//! algebra alone and the reduced search only has to find deadlocks. If
//! any place is *not* provably bounded (e.g. an over-credited edge),
//! the reduction is disabled and the search is exhaustive over the
//! full interleaving space. Either way no refutation can be missed.
//!
//! Counterexample minimality: the search is breadth-first, so the
//! returned trace is the shortest in the explored graph. When a
//! reduced search refutes, the prover re-runs without reduction within
//! the same budget to recover a globally shortest witness, keeping the
//! reduced trace only if the full space does not fit the budget.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use crate::{codes, Diagnostic};

/// Default explicit-state budget (distinct markings stored).
///
/// The folded nets lowered from engine configurations stay well under
/// this (see `bonsai_amt::prove`); it exists so a malformed or
/// adversarial net degrades into `BON062` instead of eating the host.
pub const DEFAULT_STATE_BUDGET: usize = 1 << 18;

/// Largest admissible place capacity. Token counts are stored as `u8`
/// per place so a quarter-million markings fit in a few megabytes.
pub const MAX_CAPACITY: u32 = 200;

/// One bounded place: a FIFO occupancy counter, a credit pool or an
/// outstanding-request window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Place {
    /// Human-readable name, used in diagnostics and certificates.
    pub name: String,
    /// Hard occupancy bound. A firing that pushes the marking above
    /// this refutes the net (`BON061`).
    pub capacity: u32,
    /// Tokens present in the initial marking.
    pub initial: u32,
}

/// One atomic pipeline step: loader feed, merger step, drain pop.
///
/// A transition is enabled when every `takes` and `guards` threshold is
/// met; firing consumes the `takes`, leaves the `guards` untouched and
/// adds the `puts`. Puts never block — exceeding a place's capacity is
/// an overflow refutation, not back-pressure (back-pressure is modeled
/// explicitly with credit places).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transition {
    /// Human-readable name, used in rendered traces.
    pub name: String,
    /// Non-consuming read arcs: `(place, minimum tokens)`.
    pub guards: Vec<(usize, u32)>,
    /// Consuming input arcs: `(place, tokens removed)`.
    pub takes: Vec<(usize, u32)>,
    /// Output arcs: `(place, tokens added)`.
    pub puts: Vec<(usize, u32)>,
}

/// A bounded token net: the occupancy abstraction of one pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenNet {
    /// All places, indexed by the ids the transitions refer to.
    pub places: Vec<Place>,
    /// All transitions, indexed by the ids traces refer to.
    pub transitions: Vec<Transition>,
}

/// Where a replayed trace ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayEnd {
    /// Every step fired cleanly; this is the final marking.
    Marking(Vec<u32>),
    /// Firing step `step` (0-based index into the trace) overflowed
    /// `place`; the replay stops there.
    Overflow {
        /// The place whose capacity was exceeded.
        place: usize,
        /// The trace step whose firing overflowed.
        step: usize,
    },
}

impl TokenNet {
    /// Add a place and return its id.
    pub fn add_place(&mut self, name: impl Into<String>, capacity: u32, initial: u32) -> usize {
        self.places.push(Place {
            name: name.into(),
            capacity,
            initial,
        });
        self.places.len() - 1
    }

    /// Add a transition and return its id.
    pub fn add_transition(&mut self, t: Transition) -> usize {
        self.transitions.push(t);
        self.transitions.len() - 1
    }

    /// Structural sanity: every arc must reference a real place with a
    /// positive weight, and capacities must fit the `u8` token counters.
    pub fn validate(&self) -> Result<(), String> {
        for (i, p) in self.places.iter().enumerate() {
            if p.capacity > MAX_CAPACITY {
                return Err(format!(
                    "place {i} ({}) capacity {} exceeds MAX_CAPACITY {MAX_CAPACITY}",
                    p.name, p.capacity
                ));
            }
            if p.initial > MAX_CAPACITY {
                return Err(format!(
                    "place {i} ({}) initial {} exceeds MAX_CAPACITY {MAX_CAPACITY}",
                    p.name, p.initial
                ));
            }
        }
        for (i, t) in self.transitions.iter().enumerate() {
            for (p, w) in t.guards.iter().chain(&t.takes).chain(&t.puts) {
                if *p >= self.places.len() {
                    return Err(format!(
                        "transition {i} ({}) references place {p} of {}",
                        t.name,
                        self.places.len()
                    ));
                }
                if *w == 0 || *w > MAX_CAPACITY {
                    return Err(format!(
                        "transition {i} ({}) has arc weight {w} on place {p}",
                        t.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// The initial marking as plain token counts.
    #[must_use]
    pub fn initial_marking(&self) -> Vec<u32> {
        self.places.iter().map(|p| p.initial).collect()
    }

    /// `true` if transition `t` can fire in marking `m`.
    #[must_use]
    pub fn enabled(&self, m: &[u32], t: usize) -> bool {
        let tr = &self.transitions[t];
        tr.takes.iter().chain(&tr.guards).all(|&(p, w)| m[p] >= w)
    }

    /// Fire `t` in `m` (must be enabled). Returns the first overflowed
    /// place, if any; `m` is updated either way so the offending
    /// occupancy can be reported.
    fn fire(&self, m: &mut [u32], t: usize) -> Option<usize> {
        let tr = &self.transitions[t];
        for &(p, w) in &tr.takes {
            m[p] -= w;
        }
        let mut overflow = None;
        for &(p, w) in &tr.puts {
            m[p] += w;
            if overflow.is_none() && m[p] > self.places[p].capacity {
                overflow = Some(p);
            }
        }
        overflow
    }

    /// Re-execute a trace from the initial marking, verifying that every
    /// step is enabled when it fires. This is the replay half of the
    /// independent checker: it trusts nothing but the net structure.
    pub fn replay(&self, trace: &Trace) -> Result<ReplayEnd, String> {
        let mut m = self.initial_marking();
        for (step, &t) in trace.steps().iter().enumerate() {
            if t >= self.transitions.len() {
                return Err(format!(
                    "trace step {step} names transition {t} of {}",
                    self.transitions.len()
                ));
            }
            if !self.enabled(&m, t) {
                return Err(format!(
                    "trace step {step} ({}) is not enabled",
                    self.transitions[t].name
                ));
            }
            if let Some(place) = self.fire(&mut m, t) {
                return Ok(ReplayEnd::Overflow { place, step });
            }
        }
        Ok(ReplayEnd::Marking(m))
    }
}

/// A counterexample transition sequence, printable and parseable with
/// the same dotted-index contract as `bonsai_mc::Schedule`: the empty
/// trace renders as `(default)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace(Vec<usize>);

impl Trace {
    /// Wrap an explicit step list.
    #[must_use]
    pub fn new(steps: Vec<usize>) -> Self {
        Self(steps)
    }

    /// The transition ids, in firing order.
    #[must_use]
    pub fn steps(&self) -> &[usize] {
        &self.0
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty (initial-marking) trace.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Render the trace with transition names, `a -> b -> c`, capped at
    /// `max` steps for diagnostics.
    #[must_use]
    pub fn render_names(&self, net: &TokenNet, max: usize) -> String {
        let mut out = String::new();
        for (i, &t) in self.0.iter().take(max).enumerate() {
            if i > 0 {
                out.push_str(" -> ");
            }
            match net.transitions.get(t) {
                Some(tr) => out.push_str(&tr.name),
                None => out.push_str(&format!("#{t}")),
            }
        }
        if self.0.len() > max {
            out.push_str(&format!(" -> ... ({} more)", self.0.len() - max));
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "(default)");
        }
        for (i, step) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl FromStr for Trace {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "(default)" {
            return Ok(Self(Vec::new()));
        }
        let mut steps = Vec::new();
        for part in s.split('.') {
            let part = part.trim();
            steps.push(
                part.parse::<usize>()
                    .map_err(|e| format!("bad trace component {part:?}: {e}"))?,
            );
        }
        Ok(Self(steps))
    }
}

/// A unit-weight conservation law: the token sum over `places` is the
/// same in every reachable marking (every transition's net effect on
/// the set is zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    /// The places whose occupancies sum to `total`.
    pub places: Vec<usize>,
    /// The conserved token sum (fixed by the initial marking).
    pub total: u32,
}

/// The machine-checkable half of a certified outcome.
///
/// For places `covered` by a conservation invariant the bound is
/// *inductive*: [`verify_certificate`] re-derives it from the
/// invariants and the net structure without trusting the search. For
/// uncovered places the bound is the peak occupancy the exhaustive
/// search observed — attested by state enumeration, not by algebra;
/// the lowered pipeline nets always cover every place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Per-place occupancy upper bound over all reachable markings.
    pub place_bounds: Vec<u32>,
    /// Whether each bound is entailed by the invariants (inductive).
    pub covered: Vec<bool>,
    /// The conservation invariants backing the covered bounds.
    pub invariants: Vec<Invariant>,
    /// Peak occupancy actually observed per place (informational;
    /// never exceeds the inductive bound).
    pub peak: Vec<u32>,
    /// Distinct markings enumerated by the search.
    pub states_explored: usize,
}

/// What went wrong in a refuted net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A reachable marking enables no transition at all.
    Deadlock,
    /// Firing the last trace step pushed `place` above its capacity.
    Overflow {
        /// The overflowed place.
        place: usize,
    },
}

/// A refuted outcome: the witness trace and the marking it reaches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refutation {
    /// Deadlock or overflow.
    pub kind: FailureKind,
    /// Shortest witness found; replayable via [`TokenNet::replay`].
    pub trace: Trace,
    /// The failing marking (after the final step fires).
    pub marking: Vec<u32>,
}

/// Search statistics reported when the state budget runs out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierStats {
    /// Markings fully expanded before the budget tripped.
    pub states_explored: usize,
    /// Markings discovered but not yet expanded.
    pub frontier: usize,
    /// The budget that was exhausted.
    pub budget: usize,
}

/// Three-valued reachability verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProveOutcome {
    /// Full coverage, no deadlock, no overflow; carries the
    /// independently checkable [`Certificate`].
    Certified(Certificate),
    /// A deadlock or overflow is reachable; carries the witness.
    Refuted(Refutation),
    /// The state budget ran out before coverage; `BON062`.
    BudgetExhausted(FrontierStats),
}

/// Knobs for the reachability search.
#[derive(Debug, Clone, Copy)]
pub struct ProveOptions {
    /// Maximum distinct markings stored before giving up.
    pub state_budget: usize,
    /// Enable stubborn-set partial-order reduction. Automatically
    /// disabled (regardless of this flag) when the conservation
    /// invariants cannot exclude overflow, so reduction never hides a
    /// refutation.
    pub reduction: bool,
}

impl Default for ProveOptions {
    fn default() -> Self {
        Self {
            state_budget: DEFAULT_STATE_BUDGET,
            reduction: true,
        }
    }
}

/// Discover the net's unit-weight conservation invariants: singleton
/// places no transition touches, and place pairs whose summed delta is
/// zero across every transition (the FIFO-occupancy + producer-credit
/// pairs of the pipeline lowering).
#[must_use]
pub fn conservation_invariants(net: &TokenNet) -> Vec<Invariant> {
    let n = net.places.len();
    // Net token delta per (transition, place).
    let mut deltas: Vec<Vec<i64>> = Vec::with_capacity(net.transitions.len());
    for t in &net.transitions {
        let mut d = vec![0i64; n];
        for &(p, w) in &t.takes {
            d[p] -= i64::from(w);
        }
        for &(p, w) in &t.puts {
            d[p] += i64::from(w);
        }
        deltas.push(d);
    }
    let constant: Vec<bool> = (0..n).map(|p| deltas.iter().all(|d| d[p] == 0)).collect();
    let mut out = Vec::new();
    for (p, _) in constant.iter().enumerate().filter(|(_, &c)| c) {
        out.push(Invariant {
            places: vec![p],
            total: net.places[p].initial,
        });
    }
    for a in 0..n {
        if constant[a] {
            continue;
        }
        for b in (a + 1)..n {
            if constant[b] {
                continue;
            }
            if deltas.iter().all(|d| d[a] + d[b] == 0) {
                out.push(Invariant {
                    places: vec![a, b],
                    total: net.places[a].initial + net.places[b].initial,
                });
            }
        }
    }
    out
}

/// The occupancy bound each invariant set entails for each place it
/// contains (`None` where no invariant covers the place).
fn entailed_bounds(net: &TokenNet, invariants: &[Invariant]) -> Vec<Option<u32>> {
    let mut bounds: Vec<Option<u32>> = vec![None; net.places.len()];
    for inv in invariants {
        for &p in &inv.places {
            bounds[p] = Some(match bounds[p] {
                Some(b) => b.min(inv.total),
                None => inv.total,
            });
        }
    }
    bounds
}

struct SearchResult {
    outcome: ProveOutcome,
    reduced: bool,
}

/// Run exhaustive explicit-state reachability on a validated net.
///
/// # Panics
///
/// Panics if [`TokenNet::validate`] fails; validate first when the net
/// comes from outside the trusted lowering.
#[must_use]
pub fn prove(net: &TokenNet, opts: &ProveOptions) -> ProveOutcome {
    net.validate().expect("prove() requires a valid TokenNet");
    let invariants = conservation_invariants(net);
    let entailed = entailed_bounds(net, &invariants);
    // Overflow is excluded by algebra only if every place's entailed
    // bound fits its capacity; otherwise the reduction must be off so
    // the search preserves overflow reachability, not just deadlocks.
    let overflow_excluded = net
        .places
        .iter()
        .enumerate()
        .all(|(p, place)| entailed[p].is_some_and(|b| b <= place.capacity));
    let reduce = opts.reduction && overflow_excluded;
    let first = search(net, opts.state_budget, reduce);
    let outcome = match first.outcome {
        // A reduced search finds the shortest trace of the *reduced*
        // graph; retry unreduced (same budget) for a globally shortest
        // witness, keeping the reduced one if the full space is too big.
        ProveOutcome::Refuted(r) if first.reduced => match search(net, opts.state_budget, false) {
            SearchResult {
                outcome: ProveOutcome::Refuted(full),
                ..
            } => ProveOutcome::Refuted(if full.trace.len() <= r.trace.len() {
                full
            } else {
                r
            }),
            _ => ProveOutcome::Refuted(r),
        },
        other => other,
    };
    match outcome {
        ProveOutcome::Certified(mut cert) => {
            cert.invariants = invariants;
            for (p, b) in entailed.iter().enumerate() {
                match b {
                    Some(bound) => {
                        cert.place_bounds[p] = *bound;
                        cert.covered[p] = true;
                    }
                    None => {
                        cert.place_bounds[p] = cert.peak[p];
                        cert.covered[p] = false;
                    }
                }
            }
            ProveOutcome::Certified(cert)
        }
        other => other,
    }
}

fn search(net: &TokenNet, budget: usize, reduce: bool) -> SearchResult {
    let n_places = net.places.len();
    let n_trans = net.transitions.len();
    // Arc indexes for the stubborn-set closure.
    let mut takers_of: Vec<Vec<usize>> = vec![Vec::new(); n_places];
    let mut requirers_of: Vec<Vec<usize>> = vec![Vec::new(); n_places];
    let mut putters_of: Vec<Vec<usize>> = vec![Vec::new(); n_places];
    for (t, tr) in net.transitions.iter().enumerate() {
        for &(p, _) in &tr.takes {
            takers_of[p].push(t);
            requirers_of[p].push(t);
        }
        for &(p, _) in &tr.guards {
            requirers_of[p].push(t);
        }
        for &(p, _) in &tr.puts {
            putters_of[p].push(t);
        }
    }

    let pack = |m: &[u32]| -> Box<[u8]> {
        m.iter()
            .map(|&v| u8::try_from(v).expect("marking fits u8 (validate)"))
            .collect()
    };
    let unpack = |m: &[u8]| -> Vec<u32> { m.iter().map(|&v| u32::from(v)).collect() };

    let initial = net.initial_marking();
    let mut states: Vec<Box<[u8]>> = vec![pack(&initial)];
    let mut parents: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX)];
    let mut index: HashMap<Box<[u8]>, usize> = HashMap::new();
    index.insert(states[0].clone(), 0);
    let mut peak = initial.clone();

    let trace_to = |parents: &[(usize, usize)], mut s: usize| -> Trace {
        let mut steps = Vec::new();
        while parents[s].0 != usize::MAX {
            steps.push(parents[s].1);
            s = parents[s].0;
        }
        steps.reverse();
        Trace::new(steps)
    };

    let mut cursor = 0usize;
    let mut enabled = Vec::with_capacity(n_trans);
    while cursor < states.len() {
        let m = unpack(&states[cursor]);
        enabled.clear();
        enabled.extend((0..n_trans).filter(|&t| net.enabled(&m, t)));
        if enabled.is_empty() {
            return SearchResult {
                outcome: ProveOutcome::Refuted(Refutation {
                    kind: FailureKind::Deadlock,
                    trace: trace_to(&parents, cursor),
                    marking: m,
                }),
                reduced: reduce,
            };
        }
        let expansion = if reduce && enabled.len() > 1 {
            stubborn_expansion(net, &m, &enabled, &takers_of, &requirers_of, &putters_of)
        } else {
            enabled.clone()
        };
        for &t in &expansion {
            let mut next = m.clone();
            if let Some(place) = net.fire(&mut next, t) {
                let mut steps = trace_to(&parents, cursor).0;
                steps.push(t);
                return SearchResult {
                    outcome: ProveOutcome::Refuted(Refutation {
                        kind: FailureKind::Overflow { place },
                        trace: Trace::new(steps),
                        marking: next,
                    }),
                    reduced: reduce,
                };
            }
            let key = pack(&next);
            if !index.contains_key(&key) {
                if states.len() >= budget {
                    return SearchResult {
                        outcome: ProveOutcome::BudgetExhausted(FrontierStats {
                            states_explored: cursor,
                            frontier: states.len() - cursor,
                            budget,
                        }),
                        reduced: reduce,
                    };
                }
                index.insert(key.clone(), states.len());
                states.push(key);
                parents.push((cursor, t));
                for (p, v) in next.iter().enumerate() {
                    if *v > peak[p] {
                        peak[p] = *v;
                    }
                }
            }
        }
        cursor += 1;
    }
    SearchResult {
        outcome: ProveOutcome::Certified(Certificate {
            place_bounds: peak.clone(),
            covered: vec![false; n_places],
            invariants: Vec::new(),
            peak,
            states_explored: states.len(),
        }),
        reduced: reduce,
    }
}

/// Compute a deadlock-preserving stubborn set for marking `m` and
/// return its enabled members. Tries every enabled transition as the
/// seed and keeps the smallest expansion.
fn stubborn_expansion(
    net: &TokenNet,
    m: &[u32],
    enabled: &[usize],
    takers_of: &[Vec<usize>],
    requirers_of: &[Vec<usize>],
    putters_of: &[Vec<usize>],
) -> Vec<usize> {
    let n_trans = net.transitions.len();
    let is_enabled: Vec<bool> = {
        let mut v = vec![false; n_trans];
        for &t in enabled {
            v[t] = true;
        }
        v
    };
    let mut best: Option<Vec<usize>> = None;
    for &seed in enabled {
        let mut in_set = vec![false; n_trans];
        let mut stack = vec![seed];
        in_set[seed] = true;
        while let Some(t) = stack.pop() {
            let tr = &net.transitions[t];
            if is_enabled[t] {
                // Transitions that can disable t (they consume from its
                // required places) and transitions t can disable (they
                // require the places t consumes from) must come along,
                // so everything outside the set commutes with t.
                for &(p, _) in tr.takes.iter().chain(&tr.guards) {
                    for &o in &takers_of[p] {
                        if !in_set[o] {
                            in_set[o] = true;
                            stack.push(o);
                        }
                    }
                }
                for &(p, _) in &tr.takes {
                    for &o in &requirers_of[p] {
                        if !in_set[o] {
                            in_set[o] = true;
                            stack.push(o);
                        }
                    }
                }
            } else {
                // One unsatisfied precondition is enough: only its
                // producers could ever enable t.
                if let Some(&(p, _)) = tr.takes.iter().chain(&tr.guards).find(|&&(p, w)| m[p] < w) {
                    for &o in &putters_of[p] {
                        if !in_set[o] {
                            in_set[o] = true;
                            stack.push(o);
                        }
                    }
                }
            }
        }
        let expansion: Vec<usize> = enabled.iter().copied().filter(|&t| in_set[t]).collect();
        let better = best.as_ref().is_none_or(|b| expansion.len() < b.len());
        if better {
            let done = expansion.len() == 1;
            best = Some(expansion);
            if done {
                break;
            }
        }
    }
    best.unwrap_or_else(|| enabled.to_vec())
}

/// Independently re-verify a certificate against the net structure.
///
/// Checks, without re-running any search:
///
/// 1. every listed invariant really is conserved by every transition
///    and matches the initial marking;
/// 2. every covered place's claimed bound equals the tightest bound the
///    listed invariants entail, and fits the place's capacity;
/// 3. every uncovered place's claimed (search-attested) bound fits the
///    capacity.
///
/// Any discrepancy is a prover soundness bug (`BON063`).
pub fn verify_certificate(net: &TokenNet, cert: &Certificate) -> Result<(), String> {
    let n = net.places.len();
    if cert.place_bounds.len() != n || cert.covered.len() != n {
        return Err(format!(
            "certificate shape mismatch: {} bounds / {} covered flags for {n} places",
            cert.place_bounds.len(),
            cert.covered.len()
        ));
    }
    for (i, inv) in cert.invariants.iter().enumerate() {
        if inv.places.is_empty() {
            return Err(format!("invariant {i} covers no places"));
        }
        let mut seen = vec![false; n];
        let mut initial_sum: u64 = 0;
        for &p in &inv.places {
            if p >= n {
                return Err(format!("invariant {i} references place {p} of {n}"));
            }
            if seen[p] {
                return Err(format!("invariant {i} lists place {p} twice"));
            }
            seen[p] = true;
            initial_sum += u64::from(net.places[p].initial);
        }
        if initial_sum != u64::from(inv.total) {
            return Err(format!(
                "invariant {i} claims total {} but the initial marking sums to {initial_sum}",
                inv.total
            ));
        }
        for (t, tr) in net.transitions.iter().enumerate() {
            let mut delta: i64 = 0;
            for &(p, w) in &tr.takes {
                if seen[p] {
                    delta -= i64::from(w);
                }
            }
            for &(p, w) in &tr.puts {
                if seen[p] {
                    delta += i64::from(w);
                }
            }
            if delta != 0 {
                return Err(format!(
                    "invariant {i} is not conserved by transition {t} ({}): delta {delta}",
                    tr.name
                ));
            }
        }
    }
    // Tightest bound each place gets from the *certificate's own*
    // invariant list (now proven sound above).
    let mut entailed: Vec<Option<u32>> = vec![None; n];
    for inv in &cert.invariants {
        for &p in &inv.places {
            entailed[p] = Some(match entailed[p] {
                Some(b) => b.min(inv.total),
                None => inv.total,
            });
        }
    }
    for (p, place) in net.places.iter().enumerate() {
        let bound = cert.place_bounds[p];
        if cert.covered[p] {
            match entailed[p] {
                Some(e) if e == bound => {}
                Some(e) => {
                    return Err(format!(
                        "place {p} ({}): claimed bound {bound} but the invariants entail {e}",
                        place.name
                    ));
                }
                None => {
                    return Err(format!(
                        "place {p} ({}): marked covered but no invariant contains it",
                        place.name
                    ));
                }
            }
        }
        if bound > place.capacity {
            return Err(format!(
                "place {p} ({}): bound {bound} exceeds capacity {}",
                place.name, place.capacity
            ));
        }
    }
    Ok(())
}

/// Independently re-verify a refutation by replaying its trace.
pub fn verify_refutation(net: &TokenNet, refutation: &Refutation) -> Result<(), String> {
    match (&refutation.kind, net.replay(&refutation.trace)?) {
        (FailureKind::Deadlock, ReplayEnd::Marking(m)) => {
            if m != refutation.marking {
                return Err(format!(
                    "replayed marking {m:?} differs from the claimed {:?}",
                    refutation.marking
                ));
            }
            if let Some(t) = (0..net.transitions.len()).find(|&t| net.enabled(&m, t)) {
                return Err(format!(
                    "claimed deadlock marking still enables {} ({t})",
                    net.transitions[t].name
                ));
            }
            Ok(())
        }
        (FailureKind::Overflow { place }, ReplayEnd::Overflow { place: got, step }) => {
            if got != *place {
                return Err(format!(
                    "replay overflowed place {got}, not the claimed {place}"
                ));
            }
            if step + 1 != refutation.trace.len() {
                return Err(format!(
                    "replay overflowed at step {step} before the trace end {}",
                    refutation.trace.len()
                ));
            }
            Ok(())
        }
        (FailureKind::Deadlock, ReplayEnd::Overflow { place, step }) => Err(format!(
            "deadlock trace overflowed place {place} at step {step} instead"
        )),
        (FailureKind::Overflow { .. }, ReplayEnd::Marking(_)) => {
            Err("overflow trace replayed without overflowing".into())
        }
    }
}

/// Prove the checker is not vacuous: certify the net, corrupt one
/// claimed bound and demand that [`verify_certificate`] rejects it.
///
/// `Ok` carries the `BON063` diagnostic the rejection produced (what a
/// real soundness bug would surface); `Err` means either the net is not
/// certifiable (selftest needs a healthy net) or — far worse — the
/// checker accepted the corruption.
pub fn certificate_selftest(net: &TokenNet) -> Result<Diagnostic, String> {
    let ProveOutcome::Certified(cert) = prove(net, &ProveOptions::default()) else {
        return Err("certificate selftest needs a certifiable net".into());
    };
    verify_certificate(net, &cert)
        .map_err(|e| format!("checker rejected the genuine certificate: {e}"))?;
    let Some(victim) = cert.covered.iter().position(|&c| c) else {
        return Err("certificate selftest needs at least one covered place".into());
    };
    let mut corrupt = cert.clone();
    // A tampered bound is no longer what the invariants entail.
    corrupt.place_bounds[victim] += 1;
    match verify_certificate(net, &corrupt) {
        Err(why) => Ok(Diagnostic::error(
            codes::PROVE_CERTIFICATE_INVALID,
            "certificate selftest: the independent checker rejected a corrupted \
             certificate, as it must",
        )
        .with("place", &net.places[victim].name)
        .with("reason", why)),
        Ok(()) => Err(
            "independent checker accepted a corrupted certificate; the re-verification \
             is vacuous"
                .into(),
        ),
    }
}

/// Map a prove outcome to `BON060`–`BON063` diagnostics. A certified
/// outcome is re-verified by the independent checker before it earns an
/// empty diagnostic list.
#[must_use]
pub fn outcome_diagnostics(net: &TokenNet, outcome: &ProveOutcome) -> Vec<Diagnostic> {
    match outcome {
        ProveOutcome::Certified(cert) => match verify_certificate(net, cert) {
            Ok(()) => Vec::new(),
            Err(why) => vec![Diagnostic::error(
                codes::PROVE_CERTIFICATE_INVALID,
                "occupancy certificate failed independent re-verification (prover \
                 soundness bug)",
            )
            .with("reason", why)
            .with("states", cert.states_explored)],
        },
        ProveOutcome::Refuted(r) => {
            let mut d = match &r.kind {
                FailureKind::Deadlock => {
                    let wedged: Vec<String> = net
                        .places
                        .iter()
                        .zip(&r.marking)
                        .filter(|(_, &occ)| occ > 0)
                        .map(|(p, occ)| format!("{}={occ}", p.name))
                        .take(6)
                        .collect();
                    Diagnostic::error(
                        codes::PROVE_DEADLOCK_REACHABLE,
                        "occupancy reachability refuted: a reachable marking enables no \
                         transition (pipeline deadlock)",
                    )
                    .with("wedged", wedged.join(" "))
                }
                FailureKind::Overflow { place } => Diagnostic::error(
                    codes::PROVE_OVERFLOW_REACHABLE,
                    "occupancy reachability refuted: a reachable firing overflows a \
                     bounded place",
                )
                .with("place", &net.places[*place].name)
                .with("capacity", net.places[*place].capacity)
                .with("occupancy", r.marking[*place]),
            };
            d = d
                .with("trace", &r.trace)
                .with("depth", r.trace.len())
                .with("steps", r.trace.render_names(net, 12));
            vec![d]
        }
        ProveOutcome::BudgetExhausted(fs) => vec![Diagnostic::warning(
            codes::PROVE_BUDGET_EXHAUSTED,
            "occupancy reachability exhausted its state budget before covering the \
             space; raise --state-budget for a verdict",
        )
        .with("states_explored", fs.states_explored)
        .with("frontier", fs.frontier)
        .with("budget", fs.budget)],
    }
}

/// [`prove`] plus [`outcome_diagnostics`] in one call.
#[must_use]
pub fn prove_with_diagnostics(
    net: &TokenNet,
    opts: &ProveOptions,
) -> (ProveOutcome, Vec<Diagnostic>) {
    let outcome = prove(net, opts);
    let diags = outcome_diagnostics(net, &outcome);
    (outcome, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `stages` producer→consumer cells chained source to sink; each
    /// cell is a FIFO-occupancy place plus its credit pool. `credits`
    /// beyond `capacity` makes the net over-credited (overflow).
    fn chain(stages: usize, capacity: u32, credits: u32) -> TokenNet {
        let mut net = TokenNet::default();
        let mut fifos = Vec::new();
        let mut pools = Vec::new();
        for i in 0..stages {
            fifos.push(net.add_place(format!("fifo{i}"), capacity, 0));
            pools.push(net.add_place(format!("credit{i}"), credits.max(capacity), credits));
        }
        net.add_transition(Transition {
            name: "source".into(),
            takes: vec![(pools[0], 1)],
            puts: vec![(fifos[0], 1)],
            ..Transition::default()
        });
        for i in 0..stages - 1 {
            net.add_transition(Transition {
                name: format!("relay{i}"),
                takes: vec![(fifos[i], 1), (pools[i + 1], 1)],
                puts: vec![(pools[i], 1), (fifos[i + 1], 1)],
                ..Transition::default()
            });
        }
        net.add_transition(Transition {
            name: "sink".into(),
            takes: vec![(fifos[stages - 1], 1)],
            puts: vec![(pools[stages - 1], 1)],
            ..Transition::default()
        });
        net
    }

    #[test]
    fn healthy_chain_certifies_with_inductive_bounds() {
        let net = chain(3, 2, 2);
        let ProveOutcome::Certified(cert) = prove(&net, &ProveOptions::default()) else {
            panic!("healthy chain must certify");
        };
        assert!(cert.states_explored > 1);
        assert!(cert.covered.iter().all(|&c| c), "{:?}", cert.covered);
        for (p, place) in net.places.iter().enumerate() {
            assert!(cert.place_bounds[p] <= place.capacity);
            assert!(cert.peak[p] <= cert.place_bounds[p]);
        }
        verify_certificate(&net, &cert).expect("certificate verifies");
    }

    #[test]
    fn zero_credit_chain_deadlocks_at_the_initial_marking() {
        let net = chain(1, 2, 0);
        let ProveOutcome::Refuted(r) = prove(&net, &ProveOptions::default()) else {
            panic!("zero credits must refute");
        };
        assert_eq!(r.kind, FailureKind::Deadlock);
        assert!(r.trace.is_empty());
        assert_eq!(r.trace.to_string(), "(default)");
        verify_refutation(&net, &r).expect("refutation replays");
    }

    #[test]
    fn downstream_credit_wedge_yields_a_minimal_trace() {
        // Stage 1 has credits but stage 2 has none: the source fills
        // fifo0 (2 deep) and everything wedges. Shortest witness: two
        // source firings.
        let mut net = chain(2, 2, 2);
        // Drain stage-2 credits by rebuilding with credits 0 there.
        let pool1 = 3; // fifo0, credit0, fifo1, credit1
        net.places[pool1].initial = 0;
        let ProveOutcome::Refuted(r) = prove(&net, &ProveOptions::default()) else {
            panic!("wedged chain must refute");
        };
        assert_eq!(r.kind, FailureKind::Deadlock);
        assert_eq!(r.trace.len(), 2, "trace: {}", r.trace);
        verify_refutation(&net, &r).expect("refutation replays");
        // Round-trips through the Schedule print/parse contract.
        let parsed: Trace = r.trace.to_string().parse().unwrap();
        assert_eq!(parsed, r.trace);
    }

    #[test]
    fn over_credited_chain_overflows() {
        let net = chain(2, 2, 3);
        let ProveOutcome::Refuted(r) = prove(&net, &ProveOptions::default()) else {
            panic!("over-credit must refute");
        };
        match r.kind {
            FailureKind::Overflow { place } => {
                assert!(net.places[place].name.starts_with("fifo"));
                assert!(r.marking[place] > net.places[place].capacity);
            }
            FailureKind::Deadlock => panic!("expected overflow"),
        }
        verify_refutation(&net, &r).expect("refutation replays");
    }

    #[test]
    fn budget_exhaustion_reports_frontier_stats() {
        let net = chain(3, 2, 2);
        let outcome = prove(
            &net,
            &ProveOptions {
                state_budget: 2,
                reduction: true,
            },
        );
        let ProveOutcome::BudgetExhausted(fs) = outcome else {
            panic!("budget 2 must exhaust");
        };
        assert_eq!(fs.budget, 2);
        assert!(fs.frontier > 0);
    }

    #[test]
    fn reduction_explores_no_more_and_agrees_with_full_search() {
        let net = chain(4, 2, 2);
        let full = prove(
            &net,
            &ProveOptions {
                state_budget: DEFAULT_STATE_BUDGET,
                reduction: false,
            },
        );
        let reduced = prove(&net, &ProveOptions::default());
        let (ProveOutcome::Certified(f), ProveOutcome::Certified(r)) = (&full, &reduced) else {
            panic!("both searches must certify");
        };
        assert!(
            r.states_explored <= f.states_explored,
            "reduced {} vs full {}",
            r.states_explored,
            f.states_explored
        );
        // The inductive bounds are search-independent.
        assert_eq!(f.place_bounds, r.place_bounds);
    }

    #[test]
    fn trace_parse_rejects_malformed_input() {
        for bad in ["1..2", "a.b", "1.-2", "1.2.", "."] {
            assert!(bad.parse::<Trace>().is_err(), "{bad:?} must be rejected");
        }
        let t: Trace = " 3 . 1 . 2 ".parse().unwrap();
        assert_eq!(t.steps(), &[3, 1, 2]);
        let empty: Trace = "(default)".parse().unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn corrupted_certificates_are_rejected() {
        let net = chain(2, 2, 2);
        let ProveOutcome::Certified(cert) = prove(&net, &ProveOptions::default()) else {
            panic!("must certify");
        };
        let mut bad_bound = cert.clone();
        bad_bound.place_bounds[0] += 1;
        assert!(verify_certificate(&net, &bad_bound).is_err());
        let mut bad_total = cert.clone();
        bad_total.invariants[0].total += 1;
        assert!(verify_certificate(&net, &bad_total).is_err());
        let mut bad_cap = cert.clone();
        bad_cap.place_bounds[0] = net.places[0].capacity + 1;
        bad_cap.covered[0] = false;
        assert!(verify_certificate(&net, &bad_cap).is_err());
    }

    #[test]
    fn selftest_produces_the_rejection_diagnostic() {
        let net = chain(2, 2, 2);
        let diag = certificate_selftest(&net).expect("selftest passes on a healthy net");
        assert_eq!(diag.code, codes::PROVE_CERTIFICATE_INVALID);
        assert!(diag.is_error());
    }

    #[test]
    fn outcome_diagnostics_name_the_right_codes() {
        let healthy = chain(2, 2, 2);
        let (_, diags) = prove_with_diagnostics(&healthy, &ProveOptions::default());
        assert!(diags.is_empty(), "{diags:?}");

        let wedged = chain(1, 2, 0);
        let (_, diags) = prove_with_diagnostics(&wedged, &ProveOptions::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::PROVE_DEADLOCK_REACHABLE);
        assert!(diags[0].context.iter().any(|(k, _)| *k == "trace"));

        let over = chain(2, 2, 3);
        let (_, diags) = prove_with_diagnostics(&over, &ProveOptions::default());
        assert_eq!(diags[0].code, codes::PROVE_OVERFLOW_REACHABLE);

        let (_, diags) = prove_with_diagnostics(
            &healthy,
            &ProveOptions {
                state_budget: 1,
                reduction: true,
            },
        );
        assert_eq!(diags[0].code, codes::PROVE_BUDGET_EXHAUSTED);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn replay_rejects_disabled_steps_and_bad_indices() {
        let net = chain(1, 2, 1);
        assert!(net.replay(&Trace::new(vec![9])).is_err());
        // sink (transition 1) before anything is produced.
        assert!(net.replay(&Trace::new(vec![1])).is_err());
        // source then sink is fine and returns to the initial marking.
        match net.replay(&Trace::new(vec![0, 1])).unwrap() {
            ReplayEnd::Marking(m) => assert_eq!(m, net.initial_marking()),
            ReplayEnd::Overflow { .. } => panic!("no overflow expected"),
        }
    }

    #[test]
    fn validate_rejects_malformed_nets() {
        let mut net = TokenNet::default();
        let p = net.add_place("p", 1, 0);
        net.add_transition(Transition {
            name: "bad".into(),
            takes: vec![(p + 1, 1)],
            ..Transition::default()
        });
        assert!(net.validate().is_err());
        let mut zero_w = TokenNet::default();
        let p = zero_w.add_place("p", 1, 0);
        zero_w.add_transition(Transition {
            name: "zero".into(),
            puts: vec![(p, 0)],
            ..Transition::default()
        });
        assert!(zero_w.validate().is_err());
        let mut huge = TokenNet::default();
        huge.add_place("p", MAX_CAPACITY + 1, 0);
        assert!(huge.validate().is_err());
    }

    #[test]
    fn conservation_invariants_find_fifo_credit_pairs() {
        let net = chain(2, 2, 2);
        let invs = conservation_invariants(&net);
        // Two fifo+credit pairs, each conserved at 2 tokens.
        assert_eq!(invs.len(), 2, "{invs:?}");
        for inv in &invs {
            assert_eq!(inv.places.len(), 2);
            assert_eq!(inv.total, 2);
        }
    }
}
