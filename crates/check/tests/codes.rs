//! One test per registered `BONxxx` code: every code must be emitted by
//! the check that owns it (or, for sanitizer codes whose trigger
//! requires a broken datapath, provably wired into the probe API), with
//! the severity the registry declares.

use bonsai_check::{codes, has_errors, Diagnostic, Severity};

/// Asserts `diags` contains `code` and that its severity matches the
/// registry entry.
fn assert_emits(diags: &[Diagnostic], code: &str) {
    let d = diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected {code} in {diags:?}"));
    let info = codes::lookup(code).expect("code must be registered");
    assert_eq!(
        d.severity, info.severity,
        "{code} severity drifted from registry"
    );
}

#[test]
fn bon001_p_not_power_of_two() {
    assert_emits(
        &bonsai_check::check_amt_shape(6, 16),
        codes::P_NOT_POWER_OF_TWO,
    );
    assert_emits(
        &bonsai_check::check_amt_shape(0, 16),
        codes::P_NOT_POWER_OF_TWO,
    );
    assert!(bonsai_amt::AmtConfig::try_new(6, 16).is_err());
}

#[test]
fn bon002_l_not_power_of_two() {
    assert_emits(
        &bonsai_check::check_amt_shape(4, 12),
        codes::L_NOT_POWER_OF_TWO,
    );
    assert_emits(
        &bonsai_check::check_amt_shape(4, 1),
        codes::L_NOT_POWER_OF_TWO,
    );
    assert!(bonsai_amt::AmtConfig::try_new(4, 1).is_err());
}

#[test]
fn bon003_p_exceeds_leaves_is_warning() {
    let diags = bonsai_check::check_amt_shape(32, 16);
    assert_emits(&diags, codes::P_EXCEEDS_LEAVES);
    assert!(!has_errors(&diags), "BON003 must not reject the config");
    assert!(bonsai_amt::AmtConfig::try_new(32, 16).is_ok());
}

#[test]
fn bon004_record_width_zero() {
    assert_emits(
        &bonsai_check::check_loader_shape(4096, 0, 2),
        codes::RECORD_WIDTH_ZERO,
    );
    assert!(bonsai_memsim::LoaderConfig::try_new(4096, 0, 2).is_err());
}

#[test]
fn bon005_batch_not_record_multiple() {
    assert_emits(
        &bonsai_check::check_loader_shape(4096, 3, 2),
        codes::BATCH_NOT_RECORD_MULTIPLE,
    );
    assert!(bonsai_memsim::LoaderConfig::try_new(4096, 3, 2).is_err());
}

#[test]
fn bon010_batch_below_bus_width() {
    assert_emits(
        &bonsai_check::check_loader_against_memory(16, 32, 8, 1 << 30),
        codes::BATCH_BELOW_BUS_WIDTH,
    );
}

#[test]
fn bon011_buffer_not_double() {
    let diags = bonsai_check::check_loader_shape(4096, 4, 1);
    assert_emits(&diags, codes::BUFFER_NOT_DOUBLE);
    // Warning: the config still constructs.
    assert!(bonsai_memsim::LoaderConfig::try_new(4096, 4, 1).is_ok());
}

#[test]
fn bon012_batch_zero() {
    assert_emits(
        &bonsai_check::check_loader_shape(0, 4, 2),
        codes::BATCH_ZERO,
    );
    assert!(bonsai_memsim::LoaderConfig::try_new(0, 4, 2).is_err());
}

#[test]
fn bon013_zero_banks() {
    assert_emits(
        &bonsai_check::check_memory_shape(0, 32, 32),
        codes::MEMORY_ZERO_BANKS,
    );
    assert!(bonsai_memsim::MemoryConfig::try_new(0, 32, 32, 1 << 30, 8).is_err());
}

#[test]
fn bon014_zero_bandwidth() {
    assert_emits(
        &bonsai_check::check_memory_shape(4, 0, 32),
        codes::MEMORY_ZERO_BANDWIDTH,
    );
    assert_emits(
        &bonsai_check::check_memory_shape(4, 32, 0),
        codes::MEMORY_ZERO_BANDWIDTH,
    );
    assert!(bonsai_memsim::MemoryConfig::try_new(4, 32, 0, 1 << 30, 8).is_err());
}

#[test]
fn bon015_capacity_below_batch() {
    assert_emits(
        &bonsai_check::check_loader_against_memory(4096, 32, 8, 1000),
        codes::CAPACITY_BELOW_BATCH,
    );
}

#[test]
fn bon016_burst_efficiency_low() {
    // 64-byte batch on a 32 B/cycle port: 2 transfer cycles vs 8 setup
    // cycles -> efficiency 20%.
    let diags = bonsai_check::check_loader_against_memory(64, 32, 8, 1 << 30);
    assert_emits(&diags, codes::BURST_EFFICIENCY_LOW);
    assert!(!has_errors(&diags));
}

#[test]
fn bon020_lut_budget_exceeded() {
    assert_emits(
        &bonsai_check::check_lut_budget(2000.0, 1000.0),
        codes::LUT_BUDGET_EXCEEDED,
    );
    // Through the resource model: 16 copies of the paper's biggest tree.
    let diags = bonsai_model::check::check_full_config(
        &bonsai_model::ComponentLibrary::paper(),
        &bonsai_model::HardwareParams::aws_f1(),
        &bonsai_model::FullConfig {
            throughput_p: 32,
            leaves_l: 256,
            unroll: 16,
            pipeline: 1,
        },
        32,
        None,
    );
    assert_emits(&diags, codes::LUT_BUDGET_EXCEEDED);
}

#[test]
fn bon021_bram_budget_exceeded() {
    assert_emits(
        &bonsai_check::check_bram_budget(1 << 22, 1 << 21),
        codes::BRAM_BUDGET_EXCEEDED,
    );
    // Two pipelined copies of an l=256 tree need 4 MiB of leaf BRAM.
    let diags = bonsai_model::check::check_full_config(
        &bonsai_model::ComponentLibrary::paper(),
        &bonsai_model::HardwareParams::aws_f1(),
        &bonsai_model::FullConfig {
            throughput_p: 1,
            leaves_l: 256,
            unroll: 1,
            pipeline: 2,
        },
        32,
        None,
    );
    assert_emits(&diags, codes::BRAM_BUDGET_EXCEEDED);
}

#[test]
fn bon022_p_exceeds_max() {
    assert_emits(
        &bonsai_check::check_tool_limits(64, 64, 32, 256),
        codes::P_EXCEEDS_MAX,
    );
}

#[test]
fn bon023_l_exceeds_max() {
    assert_emits(
        &bonsai_check::check_tool_limits(16, 512, 32, 256),
        codes::L_EXCEEDS_MAX,
    );
}

#[test]
fn bon024_copies_zero() {
    assert_emits(&bonsai_check::check_copies(0, 1), codes::COPIES_ZERO);
    assert_emits(&bonsai_check::check_copies(1, 0), codes::COPIES_ZERO);
}

#[test]
fn bon024_guards_pipeline_config_depth() {
    // The §III-A3 pipeline model routes its depth through the same
    // copies check: depth 0 must be a diagnostic, not a silent `inf`
    // from Equation 3's `β_DRAM / λ_pipe` term.
    let cfg = bonsai_sorters::pipeline::PipelineConfig {
        depth: 0,
        ..bonsai_sorters::pipeline::PipelineConfig::ssd_phase_one()
    };
    let diags = cfg.validate();
    assert_emits(&diags, codes::COPIES_ZERO);
    assert!(has_errors(&diags));
    assert!(bonsai_sorters::pipeline::PipelineConfig::ssd_phase_one()
        .validate()
        .is_empty());
}

#[test]
fn bon025_presort_not_power_of_two() {
    assert_emits(
        &bonsai_check::check_presort(10, 1024),
        codes::PRESORT_NOT_POWER_OF_TWO,
    );
    assert_emits(
        &bonsai_check::check_presort(0, 1024),
        codes::PRESORT_NOT_POWER_OF_TWO,
    );
}

#[test]
fn bon026_presort_exceeds_batch() {
    let diags = bonsai_check::check_presort(2048, 1024);
    assert_emits(&diags, codes::PRESORT_EXCEEDS_BATCH);
    assert!(!has_errors(&diags));
}

// --- Pipeline-graph codes (BON017, BON03x) ---------------------------

fn dram(p: usize, l: usize, record_bytes: u64) -> bonsai_amt::SimEngineConfig {
    bonsai_amt::SimEngineConfig::dram_sorter(bonsai_amt::AmtConfig::new(p, l), record_bytes)
}

fn graph_diags(cfg: &bonsai_amt::SimEngineConfig) -> Vec<Diagnostic> {
    bonsai_amt::graph::analyze_graph(cfg, &bonsai_amt::graph::LowerOptions::default())
}

#[test]
fn bon017_zero_write_payload() {
    let err = bonsai_amt::graph::lower_to_graph(
        &dram(4, 16, 4),
        &bonsai_amt::graph::LowerOptions {
            payload_bytes: Some(0),
        },
    )
    .unwrap_err();
    assert_emits(&err, codes::WRITE_PAYLOAD_ZERO);
}

#[test]
fn bon030_zero_credit_deadlock() {
    let mut cfg = dram(4, 16, 4);
    cfg.loader.buffer_batches = 0;
    assert_emits(&graph_diags(&cfg), codes::GRAPH_DEADLOCK);
}

#[test]
fn bon031_fifo_below_flush() {
    // 4-wide bottom mergers need 5-record FIFOs; 32-byte batches of
    // 16-byte records double-buffer only 4.
    let mut cfg = dram(8, 4, 16);
    cfg.loader.batch_bytes = 32;
    assert_emits(&graph_diags(&cfg), codes::GRAPH_FIFO_BELOW_FLUSH);
}

#[test]
fn bon032_min_cut_below_required() {
    // p=32 of 8-byte records needs 256 B/cyc; DDR4 reads 128.
    assert_emits(
        &graph_diags(&dram(32, 64, 8)),
        codes::GRAPH_BANDWIDTH_INFEASIBLE,
    );
}

#[test]
fn bon033_model_promises_more_than_the_min_cut() {
    // p=16 on SSD-throttled memory: Eq. 1 with the F1 card claims twice
    // what the lowered graph's min cut can carry.
    let config = bonsai_amt::SimEngineConfig::with_memory(
        bonsai_amt::AmtConfig::new(16, 64),
        4,
        bonsai_memsim::MemoryConfig::throttled_to_ssd(),
    );
    let diags = bonsai_model::check::certify_latency_bound(
        &config,
        &bonsai_model::ArrayParams::from_bytes(1 << 30, 4),
        &bonsai_model::HardwareParams::aws_f1(),
    );
    assert_emits(&diags, codes::GRAPH_LATENCY_BOUND_VIOLATION);
}

#[test]
fn bon034_dead_memory_channels() {
    // 4 leaves cannot cover 32 HBM read channels.
    let cfg = bonsai_amt::SimEngineConfig::with_memory(
        bonsai_amt::AmtConfig::new(2, 4),
        4,
        bonsai_memsim::MemoryConfig::hbm_u50(),
    );
    assert_emits(&graph_diags(&cfg), codes::GRAPH_DEAD_COMPONENT);
}

#[test]
fn bon035_zero_bank_channel() {
    let mut cfg = dram(4, 16, 4);
    cfg.memory.banks = 0;
    assert_emits(&graph_diags(&cfg), codes::GRAPH_CHANNEL_ZERO_BANKS);
}

#[test]
fn bon036_model_drift_is_a_warning() {
    // A model card claiming 10x the engine's clock drifts past any
    // tolerance — but drift must not reject the config.
    let mut hw = bonsai_model::HardwareParams::aws_f1();
    hw.freq_hz *= 10.0;
    hw.beta_dram *= 10.0;
    let diags = bonsai_model::check::model_drift_probe(&dram(4, 16, 4), &hw, 20_000, 7);
    assert_emits(&diags, codes::GRAPH_MODEL_DRIFT);
    assert!(!has_errors(&diags));
}

#[test]
fn bon037_malformed_graph() {
    use bonsai_check::graph::{Edge, PipelineGraph};
    let mut g = PipelineGraph::new();
    g.add_edge(Edge {
        from: 0,
        to: 7,
        fifo_depth: 1,
        credits: 1,
        bytes_per_cycle: 1,
    });
    assert_emits(&g.validate(), codes::GRAPH_MALFORMED);
}

// --- Simulation-runtime codes (BON04x) -------------------------------

#[test]
fn bon040_pass_livelock_is_a_structured_error() {
    let data = bonsai_gensort::dist::uniform_u32(50_000, 1);
    // A 10-cycle bound livelocks immediately on a real pass; the engine
    // must surface BON040 instead of panicking mid-sort.
    let mut engine = bonsai_amt::SimEngine::try_new(dram(4, 16, 4))
        .expect("valid config")
        .with_max_pass_cycles(10);
    let err = engine.try_sort(data.clone()).unwrap_err();
    assert_emits(
        std::slice::from_ref(&err.diagnostic),
        codes::SIM_PASS_LIVELOCK,
    );
    assert_eq!(err.code(), codes::SIM_PASS_LIVELOCK);
    assert_eq!(err.stage, 1, "first pass trips the bound");

    // The sharded runtime reports the identical error: the first
    // failing group in group order wins, whatever the worker count.
    let mut engine = bonsai_amt::SimEngine::try_new(dram(4, 16, 4))
        .expect("valid config")
        .with_max_pass_cycles(10);
    let sharded = engine.try_sort_sharded(data, 4).unwrap_err();
    assert_eq!(err, sharded);
}

#[test]
fn engine_try_new_reports_bon004_instead_of_panicking() {
    let mut cfg = dram(4, 16, 4);
    cfg.loader.record_bytes = 0;
    let diags = bonsai_amt::SimEngine::try_new(cfg).unwrap_err();
    assert_emits(&diags, codes::RECORD_WIDTH_ZERO);
}

// --- Runtime-topology codes (BON05x) ---------------------------------

/// Shorthand: shape-check a runtime config on a fixed 8-core host.
fn runtime_shape(
    workers: usize,
    pass_workers: usize,
    queue_depth: usize,
    producers: usize,
    close_on_drop: bool,
    join_on_drop: bool,
) -> Vec<Diagnostic> {
    bonsai_check::check_runtime_shape(
        workers,
        pass_workers,
        queue_depth,
        producers,
        close_on_drop,
        join_on_drop,
        8,
    )
}

#[test]
fn bon050_zero_depth_queue_with_concurrent_producers() {
    let diags = runtime_shape(2, 1, 0, 4, true, true);
    assert_emits(&diags, codes::RUNTIME_QUEUE_ZERO);
    assert!(has_errors(&diags));
    // A single producer may choose an unbuffered hand-off.
    assert!(runtime_shape(2, 1, 0, 1, true, true).is_empty());
}

#[test]
fn bon051_pass_workers_beyond_merge_groups() {
    let diags = bonsai_check::check_pass_sharding(16, 4);
    assert_emits(&diags, codes::RUNTIME_WORKERS_EXCEED_GROUPS);
    assert!(!has_errors(&diags), "surplus threads waste, not break");
    assert!(bonsai_check::check_pass_sharding(4, 4).is_empty());

    // Through the runtime config: 64 pass workers against a job whose
    // first pass only has ceil(1000/16)/8 = 8 groups.
    let cfg = bonsai_runtime::RuntimeConfig {
        workers: 1,
        pass_workers: 64,
        ..bonsai_runtime::RuntimeConfig::default()
    };
    let engine = bonsai_amt::SimEngineConfig::dram_sorter(bonsai_amt::AmtConfig::new(4, 16), 4);
    let diags = cfg.validate_for_engine(Some(&engine), Some(1_000), 128);
    assert_emits(&diags, codes::RUNTIME_WORKERS_EXCEED_GROUPS);
}

#[test]
fn bon052_join_without_close_wedges_drop() {
    let diags = runtime_shape(2, 1, 16, 1, false, true);
    assert_emits(&diags, codes::RUNTIME_JOIN_WITHOUT_CLOSE);
    assert!(has_errors(&diags));
}

#[test]
fn bon053_unjoined_workers_leak() {
    // close_on_drop stays on, so only the leak warning fires.
    let diags = runtime_shape(2, 1, 16, 1, true, false);
    assert_emits(&diags, codes::RUNTIME_UNJOINED_WORKERS);
    assert!(!has_errors(&diags));
}

#[test]
fn bon054_oversubscribed_host() {
    let diags = runtime_shape(4, 4, 16, 1, true, true);
    assert_emits(&diags, codes::RUNTIME_OVERSUBSCRIBED);
    assert!(!has_errors(&diags));
    // `0` sentinels resolve to the core count: all-cores workers with
    // more-than-one pass worker each oversubscribes too.
    let diags = runtime_shape(0, 2, 16, 1, true, true);
    assert_emits(&diags, codes::RUNTIME_OVERSUBSCRIBED);
}

#[test]
fn bon055_queue_shallower_than_pool() {
    let diags = runtime_shape(8, 1, 2, 1, true, true);
    assert_emits(&diags, codes::RUNTIME_QUEUE_BELOW_WORKERS);
    assert!(!has_errors(&diags));
    assert!(runtime_shape(8, 1, 8, 1, true, true).is_empty());
}

#[test]
fn bon056_dag_ready_set_beyond_capacity() {
    // 100 simultaneously-ready tasks against 8 workers + 16 queue slots.
    let diags = bonsai_check::check_dag_capacity(100, 16, 8);
    assert_emits(&diags, codes::RUNTIME_DAG_OVER_CAPACITY);
    assert!(has_errors(&diags), "an overflowing dispatcher is broken");
    // Exactly at capacity is fine.
    assert!(bonsai_check::check_dag_capacity(24, 16, 8).is_empty());
    // Either `0` sentinel (unbounded queue / auto pool) states no
    // capacity to contradict.
    assert!(bonsai_check::check_dag_capacity(100, 0, 8).is_empty());
    assert!(bonsai_check::check_dag_capacity(100, 16, 0).is_empty());

    // Through a real sort plan: 1000 presorted runs on 16 leaves open
    // with ceil(1000/8) = 125 pass-0 groups, all ready at once.
    let plan = bonsai_amt::SortPlan::new(1_000, 16);
    assert_eq!(plan.max_ready_width(), 125);
    let diags = plan.validate_capacity(16, 8);
    assert_emits(&diags, codes::RUNTIME_DAG_OVER_CAPACITY);
    assert!(plan.validate_capacity(128, 8).is_empty());
}

// --- Adaptive-runtime codes (BON08x) ----------------------------------

/// Shorthand: adaptive knobs with 2 job classes (the two-lane runtime).
fn adaptive(
    cache_shapes: usize,
    reprogram_cost_us: u64,
    latency_deadline_us: u64,
    fairness_stride: u32,
) -> Vec<Diagnostic> {
    bonsai_check::check_adaptive_runtime(
        cache_shapes,
        2,
        reprogram_cost_us,
        latency_deadline_us,
        fairness_stride,
    )
}

#[test]
fn bon080_zero_reprogram_cost_thrashes() {
    let diags = adaptive(8, 0, 0, 4);
    assert_emits(&diags, codes::ADAPTIVE_RECONFIG_THRASH);
    assert!(!has_errors(&diags), "thrash wastes time, not correctness");
    assert!(adaptive(8, 200, 0, 4).is_empty());
}

#[test]
fn bon081_deadline_not_above_reprogram_cost() {
    // Deadline == cost: one switch in front of the job already misses.
    let diags = adaptive(8, 500, 500, 4);
    assert_emits(&diags, codes::ADAPTIVE_DEADLINE_INFEASIBLE);
    assert!(has_errors(&diags));
    // A deadline above the cost, or no deadline at all, is fine.
    assert!(adaptive(8, 200, 500, 4).is_empty());
    assert!(adaptive(8, 500, 0, 4).is_empty());
}

#[test]
fn bon082_cache_below_job_classes() {
    let diags = adaptive(1, 200, 0, 4);
    assert_emits(&diags, codes::ADAPTIVE_CACHE_BELOW_CLASSES);
    assert!(!has_errors(&diags));
    assert!(adaptive(2, 200, 0, 4).is_empty());
}

#[test]
fn bon083_zero_fairness_stride_starves() {
    let diags = adaptive(8, 200, 0, 0);
    assert_emits(&diags, codes::ADAPTIVE_FAIRNESS_STARVATION);
    assert!(!has_errors(&diags));
    assert!(adaptive(8, 200, 0, 1).is_empty());
}

#[test]
fn adaptive_codes_fire_through_the_runtime_config() {
    // The BON08x checks only run for the adaptive scheduler...
    let mut cfg = bonsai_runtime::RuntimeConfig {
        scheduler: bonsai_runtime::PassScheduler::Adaptive,
        ..bonsai_runtime::RuntimeConfig::default()
    };
    cfg.adaptive.reprogram_cost_us = 0;
    cfg.adaptive.fairness_stride = 0;
    let diags = cfg.validate_for_cores(8);
    assert_emits(&diags, codes::ADAPTIVE_RECONFIG_THRASH);
    assert_emits(&diags, codes::ADAPTIVE_FAIRNESS_STARVATION);
    // ...and the default adaptive knobs are lint-clean.
    cfg.adaptive = bonsai_runtime::AdaptiveConfig::default();
    assert!(cfg.validate_for_cores(8).is_empty());
    // A barrier-scheduled config never trips adaptive lints, whatever
    // its (unused) adaptive knobs say.
    cfg.scheduler = bonsai_runtime::PassScheduler::Barrier;
    cfg.adaptive.reprogram_cost_us = 0;
    assert!(cfg.validate_for_cores(8).is_empty());
}

#[test]
fn default_runtime_config_is_shape_clean_on_any_host() {
    for cores in [1, 2, 8, 64] {
        assert!(
            bonsai_runtime::RuntimeConfig::default()
                .validate_for_cores(cores)
                .is_empty(),
            "default config must stay clean on a {cores}-core host"
        );
    }
}

// --- Sanitizer codes (BON1xx) ---------------------------------------
//
// BON102 has a reachable trigger from outside (violating the sorted-run
// input contract). The remaining probes guard invariants that hold by
// construction in this codebase, so their tests pin down the registry
// entry and the diagnostic shape; the end-to-end test in
// `accept_then_run.rs` asserts they stay silent on real runs.

#[test]
fn bon101_fifo_overflow_registered_as_error() {
    let info = codes::lookup(codes::SAN_FIFO_OVERFLOW).expect("registered");
    assert_eq!(info.severity, Severity::Error);
    let d = Diagnostic::error(codes::SAN_FIFO_OVERFLOW, "overflow").with("node", 3);
    assert!(d.to_string().contains("BON101"));
}

#[test]
fn bon102_out_of_order_fires_on_contract_violation() {
    use bonsai_merge_hw::{KMerger, Side};
    use bonsai_records::{Record, U32Rec};
    let mut m: KMerger<U32Rec> = KMerger::new(2, 16);
    for v in [9u32, 1] {
        m.push_input(Side::Left, U32Rec::new(v)).unwrap();
    }
    m.push_input(Side::Left, U32Rec::TERMINAL).unwrap();
    m.push_input(Side::Right, U32Rec::new(5)).unwrap();
    m.push_input(Side::Right, U32Rec::TERMINAL).unwrap();
    for _ in 0..16 {
        m.tick();
        while m.pop_output().is_some() {}
    }
    let diags = m.sanitize_check();
    assert_emits(&diags, codes::SAN_OUT_OF_ORDER);
}

#[test]
fn bon103_record_conservation_clean_on_correct_merge() {
    use bonsai_merge_hw::{KMerger, Side};
    use bonsai_records::{Record, U32Rec};
    let info = codes::lookup(codes::SAN_RECORD_CONSERVATION).expect("registered");
    assert_eq!(info.severity, Severity::Error);
    // A correct merge must NOT emit BON103 even at full throughput.
    let mut m: KMerger<U32Rec> = KMerger::new(4, 32);
    for side in [Side::Left, Side::Right] {
        for v in 1..=20u32 {
            m.push_input(side, U32Rec::new(v)).unwrap();
        }
        m.push_input(side, U32Rec::TERMINAL).unwrap();
    }
    for _ in 0..32 {
        m.tick();
        while m.pop_output().is_some() {}
    }
    assert!(m.is_drained());
    assert_eq!(m.sanitize_check(), Vec::new());
}

#[test]
fn bon104_pass_conservation_registered_as_error() {
    let info = codes::lookup(codes::SAN_PASS_CONSERVATION).expect("registered");
    assert_eq!(info.severity, Severity::Error);
}

#[test]
fn bon105_byte_accounting_clean_on_real_loader() {
    use bonsai_memsim::{DataLoader, LoaderConfig, Memory, MemoryConfig, WriteDrain};
    let info = codes::lookup(codes::SAN_BYTE_ACCOUNTING).expect("registered");
    assert_eq!(info.severity, Severity::Error);
    // Probe holds mid-flight, not just at rest.
    let cfg = LoaderConfig::paper_default(4);
    let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
    let mut loader = DataLoader::new(cfg, vec![10_000, 5_000]);
    let mut drain = WriteDrain::new(cfg);
    for c in 0..500 {
        loader.tick(c, &mut mem);
        let a = loader.available(0);
        loader.consume(0, a);
        let n = a.min(drain.free_space());
        drain.push_records(n);
        drain.tick(c, &mut mem);
        assert_eq!(loader.sanitize_check(), Vec::new(), "cycle {c}");
        assert_eq!(drain.sanitize_check(), Vec::new(), "cycle {c}");
    }
}

#[test]
fn bon106_flush_protocol_registered_as_error() {
    let info = codes::lookup(codes::SAN_FLUSH_PROTOCOL).expect("registered");
    assert_eq!(info.severity, Severity::Error);
}

// --- Documentation sync ----------------------------------------------

/// `docs/diagnostics.md` is the user-facing catalogue; every registered
/// code must have an entry there, and the doc must not reference codes
/// that no longer exist.
#[test]
fn diagnostics_doc_covers_every_registered_code() {
    let doc = include_str!("../../../docs/diagnostics.md");
    for info in codes::ALL {
        assert!(
            doc.contains(&format!("### {}", info.code)),
            "docs/diagnostics.md is missing a section for {} ({})",
            info.code,
            info.summary
        );
    }
    for token in doc.split(|c: char| !c.is_alphanumeric()) {
        if let Some(digits) = token.strip_prefix("BON") {
            if digits.len() == 3 && digits.chars().all(|c| c.is_ascii_digit()) {
                assert!(
                    codes::lookup(token).is_some(),
                    "docs/diagnostics.md references unregistered code {token}"
                );
            }
        }
    }
}
