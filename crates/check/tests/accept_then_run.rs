//! The analyzer's soundness contract: any configuration the static pass
//! accepts (no error-severity diagnostics) must run the cycle simulation
//! end to end, produce sorted output, and trip **zero** sanitizer probes.
//!
//! Configurations are drawn from a seeded generator so the sweep is
//! deterministic but covers shapes no in-repo experiment uses.

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig};
use bonsai_check::has_errors;
use bonsai_gensort::dist::uniform_u32;
use bonsai_memsim::{LoaderConfig, MemoryConfig};
use bonsai_records::U32Rec;
use bonsai_rng::Rng;

/// Draws a config from a space that includes both valid and invalid
/// shapes; the analyzer is the referee.
fn draw_config(rng: &mut Rng) -> SimEngineConfig {
    let p = [1usize, 2, 3, 4, 6, 8, 16][rng.below_usize(7)];
    let l = [2usize, 4, 8, 12, 16, 64, 100][rng.below_usize(7)];
    let batch_bytes = [64u64, 100, 512, 4096][rng.below_usize(4)];
    let buffer_batches = [1u64, 2, 3][rng.below_usize(3)];
    let presort = [None, Some(2usize), Some(8), Some(10), Some(16)][rng.below_usize(5)];
    SimEngineConfig {
        amt: AmtConfig { p, l },
        loader: LoaderConfig {
            batch_bytes,
            record_bytes: 4,
            buffer_batches,
        },
        memory: MemoryConfig::ddr4_aws_f1(),
        presort,
    }
}

#[test]
fn analyzer_accepted_configs_run_clean_under_the_sanitizer() {
    let mut rng = Rng::seed_from_u64(0xB045A1);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for trial in 0..60 {
        let cfg = draw_config(&mut rng);
        let diags = cfg.validate();
        if has_errors(&diags) {
            rejected += 1;
            continue;
        }
        accepted += 1;
        let n = 500 + rng.below_usize(2_500);
        let data = uniform_u32(n, trial);
        let mut engine = SimEngine::new(cfg);
        let (out, _) = engine.sort(data.clone());
        assert!(
            out.windows(2).all(|w| w[0] <= w[1]),
            "trial {trial}: accepted config {cfg:?} produced unsorted output"
        );
        assert_eq!(out.len(), data.len(), "trial {trial}: record count changed");
        assert_eq!(
            engine.sanitizer_diagnostics(),
            &[] as &[bonsai_check::Diagnostic],
            "trial {trial}: sanitizer probe fired on analyzer-accepted config {cfg:?}"
        );
    }
    // The space is built so both referee outcomes actually occur.
    assert!(
        accepted >= 10,
        "only {accepted} configs accepted; space too hostile"
    );
    assert!(
        rejected >= 10,
        "only {rejected} configs rejected; space too permissive"
    );
}

#[test]
fn every_paper_preset_is_analyzer_clean_and_sanitizer_clean() {
    let presets = [
        SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4),
        SimEngineConfig::dram_sorter(AmtConfig::new(8, 64), 4),
        SimEngineConfig::dram_sorter(AmtConfig::new(2, 8), 4).without_presort(),
    ];
    for cfg in presets {
        assert!(!has_errors(&cfg.validate()), "preset {cfg:?} rejected");
        let data = uniform_u32(3_000, 77);
        let mut engine = SimEngine::new(cfg);
        let (out, _) = engine.sort(data);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert!(engine.sanitizer_diagnostics().is_empty());
    }
}

#[test]
fn analyzer_rejects_each_hostile_axis() {
    // One deliberately broken axis at a time, holding the rest valid.
    let valid = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    assert!(!has_errors(&valid.validate()));

    let mut bad_p = valid;
    bad_p.amt = AmtConfig { p: 6, l: 16 };
    assert!(has_errors(&bad_p.validate()));

    let mut bad_l = valid;
    bad_l.amt = AmtConfig { p: 4, l: 12 };
    assert!(has_errors(&bad_l.validate()));

    let mut bad_batch = valid;
    bad_batch.loader.batch_bytes = 10; // not a record multiple
    assert!(has_errors(&bad_batch.validate()));

    let mut bad_presort = valid;
    bad_presort.presort = Some(10);
    assert!(has_errors(&bad_presort.validate()));

    // Regression: a zero record width must come back as BON004, not
    // crash the analyzer in the presort cross-check's division.
    let mut zero_record = valid;
    zero_record.loader.record_bytes = 0;
    let diags = zero_record.validate();
    assert!(diags.iter().any(|d| d.code == "BON004"), "{diags:?}");
}

/// Data already sorted, reversed, and duplicate-heavy must also run
/// clean — adversarial *data* is not the analyzer's concern, so the
/// sanitizer is the only line of defense.
#[test]
fn adversarial_data_never_trips_probes_on_valid_configs() {
    use bonsai_gensort::dist::Distribution;
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    for d in [
        Distribution::Sorted,
        Distribution::Reverse,
        Distribution::FewDistinct(2),
    ] {
        let data: Vec<U32Rec> = d.generate_u32(2_000, 9);
        let mut engine = SimEngine::new(cfg);
        let (out, _) = engine.sort(data);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            engine.sanitizer_diagnostics().is_empty(),
            "probe fired on {d:?}"
        );
    }
}
