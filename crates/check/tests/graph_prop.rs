//! Property tests for the pipeline-graph analyses.
//!
//! Two invariants, exercised over a spread of analyzer-accepted
//! configurations with a seeded deterministic RNG:
//!
//! 1. every accepted configuration lowers to a graph that passes the
//!    deadlock and min-cut analyses (and all the rest of `analyze_all`),
//! 2. corrupting exactly one edge annotation flips exactly one
//!    diagnostic — the one that owns that annotation (`credits` →
//!    `BON030`, `fifo_depth` → `BON031`, `bytes_per_cycle` → `BON032`).
//!
//! The second property is what makes the diagnostics actionable: a
//! single bad annotation must not cascade into a wall of unrelated
//! errors.

use bonsai_amt::graph::{lower_to_graph, required_bytes_per_cycle, LowerOptions};
use bonsai_amt::{AmtConfig, SimEngineConfig};
use bonsai_check::codes;
use bonsai_check::graph::{NodeKind, PipelineGraph};
use bonsai_memsim::MemoryConfig;
use bonsai_rng::Rng;

/// A spread of configurations the shape checks accept: the four paper
/// tree shapes on DDR4, tiny trees on a single-bank memory (so no read
/// channel is legitimately idle) and an SSD-throttled shape.
fn accepted_configs() -> Vec<(String, SimEngineConfig)> {
    let mut out = Vec::new();
    for (p, l) in [(4, 16), (8, 64), (16, 256), (32, 64)] {
        out.push((
            format!("dram_p{p}_l{l}"),
            SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4),
        ));
    }
    for (p, l) in [(1, 2), (2, 4)] {
        out.push((
            format!("single_p{p}_l{l}"),
            SimEngineConfig::with_memory(AmtConfig::new(p, l), 4, MemoryConfig::ddr4_single_bank()),
        ));
    }
    out.push((
        "ssd_p8_l64".into(),
        SimEngineConfig::with_memory(AmtConfig::new(8, 64), 4, MemoryConfig::throttled_to_ssd()),
    ));
    out
}

fn lowered(cfg: &SimEngineConfig) -> (PipelineGraph, u64) {
    let g = lower_to_graph(cfg, &LowerOptions::default()).expect("accepted config must lower");
    let required = required_bytes_per_cycle(cfg);
    (g, required)
}

/// How many random corruption trials to run per configuration and
/// annotation kind.
const TRIALS: usize = 8;

#[test]
fn accepted_configs_pass_deadlock_and_min_cut() {
    for (name, cfg) in accepted_configs() {
        let (g, required) = lowered(&cfg);
        assert_eq!(g.validate(), Vec::new(), "{name}");
        assert_eq!(g.analyze_deadlock(), Vec::new(), "{name}");
        assert_eq!(g.analyze_bandwidth(required), Vec::new(), "{name}");
        let all = g.analyze_all(required);
        assert!(all.is_empty(), "{name}: {all:?}");
    }
}

#[test]
fn zeroing_credits_on_one_edge_flips_exactly_bon030() {
    let mut rng = Rng::seed_from_u64(0xB05A_0030);
    for (name, cfg) in accepted_configs() {
        let (clean, required) = lowered(&cfg);
        for _ in 0..TRIALS {
            let idx = rng.next_u64() as usize % clean.edges.len();
            let mut g = clean.clone();
            g.edges[idx].credits = 0;
            let diags = g.analyze_all(required);
            assert_eq!(diags.len(), 1, "{name} edge {idx}: {diags:?}");
            assert_eq!(diags[0].code, codes::GRAPH_DEADLOCK, "{name} edge {idx}");
        }
    }
}

#[test]
fn zeroing_fifo_depth_on_one_edge_flips_exactly_bon031() {
    let mut rng = Rng::seed_from_u64(0xB05A_0031);
    for (name, cfg) in accepted_configs() {
        let (clean, required) = lowered(&cfg);
        for _ in 0..TRIALS {
            let idx = rng.next_u64() as usize % clean.edges.len();
            let mut g = clean.clone();
            g.edges[idx].fifo_depth = 0;
            let diags = g.analyze_all(required);
            assert_eq!(diags.len(), 1, "{name} edge {idx}: {diags:?}");
            assert_eq!(
                diags[0].code,
                codes::GRAPH_FIFO_BELOW_FLUSH,
                "{name} edge {idx}"
            );
        }
    }
}

#[test]
fn zeroing_byte_rate_on_the_root_edge_flips_exactly_bon032() {
    // The root -> drain edge is the one link every record crosses, so
    // zeroing its rate always starves the min cut.
    for (name, cfg) in accepted_configs() {
        let (clean, required) = lowered(&cfg);
        let root_edge = clean
            .edges
            .iter()
            .position(|e| matches!(clean.nodes[e.to].kind, NodeKind::WriteDrain))
            .expect("every lowered graph has a root->drain edge");
        let mut g = clean.clone();
        g.edges[root_edge].bytes_per_cycle = 0;
        let diags = g.analyze_all(required);
        assert_eq!(diags.len(), 1, "{name}: {diags:?}");
        assert_eq!(diags[0].code, codes::GRAPH_BANDWIDTH_INFEASIBLE, "{name}");
        let bottleneck = &diags[0]
            .context
            .iter()
            .find(|(k, _)| *k == "bottleneck")
            .expect("BON032 localizes the cut")
            .1;
        assert!(bottleneck.contains("drain"), "{name}: {bottleneck}");
    }
}

#[test]
fn zeroing_byte_rate_on_any_edge_never_cascades_past_bon032() {
    // An arbitrary edge may carry spare capacity (a parallel leaf edge,
    // say), so zeroing it is allowed to go unnoticed — but when it does
    // surface, the only diagnostic is the bandwidth one.
    let mut rng = Rng::seed_from_u64(0xB05A_0032);
    for (name, cfg) in accepted_configs() {
        let (clean, required) = lowered(&cfg);
        for _ in 0..TRIALS {
            let idx = rng.next_u64() as usize % clean.edges.len();
            let mut g = clean.clone();
            g.edges[idx].bytes_per_cycle = 0;
            let diags = g.analyze_all(required);
            assert!(diags.len() <= 1, "{name} edge {idx}: {diags:?}");
            for d in &diags {
                assert_eq!(
                    d.code,
                    codes::GRAPH_BANDWIDTH_INFEASIBLE,
                    "{name} edge {idx}"
                );
            }
        }
    }
}

#[test]
fn the_three_annotations_map_to_three_distinct_codes() {
    // Same edge, three corruptions, three different diagnostics: the
    // annotation -> code mapping is injective.
    let (clean, required) = lowered(&accepted_configs()[0].1);
    let root_edge = clean
        .edges
        .iter()
        .position(|e| matches!(clean.nodes[e.to].kind, NodeKind::WriteDrain))
        .unwrap();
    let mut seen = Vec::new();
    for corrupt in [
        (|e: &mut bonsai_check::graph::Edge| e.credits = 0) as fn(&mut _),
        |e| e.fifo_depth = 0,
        |e| e.bytes_per_cycle = 0,
    ] {
        let mut g = clean.clone();
        corrupt(&mut g.edges[root_edge]);
        let diags = g.analyze_all(required);
        assert_eq!(diags.len(), 1, "{diags:?}");
        seen.push(diags[0].code);
    }
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen,
        vec![
            codes::GRAPH_DEADLOCK,
            codes::GRAPH_FIFO_BELOW_FLUSH,
            codes::GRAPH_BANDWIDTH_INFEASIBLE,
        ]
    );
}
