//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds fully offline, so instead of depending on the
//! `rand` crate this module provides the few primitives the workload
//! generators and randomized tests need: a seedable 64-bit generator
//! with uniform integer ranges, byte filling, shuffling and `f64`
//! sampling. The core is xoshiro256** (Blackman & Vigna), seeded via
//! splitmix64 — the same construction `rand`'s `SmallRng` family uses —
//! which is far more than adequate for workload generation and
//! property-style tests (it is *not* cryptographic).
//!
//! Determinism is part of the contract: the same seed must produce the
//! same stream on every platform, so tests can name a failing seed in
//! their source.

/// Splitmix64 step: used for seeding and as a standalone mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed. Identical seeds yield
    /// identical streams on every platform.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift with rejection, so the result is
    /// unbiased.
    #[inline]
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below_u64 bound must be positive");
        // Widening multiply: high 64 bits are uniform in [0, bound).
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `u32` in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn below_u32(&mut self, bound: u32) -> u32 {
        self.below_u64(u64::from(bound)) as u32
    }

    /// Uniform `usize` in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below_u64(bound as u64) as usize
    }

    /// Uniform `u64` in the inclusive range `[lo, hi]`. Panics if
    /// `lo > hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below_u64(span + 1)
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `percent / 100`.
    #[inline]
    pub fn chance_percent(&mut self, percent: u32) -> bool {
        self.below_u32(100) < percent
    }

    /// Fill a byte slice with uniform random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::from(u32::MAX)] {
            for _ in 0..200 {
                assert!(rng.below_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn below_hits_every_small_value() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.below_usize(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut rng = Rng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            match rng.range_u64(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(13);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Rng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Deterministic stream: not all bytes can be zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }
}
