//! Bonsai core: the adaptive merge tree sorter behind one front door.
//!
//! This facade crate re-exports the paper's contribution — the AMT
//! architecture (`bonsai-amt`) and the Bonsai optimizer
//! (`bonsai-model`) — together with the end-to-end sorting systems
//! (`bonsai-sorters`) and the substrates they run on, and adds the
//! [`Bonsai`] entry point that mirrors how the paper's system is used:
//! pick a platform, let Bonsai choose the tree, sort.
//!
//! # Example
//!
//! ```
//! use bonsai_core::Bonsai;
//! use bonsai_records::U32Rec;
//!
//! let bonsai = Bonsai::aws_f1();
//! let data: Vec<U32Rec> = [5u32, 3, 9, 1].map(U32Rec::new).to_vec();
//! let (sorted, report) = bonsai.sort(data)?;
//! assert_eq!(sorted, [1u32, 3, 5, 9].map(U32Rec::new).to_vec());
//! println!("{} via {}", report.name, report.config);
//! # Ok::<(), bonsai_sorters::SorterError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use bonsai_amt::{
    functional, schedule, AmtConfig, MergeTree, PassReport, SimEngine, SimEngineConfig, SortReport,
};
pub use bonsai_model::{
    perf, resource, ArrayParams, BonsaiOptimizer, ComponentLibrary, FullConfig, HardwareParams,
    OptimizerError, RankedConfig,
};
pub use bonsai_sorters::{
    DramSorter, HbmSorter, Phase, SorterError, SorterReport, SsdSorter, Timing,
};

use bonsai_records::Record;

/// The top-level Bonsai system: a hardware description plus the
/// machinery to plan and run sorts on it.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Bonsai {
    hw: HardwareParams,
}

impl Bonsai {
    /// Bonsai on custom hardware parameters.
    pub fn new(hw: HardwareParams) -> Self {
        Self { hw }
    }

    /// Bonsai on the AWS EC2 F1 instance of §VI-A.
    pub fn aws_f1() -> Self {
        Self::new(HardwareParams::aws_f1())
    }

    /// Bonsai on an HBM-attached FPGA (§IV-B).
    pub fn hbm() -> Self {
        Self::new(HardwareParams::hbm_u50())
    }

    /// Bonsai on F1 with a 2 TB NVMe SSD (§IV-C).
    pub fn ssd() -> Self {
        Self::new(HardwareParams::aws_f1_ssd())
    }

    /// The hardware parameters.
    pub fn hardware(&self) -> &HardwareParams {
        &self.hw
    }

    /// A configuration optimizer for this hardware (§III-C).
    pub fn optimizer(&self) -> BonsaiOptimizer {
        BonsaiOptimizer::new(self.hw)
    }

    /// The DRAM-scale sorter (§IV-A).
    pub fn dram_sorter(&self) -> DramSorter {
        DramSorter::new(self.hw)
    }

    /// The HBM sorter (§IV-B).
    pub fn hbm_sorter(&self) -> HbmSorter {
        HbmSorter::new(self.hw)
    }

    /// The two-phase SSD sorter (§IV-C).
    pub fn ssd_sorter(&self) -> SsdSorter {
        SsdSorter::new(self.hw)
    }

    /// Sorts `data` with the best sorter for its size: the DRAM sorter
    /// when it fits, otherwise the two-phase SSD sorter — the automatic
    /// "switch to SSD sorter" of Figure 13.
    ///
    /// # Errors
    ///
    /// Returns [`SorterError`] when the data fits neither memory tier.
    pub fn sort<R: Record>(&self, data: Vec<R>) -> Result<(Vec<R>, SorterReport), SorterError> {
        let bytes = (data.len() * R::WIDTH_BYTES) as u64;
        if bytes <= self.hw.c_dram {
            self.dram_sorter().sort(data)
        } else {
            self.ssd_sorter().sort(data)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_records::U64Rec;

    #[test]
    fn facade_sorts_u64() {
        let bonsai = Bonsai::aws_f1();
        let data: Vec<U64Rec> = (0..1000u64).rev().map(|v| U64Rec::new(v + 1)).collect();
        let (sorted, report) = bonsai.sort(data).expect("fits DRAM");
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sorted.len(), 1000);
        assert!(report.config.contains("AMT"));
    }

    #[test]
    fn presets_expose_expected_hardware() {
        assert!((Bonsai::hbm().hardware().beta_dram - 512e9).abs() < 1.0);
        assert_eq!(Bonsai::ssd().hardware().c_storage, 2 << 40);
    }

    #[test]
    fn optimizer_accessible_through_facade() {
        let best = Bonsai::aws_f1()
            .optimizer()
            .latency_optimal(&ArrayParams::from_bytes(1 << 30, 4))
            .expect("feasible");
        assert!(best.config.throughput_p >= 16);
    }
}
