//! The batched data loader (§V-A) and its write-side counterpart.

use std::collections::VecDeque;

use crate::config::LoaderConfig;
use crate::memory::Memory;

#[cfg(feature = "sanitize")]
use bonsai_check::{codes, Diagnostic};

/// Introspection snapshot of one leaf buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafStatus {
    /// Records still in off-chip memory, not yet requested.
    pub remaining: u64,
    /// Records currently in transit from memory.
    pub in_flight: u64,
    /// Records buffered on-chip, ready to consume.
    pub buffered: u64,
}

impl LeafStatus {
    /// Returns `true` when the leaf has no data anywhere in the pipeline.
    pub fn is_exhausted(&self) -> bool {
        self.remaining == 0 && self.in_flight == 0 && self.buffered == 0
    }
}

#[derive(Debug, Clone, Default)]
struct LeafState {
    remaining: u64,
    in_flight: VecDeque<(u64, u64)>, // (completion cycle, records)
    in_flight_records: u64,
    buffered: u64,
}

/// The data loader of §V-A: issues batched reads round-robin into
/// per-leaf input buffers so off-chip memory operates at peak bandwidth.
///
/// Each AMT leaf reads a contiguous run from memory. The loader checks
/// leaves "in a round-robin fashion" for buffers with space for a full
/// read batch, issues a burst on any free bank read port, and delivers
/// the records `burst_latency` cycles later. The consumer (the AMT leaf)
/// pulls from [`DataLoader::available`] via [`DataLoader::consume`].
///
/// # Example
///
/// ```
/// use bonsai_memsim::{DataLoader, LoaderConfig, Memory, MemoryConfig};
///
/// let cfg = LoaderConfig::paper_default(4);
/// let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
/// let mut loader = DataLoader::new(cfg, vec![10_000, 10_000]);
/// let mut cycle = 0;
/// while loader.available(0) == 0 {
///     loader.tick(cycle, &mut mem);
///     cycle += 1;
/// }
/// assert!(loader.available(0) >= cfg.batch_records());
/// ```
#[derive(Debug, Clone)]
pub struct DataLoader {
    cfg: LoaderConfig,
    leaves: Vec<LeafState>,
    rr: usize,
    #[cfg(feature = "sanitize")]
    initial_records: u64,
    #[cfg(feature = "sanitize")]
    consumed_records: u64,
}

impl DataLoader {
    /// Creates a loader for one merge pass: `per_leaf_records[i]` records
    /// stream into leaf `i`.
    pub fn new(cfg: LoaderConfig, per_leaf_records: Vec<u64>) -> Self {
        // Saturating: tests model "infinite" streams as u64::MAX-ish
        // per-leaf counts, whose exact total can exceed u64.
        #[cfg(feature = "sanitize")]
        let initial_records = per_leaf_records
            .iter()
            .fold(0u64, |acc, &n| acc.saturating_add(n));
        // Pre-size the in-flight queues so the steady-state tick loop
        // never reallocates: a leaf can commit at most
        // `buffer_records / batch_records` simultaneous bursts (plus one
        // short tail burst).
        let max_bursts = (cfg.buffer_records() / cfg.batch_records().max(1)) as usize + 2;
        let leaves: Vec<LeafState> = per_leaf_records
            .into_iter()
            .map(|remaining| LeafState {
                remaining,
                in_flight: VecDeque::with_capacity(max_bursts),
                ..LeafState::default()
            })
            .collect();
        Self {
            cfg,
            leaves,
            rr: 0,
            #[cfg(feature = "sanitize")]
            initial_records,
            #[cfg(feature = "sanitize")]
            consumed_records: 0,
        }
    }

    /// The loader configuration.
    pub fn config(&self) -> &LoaderConfig {
        &self.cfg
    }

    /// Number of leaves being fed.
    pub fn leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Snapshot of leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn leaf_status(&self, i: usize) -> LeafStatus {
        let l = &self.leaves[i];
        LeafStatus {
            remaining: l.remaining,
            in_flight: l.in_flight_records,
            buffered: l.buffered,
        }
    }

    /// Records ready to consume at leaf `i`.
    pub fn available(&self, i: usize) -> u64 {
        self.leaves[i].buffered
    }

    /// Returns `true` when leaf `i` will never produce more records.
    pub fn is_exhausted(&self, i: usize) -> bool {
        self.leaf_status(i).is_exhausted()
    }

    /// Returns `true` when every leaf is exhausted.
    pub fn all_exhausted(&self) -> bool {
        (0..self.leaves.len()).all(|i| self.is_exhausted(i))
    }

    /// Consumes `n` buffered records from leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` records are buffered.
    pub fn consume(&mut self, i: usize, n: u64) {
        let l = &mut self.leaves[i];
        assert!(l.buffered >= n, "consuming more records than buffered");
        l.buffered -= n;
        #[cfg(feature = "sanitize")]
        {
            self.consumed_records += n;
        }
    }

    /// Sanitizer probe (`BON105`): every record handed to `new` must be
    /// accounted for as consumed, buffered, in flight, or still in
    /// memory — scaled by the record width this is the loader's byte
    /// conservation law.
    ///
    /// Only available with the `sanitize` feature.
    #[cfg(feature = "sanitize")]
    pub fn sanitize_check(&self) -> Vec<Diagnostic> {
        let in_pipeline = self.leaves.iter().fold(0u64, |acc, l| {
            acc.saturating_add(l.remaining)
                .saturating_add(l.in_flight_records)
                .saturating_add(l.buffered)
        });
        let accounted = self.consumed_records.saturating_add(in_pipeline);
        // A saturated total means the caller modeled an unbounded stream;
        // exact conservation is unverifiable there, so the probe stands
        // down rather than report a false imbalance.
        if accounted == self.initial_records || self.initial_records == u64::MAX {
            Vec::new()
        } else {
            vec![Diagnostic::error(
                codes::SAN_BYTE_ACCOUNTING,
                "loader record accounting does not balance",
            )
            .with(
                "initial_bytes",
                self.initial_records.saturating_mul(self.cfg.record_bytes),
            )
            .with(
                "accounted_bytes",
                accounted.saturating_mul(self.cfg.record_bytes),
            )]
        }
    }

    /// Advances one cycle: completes arrivals, then issues new batched
    /// reads round-robin on every free read port.
    ///
    /// Returns `true` when any state changed (a burst was delivered or
    /// issued). A `false` tick is a guaranteed no-op for every future
    /// cycle before [`DataLoader::next_event_cycle`]: nothing arrives
    /// and nothing new can be issued until a port frees or a burst
    /// completes, so the caller may fast-forward the clock.
    pub fn tick(&mut self, cycle: u64, memory: &mut Memory) -> bool {
        let mut changed = false;
        // Deliver completed bursts.
        for leaf in &mut self.leaves {
            while let Some(&(done, records)) = leaf.in_flight.front() {
                if done > cycle {
                    break;
                }
                leaf.in_flight.pop_front();
                leaf.in_flight_records -= records;
                leaf.buffered += records;
                changed = true;
            }
        }

        // Issue new bursts while ports and hungry leaves remain.
        let n_leaves = self.leaves.len();
        if n_leaves == 0 {
            return changed;
        }
        let batch = self.cfg.batch_records();
        let capacity = self.cfg.buffer_records();
        while let Some(port_idx) = memory.free_read_port(cycle) {
            // Find the next leaf (round-robin) with work and buffer space.
            let mut chosen = None;
            for off in 0..n_leaves {
                let i = (self.rr + off) % n_leaves;
                let l = &self.leaves[i];
                let committed = l.buffered + l.in_flight_records;
                if l.remaining > 0 && capacity.saturating_sub(committed) >= batch.min(l.remaining) {
                    chosen = Some(i);
                    break;
                }
            }
            let Some(i) = chosen else { break };
            self.rr = (i + 1) % n_leaves;
            let l = &mut self.leaves[i];
            let records = batch.min(l.remaining);
            let bytes = records * self.cfg.record_bytes;
            let done = memory
                .read_port_mut(port_idx)
                .try_start(cycle, bytes)
                .expect("port reported free");
            l.remaining -= records;
            l.in_flight.push_back((done, records));
            l.in_flight_records += records;
            changed = true;
        }
        changed
    }

    /// Earliest future cycle at which [`DataLoader::tick`] could change
    /// state again, or `None` when the loader is fully quiescent (no
    /// bursts in flight and nothing issuable, e.g. all leaves exhausted
    /// or every buffer full until the consumer drains it).
    ///
    /// Valid immediately after `tick(cycle, memory)`: the loader's own
    /// invariant (a hungry leaf after tick implies every read port is
    /// busy) makes the port-free bound exact rather than `cycle + 1`.
    pub fn next_event_cycle(&self, cycle: u64, memory: &Memory) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut fold = |event: u64| next = Some(next.map_or(event, |n| n.min(event)));
        // Deliveries are strictly front-blocked per leaf (tick only ever
        // pops the oldest burst), so each front's completion cycle is
        // the exact next delivery event for that leaf.
        for leaf in &self.leaves {
            if let Some(&(done, _)) = leaf.in_flight.front() {
                fold(done.max(cycle + 1));
            }
        }
        // Issues: only relevant while some leaf still wants a burst.
        let batch = self.cfg.batch_records();
        let capacity = self.cfg.buffer_records();
        let hungry = self.leaves.iter().any(|l| {
            let committed = l.buffered + l.in_flight_records;
            l.remaining > 0 && capacity.saturating_sub(committed) >= batch.min(l.remaining)
        });
        if hungry {
            if let Some(free) = memory.next_read_port_free() {
                fold(free.max(cycle + 1));
            }
        }
        next
    }
}

/// The write-side drain: collects root-output records and writes them
/// back to memory in batched bursts (the packer + write path of Fig. 7).
#[derive(Debug, Clone)]
pub struct WriteDrain {
    cfg: LoaderConfig,
    pending: u64,
    in_flight: VecDeque<(u64, u64)>,
    completed: u64,
    draining: bool,
    #[cfg(feature = "sanitize")]
    pushed_records: u64,
}

impl WriteDrain {
    /// Creates an empty drain.
    pub fn new(cfg: LoaderConfig) -> Self {
        Self {
            cfg,
            pending: 0,
            // Sized so the steady-state tick loop never reallocates: the
            // number of simultaneous write bursts is bounded by the
            // write-port count (each port holds one outstanding burst),
            // which never exceeds 64 banks for any in-repo memory.
            in_flight: VecDeque::with_capacity(
                64.max((cfg.buffer_records() / cfg.batch_records().max(1)) as usize + 2),
            ),
            completed: 0,
            draining: false,
            #[cfg(feature = "sanitize")]
            pushed_records: 0,
        }
    }

    /// Free space (in records) in the on-chip write buffer.
    pub fn free_space(&self) -> u64 {
        self.cfg.buffer_records().saturating_sub(self.pending)
    }

    /// Buffers `n` records for write-back.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`WriteDrain::free_space`].
    pub fn push_records(&mut self, n: u64) {
        assert!(n <= self.free_space(), "write buffer overflow");
        self.pending += n;
        #[cfg(feature = "sanitize")]
        {
            self.pushed_records += n;
        }
    }

    /// Sanitizer probe (`BON105`): every record pushed into the drain
    /// must be pending, in flight, or written back.
    ///
    /// Only available with the `sanitize` feature.
    #[cfg(feature = "sanitize")]
    pub fn sanitize_check(&self) -> Vec<Diagnostic> {
        let in_flight: u64 = self.in_flight.iter().map(|&(_, n)| n).sum();
        let accounted = self.completed + self.pending + in_flight;
        if accounted == self.pushed_records {
            Vec::new()
        } else {
            vec![Diagnostic::error(
                codes::SAN_BYTE_ACCOUNTING,
                "write-drain record accounting does not balance",
            )
            .with("pushed_bytes", self.pushed_records * self.cfg.record_bytes)
            .with("accounted_bytes", accounted * self.cfg.record_bytes)]
        }
    }

    /// Signals that no more records will arrive, so partial batches
    /// should be written out.
    pub fn set_draining(&mut self) {
        self.draining = true;
    }

    /// Records whose write burst has completed.
    pub fn completed_records(&self) -> u64 {
        self.completed
    }

    /// Returns `true` when nothing is buffered or in flight.
    pub fn is_idle(&self) -> bool {
        self.pending == 0 && self.in_flight.is_empty()
    }

    /// Advances one cycle: retires finished bursts and issues new ones.
    ///
    /// Returns `true` when any state changed (a burst retired or was
    /// issued); see [`WriteDrain::next_event_cycle`] for the matching
    /// fast-forward bound.
    pub fn tick(&mut self, cycle: u64, memory: &mut Memory) -> bool {
        let mut changed = false;
        while let Some(&(done, records)) = self.in_flight.front() {
            if done > cycle {
                break;
            }
            self.in_flight.pop_front();
            self.completed += records;
            changed = true;
        }

        let batch = self.cfg.batch_records();
        while self.pending >= batch || (self.draining && self.pending > 0) {
            let Some(port_idx) = memory.free_write_port(cycle) else {
                break;
            };
            let records = batch.min(self.pending);
            let bytes = records * self.cfg.record_bytes;
            let done = memory
                .write_port_mut(port_idx)
                .try_start(cycle, bytes)
                .expect("port reported free");
            self.pending -= records;
            self.in_flight.push_back((done, records));
            changed = true;
        }
        changed
    }

    /// Earliest future cycle at which [`WriteDrain::tick`] could change
    /// state again, or `None` when the drain is quiescent (nothing in
    /// flight and nothing issuable until more records are pushed or
    /// draining is signalled).
    ///
    /// Valid immediately after `tick(cycle, memory)`: an issuable batch
    /// left pending after tick implies every write port is busy, so the
    /// port-free bound is exact.
    pub fn next_event_cycle(&self, cycle: u64, memory: &Memory) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut fold = |event: u64| next = Some(next.map_or(event, |n| n.min(event)));
        // Retirement is strictly front-blocked (tick only ever pops the
        // oldest burst), so the front's completion cycle is the exact
        // next retirement event even if later bursts finish sooner.
        if let Some(&(done, _)) = self.in_flight.front() {
            fold(done.max(cycle + 1));
        }
        let batch = self.cfg.batch_records();
        if self.pending >= batch || (self.draining && self.pending > 0) {
            if let Some(free) = memory.next_write_port_free() {
                fold(free.max(cycle + 1));
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    fn run_loader(mut loader: DataLoader, mut mem: Memory, cycles: u64) -> (DataLoader, Memory) {
        for c in 0..cycles {
            loader.tick(c, &mut mem);
        }
        (loader, mem)
    }

    #[test]
    fn loader_fills_all_leaf_buffers() {
        let cfg = LoaderConfig::paper_default(4);
        let mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let loader = DataLoader::new(cfg, vec![100_000; 8]);
        let (loader, _) = run_loader(loader, mem, 2_000);
        for i in 0..8 {
            assert_eq!(
                loader.available(i),
                cfg.buffer_records(),
                "leaf {i} should be double-buffered full"
            );
        }
    }

    #[test]
    fn loader_respects_buffer_capacity() {
        let cfg = LoaderConfig::paper_default(4);
        let mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let loader = DataLoader::new(cfg, vec![1_000_000]);
        let (loader, _) = run_loader(loader, mem, 5_000);
        assert!(loader.available(0) <= cfg.buffer_records());
    }

    #[test]
    fn loader_delivers_exact_record_counts() {
        let cfg = LoaderConfig::paper_default(4);
        let mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        // 2.5 batches in leaf 0, half a batch in leaf 1.
        let n0 = cfg.batch_records() * 2 + cfg.batch_records() / 2;
        let n1 = cfg.batch_records() / 2;
        let mut loader = DataLoader::new(cfg, vec![n0, n1]);
        let mut mem = mem;
        let mut got0 = 0;
        let mut got1 = 0;
        for c in 0..50_000 {
            loader.tick(c, &mut mem);
            let a0 = loader.available(0);
            let a1 = loader.available(1);
            loader.consume(0, a0);
            loader.consume(1, a1);
            got0 += a0;
            got1 += a1;
            if loader.all_exhausted() {
                break;
            }
        }
        assert_eq!(got0, n0);
        assert_eq!(got1, n1);
        assert!(loader.all_exhausted());
    }

    #[test]
    fn consuming_frees_space_for_more_batches() {
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let total = cfg.batch_records() * 10;
        let mut loader = DataLoader::new(cfg, vec![total]);
        let mut consumed = 0;
        for c in 0..100_000 {
            loader.tick(c, &mut mem);
            let a = loader.available(0);
            loader.consume(0, a);
            consumed += a;
            if loader.all_exhausted() {
                break;
            }
        }
        assert_eq!(consumed, total);
    }

    #[test]
    #[should_panic(expected = "more records than buffered")]
    fn consume_more_than_available_panics() {
        let cfg = LoaderConfig::paper_default(4);
        let mut loader = DataLoader::new(cfg, vec![100]);
        loader.consume(0, 1);
    }

    #[test]
    fn drain_writes_all_records_including_partial_tail() {
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let mut drain = WriteDrain::new(cfg);
        let total = cfg.batch_records() * 3 + 7;
        let mut pushed = 0;
        let mut cycle = 0;
        while drain.completed_records() < total {
            let n = (total - pushed).min(drain.free_space()).min(64);
            drain.push_records(n);
            pushed += n;
            if pushed == total {
                drain.set_draining();
            }
            drain.tick(cycle, &mut mem);
            cycle += 1;
            assert!(cycle < 100_000, "drain did not finish");
        }
        assert_eq!(drain.completed_records(), total);
        assert!(drain.is_idle());
        assert_eq!(mem.bytes_written(), total * 4);
    }

    #[test]
    fn drain_holds_partial_batch_until_draining() {
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let mut drain = WriteDrain::new(cfg);
        drain.push_records(10); // less than one batch
        for c in 0..100 {
            drain.tick(c, &mut mem);
        }
        assert_eq!(drain.completed_records(), 0, "partial batch must wait");
        drain.set_draining();
        for c in 100..300 {
            drain.tick(c, &mut mem);
        }
        assert_eq!(drain.completed_records(), 10);
    }

    #[test]
    fn loader_next_event_skips_exactly_the_dead_cycles() {
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_single_bank());
        let mut loader = DataLoader::new(cfg, vec![cfg.batch_records() * 8; 2]);
        let mut cycle = 0u64;
        let mut events = 0;
        while !loader.all_exhausted() {
            let changed = loader.tick(cycle, &mut mem);
            let a0 = loader.available(0);
            let a1 = loader.available(1);
            loader.consume(0, a0);
            loader.consume(1, a1);
            if changed || a0 > 0 || a1 > 0 {
                cycle += 1;
                events += 1;
                continue;
            }
            // Quiescent: every cycle before the event must be a no-op...
            let next = loader
                .next_event_cycle(cycle, &mem)
                .expect("unfinished loader must have an event");
            assert!(next > cycle, "event must be in the future");
            let mut probe = loader.clone();
            let mut probe_mem = mem.clone();
            for c in cycle + 1..next.min(cycle + 50) {
                assert!(
                    !probe.tick(c, &mut probe_mem),
                    "dead window tick changed state at {c} (next = {next})"
                );
            }
            // ...and jumping straight there must make progress again.
            cycle = next;
            assert!(
                loader.tick(cycle, &mut mem),
                "tick at the event cycle {next} must change state"
            );
            loader.consume(0, loader.available(0));
            loader.consume(1, loader.available(1));
            cycle += 1;
            events += 1;
            assert!(events < 100_000, "runaway");
        }
        assert_eq!(loader.next_event_cycle(cycle, &mem), None);
    }

    #[test]
    fn drain_next_event_covers_retire_and_issue() {
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_single_bank());
        let mut drain = WriteDrain::new(cfg);
        // Idle drain: no events.
        assert_eq!(drain.next_event_cycle(0, &mem), None);
        // A full batch is issuable immediately (port free): event at 1.
        drain.push_records(cfg.batch_records());
        assert_eq!(drain.next_event_cycle(0, &mem), Some(1));
        assert!(drain.tick(1, &mut mem));
        // Burst in flight, nothing pending: next event is its retirement.
        let next = drain.next_event_cycle(1, &mem).expect("burst in flight");
        for c in 2..next {
            assert!(!drain.tick(c, &mut mem), "dead cycle {c} changed state");
        }
        assert!(drain.tick(next, &mut mem), "retirement at {next}");
        assert_eq!(drain.completed_records(), cfg.batch_records());
        assert_eq!(drain.next_event_cycle(next, &mem), None);
        // A sub-batch residue is only an event once draining is signalled.
        drain.push_records(7);
        assert_eq!(drain.next_event_cycle(next, &mem), None);
        drain.set_draining();
        assert_eq!(drain.next_event_cycle(next, &mem), Some(next + 1));
    }

    #[test]
    fn loader_saturates_single_bank_bandwidth() {
        // With one bank and plenty of leaves, achieved read efficiency
        // should approach the burst efficiency bound.
        let cfg = LoaderConfig::paper_default(4);
        let mcfg = MemoryConfig::ddr4_single_bank();
        let mut mem = Memory::new(mcfg);
        let mut loader = DataLoader::new(cfg, vec![u64::MAX / 2; 4]);
        let horizon = 100_000;
        for c in 0..horizon {
            loader.tick(c, &mut mem);
            for i in 0..4 {
                let a = loader.available(i);
                loader.consume(i, a);
            }
        }
        let eff = mem.read_efficiency(horizon);
        let bound = mcfg.burst_efficiency(cfg.batch_bytes);
        assert!(
            eff > bound * 0.95,
            "loader must keep the port busy: eff = {eff}, bound = {bound}"
        );
    }
}
