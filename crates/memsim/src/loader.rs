//! The batched data loader (§V-A) and its write-side counterpart.

use std::collections::VecDeque;

use crate::config::LoaderConfig;
use crate::memory::Memory;

#[cfg(feature = "sanitize")]
use bonsai_check::{codes, Diagnostic};

/// Introspection snapshot of one leaf buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafStatus {
    /// Records still in off-chip memory, not yet requested.
    pub remaining: u64,
    /// Records currently in transit from memory.
    pub in_flight: u64,
    /// Records buffered on-chip, ready to consume.
    pub buffered: u64,
}

impl LeafStatus {
    /// Returns `true` when the leaf has no data anywhere in the pipeline.
    pub fn is_exhausted(&self) -> bool {
        self.remaining == 0 && self.in_flight == 0 && self.buffered == 0
    }
}

#[derive(Debug, Clone, Default)]
struct LeafState {
    remaining: u64,
    in_flight: VecDeque<(u64, u64)>, // (completion cycle, records)
    in_flight_records: u64,
    buffered: u64,
}

/// The data loader of §V-A: issues batched reads round-robin into
/// per-leaf input buffers so off-chip memory operates at peak bandwidth.
///
/// Each AMT leaf reads a contiguous run from memory. The loader checks
/// leaves "in a round-robin fashion" for buffers with space for a full
/// read batch, issues a burst on any free bank read port, and delivers
/// the records `burst_latency` cycles later. The consumer (the AMT leaf)
/// pulls from [`DataLoader::available`] via [`DataLoader::consume`].
///
/// # Example
///
/// ```
/// use bonsai_memsim::{DataLoader, LoaderConfig, Memory, MemoryConfig};
///
/// let cfg = LoaderConfig::paper_default(4);
/// let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
/// let mut loader = DataLoader::new(cfg, vec![10_000, 10_000]);
/// let mut cycle = 0;
/// while loader.available(0) == 0 {
///     loader.tick(cycle, &mut mem);
///     cycle += 1;
/// }
/// assert!(loader.available(0) >= cfg.batch_records());
/// ```
#[derive(Debug, Clone)]
pub struct DataLoader {
    cfg: LoaderConfig,
    leaves: Vec<LeafState>,
    rr: usize,
    #[cfg(feature = "sanitize")]
    initial_records: u64,
    #[cfg(feature = "sanitize")]
    consumed_records: u64,
}

impl DataLoader {
    /// Creates a loader for one merge pass: `per_leaf_records[i]` records
    /// stream into leaf `i`.
    pub fn new(cfg: LoaderConfig, per_leaf_records: Vec<u64>) -> Self {
        // Saturating: tests model "infinite" streams as u64::MAX-ish
        // per-leaf counts, whose exact total can exceed u64.
        #[cfg(feature = "sanitize")]
        let initial_records = per_leaf_records
            .iter()
            .fold(0u64, |acc, &n| acc.saturating_add(n));
        let leaves: Vec<LeafState> = per_leaf_records
            .into_iter()
            .map(|remaining| LeafState {
                remaining,
                ..LeafState::default()
            })
            .collect();
        Self {
            cfg,
            leaves,
            rr: 0,
            #[cfg(feature = "sanitize")]
            initial_records,
            #[cfg(feature = "sanitize")]
            consumed_records: 0,
        }
    }

    /// The loader configuration.
    pub fn config(&self) -> &LoaderConfig {
        &self.cfg
    }

    /// Number of leaves being fed.
    pub fn leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Snapshot of leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn leaf_status(&self, i: usize) -> LeafStatus {
        let l = &self.leaves[i];
        LeafStatus {
            remaining: l.remaining,
            in_flight: l.in_flight_records,
            buffered: l.buffered,
        }
    }

    /// Records ready to consume at leaf `i`.
    pub fn available(&self, i: usize) -> u64 {
        self.leaves[i].buffered
    }

    /// Returns `true` when leaf `i` will never produce more records.
    pub fn is_exhausted(&self, i: usize) -> bool {
        self.leaf_status(i).is_exhausted()
    }

    /// Returns `true` when every leaf is exhausted.
    pub fn all_exhausted(&self) -> bool {
        (0..self.leaves.len()).all(|i| self.is_exhausted(i))
    }

    /// Consumes `n` buffered records from leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` records are buffered.
    pub fn consume(&mut self, i: usize, n: u64) {
        let l = &mut self.leaves[i];
        assert!(l.buffered >= n, "consuming more records than buffered");
        l.buffered -= n;
        #[cfg(feature = "sanitize")]
        {
            self.consumed_records += n;
        }
    }

    /// Sanitizer probe (`BON105`): every record handed to `new` must be
    /// accounted for as consumed, buffered, in flight, or still in
    /// memory — scaled by the record width this is the loader's byte
    /// conservation law.
    ///
    /// Only available with the `sanitize` feature.
    #[cfg(feature = "sanitize")]
    pub fn sanitize_check(&self) -> Vec<Diagnostic> {
        let in_pipeline = self.leaves.iter().fold(0u64, |acc, l| {
            acc.saturating_add(l.remaining)
                .saturating_add(l.in_flight_records)
                .saturating_add(l.buffered)
        });
        let accounted = self.consumed_records.saturating_add(in_pipeline);
        // A saturated total means the caller modeled an unbounded stream;
        // exact conservation is unverifiable there, so the probe stands
        // down rather than report a false imbalance.
        if accounted == self.initial_records || self.initial_records == u64::MAX {
            Vec::new()
        } else {
            vec![Diagnostic::error(
                codes::SAN_BYTE_ACCOUNTING,
                "loader record accounting does not balance",
            )
            .with(
                "initial_bytes",
                self.initial_records.saturating_mul(self.cfg.record_bytes),
            )
            .with(
                "accounted_bytes",
                accounted.saturating_mul(self.cfg.record_bytes),
            )]
        }
    }

    /// Advances one cycle: completes arrivals, then issues new batched
    /// reads round-robin on every free read port.
    pub fn tick(&mut self, cycle: u64, memory: &mut Memory) {
        // Deliver completed bursts.
        for leaf in &mut self.leaves {
            while let Some(&(done, records)) = leaf.in_flight.front() {
                if done > cycle {
                    break;
                }
                leaf.in_flight.pop_front();
                leaf.in_flight_records -= records;
                leaf.buffered += records;
            }
        }

        // Issue new bursts while ports and hungry leaves remain.
        let n_leaves = self.leaves.len();
        if n_leaves == 0 {
            return;
        }
        let batch = self.cfg.batch_records();
        let capacity = self.cfg.buffer_records();
        while let Some(port_idx) = memory.free_read_port(cycle) {
            // Find the next leaf (round-robin) with work and buffer space.
            let mut chosen = None;
            for off in 0..n_leaves {
                let i = (self.rr + off) % n_leaves;
                let l = &self.leaves[i];
                let committed = l.buffered + l.in_flight_records;
                if l.remaining > 0 && capacity.saturating_sub(committed) >= batch.min(l.remaining) {
                    chosen = Some(i);
                    break;
                }
            }
            let Some(i) = chosen else { break };
            self.rr = (i + 1) % n_leaves;
            let l = &mut self.leaves[i];
            let records = batch.min(l.remaining);
            let bytes = records * self.cfg.record_bytes;
            let done = memory
                .read_port_mut(port_idx)
                .try_start(cycle, bytes)
                .expect("port reported free");
            l.remaining -= records;
            l.in_flight.push_back((done, records));
            l.in_flight_records += records;
        }
    }
}

/// The write-side drain: collects root-output records and writes them
/// back to memory in batched bursts (the packer + write path of Fig. 7).
#[derive(Debug, Clone)]
pub struct WriteDrain {
    cfg: LoaderConfig,
    pending: u64,
    in_flight: VecDeque<(u64, u64)>,
    completed: u64,
    draining: bool,
    #[cfg(feature = "sanitize")]
    pushed_records: u64,
}

impl WriteDrain {
    /// Creates an empty drain.
    pub fn new(cfg: LoaderConfig) -> Self {
        Self {
            cfg,
            pending: 0,
            in_flight: VecDeque::new(),
            completed: 0,
            draining: false,
            #[cfg(feature = "sanitize")]
            pushed_records: 0,
        }
    }

    /// Free space (in records) in the on-chip write buffer.
    pub fn free_space(&self) -> u64 {
        self.cfg.buffer_records().saturating_sub(self.pending)
    }

    /// Buffers `n` records for write-back.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`WriteDrain::free_space`].
    pub fn push_records(&mut self, n: u64) {
        assert!(n <= self.free_space(), "write buffer overflow");
        self.pending += n;
        #[cfg(feature = "sanitize")]
        {
            self.pushed_records += n;
        }
    }

    /// Sanitizer probe (`BON105`): every record pushed into the drain
    /// must be pending, in flight, or written back.
    ///
    /// Only available with the `sanitize` feature.
    #[cfg(feature = "sanitize")]
    pub fn sanitize_check(&self) -> Vec<Diagnostic> {
        let in_flight: u64 = self.in_flight.iter().map(|&(_, n)| n).sum();
        let accounted = self.completed + self.pending + in_flight;
        if accounted == self.pushed_records {
            Vec::new()
        } else {
            vec![Diagnostic::error(
                codes::SAN_BYTE_ACCOUNTING,
                "write-drain record accounting does not balance",
            )
            .with("pushed_bytes", self.pushed_records * self.cfg.record_bytes)
            .with("accounted_bytes", accounted * self.cfg.record_bytes)]
        }
    }

    /// Signals that no more records will arrive, so partial batches
    /// should be written out.
    pub fn set_draining(&mut self) {
        self.draining = true;
    }

    /// Records whose write burst has completed.
    pub fn completed_records(&self) -> u64 {
        self.completed
    }

    /// Returns `true` when nothing is buffered or in flight.
    pub fn is_idle(&self) -> bool {
        self.pending == 0 && self.in_flight.is_empty()
    }

    /// Advances one cycle: retires finished bursts and issues new ones.
    pub fn tick(&mut self, cycle: u64, memory: &mut Memory) {
        while let Some(&(done, records)) = self.in_flight.front() {
            if done > cycle {
                break;
            }
            self.in_flight.pop_front();
            self.completed += records;
        }

        let batch = self.cfg.batch_records();
        while self.pending >= batch || (self.draining && self.pending > 0) {
            let Some(port_idx) = memory.free_write_port(cycle) else {
                break;
            };
            let records = batch.min(self.pending);
            let bytes = records * self.cfg.record_bytes;
            let done = memory
                .write_port_mut(port_idx)
                .try_start(cycle, bytes)
                .expect("port reported free");
            self.pending -= records;
            self.in_flight.push_back((done, records));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    fn run_loader(mut loader: DataLoader, mut mem: Memory, cycles: u64) -> (DataLoader, Memory) {
        for c in 0..cycles {
            loader.tick(c, &mut mem);
        }
        (loader, mem)
    }

    #[test]
    fn loader_fills_all_leaf_buffers() {
        let cfg = LoaderConfig::paper_default(4);
        let mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let loader = DataLoader::new(cfg, vec![100_000; 8]);
        let (loader, _) = run_loader(loader, mem, 2_000);
        for i in 0..8 {
            assert_eq!(
                loader.available(i),
                cfg.buffer_records(),
                "leaf {i} should be double-buffered full"
            );
        }
    }

    #[test]
    fn loader_respects_buffer_capacity() {
        let cfg = LoaderConfig::paper_default(4);
        let mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let loader = DataLoader::new(cfg, vec![1_000_000]);
        let (loader, _) = run_loader(loader, mem, 5_000);
        assert!(loader.available(0) <= cfg.buffer_records());
    }

    #[test]
    fn loader_delivers_exact_record_counts() {
        let cfg = LoaderConfig::paper_default(4);
        let mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        // 2.5 batches in leaf 0, half a batch in leaf 1.
        let n0 = cfg.batch_records() * 2 + cfg.batch_records() / 2;
        let n1 = cfg.batch_records() / 2;
        let mut loader = DataLoader::new(cfg, vec![n0, n1]);
        let mut mem = mem;
        let mut got0 = 0;
        let mut got1 = 0;
        for c in 0..50_000 {
            loader.tick(c, &mut mem);
            let a0 = loader.available(0);
            let a1 = loader.available(1);
            loader.consume(0, a0);
            loader.consume(1, a1);
            got0 += a0;
            got1 += a1;
            if loader.all_exhausted() {
                break;
            }
        }
        assert_eq!(got0, n0);
        assert_eq!(got1, n1);
        assert!(loader.all_exhausted());
    }

    #[test]
    fn consuming_frees_space_for_more_batches() {
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let total = cfg.batch_records() * 10;
        let mut loader = DataLoader::new(cfg, vec![total]);
        let mut consumed = 0;
        for c in 0..100_000 {
            loader.tick(c, &mut mem);
            let a = loader.available(0);
            loader.consume(0, a);
            consumed += a;
            if loader.all_exhausted() {
                break;
            }
        }
        assert_eq!(consumed, total);
    }

    #[test]
    #[should_panic(expected = "more records than buffered")]
    fn consume_more_than_available_panics() {
        let cfg = LoaderConfig::paper_default(4);
        let mut loader = DataLoader::new(cfg, vec![100]);
        loader.consume(0, 1);
    }

    #[test]
    fn drain_writes_all_records_including_partial_tail() {
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let mut drain = WriteDrain::new(cfg);
        let total = cfg.batch_records() * 3 + 7;
        let mut pushed = 0;
        let mut cycle = 0;
        while drain.completed_records() < total {
            let n = (total - pushed).min(drain.free_space()).min(64);
            drain.push_records(n);
            pushed += n;
            if pushed == total {
                drain.set_draining();
            }
            drain.tick(cycle, &mut mem);
            cycle += 1;
            assert!(cycle < 100_000, "drain did not finish");
        }
        assert_eq!(drain.completed_records(), total);
        assert!(drain.is_idle());
        assert_eq!(mem.bytes_written(), total * 4);
    }

    #[test]
    fn drain_holds_partial_batch_until_draining() {
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let mut drain = WriteDrain::new(cfg);
        drain.push_records(10); // less than one batch
        for c in 0..100 {
            drain.tick(c, &mut mem);
        }
        assert_eq!(drain.completed_records(), 0, "partial batch must wait");
        drain.set_draining();
        for c in 100..300 {
            drain.tick(c, &mut mem);
        }
        assert_eq!(drain.completed_records(), 10);
    }

    #[test]
    fn loader_saturates_single_bank_bandwidth() {
        // With one bank and plenty of leaves, achieved read efficiency
        // should approach the burst efficiency bound.
        let cfg = LoaderConfig::paper_default(4);
        let mcfg = MemoryConfig::ddr4_single_bank();
        let mut mem = Memory::new(mcfg);
        let mut loader = DataLoader::new(cfg, vec![u64::MAX / 2; 4]);
        let horizon = 100_000;
        for c in 0..horizon {
            loader.tick(c, &mut mem);
            for i in 0..4 {
                let a = loader.available(i);
                loader.consume(i, a);
            }
        }
        let eff = mem.read_efficiency(horizon);
        let bound = mcfg.burst_efficiency(cfg.batch_bytes);
        assert!(
            eff > bound * 0.95,
            "loader must keep the port busy: eff = {eff}, bound = {bound}"
        );
    }
}
