//! Off-chip memory hierarchy models for the Bonsai simulator.
//!
//! The paper's performance model (Table II) depends on off-chip memory
//! only through a handful of parameters: sustained bandwidth `β_DRAM`,
//! I/O-bus bandwidth `β_I/O`, capacities, the number of banks, and the
//! requirement that accesses be batched into 1–4 KB bursts to reach peak
//! bandwidth (§II, §V-A). This crate models exactly those properties at
//! cycle granularity:
//!
//! - [`Port`]: a read or write channel moving a fixed number of bytes per
//!   cycle, with per-burst setup latency,
//! - [`Memory`]: a banked memory (DDR4 DRAM, HBM, or throttled variants)
//!   built from ports, with capacity accounting,
//! - [`DataLoader`]: the round-robin batched reader of §V-A that keeps
//!   every AMT leaf buffer fed while saturating the memory ports,
//! - [`WriteDrain`]: the symmetric batched writer at the tree root,
//! - [`IoBus`]: the PCIe/SSD I/O bus used by the SSD sorter.
//!
//! All cycle counts are in kernel-clock cycles (250 MHz by default, as in
//! §VI-A).
//!
//! # Example
//!
//! ```
//! use bonsai_memsim::MemoryConfig;
//!
//! let dram = MemoryConfig::ddr4_aws_f1();
//! // 4 banks x 32 B/cycle x 250 MHz = 32 GB/s aggregate read bandwidth.
//! assert_eq!(dram.peak_read_bytes_per_cycle(), 128);
//! assert!((dram.peak_read_bandwidth() - 32e9).abs() < 1e-3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod loader;
mod memory;

pub use config::{IoBusConfig, LoaderConfig, MemoryConfig, DEFAULT_FREQ_HZ};
pub use loader::{DataLoader, LeafStatus, WriteDrain};
pub use memory::{IoBus, Memory, Port, PortStats};
