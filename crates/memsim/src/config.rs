//! Memory, I/O-bus and loader configuration with the paper's presets.

use bonsai_check::{has_errors, Diagnostic};

/// Default kernel clock frequency: 250 MHz (§VI-A: "our designs are
/// running at 250 MHz or higher frequency").
pub const DEFAULT_FREQ_HZ: f64 = 250e6;

/// Configuration of a banked off-chip memory.
///
/// Bandwidths are expressed in bytes per kernel-clock cycle per bank so
/// that the cycle simulation is exact; helpers convert to bytes/second at
/// [`DEFAULT_FREQ_HZ`].
///
/// # Example
///
/// ```
/// use bonsai_memsim::MemoryConfig;
///
/// let hbm = MemoryConfig::hbm_u50();
/// assert_eq!(hbm.banks, 32);
/// assert!(hbm.peak_read_bandwidth() > 200e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryConfig {
    /// Number of independent banks, each with its own read and write port.
    pub banks: usize,
    /// Read bytes per cycle per bank.
    pub read_bytes_per_cycle: u64,
    /// Write bytes per cycle per bank.
    pub write_bytes_per_cycle: u64,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Fixed setup cycles charged per burst (row activation, bus
    /// turnaround). Batching reads to 1–4 KB amortizes this (§V-A).
    pub burst_setup_cycles: u64,
}

impl MemoryConfig {
    /// Validated constructor: returns the analyzer's findings instead of
    /// panicking. Warnings do not fail construction; see
    /// [`MemoryConfig::validate`] to inspect them.
    pub fn try_new(
        banks: usize,
        read_bytes_per_cycle: u64,
        write_bytes_per_cycle: u64,
        capacity_bytes: u64,
        burst_setup_cycles: u64,
    ) -> Result<Self, Vec<Diagnostic>> {
        let cfg = Self {
            banks,
            read_bytes_per_cycle,
            write_bytes_per_cycle,
            capacity_bytes,
            burst_setup_cycles,
        };
        let diagnostics = cfg.validate();
        if has_errors(&diagnostics) {
            Err(diagnostics)
        } else {
            Ok(cfg)
        }
    }

    /// Runs the static analyzer over this memory configuration
    /// (`BON013`, `BON014`).
    pub fn validate(&self) -> Vec<Diagnostic> {
        bonsai_check::check_memory_shape(
            self.banks,
            self.read_bytes_per_cycle as usize,
            self.write_bytes_per_cycle as usize,
        )
    }

    /// The AWS EC2 F1.2xlarge DDR4 of §VI-A: 64 GB over 4 banks, each
    /// bank reading and writing 8 GB/s concurrently (32 B/cycle at
    /// 250 MHz), 32 GB/s aggregate.
    pub fn ddr4_aws_f1() -> Self {
        Self {
            banks: 4,
            read_bytes_per_cycle: 32,
            write_bytes_per_cycle: 32,
            capacity_bytes: 64 << 30,
            burst_setup_cycles: 8,
        }
    }

    /// A single DDR4 bank (8 GB/s concurrent read/write, 16 GB) — the
    /// "Bonsai 8" configuration of Figure 12.
    pub fn ddr4_single_bank() -> Self {
        Self {
            banks: 1,
            read_bytes_per_cycle: 32,
            write_bytes_per_cycle: 32,
            capacity_bytes: 16 << 30,
            burst_setup_cycles: 8,
        }
    }

    /// The Xilinx U50-style HBM tile of §IV-B / §VI-D: 32 banks at
    /// 8 GB/s read/write each (up to 512 GB/s), 16 GB capacity.
    pub fn hbm_u50() -> Self {
        Self {
            banks: 32,
            read_bytes_per_cycle: 32,
            write_bytes_per_cycle: 32,
            capacity_bytes: 16 << 30,
            burst_setup_cycles: 8,
        }
    }

    /// DRAM throttled to SSD speed (8 GB/s aggregate), used by the
    /// paper to validate the SSD sorter on F1 hardware (§VI-E).
    pub fn throttled_to_ssd() -> Self {
        Self {
            banks: 1,
            read_bytes_per_cycle: 32,
            write_bytes_per_cycle: 32,
            capacity_bytes: 64 << 30,
            burst_setup_cycles: 8,
        }
    }

    /// A direct SSD-array stream (§IV-C scale): one access stream at
    /// 1 GB/s (4 B/cycle) whose per-burst setup models flash access
    /// latency (25 000 cycles ≈ 100 µs at 250 MHz). Transfers are long
    /// and the gaps between them longer, so the simulated machine spends
    /// most cycles waiting on memory — the regime the event-driven
    /// fast-forward scheduler collapses. Pair with ≥ 128 KiB loader
    /// batches to keep the setup latency amortized.
    pub fn ssd_direct() -> Self {
        Self {
            banks: 1,
            read_bytes_per_cycle: 4,
            write_bytes_per_cycle: 4,
            capacity_bytes: 1 << 40,
            burst_setup_cycles: 25_000,
        }
    }

    /// Scales per-bank bandwidth by `factor` (model-exploration helper
    /// for Figure 5's bandwidth sweep).
    #[must_use]
    pub fn with_bandwidth_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth scale must be positive");
        self.read_bytes_per_cycle =
            ((self.read_bytes_per_cycle as f64 * factor).round() as u64).max(1);
        self.write_bytes_per_cycle =
            ((self.write_bytes_per_cycle as f64 * factor).round() as u64).max(1);
        self
    }

    /// Aggregate peak read bandwidth in bytes per cycle.
    pub fn peak_read_bytes_per_cycle(&self) -> u64 {
        self.banks as u64 * self.read_bytes_per_cycle
    }

    /// Aggregate peak write bandwidth in bytes per cycle.
    pub fn peak_write_bytes_per_cycle(&self) -> u64 {
        self.banks as u64 * self.write_bytes_per_cycle
    }

    /// Aggregate peak read bandwidth in bytes/second at the default clock.
    pub fn peak_read_bandwidth(&self) -> f64 {
        self.peak_read_bytes_per_cycle() as f64 * DEFAULT_FREQ_HZ
    }

    /// Aggregate peak write bandwidth in bytes/second at the default clock.
    pub fn peak_write_bandwidth(&self) -> f64 {
        self.peak_write_bytes_per_cycle() as f64 * DEFAULT_FREQ_HZ
    }

    /// Sustained fraction of peak for `batch_bytes` bursts:
    /// `b / (b + setup·bytes_per_cycle)`. This is why the data loader
    /// batches reads (§V-A).
    pub fn burst_efficiency(&self, batch_bytes: u64) -> f64 {
        let transfer = batch_bytes.div_ceil(self.read_bytes_per_cycle.max(1));
        transfer as f64 / (transfer + self.burst_setup_cycles) as f64
    }

    /// The bank that leaf `leaf` streams its run from: input streams
    /// stripe round-robin over the banks (`leaf mod banks`). `None` when
    /// there are no banks at all.
    pub fn bank_for_leaf(&self, leaf: usize) -> Option<usize> {
        (self.banks > 0).then(|| leaf % self.banks)
    }

    /// How many banks serve at least one leaf under the round-robin
    /// striping of [`MemoryConfig::bank_for_leaf`]. Banks beyond this
    /// count are idle on the read side — dead hardware that the
    /// pipeline-graph analysis flags (`BON034`).
    pub fn banks_serving(&self, leaves: usize) -> usize {
        self.banks.min(leaves)
    }

    /// The bank view one merge-group shard owns when a pass is sharded
    /// across its independent groups: a group streaming `active_leaves`
    /// runs can occupy at most [`MemoryConfig::banks_serving`] of the
    /// banks (one read stream per active leaf), so its private memory
    /// keeps the per-bank port shape and drops the banks it can never
    /// touch. With `banks <= active_leaves` the view is the whole
    /// memory, so sharding a wide-enough pass changes no bank count.
    #[must_use]
    pub fn shard_view(&self, active_leaves: usize) -> Self {
        Self {
            banks: self.banks_serving(active_leaves.max(1)).max(1),
            ..*self
        }
    }
}

/// Configuration of the I/O bus (PCIe to the host or SSD, §III-A3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoBusConfig {
    /// Bus bytes per cycle (each direction).
    pub bytes_per_cycle: u64,
    /// Capacity of the attached storage in bytes (0 = host memory).
    pub storage_capacity_bytes: u64,
}

impl IoBusConfig {
    /// NVMe SSD array: 8 GB/s I/O, 2 TB capacity (§IV-C).
    pub fn nvme_ssd() -> Self {
        Self {
            bytes_per_cycle: 32,
            storage_capacity_bytes: 2 << 40,
        }
    }

    /// PCIe gen3 x16 host link (~16 GB/s).
    pub fn pcie_host() -> Self {
        Self {
            bytes_per_cycle: 64,
            storage_capacity_bytes: 0,
        }
    }

    /// Peak bandwidth in bytes/second at the default clock.
    pub fn peak_bandwidth(&self) -> f64 {
        self.bytes_per_cycle as f64 * DEFAULT_FREQ_HZ
    }
}

/// Configuration of the data loader (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoaderConfig {
    /// Batch size `b` in bytes (1–4 KB in the paper).
    pub batch_bytes: u64,
    /// Record width `r` in bytes.
    pub record_bytes: u64,
    /// Leaf input-buffer capacity in batches (the hardware FIFO "can hold
    /// two full read batches", §V-A).
    pub buffer_batches: u64,
}

impl LoaderConfig {
    /// Validated constructor: returns the analyzer's findings instead of
    /// panicking. Warnings do not fail construction; see
    /// [`LoaderConfig::validate`] to inspect them.
    pub fn try_new(
        batch_bytes: u64,
        record_bytes: u64,
        buffer_batches: u64,
    ) -> Result<Self, Vec<Diagnostic>> {
        let cfg = Self {
            batch_bytes,
            record_bytes,
            buffer_batches,
        };
        let diagnostics = cfg.validate();
        if has_errors(&diagnostics) {
            Err(diagnostics)
        } else {
            Ok(cfg)
        }
    }

    /// Runs the static analyzer over this loader configuration
    /// (`BON004`, `BON005`, `BON011`, `BON012`).
    pub fn validate(&self) -> Vec<Diagnostic> {
        bonsai_check::check_loader_shape(
            self.batch_bytes as usize,
            self.record_bytes as usize,
            self.buffer_batches as usize,
        )
    }

    /// Cross-checks the loader against the memory it streams from
    /// (`BON010`, `BON015`, `BON016`).
    pub fn validate_against(&self, memory: &MemoryConfig) -> Vec<Diagnostic> {
        bonsai_check::check_loader_against_memory(
            self.batch_bytes as usize,
            memory.read_bytes_per_cycle as usize,
            memory.burst_setup_cycles,
            memory.capacity_bytes,
        )
    }

    /// The paper's default: 4 KB batches, double-buffered.
    pub fn paper_default(record_bytes: u64) -> Self {
        assert!(record_bytes > 0, "record width must be positive");
        Self {
            batch_bytes: 4096,
            record_bytes,
            buffer_batches: 2,
        }
    }

    /// Records per read batch.
    pub fn batch_records(&self) -> u64 {
        (self.batch_bytes / self.record_bytes).max(1)
    }

    /// Leaf buffer capacity in records.
    pub fn buffer_records(&self) -> u64 {
        self.batch_records() * self.buffer_batches
    }

    /// On-chip memory consumed by `leaves` input buffers, in bytes — the
    /// `b·ℓ` left-hand side of Equation 10.
    pub fn bram_bytes(&self, leaves: u64) -> u64 {
        self.batch_bytes * self.buffer_batches * leaves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_f1_preset_matches_paper_numbers() {
        let m = MemoryConfig::ddr4_aws_f1();
        assert!((m.peak_read_bandwidth() - 32e9).abs() < 1.0);
        assert!((m.peak_write_bandwidth() - 32e9).abs() < 1.0);
        assert_eq!(m.capacity_bytes, 64 << 30);
    }

    #[test]
    fn hbm_preset_hits_256_gbps() {
        let m = MemoryConfig::hbm_u50();
        assert!((m.peak_read_bandwidth() - 256e9).abs() < 1.0);
    }

    #[test]
    fn burst_efficiency_improves_with_batch_size() {
        let m = MemoryConfig::ddr4_aws_f1();
        let small = m.burst_efficiency(64);
        let large = m.burst_efficiency(4096);
        assert!(small < 0.5, "tiny bursts waste bandwidth: {small}");
        assert!(large > 0.9, "4KB bursts are near peak: {large}");
        assert!(small < large);
    }

    #[test]
    fn bandwidth_scaling_is_monotonic() {
        let m = MemoryConfig::ddr4_aws_f1().with_bandwidth_scale(2.0);
        assert_eq!(m.read_bytes_per_cycle, 64);
        let m = MemoryConfig::ddr4_aws_f1().with_bandwidth_scale(0.25);
        assert_eq!(m.read_bytes_per_cycle, 8);
    }

    #[test]
    fn loader_config_derived_quantities() {
        let l = LoaderConfig::paper_default(4);
        assert_eq!(l.batch_records(), 1024);
        assert_eq!(l.buffer_records(), 2048);
        // Equation 10: 256 leaves at 4KB double-buffered = 2 MiB of BRAM.
        assert_eq!(l.bram_bytes(256), 2 << 20);
    }

    #[test]
    fn bank_striping_round_robins_leaves() {
        let m = MemoryConfig::ddr4_aws_f1();
        assert_eq!(m.bank_for_leaf(0), Some(0));
        assert_eq!(m.bank_for_leaf(5), Some(1));
        assert_eq!(m.banks_serving(2), 2);
        assert_eq!(m.banks_serving(64), 4);
        let none = MemoryConfig {
            banks: 0,
            ..MemoryConfig::ddr4_aws_f1()
        };
        assert_eq!(none.bank_for_leaf(3), None);
        assert_eq!(none.banks_serving(64), 0);
    }

    #[test]
    fn io_bus_presets() {
        assert!((IoBusConfig::nvme_ssd().peak_bandwidth() - 8e9).abs() < 1.0);
        assert!((IoBusConfig::pcie_host().peak_bandwidth() - 16e9).abs() < 1.0);
    }

    #[test]
    fn striping_with_non_divisible_leaf_counts_loads_low_banks_heavier() {
        // 6 leaves over 4 banks: banks 0 and 1 take two leaves, banks 2
        // and 3 take one — and every bank serves at least one leaf.
        let m = MemoryConfig::ddr4_aws_f1();
        let mut per_bank = [0usize; 4];
        for leaf in 0..6 {
            per_bank[m.bank_for_leaf(leaf).expect("has banks")] += 1;
        }
        assert_eq!(per_bank, [2, 2, 1, 1]);
        assert_eq!(m.banks_serving(6), 4);
        // Fewer leaves than banks: only the first `leaves` banks serve.
        assert_eq!(m.banks_serving(3), 3);
        assert_eq!(m.shard_view(3).banks, 3);
    }

    #[test]
    fn single_bank_striping_is_degenerate_but_total() {
        let m = MemoryConfig::ddr4_single_bank();
        for leaf in [0usize, 1, 7, 1000] {
            assert_eq!(m.bank_for_leaf(leaf), Some(0));
        }
        assert_eq!(m.banks_serving(0), 0);
        assert_eq!(m.banks_serving(64), 1);
        let view = m.shard_view(64);
        assert_eq!(view.banks, 1);
        assert_eq!(view, m, "the whole memory is its own shard view");
    }

    #[test]
    fn zero_leaf_shard_view_still_yields_a_usable_memory() {
        // A group with no active leaves (or a zero-bank memory) must
        // not produce a bankless — hence portless — shard view: the
        // net lowering and the pass sharder both assume at least one
        // read channel exists.
        let m = MemoryConfig::ddr4_aws_f1();
        assert_eq!(m.banks_serving(0), 0, "serving count itself is honest");
        assert_eq!(m.shard_view(0).banks, 1, "clamped for the degenerate group");
        let none = MemoryConfig {
            banks: 0,
            ..MemoryConfig::ddr4_aws_f1()
        };
        assert_eq!(none.shard_view(0).banks, 1);
        assert_eq!(none.shard_view(64).banks, 1);
        // Everything but the bank count is preserved by the view.
        let view = m.shard_view(2);
        assert_eq!(view.banks, 2);
        assert_eq!(view.read_bytes_per_cycle, m.read_bytes_per_cycle);
        assert_eq!(view.write_bytes_per_cycle, m.write_bytes_per_cycle);
        assert_eq!(view.capacity_bytes, m.capacity_bytes);
        assert_eq!(view.burst_setup_cycles, m.burst_setup_cycles);
    }
}
