//! Cycle-level ports, banked memory and the I/O bus.

use crate::config::{IoBusConfig, MemoryConfig};

/// Transfer statistics for one port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Total payload bytes transferred.
    pub bytes: u64,
    /// Cycles the port was busy (transfer + burst setup).
    pub busy_cycles: u64,
    /// Number of bursts issued.
    pub bursts: u64,
}

/// A single direction of one memory bank: moves a fixed number of bytes
/// per cycle, one burst at a time, charging a setup latency per burst.
#[derive(Debug, Clone)]
pub struct Port {
    bytes_per_cycle: u64,
    setup_cycles: u64,
    free_at: u64,
    stats: PortStats,
}

impl Port {
    /// Creates a port moving `bytes_per_cycle` with `setup_cycles` per
    /// burst.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(bytes_per_cycle: u64, setup_cycles: u64) -> Self {
        assert!(bytes_per_cycle > 0, "port bandwidth must be positive");
        Self {
            bytes_per_cycle,
            setup_cycles,
            free_at: 0,
            stats: PortStats::default(),
        }
    }

    /// Port bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> u64 {
        self.bytes_per_cycle
    }

    /// Returns `true` when the port can accept a burst at `cycle`.
    pub fn is_free(&self, cycle: u64) -> bool {
        self.free_at <= cycle
    }

    /// First cycle at which the port becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Starts a burst of `bytes` at `cycle`; returns the completion cycle.
    ///
    /// Returns `None` (and transfers nothing) if the port is still busy.
    pub fn try_start(&mut self, cycle: u64, bytes: u64) -> Option<u64> {
        if !self.is_free(cycle) || bytes == 0 {
            return None;
        }
        let duration = self.setup_cycles + bytes.div_ceil(self.bytes_per_cycle);
        self.free_at = cycle + duration;
        self.stats.bytes += bytes;
        self.stats.busy_cycles += duration;
        self.stats.bursts += 1;
        Some(self.free_at)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Fraction of `elapsed_cycles` the port spent busy.
    pub fn utilization(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            0.0
        } else {
            self.stats.busy_cycles as f64 / elapsed_cycles as f64
        }
    }
}

/// A banked off-chip memory: each bank has one read port and one write
/// port that operate concurrently (the F1 DDR4 of §VI-A reads and writes
/// 8 GB/s per bank simultaneously).
#[derive(Debug, Clone)]
pub struct Memory {
    config: MemoryConfig,
    read_ports: Vec<Port>,
    write_ports: Vec<Port>,
}

impl Memory {
    /// Builds a memory from its configuration.
    pub fn new(config: MemoryConfig) -> Self {
        assert!(config.banks > 0, "memory needs at least one bank");
        let read_ports = (0..config.banks)
            .map(|_| Port::new(config.read_bytes_per_cycle, config.burst_setup_cycles))
            .collect();
        let write_ports = (0..config.banks)
            .map(|_| Port::new(config.write_bytes_per_cycle, config.burst_setup_cycles))
            .collect();
        Self {
            config,
            read_ports,
            write_ports,
        }
    }

    /// The configuration this memory was built from.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.config.banks
    }

    /// Mutable access to bank `i`'s read port.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.banks()`.
    pub fn read_port_mut(&mut self, i: usize) -> &mut Port {
        &mut self.read_ports[i]
    }

    /// Mutable access to bank `i`'s write port.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.banks()`.
    pub fn write_port_mut(&mut self, i: usize) -> &mut Port {
        &mut self.write_ports[i]
    }

    /// Finds any free read port at `cycle`, returning its index.
    pub fn free_read_port(&self, cycle: u64) -> Option<usize> {
        self.read_ports.iter().position(|p| p.is_free(cycle))
    }

    /// Finds any free write port at `cycle`, returning its index.
    pub fn free_write_port(&self, cycle: u64) -> Option<usize> {
        self.write_ports.iter().position(|p| p.is_free(cycle))
    }

    /// Earliest `free_at` across the read ports — the first cycle at
    /// which *some* read port can accept a new burst. A port that is
    /// already free reports its (past) `free_at`, so callers wanting a
    /// strictly future event must clamp with `max(cycle + 1)`.
    pub fn next_read_port_free(&self) -> Option<u64> {
        self.read_ports.iter().map(Port::free_at).min()
    }

    /// Earliest `free_at` across the write ports (see
    /// [`Memory::next_read_port_free`]).
    pub fn next_write_port_free(&self) -> Option<u64> {
        self.write_ports.iter().map(Port::free_at).min()
    }

    /// Earliest cycle strictly after `cycle` at which any port changes
    /// availability — the memory's contribution to the event-driven
    /// fast-forward bound. With every port busy this is the first burst
    /// completion; with idle ports it degrades to `cycle + 1` (the
    /// memory itself cannot say when a client will use them).
    pub fn next_event_cycle(&self, cycle: u64) -> u64 {
        self.next_read_port_free()
            .into_iter()
            .chain(self.next_write_port_free())
            .min()
            .unwrap_or(0)
            .max(cycle + 1)
    }

    /// Total bytes read across all banks.
    pub fn bytes_read(&self) -> u64 {
        self.read_ports.iter().map(|p| p.stats().bytes).sum()
    }

    /// Total bytes written across all banks.
    pub fn bytes_written(&self) -> u64 {
        self.write_ports.iter().map(|p| p.stats().bytes).sum()
    }

    /// Achieved read bandwidth as a fraction of peak over
    /// `elapsed_cycles`.
    pub fn read_efficiency(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let peak = self.config.peak_read_bytes_per_cycle() * elapsed_cycles;
        self.bytes_read() as f64 / peak as f64
    }

    /// Achieved write bandwidth as a fraction of peak over
    /// `elapsed_cycles`.
    pub fn write_efficiency(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let peak = self.config.peak_write_bytes_per_cycle() * elapsed_cycles;
        self.bytes_written() as f64 / peak as f64
    }
}

/// The I/O bus connecting the FPGA to the host or SSD (one port in each
/// direction, §III-A3).
#[derive(Debug, Clone)]
pub struct IoBus {
    config: IoBusConfig,
    ingress: Port,
    egress: Port,
}

impl IoBus {
    /// Builds an I/O bus from its configuration.
    pub fn new(config: IoBusConfig) -> Self {
        Self {
            config,
            ingress: Port::new(config.bytes_per_cycle, 0),
            egress: Port::new(config.bytes_per_cycle, 0),
        }
    }

    /// The configuration this bus was built from.
    pub fn config(&self) -> &IoBusConfig {
        &self.config
    }

    /// The device-to-FPGA direction.
    pub fn ingress_mut(&mut self) -> &mut Port {
        &mut self.ingress
    }

    /// The FPGA-to-device direction.
    pub fn egress_mut(&mut self) -> &mut Port {
        &mut self.egress
    }

    /// Cycles needed to stream `bytes` one way at peak bus bandwidth.
    pub fn stream_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.config.bytes_per_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_burst_timing() {
        let mut p = Port::new(32, 8);
        // 4096 bytes at 32 B/cycle = 128 cycles + 8 setup.
        assert_eq!(p.try_start(0, 4096), Some(136));
        assert!(!p.is_free(135));
        assert!(p.is_free(136));
        assert_eq!(p.stats().bytes, 4096);
        assert_eq!(p.stats().bursts, 1);
    }

    #[test]
    fn port_rejects_overlapping_bursts() {
        let mut p = Port::new(32, 0);
        assert!(p.try_start(0, 64).is_some());
        assert_eq!(p.try_start(1, 64), None);
        assert!(p.try_start(2, 64).is_some());
    }

    #[test]
    fn port_zero_bytes_is_noop() {
        let mut p = Port::new(32, 8);
        assert_eq!(p.try_start(0, 0), None);
        assert_eq!(p.stats().bursts, 0);
    }

    #[test]
    fn memory_tracks_per_bank_ports() {
        let mut m = Memory::new(MemoryConfig::ddr4_aws_f1());
        assert_eq!(m.banks(), 4);
        assert_eq!(m.free_read_port(0), Some(0));
        m.read_port_mut(0).try_start(0, 4096).expect("free port");
        assert_eq!(m.free_read_port(0), Some(1));
        // Writes are independent of reads.
        assert_eq!(m.free_write_port(0), Some(0));
        assert_eq!(m.bytes_read(), 4096);
        assert_eq!(m.bytes_written(), 0);
    }

    #[test]
    fn efficiency_accounts_for_setup_overhead() {
        let mut m = Memory::new(MemoryConfig::ddr4_single_bank());
        let done = m.read_port_mut(0).try_start(0, 4096).expect("free");
        let eff = m.read_efficiency(done);
        // 128 transfer cycles out of 136 total.
        assert!((eff - 128.0 / 136.0).abs() < 1e-9, "eff = {eff}");
    }

    #[test]
    fn next_port_free_tracks_burst_completions() {
        let mut m = Memory::new(MemoryConfig::ddr4_single_bank());
        // Idle memory: ports are free "at 0", event clamps to cycle + 1.
        assert_eq!(m.next_read_port_free(), Some(0));
        assert_eq!(m.next_event_cycle(41), 42);
        // One busy read port: its completion is the next event.
        let done = m.read_port_mut(0).try_start(0, 4096).expect("free");
        assert_eq!(m.next_read_port_free(), Some(done));
        // The idle write port keeps the overall event bound at cycle + 1.
        assert_eq!(m.next_event_cycle(0), 1);
        let wdone = m.write_port_mut(0).try_start(5, 4096).expect("free");
        assert_eq!(m.next_write_port_free(), Some(wdone));
        // Both directions busy: the earliest completion wins.
        assert_eq!(m.next_event_cycle(10), done.min(wdone));
    }

    #[test]
    fn io_bus_stream_cycles() {
        let bus = IoBus::new(IoBusConfig::nvme_ssd());
        assert_eq!(bus.stream_cycles(32), 1);
        assert_eq!(bus.stream_cycles(33), 2);
        // 1 GiB at 8 GB/s: 2^30/32 cycles.
        assert_eq!(bus.stream_cycles(1 << 30), (1 << 30) / 32);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut p = Port::new(32, 8);
        let done = p.try_start(0, 1024).expect("free");
        assert!(p.utilization(done) <= 1.0);
        assert!(p.utilization(done) > 0.0);
        assert_eq!(p.utilization(0), 0.0);
    }
}
