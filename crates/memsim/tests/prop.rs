//! Randomized tests of the memory model and data loader.

use bonsai_memsim::{DataLoader, LoaderConfig, Memory, MemoryConfig, Port, WriteDrain};
use bonsai_rng::Rng;

#[test]
fn port_never_overlaps_bursts() {
    let mut rng = Rng::seed_from_u64(0x4E40_0001);
    for _ in 0..48 {
        let bpc = rng.range_u64(1, 127);
        let setup = rng.below_u64(32);
        let n_bursts = rng.range_usize(1, 39);
        let mut port = Port::new(bpc, setup);
        let mut last_end = 0u64;
        let mut issued = 0u64;
        let mut clock = 0u64;
        for _ in 0..n_bursts {
            let gap = rng.below_u64(10_000);
            let bytes = rng.range_u64(1, 99_999);
            clock += gap;
            if let Some(end) = port.try_start(clock, bytes) {
                // A granted burst begins no earlier than the previous end.
                assert!(clock >= last_end, "burst started while busy");
                assert_eq!(end, clock + setup + bytes.div_ceil(bpc));
                last_end = end;
                issued += bytes;
            } else {
                assert!(clock < last_end || bytes == 0, "rejection without cause");
            }
        }
        assert_eq!(port.stats().bytes, issued);
    }
}

#[test]
fn loader_conserves_records() {
    let mut rng = Rng::seed_from_u64(0x4E40_0002);
    for _ in 0..24 {
        let n_leaves = rng.range_usize(1, 11);
        let leaves: Vec<u64> = (0..n_leaves).map(|_| rng.below_u64(50_000)).collect();
        let batch = [256u64, 1024, 4096][rng.below_usize(3)];
        let cfg = LoaderConfig {
            batch_bytes: batch,
            record_bytes: 4,
            buffer_batches: 2,
        };
        let total: u64 = leaves.iter().sum();
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let mut loader = DataLoader::new(cfg, leaves.clone());
        let mut consumed = vec![0u64; leaves.len()];
        let mut cycle = 0u64;
        while !loader.all_exhausted() {
            loader.tick(cycle, &mut mem);
            for (i, c) in consumed.iter_mut().enumerate() {
                let a = loader.available(i);
                loader.consume(i, a);
                *c += a;
            }
            cycle += 1;
            assert!(cycle < 10_000_000, "loader never finished");
        }
        // Every leaf delivered exactly its share, no more, no less.
        assert_eq!(&consumed, &leaves);
        assert_eq!(mem.bytes_read(), total * 4);
    }
}

#[test]
fn drain_conserves_records() {
    let mut rng = Rng::seed_from_u64(0x4E40_0003);
    for _ in 0..24 {
        let n_pushes = rng.below_usize(100);
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let mut drain = WriteDrain::new(cfg);
        let mut pushed = 0u64;
        let mut cycle = 0u64;
        for _ in 0..n_pushes {
            let n = rng.below_u64(200).min(drain.free_space());
            drain.push_records(n);
            pushed += n;
            drain.tick(cycle, &mut mem);
            cycle += 1;
        }
        drain.set_draining();
        while !drain.is_idle() {
            drain.tick(cycle, &mut mem);
            cycle += 1;
            assert!(cycle < 1_000_000, "drain never idled");
        }
        assert_eq!(drain.completed_records(), pushed);
        assert_eq!(mem.bytes_written(), pushed * 4);
    }
}

#[test]
fn burst_efficiency_is_a_valid_fraction() {
    let mut rng = Rng::seed_from_u64(0x4E40_0004);
    for _ in 0..200 {
        let batch = rng.range_u64(1, 65_535);
        for cfg in [
            MemoryConfig::ddr4_aws_f1(),
            MemoryConfig::hbm_u50(),
            MemoryConfig::throttled_to_ssd(),
        ] {
            let e = cfg.burst_efficiency(batch);
            assert!((0.0..=1.0).contains(&e));
            // Bigger batches never reduce efficiency.
            let e2 = cfg.burst_efficiency(batch * 2);
            assert!(e2 >= e - 1e-12);
        }
    }
}
