//! Property-based tests of the memory model and data loader.

use bonsai_memsim::{DataLoader, LoaderConfig, Memory, MemoryConfig, Port, WriteDrain};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn port_never_overlaps_bursts(
        bpc in 1u64..128,
        setup in 0u64..32,
        bursts in proptest::collection::vec((0u64..10_000, 1u64..100_000), 1..40),
    ) {
        let mut port = Port::new(bpc, setup);
        let mut last_end = 0u64;
        let mut issued = 0u64;
        let mut clock = 0u64;
        for (gap, bytes) in bursts {
            clock += gap;
            if let Some(end) = port.try_start(clock, bytes) {
                // A granted burst begins no earlier than the previous end.
                prop_assert!(clock >= last_end, "burst started while busy");
                prop_assert_eq!(end, clock + setup + bytes.div_ceil(bpc));
                last_end = end;
                issued += bytes;
            } else {
                prop_assert!(clock < last_end || bytes == 0, "rejection without cause");
            }
        }
        prop_assert_eq!(port.stats().bytes, issued);
    }

    #[test]
    fn loader_conserves_records(
        leaves in proptest::collection::vec(0u64..50_000, 1..12),
        batch in prop::sample::select(vec![256u64, 1024, 4096]),
    ) {
        let cfg = LoaderConfig {
            batch_bytes: batch,
            record_bytes: 4,
            buffer_batches: 2,
        };
        let total: u64 = leaves.iter().sum();
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let mut loader = DataLoader::new(cfg, leaves.clone());
        let mut consumed = vec![0u64; leaves.len()];
        let mut cycle = 0u64;
        while !loader.all_exhausted() {
            loader.tick(cycle, &mut mem);
            for (i, c) in consumed.iter_mut().enumerate() {
                let a = loader.available(i);
                loader.consume(i, a);
                *c += a;
            }
            cycle += 1;
            prop_assert!(cycle < 10_000_000, "loader never finished");
        }
        // Every leaf delivered exactly its share, no more, no less.
        prop_assert_eq!(&consumed, &leaves);
        prop_assert_eq!(mem.bytes_read(), total * 4);
    }

    #[test]
    fn drain_conserves_records(pushes in proptest::collection::vec(0u64..200, 0..100)) {
        let cfg = LoaderConfig::paper_default(4);
        let mut mem = Memory::new(MemoryConfig::ddr4_aws_f1());
        let mut drain = WriteDrain::new(cfg);
        let mut pushed = 0u64;
        let mut cycle = 0u64;
        for n in pushes {
            let n = n.min(drain.free_space());
            drain.push_records(n);
            pushed += n;
            drain.tick(cycle, &mut mem);
            cycle += 1;
        }
        drain.set_draining();
        while !drain.is_idle() {
            drain.tick(cycle, &mut mem);
            cycle += 1;
            prop_assert!(cycle < 1_000_000, "drain never idled");
        }
        prop_assert_eq!(drain.completed_records(), pushed);
        prop_assert_eq!(mem.bytes_written(), pushed * 4);
    }

    #[test]
    fn burst_efficiency_is_a_valid_fraction(batch in 1u64..65_536) {
        for cfg in [
            MemoryConfig::ddr4_aws_f1(),
            MemoryConfig::hbm_u50(),
            MemoryConfig::throttled_to_ssd(),
        ] {
            let e = cfg.burst_efficiency(batch);
            prop_assert!((0.0..=1.0).contains(&e));
            // Bigger batches never reduce efficiency.
            let e2 = cfg.burst_efficiency(batch * 2);
            prop_assert!(e2 >= e - 1e-12);
        }
    }
}
