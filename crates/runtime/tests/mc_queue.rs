//! Exhaustive model checking of the runtime's concurrency protocols.
//!
//! These tests instantiate the *production* [`BoundedQueue`] and
//! [`WorkerPool`] code with `bonsai_mc::sync::McSync` and let the
//! checker explore every schedule (within the preemption budget) of the
//! push/pop/close/backpressure and spawn/drain/shutdown protocols at
//! small sizes — the sizes where essentially all interleaving bugs in
//! this kind of code manifest.
//!
//! The mutation test at the bottom seeds the classic shutdown bug
//! (`notify_one` where `notify_all` is required in `close`) into a
//! line-for-line copy of the queue's wait logic and proves the checker
//! flags it as a lost wakeup with a replayable schedule. `BoundedQueue`
//! itself uses `notify_all` precisely because of this.

use std::collections::VecDeque;
use std::sync::Arc;

use bonsai_mc::sync::{self, McSync};
use bonsai_mc::{Checker, Failure, Schedule};
use bonsai_runtime::{BoundedQueue, WorkerPool};

/// 2 producers + 2 consumers through a capacity-1 queue, closed by the
/// coordinator after the producers drain: every schedule must deliver
/// both items exactly once and terminate — no deadlock, no lost wakeup.
///
/// Five threads make the budget-2 space >2M schedules (~7 min of real
/// thread handoffs), so this largest config runs at preemption budget
/// 1 — still exhaustive within the bound, and every switch at a
/// blocking point (where queue bugs live) stays free. The smaller
/// configs below and the mutation test keep the default budget of 2.
#[test]
fn queue_push_pop_close_is_exhaustively_clean() {
    use bonsai_mc::sync::atomic::AtomicUsize;
    use std::sync::atomic::Ordering;

    let stats = Checker::new()
        .preemption_budget(1)
        .max_schedules(1_000_000)
        .check(|| {
            let queue = Arc::new(BoundedQueue::<u32, McSync>::new(1));
            // Tally delivered items with single-op atomic gates rather
            // than a mutex: a contended harness lock would multiply the
            // schedule space without exercising any queue code.
            let sum = Arc::new(AtomicUsize::new(0));
            let count = Arc::new(AtomicUsize::new(0));
            let producers: Vec<_> = (1..=2_u32)
                .map(|value| {
                    let queue = Arc::clone(&queue);
                    sync::thread::spawn(move || {
                        queue.push(value).expect("queue closes after producers");
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    let sum = Arc::clone(&sum);
                    let count = Arc::clone(&count);
                    sync::thread::spawn(move || {
                        while let Some(value) = queue.pop() {
                            sum.fetch_add(value as usize, Ordering::SeqCst);
                            count.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            queue.close();
            for c in consumers {
                c.join().unwrap();
            }
            assert_eq!(count.load(Ordering::SeqCst), 2, "both items delivered");
            assert_eq!(sum.load(Ordering::SeqCst), 3, "delivered exactly 1 and 2");
        })
        .expect("the queue protocol must be schedule-clean");
    assert!(
        stats.complete,
        "exploration must exhaust the budgeted space"
    );
    assert!(stats.schedules > 100, "2p/2c/cap-1 is not a trivial space");
}

/// Backpressure focus: a single producer pushes two items through a
/// capacity-1 queue while one consumer drains it — the push *must*
/// block mid-protocol on every schedule where the consumer lags.
#[test]
fn queue_backpressure_handoff_is_exhaustively_clean() {
    let stats = Checker::new()
        .check(|| {
            let queue = Arc::new(BoundedQueue::<u32, McSync>::new(1));
            let consumer = {
                let queue = Arc::clone(&queue);
                sync::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(value) = queue.pop() {
                        got.push(value);
                    }
                    assert_eq!(got, vec![7, 8], "FIFO order survives backpressure");
                })
            };
            queue.push(7).unwrap();
            queue.push(8).unwrap();
            queue.close();
            consumer.join().unwrap();
        })
        .expect("backpressure handoff must be schedule-clean");
    assert!(stats.complete);
}

/// The pool's full spawn/drain/shutdown protocol: 2 workers over a
/// depth-1 queue, 2 jobs, `finish`. Every schedule must run both jobs,
/// join both workers and return both results.
#[test]
fn pool_spawn_drain_shutdown_is_exhaustively_clean() {
    let stats = Checker::new()
        .check(|| {
            let pool: WorkerPool<u32, u32, McSync> = WorkerPool::start(2, 1, |job| job * 10);
            pool.submit(1).unwrap();
            pool.submit(2).unwrap();
            let mut results = pool.finish();
            results.sort_unstable();
            assert_eq!(results, vec![10, 20], "every job ran exactly once");
        })
        .expect("the pool shutdown protocol must be schedule-clean");
    assert!(stats.complete);
}

/// Dropping the pool without `finish` (the abandoned-pool path) must
/// also terminate on every schedule: close unparks waiters, join
/// reclaims the workers.
#[test]
fn pool_drop_without_finish_is_exhaustively_clean() {
    let stats = Checker::new()
        .check(|| {
            let pool: WorkerPool<u32, u32, McSync> = WorkerPool::start(2, 1, |job| job + 1);
            pool.submit(5).unwrap();
            drop(pool);
        })
        .expect("abandoned-pool shutdown must be schedule-clean");
    assert!(stats.complete);
}

// --- Seeded-bug mutation -------------------------------------------------

/// `BoundedQueue` with its `close` broadcast weakened to `notify_one` —
/// the exact mutation the real queue's comment warns about. The wait
/// logic is copied line-for-line from `queue.rs` so the checker is
/// exercising the same protocol shape, minus the fix.
struct BuggyQueue {
    state: sync::Mutex<BuggyState>,
    not_empty: sync::Condvar,
}

struct BuggyState {
    items: VecDeque<u32>,
    closed: bool,
}

impl BuggyQueue {
    fn new() -> Self {
        Self {
            state: sync::Mutex::named(
                "buggy.state",
                BuggyState {
                    items: VecDeque::new(),
                    closed: false,
                },
            ),
            not_empty: sync::Condvar::named("buggy.not_empty"),
        }
    }

    fn pop(&self) -> Option<u32> {
        let guard = self.state.lock();
        let mut guard = self
            .not_empty
            .wait_while(guard, |s| s.items.is_empty() && !s.closed);
        guard.items.pop_front()
    }

    fn close(&self) {
        self.state.lock().closed = true;
        // MUTATION: the real queue broadcasts with notify_all here.
        // With two parked consumers only one observes the shutdown;
        // the other sleeps forever although its predicate is false.
        self.not_empty.notify_one();
    }
}

fn buggy_shutdown_model() {
    let queue = Arc::new(BuggyQueue::new());
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let queue = Arc::clone(&queue);
            sync::thread::spawn(move || {
                assert!(queue.pop().is_none(), "nothing was ever pushed");
            })
        })
        .collect();
    queue.close();
    for c in consumers {
        c.join().unwrap();
    }
}

#[test]
fn notify_one_close_mutation_is_flagged_as_lost_wakeup() {
    let report = Checker::new()
        .check(buggy_shutdown_model)
        .expect_err("the seeded notify_one bug must be found");

    // The failure is specifically a lost wakeup on the shutdown
    // condvar (not a misclassified deadlock: the starved consumer's
    // predicate is false, it *could* proceed if woken).
    match &report.failure {
        Failure::LostWakeup { condvar, .. } => {
            assert!(
                condvar.contains("buggy.not_empty"),
                "starved on the shutdown condvar, got: {condvar}"
            );
        }
        other => panic!("expected LostWakeup, got {other}"),
    }

    // The printed report carries the evidence: the weakened notify and
    // a consumer parked on the condvar.
    let printed = report.to_string();
    assert!(printed.contains("notify_one"), "trace names the bad notify");
    assert!(
        printed.contains("waits on"),
        "trace shows the parked waiter"
    );

    // And the schedule is replayable: parse it back out of its printed
    // form and reproduce the identical failure deterministically.
    let parsed: Schedule = report
        .schedule
        .to_string()
        .parse()
        .expect("printed schedule parses");
    assert_eq!(parsed, report.schedule);
    let replayed = Checker::new()
        .replay(&parsed, buggy_shutdown_model)
        .expect("replay must reproduce the failure");
    assert_eq!(replayed.failure, report.failure);
}

/// The same scenario against the *real* queue (broadcast close) is
/// clean — the control run proving the mutation test has teeth.
#[test]
fn broadcast_close_passes_the_mutation_scenario() {
    let stats = Checker::new()
        .check(|| {
            let queue = Arc::new(BoundedQueue::<u32, McSync>::new(1));
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    sync::thread::spawn(move || {
                        assert!(queue.pop().is_none(), "nothing was ever pushed");
                    })
                })
                .collect();
            queue.close();
            for c in consumers {
                c.join().unwrap();
            }
        })
        .expect("broadcast close must survive the mutation scenario");
    assert!(stats.complete);
}
