//! Exhaustive model checking of the two-lane [`ClassQueue`] protocol.
//!
//! The class queue reuses the [`BoundedQueue`] Mutex+Condvar protocol
//! (shared capacity across both lanes, `wait_while` parking, broadcast
//! close) but adds a second lane and a fairness stride to the pop
//! policy. These tests instantiate the *production* queue with
//! `bonsai_mc::sync::McSync` and explore every schedule (within the
//! preemption budget) of:
//!
//! - mixed-class push/pop/close with concurrent producers+consumers,
//! - backpressure handoff through a capacity-1 queue,
//! - drain-after-close (queued work of both classes still delivers),
//! - the broadcast-shutdown wakeup with multiple parked consumers,
//! - the starvation bound: with stride `s`, at most `s` latency items
//!   bypass a waiting throughput item before it is served.
//!
//! [`BoundedQueue`]: bonsai_runtime::BoundedQueue

use std::sync::Arc;

use bonsai_mc::sync::{self, McSync};
use bonsai_mc::Checker;
use bonsai_runtime::{ClassQueue, Classed, JobClass};

/// Minimal classed item: a payload tagged with its scheduling lane.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Item {
    value: u32,
    class: JobClass,
}

impl Item {
    fn latency(value: u32) -> Self {
        Self {
            value,
            class: JobClass::Latency,
        }
    }

    fn throughput(value: u32) -> Self {
        Self {
            value,
            class: JobClass::Throughput,
        }
    }
}

impl Classed for Item {
    fn job_class(&self) -> JobClass {
        self.class
    }
}

/// 2 producers (one per class) + 2 consumers through a capacity-1
/// queue, closed by the coordinator after the producers drain: every
/// schedule must deliver both items exactly once and terminate — no
/// deadlock, no lost wakeup across the two lanes' shared condvars.
///
/// Five threads at the default preemption budget explode the space, so
/// this config runs at budget 1 like the equivalent `BoundedQueue`
/// test — still exhaustive within the bound, with every switch at a
/// blocking point (where queue bugs live) free.
#[test]
fn mixed_class_push_pop_close_is_exhaustively_clean() {
    use bonsai_mc::sync::atomic::AtomicUsize;
    use std::sync::atomic::Ordering;

    let stats = Checker::new()
        .preemption_budget(1)
        .max_schedules(1_000_000)
        .check(|| {
            let queue = Arc::new(ClassQueue::<Item, McSync>::new(1, 4));
            let sum = Arc::new(AtomicUsize::new(0));
            let count = Arc::new(AtomicUsize::new(0));
            let producers: Vec<_> = [Item::latency(1), Item::throughput(2)]
                .into_iter()
                .map(|item| {
                    let queue = Arc::clone(&queue);
                    sync::thread::spawn(move || {
                        queue.push(item).expect("queue closes after producers");
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    let sum = Arc::clone(&sum);
                    let count = Arc::clone(&count);
                    sync::thread::spawn(move || {
                        while let Some(item) = queue.pop() {
                            sum.fetch_add(item.value as usize, Ordering::SeqCst);
                            count.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            queue.close();
            for c in consumers {
                c.join().unwrap();
            }
            assert_eq!(count.load(Ordering::SeqCst), 2, "both items delivered");
            assert_eq!(sum.load(Ordering::SeqCst), 3, "delivered exactly 1 and 2");
        })
        .expect("the class-queue protocol must be schedule-clean");
    assert!(
        stats.complete,
        "exploration must exhaust the budgeted space"
    );
    assert!(stats.schedules > 100, "2p/2c/cap-1 is not a trivial space");
}

/// Backpressure focus: one producer pushes three mixed-class items
/// through a capacity-1 queue while a consumer drains it. Capacity 1
/// means at most one item is ever queued, so delivery order must equal
/// push order on every schedule — the lanes cannot reorder what never
/// coexists — and the blocked `push` must hand off cleanly.
#[test]
fn class_queue_backpressure_handoff_is_exhaustively_clean() {
    let stats = Checker::new()
        .check(|| {
            let queue = Arc::new(ClassQueue::<Item, McSync>::new(1, 4));
            let consumer = {
                let queue = Arc::clone(&queue);
                sync::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = queue.pop() {
                        got.push(item.value);
                    }
                    assert_eq!(got, vec![7, 8, 9], "capacity-1 order is push order");
                })
            };
            queue.push(Item::throughput(7)).unwrap();
            queue.push(Item::latency(8)).unwrap();
            queue.push(Item::throughput(9)).unwrap();
            queue.close();
            consumer.join().unwrap();
        })
        .expect("backpressure handoff must be schedule-clean");
    assert!(stats.complete);
}

/// Drain-after-close: items of both classes queued before `close` must
/// still deliver, latency lane first, on every schedule of the
/// consumer/closer interleaving.
#[test]
fn queued_work_of_both_classes_drains_after_close() {
    let stats = Checker::new()
        .check(|| {
            let queue = Arc::new(ClassQueue::<Item, McSync>::new(4, 4));
            queue.push(Item::throughput(1)).unwrap();
            queue.push(Item::latency(2)).unwrap();
            let consumer = {
                let queue = Arc::clone(&queue);
                sync::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = queue.pop() {
                        got.push(item.value);
                    }
                    assert_eq!(got, vec![2, 1], "latency lane drains first");
                })
            };
            queue.close();
            consumer.join().unwrap();
        })
        .expect("drain-after-close must be schedule-clean");
    assert!(stats.complete);
}

/// Broadcast shutdown: two consumers parked on an *empty* class queue
/// must both observe `close` (the same lost-wakeup scenario the
/// `BoundedQueue` mutation test seeds — `close` must `notify_all`).
#[test]
fn broadcast_close_wakes_every_parked_consumer() {
    let stats = Checker::new()
        .check(|| {
            let queue = Arc::new(ClassQueue::<Item, McSync>::new(1, 4));
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    sync::thread::spawn(move || {
                        assert!(queue.pop().is_none(), "nothing was ever pushed");
                    })
                })
                .collect();
            queue.close();
            for c in consumers {
                c.join().unwrap();
            }
        })
        .expect("broadcast close must wake every parked consumer");
    assert!(stats.complete);
}

/// The starvation bound, checked under every schedule: with stride 1
/// and the queue preloaded `[T, L, L]`, a lone consumer must serve the
/// throughput item after at most one latency bypass — pop order is
/// exactly `L, T, L`. The preload happens before the consumer spawns,
/// so the only nondeterminism is the consumer/closer interleaving the
/// fairness accounting must survive.
#[test]
fn fairness_stride_bound_holds_on_every_schedule() {
    let stats = Checker::new()
        .check(|| {
            let queue = Arc::new(ClassQueue::<Item, McSync>::new(4, 1));
            queue.push(Item::throughput(10)).unwrap();
            queue.push(Item::latency(20)).unwrap();
            queue.push(Item::latency(21)).unwrap();
            let consumer = {
                let queue = Arc::clone(&queue);
                sync::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = queue.pop() {
                        got.push(item.value);
                    }
                    assert_eq!(
                        got,
                        vec![20, 10, 21],
                        "stride 1 admits one bypass, then serves throughput"
                    );
                })
            };
            queue.close();
            consumer.join().unwrap();
        })
        .expect("the fairness bound must be schedule-clean");
    assert!(stats.complete);
}
