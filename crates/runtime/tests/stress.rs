//! Randomized contention stress for the queue and the batch runtime.
//!
//! The model checker (`tests/mc_queue.rs`) proves the protocols correct
//! at small sizes; these tests hammer the real `std::sync` build at
//! realistic sizes — many producers and consumers, randomized pacing
//! from `bonsai-rng`, worker counts 1 / 2 / all-cores, fused and
//! sharded within-job modes — under a wall-clock watchdog, so a wedge
//! (missed wakeup, stuck backpressure) fails in seconds instead of
//! hanging CI.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bonsai_amt::{AmtConfig, SimEngineConfig};
use bonsai_gensort::dist::uniform_u32;
use bonsai_records::U32Rec;
use bonsai_rng::Rng;
use bonsai_runtime::{BoundedQueue, Runtime, RuntimeConfig, SortJob};

/// Fails the test if `f` has not finished within `secs` seconds — the
/// watchdog that turns a concurrency wedge into a fast, attributable
/// failure. Runs `f` on a helper thread; on timeout the process aborts
/// with the test's name in the panic message.
fn with_watchdog<F: FnOnce() + Send + 'static>(name: &'static str, secs: u64, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("stress body panicked"),
        Err(_) => panic!("{name}: wedged — no progress within {secs}s"),
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Randomized MPMC churn through one queue: every pushed value must be
/// popped exactly once, across a grid of producer/consumer counts and
/// queue depths, with random per-thread pacing.
#[test]
fn queue_contention_roundtrip_under_randomized_pacing() {
    with_watchdog("queue_contention_roundtrip", 60, || {
        let mut rng = Rng::seed_from_u64(0xC0FF_EE00);
        for round in 0..6 {
            let producers = rng.range_usize(1, 5);
            let consumers = rng.range_usize(1, 5);
            let depth = rng.range_usize(1, 9);
            let per_producer = 200;
            let queue = Arc::new(BoundedQueue::<u64>::new(depth));
            let popped_sum = Arc::new(AtomicUsize::new(0));
            let popped_count = Arc::new(AtomicUsize::new(0));

            let consumer_handles: Vec<_> = (0..consumers)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    let sum = Arc::clone(&popped_sum);
                    let count = Arc::clone(&popped_count);
                    std::thread::spawn(move || {
                        while let Some(v) = queue.pop() {
                            sum.fetch_add(v as usize, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            let producer_handles: Vec<_> = (0..producers)
                .map(|p| {
                    let queue = Arc::clone(&queue);
                    let mut rng = Rng::seed_from_u64(round as u64 * 31 + p as u64);
                    std::thread::spawn(move || {
                        for i in 0..per_producer {
                            let value = (p * per_producer + i) as u64 + 1;
                            queue.push(value).expect("closed only after producers");
                            if rng.chance_percent(10) {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            for h in producer_handles {
                h.join().unwrap();
            }
            queue.close();
            for h in consumer_handles {
                h.join().unwrap();
            }

            let n = producers * per_producer;
            assert_eq!(popped_count.load(Ordering::Relaxed), n);
            assert_eq!(
                popped_sum.load(Ordering::Relaxed),
                n * (n + 1) / 2,
                "round {round}: {producers}p/{consumers}c depth {depth} lost or duplicated items"
            );
        }
    });
}

/// The full runtime under batch traffic at workers 1 / 2 / all-cores,
/// in both within-job modes (fused `pass_workers = 1` and sharded
/// `pass_workers = 0`), with a shallow queue forcing real backpressure:
/// results must be complete, id-ordered and identical across shapes.
#[test]
fn runtime_batch_identical_across_worker_shapes_and_modes() {
    with_watchdog("runtime_batch_shapes", 240, || {
        let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
        let mut rng = Rng::seed_from_u64(0xBA7C);
        let jobs: Vec<Vec<U32Rec>> = (0..6)
            .map(|_| uniform_u32(rng.range_usize(2_000, 6_000), rng.next_u64()))
            .collect();

        let mut reference: Option<Vec<Vec<U32Rec>>> = None;
        for workers in [1, 2, available_cores()] {
            for pass_workers in [1usize, 0] {
                let runtime = Runtime::start(RuntimeConfig {
                    workers,
                    pass_workers,
                    queue_depth: 2,
                    ..RuntimeConfig::default()
                });
                for (id, data) in jobs.iter().enumerate() {
                    runtime
                        .submit(SortJob::new(id as u64, cfg, data.clone()))
                        .expect("runtime open");
                }
                let results = runtime.finish();
                assert_eq!(results.len(), jobs.len());
                let sorted: Vec<Vec<U32Rec>> = results
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| {
                        assert_eq!(r.id, i as u64, "results must be id-ordered");
                        r.result.expect("valid jobs sort").sorted
                    })
                    .collect();
                match &reference {
                    None => reference = Some(sorted),
                    Some(expected) => assert_eq!(
                        &sorted, expected,
                        "workers={workers} pass_workers={pass_workers} changed the output"
                    ),
                }
            }
        }
    });
}

/// Backpressure-heavy churn: more submitters than workers, a depth-1
/// queue, and randomized job sizes — every submitted job must come back
/// exactly once. This is the seam where a lost `not_full` wakeup would
/// park a submitter forever; the watchdog makes that loud.
#[test]
fn runtime_concurrent_submitters_with_tiny_queue() {
    with_watchdog("runtime_concurrent_submitters", 120, || {
        let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
        let runtime = Arc::new(Runtime::start(RuntimeConfig {
            workers: 2,
            queue_depth: 1,
            producers: 3,
            ..RuntimeConfig::default()
        }));
        let submitters: Vec<_> = (0..3u64)
            .map(|s| {
                let runtime = Arc::clone(&runtime);
                std::thread::spawn(move || {
                    let mut rng = Rng::seed_from_u64(s);
                    for j in 0..4u64 {
                        let id = s * 4 + j;
                        let data = uniform_u32(rng.range_usize(500, 2_500), id);
                        runtime
                            .submit(SortJob::new(id, cfg, data))
                            .expect("runtime open");
                    }
                })
            })
            .collect();
        for h in submitters {
            h.join().unwrap();
        }
        let runtime = Arc::into_inner(runtime).expect("all submitters joined");
        let start = Instant::now();
        let results = runtime.finish();
        assert!(start.elapsed() < Duration::from_secs(110), "finish stalled");
        assert_eq!(results.len(), 12, "every submitted job came back");
        // `finish` orders by the runtime-assigned ticket (true
        // submission order), and with three racing submitters that
        // interleaving is nondeterministic — so assert the invariants,
        // not one particular interleaving: tickets strictly increase,
        // each id arrives exactly once, each submitter's own ids appear
        // in its submission order, and every output is sorted.
        let mut seen = [false; 12];
        for r in &results {
            let id = usize::try_from(r.id).unwrap();
            assert!(!seen[id], "id {id} delivered twice");
            seen[id] = true;
            let out = r.result.as_ref().expect("jobs sort");
            assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
        }
        assert!(seen.iter().all(|&s| s), "every id came back");
        assert!(
            results.windows(2).all(|w| w[0].ticket < w[1].ticket),
            "finish orders by strictly increasing ticket"
        );
        for s in 0..3u64 {
            let own: Vec<u64> = results
                .iter()
                .filter(|r| r.id / 4 == s)
                .map(|r| r.id)
                .collect();
            assert_eq!(
                own,
                vec![s * 4, s * 4 + 1, s * 4 + 2, s * 4 + 3],
                "submitter {s}'s jobs keep their submission order"
            );
        }
    });
}
