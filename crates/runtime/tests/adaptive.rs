//! End-to-end behavior of the adaptive scheduler: per-job shape
//! selection, compiled-shape cache observability, cached-vs-cold
//! equivalence through the runtime, and deadline-lane dispatch order.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bonsai_amt::{AmtConfig, SimEngineConfig, SortReport};
use bonsai_gensort::dist::uniform_u32;
use bonsai_records::{Record, U32Rec};
use bonsai_runtime::{JobClass, PassScheduler, Runtime, RuntimeConfig, SortJob};

fn dram_cfg() -> SimEngineConfig {
    SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4)
}

fn adaptive_config(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        scheduler: PassScheduler::Adaptive,
        ..RuntimeConfig::default()
    }
}

/// The cache counters are observability-only: this is the exact
/// normalization the equivalence claims are made modulo.
fn no_cache_counters(mut r: SortReport) -> SortReport {
    r.shape_cache_hits = 0;
    r.shape_cache_misses = 0;
    r
}

#[test]
fn adaptive_sorts_correctly_and_cuts_passes_for_latency_jobs() {
    let data = uniform_u32(50_000, 5);
    let barrier = {
        let runtime = Runtime::start(RuntimeConfig {
            workers: 1,
            scheduler: PassScheduler::Barrier,
            ..RuntimeConfig::default()
        });
        runtime
            .submit(SortJob::new(0, dram_cfg(), data.clone()))
            .expect("open");
        runtime.finish().remove(0).result.expect("sorts")
    };
    let adaptive = {
        // Classify the job latency-bound: the latency-optimal design is
        // the wide tree (fewer merge passes); the throughput-optimal one
        // trades tree width for fabric copies and keeps the pass count.
        let mut config = adaptive_config(1);
        config.adaptive.small_job_records = 100_000;
        let runtime = Runtime::start(config);
        runtime
            .submit(SortJob::new(0, dram_cfg(), data.clone()))
            .expect("open");
        runtime.finish().remove(0).result.expect("sorts")
    };
    assert_eq!(barrier.sorted, adaptive.sorted, "same sorted output");
    // 50 000 records in 16-record runs is 3125 runs: AMT(4,16) needs 3
    // merge passes, the optimizer's wide tree strictly fewer.
    assert!(
        adaptive.report.passes.len() < barrier.report.passes.len(),
        "adaptive must reduce pass count ({} vs {})",
        adaptive.report.passes.len(),
        barrier.report.passes.len()
    );
}

#[test]
fn cache_counters_ride_the_reports_and_aggregate_on_stats() {
    let runtime = Runtime::start(adaptive_config(1));
    let data = uniform_u32(10_000, 11);
    for id in 0..3 {
        runtime
            .submit(SortJob::new(id, dram_cfg(), data.clone()))
            .expect("open");
    }
    let results = runtime.finish();
    assert_eq!(results.len(), 3);
    let reports: Vec<&SortReport> = results
        .iter()
        .map(|r| &r.result.as_ref().expect("sorts").report)
        .collect();
    // One worker: the first identical job compiles, the rest hit.
    assert_eq!(
        (reports[0].shape_cache_hits, reports[0].shape_cache_misses),
        (0, 1)
    );
    for report in &reports[1..] {
        assert_eq!((report.shape_cache_hits, report.shape_cache_misses), (1, 0));
    }
}

#[test]
fn adaptive_stats_snapshot_counts_lanes_hits_and_reprograms() {
    let mut config = adaptive_config(1);
    config.adaptive.small_job_records = 1_000;
    let runtime = Runtime::start(config);
    let small = uniform_u32(500, 2);
    let big = uniform_u32(20_000, 3);
    assert_eq!(runtime.classify(small.len()), JobClass::Latency);
    assert_eq!(runtime.classify(big.len()), JobClass::Throughput);
    for id in 0..2 {
        runtime
            .submit(SortJob::new(id, dram_cfg(), small.clone()))
            .expect("open");
        runtime
            .submit(SortJob::new(10 + id, dram_cfg(), big.clone()))
            .expect("open");
    }
    // Wait for the queue to drain so the snapshot covers all 4 jobs.
    while runtime.pending() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));
    let stats = runtime.adaptive_stats();
    assert_eq!(stats.latency_jobs + stats.throughput_jobs, 4);
    assert_eq!(stats.latency_jobs, 2);
    assert_eq!(stats.shape_cache_hits + stats.shape_cache_misses, 4);
    assert!(stats.shape_cache_misses >= 1);
    assert!(stats.reprograms >= 1, "first plan programs the device");
    let results = runtime.finish();
    assert!(results.iter().all(|r| r.result.is_ok()));
}

#[test]
fn non_adaptive_runtimes_report_zero_adaptive_stats() {
    // Pinned (not `scheduler_from_env`): this test is about the
    // non-adaptive schedulers even when CI sets the adaptive env.
    let runtime = Runtime::<U32Rec>::start(RuntimeConfig {
        workers: 1,
        scheduler: PassScheduler::Barrier,
        ..RuntimeConfig::default()
    });
    assert_eq!(runtime.adaptive_stats(), Default::default());
    let _ = runtime.finish();
}

#[test]
fn cache_hit_jobs_are_bit_identical_to_the_cold_job() {
    // Same job through one adaptive runtime, serialized on one worker:
    // the first pays the compile (miss), the rest hit the cache. Output
    // and report must be bit-identical modulo the cache counters — at
    // one, two and all-cores pass workers.
    for pass_workers in [1usize, 2, 0] {
        let mut config = adaptive_config(1);
        config.pass_workers = pass_workers;
        let runtime = Runtime::start(config);
        let data = uniform_u32(15_000, 42);
        for id in 0..3 {
            runtime
                .submit(SortJob::new(id, dram_cfg(), data.clone()))
                .expect("open");
        }
        let results = runtime.finish();
        let cold = results[0].result.as_ref().expect("sorts");
        assert_eq!(cold.report.shape_cache_misses, 1);
        for hit in &results[1..] {
            let hit = hit.result.as_ref().expect("sorts");
            assert_eq!(hit.report.shape_cache_hits, 1, "must be a cache hit");
            assert_eq!(cold.sorted, hit.sorted, "pass_workers={pass_workers}");
            assert_eq!(
                no_cache_counters(cold.report.clone()),
                no_cache_counters(hit.report.clone()),
                "cached shape changed the datapath (pass_workers={pass_workers})"
            );
        }
    }
}

/// A record whose comparison parks until the gate opens — pins the
/// single worker deterministically so queued dispatch order can be
/// observed without racing the submitter.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct GateRec(u32);

static GATE_OPEN: AtomicBool = AtomicBool::new(false);

impl PartialOrd for GateRec {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GateRec {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        while !GATE_OPEN.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.0.cmp(&other.0)
    }
}

impl Record for GateRec {
    type Key = u32;
    const WIDTH_BYTES: usize = 4;
    const TERMINAL: Self = GateRec(0);
    const MAX: Self = GateRec(u32::MAX);

    fn key(&self) -> u32 {
        self.0
    }

    fn sanitize(self) -> Self {
        if self.0 == 0 {
            GateRec(1)
        } else {
            self
        }
    }
}

#[test]
fn latency_jobs_overtake_queued_throughput_jobs() {
    let mut config = adaptive_config(1);
    config.adaptive.small_job_records = 1_000;
    config.queue_depth = 8;
    let runtime = Runtime::start(config);
    let (tx, rx) = std::sync::mpsc::channel();
    let gated: Vec<GateRec> = (0..64u32).map(|i| GateRec(i | 1)).collect();
    let big: Vec<GateRec> = (0..2_000u32)
        .map(|i| GateRec(i.wrapping_mul(7) | 1))
        .collect();
    let small: Vec<GateRec> = (0..100u32)
        .map(|i| GateRec(i.wrapping_mul(3) | 1))
        .collect();
    // Job 0 pins the worker at its first comparison; 1 (throughput
    // class) and 2 (latency class) queue behind it in that order.
    runtime
        .submit_with_reply(SortJob::new(0, dram_cfg(), gated), tx.clone())
        .expect("open");
    runtime
        .submit_with_reply(SortJob::new(1, dram_cfg(), big), tx.clone())
        .expect("open");
    runtime
        .submit_with_reply(SortJob::new(2, dram_cfg(), small), tx.clone())
        .expect("open");
    while runtime.pending() < 2 {
        std::thread::sleep(Duration::from_millis(1));
    }
    GATE_OPEN.store(true, Ordering::SeqCst);
    drop(tx);
    let completion_order: Vec<u64> = rx
        .iter()
        .map(|r| {
            assert!(r.result.is_ok());
            r.id
        })
        .collect();
    assert_eq!(
        completion_order,
        vec![0, 2, 1],
        "the latency-class job must overtake the queued throughput job"
    );
    let _ = runtime.finish();
}
