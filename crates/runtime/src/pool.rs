//! A generic worker pool over the [`BoundedQueue`].
//!
//! Workers drain jobs from the queue, run them through a shared runner
//! function and append the outputs to a results vector. Like the queue,
//! the pool is generic over a [`SyncOps`] facade: production code uses
//! [`StdSync`], while model-checking tests drive the full
//! spawn/drain/shutdown protocol through `bonsai_mc::sync::McSync`.
//!
//! Shutdown is owned by the pool, not the caller:
//!
//! - [`WorkerPool::finish`] closes the queue, joins every worker and
//!   hands back the results (panicking — after all joins — only if a
//!   worker thread itself died).
//! - Dropping the pool without calling `finish` closes the queue and
//!   joins the workers anyway (configurable via
//!   [`WorkerPool::close_on_drop`] / [`WorkerPool::join_on_drop`]), so
//!   an abandoned pool can neither wedge parked workers nor leak
//!   detached threads.

use std::sync::Arc;

use bonsai_mc::facade::{StdSync, SyncOps};

use crate::queue::{BoundedQueue, PushError};

struct PoolShared<J: Send, R: Send, S: SyncOps> {
    queue: BoundedQueue<J, S>,
    results: S::Mutex<Vec<R>>,
}

/// A fixed-size worker pool draining a [`BoundedQueue`].
pub struct WorkerPool<J: Send + 'static, R: Send + 'static, S: SyncOps = StdSync> {
    shared: Arc<PoolShared<J, R, S>>,
    handles: Vec<S::JoinHandle>,
    workers: usize,
    close_on_drop: bool,
    join_on_drop: bool,
}

impl<J: Send + 'static, R: Send + 'static, S: SyncOps> std::fmt::Debug for WorkerPool<J, R, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("queue", &self.shared.queue)
            .field("close_on_drop", &self.close_on_drop)
            .field("join_on_drop", &self.join_on_drop)
            .finish()
    }
}

impl<J: Send + 'static, R: Send + 'static, S: SyncOps> WorkerPool<J, R, S> {
    /// Spawns `workers ≥ 1` threads draining a queue of depth
    /// `queue_depth`, each running jobs through `runner`.
    pub fn start(
        workers: usize,
        queue_depth: usize,
        runner: impl Fn(J) -> R + Send + Sync + 'static,
    ) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: BoundedQueue::new(queue_depth),
            results: S::mutex_named("pool.results", Vec::new()),
        });
        let runner = Arc::new(runner);
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let runner = Arc::clone(&runner);
                S::spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        let result = runner(job);
                        S::lock::<Vec<R>>(&shared.results).push(result);
                    }
                })
            })
            .collect();
        Self {
            shared,
            handles,
            workers,
            close_on_drop: true,
            join_on_drop: true,
        }
    }

    /// Whether dropping the pool closes the queue first (default
    /// `true`). Turning this off while keeping [`Self::join_on_drop`]
    /// deadlocks the drop: workers park in `pop` forever
    /// (`bonsai-lint` flags the equivalent runtime config as BON052).
    pub fn close_on_drop(&mut self, close: bool) -> &mut Self {
        self.close_on_drop = close;
        self
    }

    /// Whether dropping the pool joins the workers (default `true`).
    /// Turning this off leaks detached threads on drop (BON053).
    pub fn join_on_drop(&mut self, join: bool) -> &mut Self {
        self.join_on_drop = join;
        self
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs waiting in the queue (not yet claimed by a worker).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.queue.len()
    }

    /// Enqueues a job, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] hands the job back after the pool shut
    /// down.
    pub fn submit(&self, job: J) -> Result<(), PushError<J>> {
        self.shared.queue.push(job)
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// shutdown; both hand the job back.
    pub fn try_submit(&self, job: J) -> Result<(), PushError<J>> {
        self.shared.queue.try_push(job)
    }

    /// Closes the queue without joining the workers: queued jobs still
    /// drain, further submits fail with [`PushError::Closed`], and the
    /// workers exit once the queue is empty. [`WorkerPool::finish`] (or
    /// drop) still joins them.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Closes the queue, joins every worker and returns the collected
    /// results (in completion order).
    ///
    /// # Panics
    ///
    /// If a worker thread itself panicked — but only after every other
    /// worker has been joined, so no thread is ever leaked on the way
    /// out.
    #[must_use]
    pub fn finish(mut self) -> Vec<R> {
        self.shared.queue.close();
        let mut worker_failures: Vec<String> = Vec::new();
        for handle in self.handles.drain(..) {
            if let Err(message) = S::join(handle) {
                worker_failures.push(message);
            }
        }
        // Drop runs after this; handles are drained and the queue is
        // already closed, so it is a no-op either way.
        let results = std::mem::take(&mut *S::lock(&self.shared.results));
        assert!(
            worker_failures.is_empty(),
            "runtime worker panicked: {}",
            worker_failures.join("; ")
        );
        results
    }
}

impl<J: Send + 'static, R: Send + 'static, S: SyncOps> Drop for WorkerPool<J, R, S> {
    fn drop(&mut self) {
        if self.close_on_drop {
            self.shared.queue.close();
        }
        if self.join_on_drop {
            // Join even if a worker panicked: swallowing the Err here
            // keeps drop from double-panicking while still reclaiming
            // every thread.
            for handle in self.handles.drain(..) {
                let _ = S::join(handle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_all_results() {
        let pool: WorkerPool<u32, u32> = WorkerPool::start(2, 4, |j| j * 10);
        for j in 0..8 {
            pool.submit(j).unwrap();
        }
        let mut results = pool.finish();
        results.sort_unstable();
        assert_eq!(results, (0..8).map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let completed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let observer = Arc::clone(&completed);
        let pool: WorkerPool<u32, u32> = WorkerPool::start(2, 4, move |j| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            observer.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            j + 1
        });
        for j in 0..4 {
            pool.submit(j).unwrap();
        }
        // Dropping must close the queue and join both workers; a wedge
        // here hangs the test suite, which is the regression signal.
        drop(pool);
        // Joining means drop blocked until the workers drained the
        // queue — every submitted job ran before drop returned.
        assert_eq!(completed.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn submit_after_finish_is_observable_via_try_submit() {
        let pool: WorkerPool<u32, u32> = WorkerPool::start(1, 2, |j| j);
        let shared = Arc::clone(&pool.shared);
        let _ = pool.finish();
        assert!(matches!(
            shared.queue.try_push(9),
            Err(PushError::Closed(9))
        ));
    }

    #[test]
    fn panicking_runner_does_not_wedge_finish() {
        let pool: WorkerPool<u32, u32> = WorkerPool::start(2, 4, |j| {
            assert!(j != 3, "runner rejects job 3");
            j
        });
        for j in 0..6 {
            pool.submit(j).unwrap();
        }
        // One worker dies on job 3; finish must still join both workers
        // and then surface the panic.
        let failure = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.finish()))
            .expect_err("worker panic must surface");
        let message = failure
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("runtime worker panicked"),
            "unexpected message: {message}"
        );
    }
}
