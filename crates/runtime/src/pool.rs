//! A generic worker pool over the [`BoundedQueue`].
//!
//! Workers drain jobs from the queue, run them through a shared runner
//! function and append the outputs to a results vector. Like the queue,
//! the pool is generic over a [`SyncOps`] facade: production code uses
//! [`StdSync`], while model-checking tests drive the full
//! spawn/drain/shutdown protocol through `bonsai_mc::sync::McSync`.
//!
//! Shutdown is owned by the pool, not the caller:
//!
//! - [`WorkerPool::finish`] closes the queue, joins every worker and
//!   hands back the results (panicking — after all joins — only if a
//!   worker thread itself died).
//! - Dropping the pool without calling `finish` closes the queue and
//!   joins the workers anyway (configurable via
//!   [`WorkerPool::close_on_drop`] / [`WorkerPool::join_on_drop`]), so
//!   an abandoned pool can neither wedge parked workers nor leak
//!   detached threads.

use std::sync::Arc;

use bonsai_mc::facade::{StdSync, SyncOps};

use crate::class_queue::{ClassQueue, Classed};
use crate::queue::{BoundedQueue, PushError};

/// The queue interface a [`WorkerPool`] drains: the blocking
/// push/pop/close protocol shared by [`BoundedQueue`] (plain FIFO) and
/// [`ClassQueue`] (two-lane, class-aware). Implementations must carry
/// the same shutdown semantics: `close` is a broadcast, pending items
/// still drain, `pop` returns `None` once closed *and* empty.
pub trait PoolQueue<T: Send>: Send + Sync {
    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] hands the item back after shutdown.
    fn push(&self, item: T) -> Result<(), PushError<T>>;

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// shutdown; both hand the item back.
    fn try_push(&self, item: T) -> Result<(), PushError<T>>;

    /// Dequeues the next item by the queue's policy, blocking while
    /// empty; `None` once closed and drained.
    fn pop(&self) -> Option<T>;

    /// Closes the queue (broadcast: every parked producer and consumer
    /// observes shutdown).
    fn close(&self);

    /// Items currently queued.
    fn len(&self) -> usize;

    /// `true` when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send, S: SyncOps> PoolQueue<T> for BoundedQueue<T, S> {
    fn push(&self, item: T) -> Result<(), PushError<T>> {
        BoundedQueue::push(self, item)
    }

    fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        BoundedQueue::try_push(self, item)
    }

    fn pop(&self) -> Option<T> {
        BoundedQueue::pop(self)
    }

    fn close(&self) {
        BoundedQueue::close(self);
    }

    fn len(&self) -> usize {
        BoundedQueue::len(self)
    }
}

impl<T: Send + Classed, S: SyncOps> PoolQueue<T> for ClassQueue<T, S> {
    fn push(&self, item: T) -> Result<(), PushError<T>> {
        ClassQueue::push(self, item)
    }

    fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        ClassQueue::try_push(self, item)
    }

    fn pop(&self) -> Option<T> {
        ClassQueue::pop(self)
    }

    fn close(&self) {
        ClassQueue::close(self);
    }

    fn len(&self) -> usize {
        ClassQueue::len(self)
    }
}

struct PoolShared<R: Send, S: SyncOps, Q> {
    queue: Q,
    results: S::Mutex<Vec<R>>,
}

/// A fixed-size worker pool draining a [`PoolQueue`] (a FIFO
/// [`BoundedQueue`] by default).
pub struct WorkerPool<
    J: Send + 'static,
    R: Send + 'static,
    S: SyncOps = StdSync,
    Q: PoolQueue<J> + 'static = BoundedQueue<J, S>,
> {
    shared: Arc<PoolShared<R, S, Q>>,
    handles: Vec<S::JoinHandle>,
    workers: usize,
    close_on_drop: bool,
    join_on_drop: bool,
    _jobs: std::marker::PhantomData<fn(J)>,
}

impl<J: Send + 'static, R: Send + 'static, S: SyncOps, Q: PoolQueue<J> + std::fmt::Debug>
    std::fmt::Debug for WorkerPool<J, R, S, Q>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("queue", &self.shared.queue)
            .field("close_on_drop", &self.close_on_drop)
            .field("join_on_drop", &self.join_on_drop)
            .finish()
    }
}

impl<J: Send + 'static, R: Send + 'static, S: SyncOps> WorkerPool<J, R, S> {
    /// Spawns `workers ≥ 1` threads draining a FIFO queue of depth
    /// `queue_depth`, each running jobs through `runner`.
    pub fn start(
        workers: usize,
        queue_depth: usize,
        runner: impl Fn(J) -> R + Send + Sync + 'static,
    ) -> Self {
        Self::start_with_queue(workers, BoundedQueue::new(queue_depth), runner)
    }
}

impl<J: Send + 'static, R: Send + 'static, S: SyncOps, Q: PoolQueue<J> + 'static>
    WorkerPool<J, R, S, Q>
{
    /// Spawns `workers ≥ 1` threads draining `queue` — any
    /// [`PoolQueue`], e.g. a [`ClassQueue`] whose pop order is
    /// class-aware — each running jobs through `runner`.
    pub fn start_with_queue(
        workers: usize,
        queue: Q,
        runner: impl Fn(J) -> R + Send + Sync + 'static,
    ) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue,
            results: S::mutex_named("pool.results", Vec::new()),
        });
        let runner = Arc::new(runner);
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let runner = Arc::clone(&runner);
                S::spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        let result = runner(job);
                        S::lock::<Vec<R>>(&shared.results).push(result);
                    }
                })
            })
            .collect();
        Self {
            shared,
            handles,
            workers,
            close_on_drop: true,
            join_on_drop: true,
            _jobs: std::marker::PhantomData,
        }
    }

    /// Whether dropping the pool closes the queue first (default
    /// `true`). Turning this off while keeping [`Self::join_on_drop`]
    /// deadlocks the drop: workers park in `pop` forever
    /// (`bonsai-lint` flags the equivalent runtime config as BON052).
    pub fn close_on_drop(&mut self, close: bool) -> &mut Self {
        self.close_on_drop = close;
        self
    }

    /// Whether dropping the pool joins the workers (default `true`).
    /// Turning this off leaks detached threads on drop (BON053).
    pub fn join_on_drop(&mut self, join: bool) -> &mut Self {
        self.join_on_drop = join;
        self
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs waiting in the queue (not yet claimed by a worker).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.queue.len()
    }

    /// Enqueues a job, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] hands the job back after the pool shut
    /// down.
    pub fn submit(&self, job: J) -> Result<(), PushError<J>> {
        self.shared.queue.push(job)
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// shutdown; both hand the job back.
    pub fn try_submit(&self, job: J) -> Result<(), PushError<J>> {
        self.shared.queue.try_push(job)
    }

    /// Closes the queue without joining the workers: queued jobs still
    /// drain, further submits fail with [`PushError::Closed`], and the
    /// workers exit once the queue is empty. [`WorkerPool::finish`] (or
    /// drop) still joins them.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Closes the queue, joins every worker and returns the collected
    /// results (in completion order).
    ///
    /// # Panics
    ///
    /// If a worker thread itself panicked — but only after every other
    /// worker has been joined, so no thread is ever leaked on the way
    /// out.
    #[must_use]
    pub fn finish(mut self) -> Vec<R> {
        self.shared.queue.close();
        let mut worker_failures: Vec<String> = Vec::new();
        for handle in self.handles.drain(..) {
            if let Err(message) = S::join(handle) {
                worker_failures.push(message);
            }
        }
        // Drop runs after this; handles are drained and the queue is
        // already closed, so it is a no-op either way.
        let results = std::mem::take(&mut *S::lock(&self.shared.results));
        assert!(
            worker_failures.is_empty(),
            "runtime worker panicked: {}",
            worker_failures.join("; ")
        );
        results
    }
}

impl<J: Send + 'static, R: Send + 'static, S: SyncOps, Q: PoolQueue<J> + 'static> Drop
    for WorkerPool<J, R, S, Q>
{
    fn drop(&mut self) {
        if self.close_on_drop {
            self.shared.queue.close();
        }
        if self.join_on_drop {
            // Join even if a worker panicked: swallowing the Err here
            // keeps drop from double-panicking while still reclaiming
            // every thread.
            for handle in self.handles.drain(..) {
                let _ = S::join(handle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_all_results() {
        let pool: WorkerPool<u32, u32> = WorkerPool::start(2, 4, |j| j * 10);
        for j in 0..8 {
            pool.submit(j).unwrap();
        }
        let mut results = pool.finish();
        results.sort_unstable();
        assert_eq!(results, (0..8).map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let completed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let observer = Arc::clone(&completed);
        let pool: WorkerPool<u32, u32> = WorkerPool::start(2, 4, move |j| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            observer.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            j + 1
        });
        for j in 0..4 {
            pool.submit(j).unwrap();
        }
        // Dropping must close the queue and join both workers; a wedge
        // here hangs the test suite, which is the regression signal.
        drop(pool);
        // Joining means drop blocked until the workers drained the
        // queue — every submitted job ran before drop returned.
        assert_eq!(completed.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn submit_after_finish_is_observable_via_try_submit() {
        let pool: WorkerPool<u32, u32> = WorkerPool::start(1, 2, |j| j);
        let shared = Arc::clone(&pool.shared);
        let _ = pool.finish();
        assert!(matches!(
            shared.queue.try_push(9),
            Err(PushError::Closed(9))
        ));
    }

    #[test]
    fn panicking_runner_does_not_wedge_finish() {
        let pool: WorkerPool<u32, u32> = WorkerPool::start(2, 4, |j| {
            assert!(j != 3, "runner rejects job 3");
            j
        });
        for j in 0..6 {
            pool.submit(j).unwrap();
        }
        // One worker dies on job 3; finish must still join both workers
        // and then surface the panic.
        let failure = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.finish()))
            .expect_err("worker panic must surface");
        let message = failure
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("runtime worker panicked"),
            "unexpected message: {message}"
        );
    }
}
