//! A blocking bounded MPMC queue built on `Mutex` + `Condvar`.
//!
//! This is the backpressure seam of the batch runtime: producers calling
//! [`BoundedQueue::push`] on a full queue block until a worker drains a
//! slot, so a submitter can never race ahead of the pool by more than
//! the configured depth.
//!
//! The queue is generic over a [`SyncOps`] facade: production builds use
//! [`StdSync`] (plain `std::sync`, the default type parameter, zero
//! overhead), while the model-checking tests instantiate it with
//! `bonsai_mc::sync::McSync` to exhaustively explore the
//! push/pop/close/backpressure protocol under every schedule.

use std::collections::VecDeque;

use bonsai_mc::facade::{StdSync, SyncOps};

/// Why a non-blocking [`BoundedQueue::try_push`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO whose `push` blocks when full (backpressure) and whose
/// `pop` blocks when empty, until the queue is closed.
pub struct BoundedQueue<T: Send, S: SyncOps = StdSync> {
    state: S::Mutex<State<T>>,
    capacity: usize,
    not_full: S::Condvar,
    not_empty: S::Condvar,
}

impl<T: Send, S: SyncOps> std::fmt::Debug for BoundedQueue<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T: Send, S: SyncOps> BoundedQueue<T, S> {
    /// Creates a queue holding at most `capacity ≥ 1` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            state: S::mutex_named(
                "queue.state",
                State {
                    items: VecDeque::new(),
                    closed: false,
                },
            ),
            capacity: capacity.max(1),
            not_full: S::condvar_named("queue.not_full"),
            not_empty: S::condvar_named("queue.not_empty"),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        S::lock(&self.state).items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the
    /// item back if the queue has been closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] when the queue was closed before a slot
    /// freed up.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let guard = S::lock(&self.state);
        let mut guard = S::wait_while(&self.not_full, &self.state, guard, |s| {
            !s.closed && s.items.len() >= self.capacity
        });
        if guard.closed {
            return Err(PushError::Closed(item));
        }
        guard.items.push_back(item);
        drop(guard);
        S::notify_one(&self.not_empty);
        Ok(())
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both hand the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut guard = S::lock(&self.state);
        if guard.closed {
            return Err(PushError::Closed(item));
        }
        if guard.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        guard.items.push_back(item);
        drop(guard);
        S::notify_one(&self.not_empty);
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let guard = S::lock(&self.state);
        let mut guard = S::wait_while(&self.not_empty, &self.state, guard, |s| {
            s.items.is_empty() && !s.closed
        });
        let item = guard.items.pop_front();
        drop(guard);
        if item.is_some() {
            S::notify_one(&self.not_full);
        }
        item
    }

    /// Closes the queue: pending items still drain, further pushes fail,
    /// and blocked poppers wake up to observe the shutdown.
    pub fn close(&self) {
        S::lock(&self.state).closed = true;
        // Shutdown is a broadcast: every parked producer and consumer
        // must observe `closed`, so `notify_one` would be a lost-wakeup
        // bug here (bonsai-mc's mutation test proves it).
        S::notify_all(&self.not_empty);
        S::notify_all(&self.not_full);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_drain_after_close() {
        let q = BoundedQueue::<i32>::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.close();
        assert_eq!(q.push(99), Err(PushError::Closed(99)));
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(q.pop().is_none(), "closed and drained stays empty");
    }

    #[test]
    fn try_push_reports_full_at_capacity() {
        let q = BoundedQueue::<i32>::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn full_queue_blocks_push_until_a_slot_frees() {
        let q = Arc::new(BoundedQueue::<i32>::new(1));
        q.push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1))
        };
        // The producer must be blocked: the queue holds capacity items
        // until this pop frees the slot it is waiting for.
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(BoundedQueue::<i32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        q.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }
}
