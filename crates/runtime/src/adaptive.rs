//! The adaptive scheduling layer: per-job shape selection driven by the
//! analytical optimizer, with compiled-shape caching and reconfiguration
//! accounting.
//!
//! Under [`PassScheduler::Adaptive`](crate::PassScheduler::Adaptive)
//! every job is classed at submission ([`JobClass`]) and, when a worker
//! picks it up, sorted on the AMT shape the Bonsai optimizer selects
//! for its size, record width and memory backend — not necessarily the
//! shape the job was submitted with:
//!
//! - **latency class** (small jobs): the latency-optimal design of
//!   Equation 2, deadline-aware when
//!   [`AdaptiveConfig::latency_deadline_us`] is set;
//! - **throughput class** (large jobs): the throughput-optimal design
//!   of Equation 5.
//!
//! Both go through one [`ReconfigPlanner`] per memory backend — one
//! modeled FPGA — so a shape switch is only taken when it beats keeping
//! the loaded design *plus* the reprogram cost
//! ([`AdaptiveConfig::reprogram_cost_us`]), which is what keeps an
//! alternating job mix from thrashing shapes (`BON080`).
//!
//! The model picks the shape; [`ShapeCache`] makes it cheap to realize:
//! repeated shapes skip the full cross-config validation and plan
//! lowering of `SimEngine::try_new`, and the per-job
//! [`SortReport`](bonsai_amt::SortReport) carries `shape_cache_hits` /
//! `shape_cache_misses` so the hit rate is observable end to end
//! (`bonsai-net` aggregates the same counters on its `ServerStats`).

use std::collections::HashMap;

use bonsai_amt::{AmtConfig, CompiledShape, ShapeCache, SimEngineConfig};
use bonsai_check::Diagnostic;
use bonsai_memsim::MemoryConfig;
use bonsai_model::reconfig::{JobPlan, ReconfigPlanner};
use bonsai_model::{ArrayParams, HardwareParams};

use crate::class_queue::JobClass;

/// Job classes the adaptive scheduler selects shapes for (the two
/// [`JobClass`] lanes); the `BON082` cache-sizing lint compares the
/// shape-cache capacity against this.
pub(crate) const SHAPE_CLASSES: usize = 2;

/// Knobs of the adaptive scheduler
/// ([`RuntimeConfig::adaptive`](crate::RuntimeConfig::adaptive)).
/// Shape-checked by `bonsai_check::check_adaptive_runtime`
/// (`BON080`–`BON083`); the defaults are lint-clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Capacity of the compiled-shape cache (distinct validated
    /// [`SimEngineConfig`]s held; LRU beyond that). Below
    /// [`SHAPE_CLASSES`] the job classes evict each other (`BON082`).
    pub cache_shapes: usize,
    /// Jobs with at most this many records are latency class; larger
    /// jobs are throughput class.
    pub small_job_records: usize,
    /// Modeled cost of switching the loaded AMT shape, in microseconds.
    /// The planner keeps the current shape unless the optimum wins by
    /// more than this; `0` disables the comparison and thrashes
    /// (`BON080`).
    pub reprogram_cost_us: u64,
    /// Per-job deadline for latency-class jobs in microseconds
    /// (`0` = none). When set, a keep decision that would miss the
    /// deadline is overridden if the optimal shape meets it. Must
    /// exceed `reprogram_cost_us` to be satisfiable across a shape
    /// switch (`BON081`).
    pub latency_deadline_us: u64,
    /// How many consecutive latency-lane jobs may overtake a waiting
    /// throughput-class job before one is dispatched anyway
    /// (`0` = pure priority, which can starve large jobs — `BON083`).
    pub fairness_stride: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            cache_shapes: 8,
            small_job_records: 4096,
            reprogram_cost_us: 200,
            latency_deadline_us: 0,
            fairness_stride: 4,
        }
    }
}

/// Aggregate counters of the adaptive layer, snapshotted by
/// [`Runtime::adaptive_stats`](crate::Runtime::adaptive_stats). All
/// zero outside the adaptive scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdaptiveStats {
    /// Shape lookups served from the compiled-shape cache.
    pub shape_cache_hits: u64,
    /// Shape lookups that paid validation + plan lowering.
    pub shape_cache_misses: u64,
    /// Cached shapes evicted to make room (LRU).
    pub shape_cache_evictions: u64,
    /// Modeled shape switches taken by the reconfiguration planner.
    pub reprograms: u64,
    /// Jobs dispatched through the latency lane.
    pub latency_jobs: u64,
    /// Jobs dispatched through the throughput lane.
    pub throughput_jobs: u64,
}

/// One worker-shared adaptive brain: the shape cache plus one
/// reconfiguration planner per memory backend (one modeled device
/// each), behind the runtime's mutex.
#[derive(Debug)]
pub(crate) struct AdaptiveState {
    cache: ShapeCache,
    planners: HashMap<MemoryConfig, ReconfigPlanner>,
    reprogram_seconds: f64,
    deadline_seconds: Option<f64>,
    latency_jobs: u64,
    throughput_jobs: u64,
}

/// What [`AdaptiveState::select`] resolved for one job.
#[derive(Debug)]
pub(crate) struct Selection {
    /// The validated shape the job will sort on.
    pub shape: CompiledShape,
    /// Whether the shape came out of the cache (vs. a fresh compile).
    pub cache_hit: bool,
}

impl AdaptiveState {
    pub(crate) fn new(config: &AdaptiveConfig) -> Self {
        Self {
            cache: ShapeCache::new(config.cache_shapes),
            planners: HashMap::new(),
            reprogram_seconds: config.reprogram_cost_us as f64 * 1e-6,
            deadline_seconds: (config.latency_deadline_us > 0)
                .then_some(config.latency_deadline_us as f64 * 1e-6),
            latency_jobs: 0,
            throughput_jobs: 0,
        }
    }

    pub(crate) fn stats(&self) -> AdaptiveStats {
        AdaptiveStats {
            shape_cache_hits: self.cache.hits(),
            shape_cache_misses: self.cache.misses(),
            shape_cache_evictions: self.cache.evictions(),
            reprograms: self
                .planners
                .values()
                .map(|p| u64::from(p.reprograms()))
                .sum(),
            latency_jobs: self.latency_jobs,
            throughput_jobs: self.throughput_jobs,
        }
    }

    /// Selects and compiles the shape for one job: ask the planner for
    /// the class-appropriate optimal design, realize it against the
    /// job's loader/memory configuration, and serve it through the
    /// compiled-shape cache. Falls back to the job's own configuration
    /// when the model has no feasible design (or its realization fails
    /// validation), so adaptation never rejects a job its submitted
    /// config could sort.
    ///
    /// # Errors
    ///
    /// The job's own configuration is invalid — the same diagnostics
    /// `SimEngine::try_new` would report.
    pub(crate) fn select(
        &mut self,
        base: &SimEngineConfig,
        records: usize,
        class: JobClass,
    ) -> Result<Selection, Vec<Diagnostic>> {
        match class {
            JobClass::Latency => self.latency_jobs += 1,
            JobClass::Throughput => self.throughput_jobs += 1,
        }
        let target = self.plan_shape(base, records, class).unwrap_or(*base);
        let hits_before = self.cache.hits();
        let shape = match self.cache.get_or_compile(&target) {
            Ok(shape) => shape,
            // A clamped model shape can still lose validation against
            // this job's loader; the submitted config is the contract.
            Err(_) if target != *base => self.cache.get_or_compile(base)?,
            Err(diagnostics) => return Err(diagnostics),
        };
        Ok(Selection {
            shape,
            cache_hit: self.cache.hits() > hits_before,
        })
    }

    /// Runs the optimizer + planner for one job, returning the realized
    /// engine configuration, or `None` when the model cannot improve on
    /// the submitted one (degenerate sizes, no feasible design).
    fn plan_shape(
        &mut self,
        base: &SimEngineConfig,
        records: usize,
        class: JobClass,
    ) -> Option<SimEngineConfig> {
        let record_bytes = base.loader.record_bytes;
        if records < 2 || record_bytes == 0 {
            return None;
        }
        // Bucket to the next power of two so a stream of nearly-equal
        // sizes maps to one plan (and one cached shape) instead of
        // thrashing the planner with off-by-a-few variants.
        let bucket = (records as u64).next_power_of_two();
        let array = ArrayParams::new(bucket, record_bytes);
        let reprogram_seconds = self.reprogram_seconds;
        let planner = self
            .planners
            .entry(base.memory)
            .or_insert_with(|| ReconfigPlanner::new(hardware_for(&base.memory), reprogram_seconds));
        let plan = match class {
            JobClass::Latency => planner.plan_job_with_deadline(&array, self.deadline_seconds),
            JobClass::Throughput => planner.plan_throughput_job(&array),
        }
        .ok()?;
        Some(realize(base, &plan, records))
    }
}

/// Maps a simulated memory backend onto the analytical model's hardware
/// parameters: the F1-class device, with `β_DRAM` derived from the
/// backend's aggregate per-cycle read bandwidth at the kernel clock, so
/// DDR4, single-bank, HBM and throttled backends each get a faithful
/// bandwidth term.
fn hardware_for(memory: &MemoryConfig) -> HardwareParams {
    let hw = HardwareParams::aws_f1();
    let bytes_per_cycle = memory.banks as u64 * memory.read_bytes_per_cycle;
    if bytes_per_cycle == 0 {
        return hw;
    }
    hw.with_beta_dram(bytes_per_cycle as f64 * hw.freq_hz)
}

/// Lowers a model [`JobPlan`] onto this job's engine configuration:
/// the planned `(p, ℓ)` clamped to what the job can actually use (ℓ no
/// wider than its presorted run count, `p` no wider than ℓ), keeping
/// the job's loader, memory and presorter configuration — adaptation
/// selects the *tree shape*; the presorter is part of the submitted
/// datapath (the model may drop it on a LUT tie-break, which never
/// helps a job that already has one). The model's unroll and pipeline
/// factors are fabric-level copies the worker pool already provides
/// across jobs, so they do not lower onto a single engine.
fn realize(base: &SimEngineConfig, plan: &JobPlan, records: usize) -> SimEngineConfig {
    let runs = records.div_ceil(base.initial_run_len().max(1));
    let l_cap = runs.next_power_of_two().max(2);
    let l = plan.config.leaves_l.clamp(2, l_cap);
    let p = plan.config.throughput_p.clamp(1, l);
    let mut cfg = *base;
    if let Ok(amt) = AmtConfig::try_new(p, l) {
        cfg.amt = amt;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(p: usize, l: usize) -> SimEngineConfig {
        SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4)
    }

    #[test]
    fn defaults_are_lint_clean() {
        let d = AdaptiveConfig::default();
        assert!(bonsai_check::check_adaptive_runtime(
            d.cache_shapes,
            SHAPE_CLASSES,
            d.reprogram_cost_us,
            d.latency_deadline_us,
            d.fairness_stride,
        )
        .is_empty());
    }

    #[test]
    fn repeated_jobs_hit_the_cache_after_one_miss() {
        let mut state = AdaptiveState::new(&AdaptiveConfig::default());
        let base = dram(4, 16);
        let first = state.select(&base, 50_000, JobClass::Throughput).unwrap();
        assert!(!first.cache_hit);
        for _ in 0..3 {
            let next = state.select(&base, 50_000, JobClass::Throughput).unwrap();
            assert!(next.cache_hit);
            assert_eq!(next.shape.config(), first.shape.config());
        }
        let stats = state.stats();
        assert_eq!(stats.shape_cache_hits, 3);
        assert_eq!(stats.shape_cache_misses, 1);
        assert_eq!(stats.throughput_jobs, 4);
    }

    #[test]
    fn small_jobs_get_shapes_no_wider_than_their_runs() {
        let mut state = AdaptiveState::new(&AdaptiveConfig::default());
        let base = dram(4, 16);
        // 64 records in 16-record presorted runs: 4 runs. ℓ must not
        // exceed the next power of two (4); p must not exceed ℓ.
        let sel = state.select(&base, 64, JobClass::Latency).unwrap();
        let amt = sel.shape.config().amt;
        assert!(amt.l <= 4, "ℓ={} for a 4-run job", amt.l);
        assert!(amt.p <= amt.l);
        assert_eq!(state.stats().latency_jobs, 1);
    }

    #[test]
    fn invalid_base_config_reports_its_own_diagnostics() {
        let mut state = AdaptiveState::new(&AdaptiveConfig::default());
        let mut bad = dram(4, 16);
        bad.loader.record_bytes = 0;
        let errs = state
            .select(&bad, 10_000, JobClass::Latency)
            .expect_err("invalid config must fail");
        assert!(errs.iter().any(|d| d.code == "BON004"), "{errs:?}");
    }

    #[test]
    fn degenerate_sizes_fall_back_to_the_submitted_shape() {
        let mut state = AdaptiveState::new(&AdaptiveConfig::default());
        let base = dram(4, 16);
        for records in [0, 1] {
            let sel = state.select(&base, records, JobClass::Latency).unwrap();
            assert_eq!(*sel.shape.config(), base);
        }
    }

    #[test]
    fn distinct_backends_get_distinct_planners_and_hardware() {
        let hbm = hardware_for(&MemoryConfig::hbm_u50());
        let ddr = hardware_for(&MemoryConfig::ddr4_aws_f1());
        assert!(hbm.beta_dram > ddr.beta_dram);
        let mut state = AdaptiveState::new(&AdaptiveConfig::default());
        let base_ddr = dram(4, 16);
        let mut base_hbm = base_ddr;
        base_hbm.memory = MemoryConfig::hbm_u50();
        state
            .select(&base_ddr, 50_000, JobClass::Throughput)
            .unwrap();
        state
            .select(&base_hbm, 50_000, JobClass::Throughput)
            .unwrap();
        assert_eq!(state.planners.len(), 2, "one modeled device per backend");
    }
}
