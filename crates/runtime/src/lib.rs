//! Batch sort-job runtime over the pass-sharded [`SimEngine`].
//!
//! The bench configs are CPU-bound on one core; under batch traffic the
//! host has two axes of parallelism to spend:
//!
//! - **across jobs** — independent sorts run on a pool of worker
//!   threads fed by a [`BoundedQueue`], whose bounded depth gives
//!   submitters backpressure instead of unbounded buffering;
//! - **within a job** — each worker drives
//!   [`SimEngine::try_sort_sharded`], which can further shard every
//!   merge pass across its independent merge groups.
//!
//! Failures stay per-job: an invalid configuration
//! ([`JobError::Invalid`], `BONxxx` diagnostics) or a livelocked pass
//! ([`JobError::Sim`], `BON040`) fails that [`JobResult`] while the rest
//! of the batch keeps sorting. Reports are bit-identical for every
//! worker-count setting (see [`bonsai_amt::shard`]).
//!
//! # Example
//!
//! ```
//! use bonsai_amt::{AmtConfig, SimEngineConfig};
//! use bonsai_gensort::dist::uniform_u32;
//! use bonsai_runtime::{Runtime, RuntimeConfig, SortJob};
//!
//! let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
//! let runtime = Runtime::start(RuntimeConfig::default());
//! for id in 0..4 {
//!     runtime.submit(SortJob::new(id, cfg, uniform_u32(10_000, id)));
//! }
//! let results = runtime.finish();
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.result.is_ok()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod queue;

use std::sync::{Arc, Mutex};
use std::time::Duration;

use bonsai_amt::{SimEngine, SimEngineConfig, SortError, SortReport};
use bonsai_check::Diagnostic;
use bonsai_records::Record;

pub use queue::{BoundedQueue, PushError};

/// Knobs of the batch runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads draining the job queue (`0` = one per core).
    pub workers: usize,
    /// Bounded queue depth; a full queue blocks [`Runtime::submit`]
    /// (backpressure).
    pub queue_depth: usize,
    /// Threads each worker may spend sharding one job's merge passes
    /// (`0` = one per core). The default of `1` keeps one job per core;
    /// raise it when jobs are few and wide.
    pub pass_workers: usize,
    /// Per-pass livelock cycle bound handed to the engine; `None` keeps
    /// the engine default.
    pub max_pass_cycles: Option<u64>,
    /// Simulation loop selection for every job: `Some(true)` forces the
    /// reference per-cycle loop, `Some(false)` the event-driven fast
    /// path, `None` keeps the engine default (fast path unless
    /// [`bonsai_amt::REFERENCE_LOOP_ENV`] is set to `1`). Both loops
    /// produce bit-identical reports.
    pub reference_loop: Option<bool>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 16,
            pass_workers: 1,
            max_pass_cycles: None,
            reference_loop: None,
        }
    }
}

/// One sort request: records plus the engine configuration to sort
/// them under.
#[derive(Debug, Clone)]
pub struct SortJob<R> {
    /// Caller-chosen identifier, echoed in the [`JobResult`].
    pub id: u64,
    /// Engine configuration for this job.
    pub config: SimEngineConfig,
    /// The records to sort.
    pub data: Vec<R>,
}

impl<R> SortJob<R> {
    /// Bundles a job.
    pub fn new(id: u64, config: SimEngineConfig, data: Vec<R>) -> Self {
        Self { id, config, data }
    }
}

/// Why one job failed (the rest of the batch is unaffected).
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The job's engine configuration was rejected (`BONxxx` errors
    /// from [`bonsai_amt::SimEngineConfig::validate`]).
    Invalid(Vec<Diagnostic>),
    /// The simulation itself failed (e.g. `BON040` pass livelock).
    Sim(SortError),
}

impl core::fmt::Display for JobError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JobError::Invalid(diagnostics) => {
                write!(f, "invalid job configuration: {diagnostics:?}")
            }
            JobError::Sim(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for JobError {}

/// The sorted records and timing report of one successful job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput<R> {
    /// The sorted records.
    pub sorted: Vec<R>,
    /// The engine's cycle-approximate timing report.
    pub report: SortReport,
}

/// Outcome of one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult<R> {
    /// The identifier from [`SortJob::id`].
    pub id: u64,
    /// The sorted output, or why this job failed.
    pub result: Result<JobOutput<R>, JobError>,
    /// Wall-clock time the worker spent on the job.
    pub wall: Duration,
}

struct Shared<R> {
    queue: BoundedQueue<SortJob<R>>,
    results: Mutex<Vec<JobResult<R>>>,
}

/// A worker pool sorting batches of [`SortJob`]s.
///
/// Submissions flow through a bounded queue; [`Runtime::finish`] closes
/// the queue, joins the workers and returns every [`JobResult`] ordered
/// by job id.
#[derive(Debug)]
pub struct Runtime<R: Record> {
    config: RuntimeConfig,
    shared: Arc<Shared<R>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<R: Record> std::fmt::Debug for Shared<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("queue", &self.queue)
            .finish()
    }
}

fn run_job<R: Record>(job: SortJob<R>, config: &RuntimeConfig) -> JobResult<R> {
    let start = std::time::Instant::now();
    let result = SimEngine::try_new(job.config)
        .map_err(JobError::Invalid)
        .and_then(|engine| {
            let mut engine = match config.max_pass_cycles {
                Some(bound) => engine.with_max_pass_cycles(bound),
                None => engine,
            };
            if let Some(reference) = config.reference_loop {
                engine = engine.with_reference_loop(reference);
            }
            engine
                .try_sort_sharded(job.data, config.pass_workers)
                .map(|(sorted, report)| JobOutput { sorted, report })
                .map_err(JobError::Sim)
        });
    JobResult {
        id: job.id,
        result,
        wall: start.elapsed(),
    }
}

impl<R: Record> Runtime<R> {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(config: RuntimeConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            results: Mutex::new(Vec::new()),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        let result = run_job(job, &config);
                        shared.results.lock().unwrap().push(result);
                    }
                })
            })
            .collect();
        Self {
            config,
            shared,
            handles,
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Jobs waiting in the queue (not yet claimed by a worker).
    pub fn pending(&self) -> usize {
        self.shared.queue.len()
    }

    /// Submits a job, blocking while the queue is full (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if called after [`Runtime::finish`] closed the queue —
    /// impossible through this API, which consumes the runtime.
    pub fn submit(&self, job: SortJob<R>) {
        if self.shared.queue.push(job).is_err() {
            unreachable!("queue closes only when finish() consumes the runtime");
        }
    }

    /// Submits a job without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] hands the job back when the queue is at
    /// capacity; retry or apply backpressure upstream.
    // The large Err is the point: the rejected job (with its data)
    // returns to the caller instead of being dropped.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, job: SortJob<R>) -> Result<(), PushError<SortJob<R>>> {
        self.shared.queue.try_push(job)
    }

    /// Drains the queue, stops the workers and returns every job's
    /// result, ordered by job id.
    #[must_use]
    pub fn finish(self) -> Vec<JobResult<R>> {
        self.shared.queue.close();
        for handle in self.handles {
            handle.join().expect("runtime worker panicked");
        }
        let mut results = std::mem::take(&mut *self.shared.results.lock().unwrap());
        results.sort_by_key(|r| r.id);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_amt::AmtConfig;
    use bonsai_gensort::dist::uniform_u32;
    use bonsai_memsim::LoaderConfig;
    use bonsai_records::U32Rec;

    fn dram_cfg() -> SimEngineConfig {
        SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4)
    }

    #[test]
    fn batch_sorts_every_job_in_id_order() {
        let runtime = Runtime::start(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        let inputs: Vec<Vec<U32Rec>> = (0..6).map(|id| uniform_u32(5_000, id)).collect();
        for (id, data) in inputs.iter().enumerate() {
            runtime.submit(SortJob::new(id as u64, dram_cfg(), data.clone()));
        }
        let results = runtime.finish();
        assert_eq!(results.len(), 6);
        for (id, r) in results.iter().enumerate() {
            assert_eq!(r.id, id as u64, "results must be ordered by job id");
            let out = r.result.as_ref().expect("valid jobs succeed");
            assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(out.sorted.len(), inputs[id].len());
            assert!(out.report.total_cycles > 0);
        }
    }

    #[test]
    fn invalid_job_fails_alone() {
        let mut bad = dram_cfg();
        bad.loader = LoaderConfig {
            record_bytes: 0,
            ..bad.loader
        };
        let runtime = Runtime::start(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        runtime.submit(SortJob::new(0, dram_cfg(), uniform_u32(2_000, 1)));
        runtime.submit(SortJob::new(1, bad, uniform_u32(2_000, 2)));
        runtime.submit(SortJob::new(2, dram_cfg(), uniform_u32(2_000, 3)));
        let results = runtime.finish();
        assert!(results[0].result.is_ok());
        assert!(results[2].result.is_ok(), "batch survives a bad job");
        match &results[1].result {
            Err(JobError::Invalid(diagnostics)) => {
                assert!(diagnostics
                    .iter()
                    .any(|d| d.code == bonsai_check::codes::RECORD_WIDTH_ZERO));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn livelock_bound_fails_the_job_not_the_process() {
        let runtime = Runtime::<U32Rec>::start(RuntimeConfig {
            workers: 1,
            max_pass_cycles: Some(10),
            ..RuntimeConfig::default()
        });
        runtime.submit(SortJob::new(0, dram_cfg(), uniform_u32(50_000, 4)));
        let results = runtime.finish();
        match &results[0].result {
            Err(JobError::Sim(err)) => {
                assert_eq!(err.code(), bonsai_check::codes::SIM_PASS_LIVELOCK);
                assert_eq!(err.stage, 1);
            }
            other => panic!("expected a BON040 Sim error, got {other:?}"),
        }
    }

    #[test]
    fn reference_and_fast_loops_agree_end_to_end() {
        fn normalized(mut r: SortReport) -> SortReport {
            r.fast_forwarded_cycles = 0;
            for p in &mut r.passes {
                p.fast_forwarded_cycles = 0;
            }
            r
        }
        let data = uniform_u32(15_000, 12);
        let run = |reference: bool| {
            let runtime = Runtime::start(RuntimeConfig {
                workers: 2,
                reference_loop: Some(reference),
                ..RuntimeConfig::default()
            });
            runtime.submit(SortJob::new(0, dram_cfg(), data.clone()));
            runtime.finish().remove(0).result.expect("sorts")
        };
        let fast = run(false);
        let reference = run(true);
        assert_eq!(fast.sorted, reference.sorted);
        assert_eq!(reference.report.fast_forwarded_cycles, 0);
        assert_eq!(normalized(fast.report), normalized(reference.report));
    }

    #[test]
    fn reports_are_identical_across_runtime_shapes() {
        let data = uniform_u32(20_000, 9);
        let shapes = [
            RuntimeConfig {
                workers: 1,
                pass_workers: 1,
                ..RuntimeConfig::default()
            },
            RuntimeConfig {
                workers: 4,
                pass_workers: 2,
                queue_depth: 2,
                ..RuntimeConfig::default()
            },
        ];
        let outputs: Vec<JobOutput<U32Rec>> = shapes
            .iter()
            .map(|&shape| {
                let runtime = Runtime::start(shape);
                for id in 0..3 {
                    runtime.submit(SortJob::new(id, dram_cfg(), data.clone()));
                }
                let mut results = runtime.finish();
                assert_eq!(results.len(), 3);
                results.remove(0).result.expect("sorts")
            })
            .collect();
        assert_eq!(outputs[0].sorted, outputs[1].sorted);
        assert_eq!(
            outputs[0].report, outputs[1].report,
            "reports must not depend on worker shape"
        );
    }
}
