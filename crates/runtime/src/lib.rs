//! Batch sort-job runtime over the pass-sharded [`SimEngine`].
//!
//! The bench configs are CPU-bound on one core; under batch traffic the
//! host has two axes of parallelism to spend:
//!
//! - **across jobs** — independent sorts run on a pool of worker
//!   threads fed by a [`BoundedQueue`], whose bounded depth gives
//!   submitters backpressure instead of unbounded buffering;
//! - **within a job** — each worker drives
//!   [`SimEngine::try_sort_sharded`], which can further shard every
//!   merge pass across its independent merge groups.
//!
//! Failures stay per-job: an invalid configuration
//! ([`JobError::Invalid`], `BONxxx` diagnostics), a livelocked pass
//! ([`JobError::Sim`], `BON040`) or even a panicking job
//! ([`JobError::Panic`]) fails that [`JobResult`] while the rest of the
//! batch keeps sorting. Reports are bit-identical for every
//! worker-count setting (see [`bonsai_amt::shard`]).
//!
//! Results come back two ways:
//!
//! - **batch** — [`Runtime::finish`] consumes the runtime and returns
//!   every [`JobResult`] in submission order (by the runtime-assigned
//!   [`JobResult::ticket`], so caller-chosen [`SortJob::id`]s may
//!   collide freely — the id is an opaque tag, echoed back untouched);
//! - **streaming** — [`Runtime::submit_with_reply`] attaches a
//!   completion channel to one job, and the worker delivers that
//!   [`JobResult`] the moment it finishes, while the runtime keeps
//!   accepting jobs. This is what a long-lived front end (for example
//!   `bonsai-net`'s TCP server) sits on: `finish` never has to be
//!   called just to see a result.
//!
//! The queue and pool are generic over the `bonsai_mc` sync facade:
//! production builds monomorphize to plain `std::sync` (zero overhead),
//! while `tests/mc_queue.rs` instantiates the same code with the model
//! checker's shims and exhaustively explores the shutdown protocols.
//! Static shape checks for [`RuntimeConfig`] live in
//! [`bonsai_check::check_runtime_shape`] (BON05x) and are surfaced by
//! `bonsai-lint --runtime`.
//!
//! # Example
//!
//! ```
//! use bonsai_amt::{AmtConfig, SimEngineConfig};
//! use bonsai_gensort::dist::uniform_u32;
//! use bonsai_runtime::{Runtime, RuntimeConfig, SortJob};
//!
//! let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
//! let runtime = Runtime::start(RuntimeConfig::default());
//! for id in 0..4 {
//!     runtime
//!         .submit(SortJob::new(id, cfg, uniform_u32(10_000, id)))
//!         .expect("runtime is open");
//! }
//! let results = runtime.finish();
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.result.is_ok()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod class_queue;
mod pool;
mod queue;

use std::sync::{Arc, Mutex};
use std::time::Duration;

use bonsai_amt::{SimEngine, SimEngineConfig, SortError, SortReport};
use bonsai_check::Diagnostic;
use bonsai_records::Record;

pub use adaptive::{AdaptiveConfig, AdaptiveStats};
pub use bonsai_mc::facade::{StdSync, SyncOps};
pub use class_queue::{ClassQueue, Classed, JobClass};
pub use pool::{PoolQueue, WorkerPool};
pub use queue::{BoundedQueue, PushError};

use adaptive::AdaptiveState;

/// Which scheduler a worker drives one job's merge passes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PassScheduler {
    /// Per-pass barrier: every group of pass *p* drains before pass
    /// *p+1* starts ([`SimEngine::try_sort_sharded`]).
    #[default]
    Barrier,
    /// Cross-pass pipelined group DAG: a pass-*p+1* group starts as
    /// soon as the pass-*p* groups feeding its leaves have drained
    /// ([`SimEngine::try_sort_pipelined`]). Output and report are
    /// bit-identical to [`PassScheduler::Barrier`] except the
    /// observability-only `pipeline_overlap_cycles` counter.
    Pipelined,
    /// Optimizer-driven adaptive scheduling: each job is classed by
    /// size ([`JobClass`]), dispatched through the two-lane
    /// [`ClassQueue`] (small latency-bound jobs overtake queued batch
    /// work), and sorted on the AMT shape the analytical optimizer
    /// picks for it — latency-optimal for the latency class,
    /// throughput-optimal for the throughput class — with shape
    /// switches charged through the reconfiguration planner and
    /// validated shapes served from a bounded compiled-shape cache
    /// ([`bonsai_amt::ShapeCache`]). Within a job, passes run on the
    /// pipelined group DAG. Knobs live in [`AdaptiveConfig`]; shape
    /// checks are `BON080`–`BON083`.
    Adaptive,
}

/// Environment variable selecting the default [`PassScheduler`] for
/// [`RuntimeConfig::default`]: `pipelined` picks the cross-pass group
/// DAG, `adaptive` the optimizer-driven adaptive scheduler, anything
/// else (or unset) the per-pass barrier. Exists so CI can run the whole
/// suite under any scheduler, mirroring
/// [`bonsai_amt::REFERENCE_LOOP_ENV`] for the simulation loop.
pub const SCHEDULER_ENV: &str = "BONSAI_RUNTIME_SCHEDULER";

fn scheduler_from_env() -> PassScheduler {
    match std::env::var(SCHEDULER_ENV).as_deref() {
        Ok("pipelined") => PassScheduler::Pipelined,
        Ok("adaptive") => PassScheduler::Adaptive,
        _ => PassScheduler::Barrier,
    }
}

/// Knobs of the batch runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads draining the job queue (`0` = one per core).
    pub workers: usize,
    /// Bounded queue depth; a full queue blocks [`Runtime::submit`]
    /// (backpressure).
    pub queue_depth: usize,
    /// Threads each worker may spend sharding one job's merge passes
    /// (`0` = one per core). The default of `1` keeps one job per core;
    /// raise it when jobs are few and wide.
    pub pass_workers: usize,
    /// How those pass workers are scheduled: per-pass barrier or
    /// cross-pass pipelined group DAG. Defaults to the barrier unless
    /// [`SCHEDULER_ENV`] says `pipelined`. Both produce bit-identical
    /// sorted output and reports (modulo the observability-only
    /// `pipeline_overlap_cycles` counter).
    pub scheduler: PassScheduler,
    /// Per-pass livelock cycle bound handed to the engine; `None` keeps
    /// the engine default.
    pub max_pass_cycles: Option<u64>,
    /// Simulation loop selection for every job: `Some(true)` forces the
    /// reference per-cycle loop, `Some(false)` the event-driven fast
    /// path, `None` keeps the engine default (fast path unless
    /// [`bonsai_amt::REFERENCE_LOOP_ENV`] is set to `1`). Both loops
    /// produce bit-identical reports.
    pub reference_loop: Option<bool>,
    /// How many threads will call [`Runtime::submit`] concurrently.
    /// Purely declarative — used by the BON05x shape lints to judge the
    /// queue depth; the runtime itself accepts any number of
    /// submitters.
    pub producers: usize,
    /// Whether dropping the runtime without [`Runtime::finish`] closes
    /// the job queue first (default `true`). Disabling this while
    /// `join_on_drop` stays on deadlocks the drop (BON052).
    pub close_on_drop: bool,
    /// Whether dropping the runtime without [`Runtime::finish`] joins
    /// the workers (default `true`). Disabling this leaks detached
    /// threads (BON053).
    pub join_on_drop: bool,
    /// Knobs of the adaptive scheduler (shape cache size, small-job
    /// cutoff, reprogram cost, deadline, fairness stride). Only
    /// consulted when [`RuntimeConfig::scheduler`] is
    /// [`PassScheduler::Adaptive`].
    pub adaptive: AdaptiveConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 16,
            pass_workers: 1,
            scheduler: scheduler_from_env(),
            max_pass_cycles: None,
            reference_loop: None,
            producers: 1,
            close_on_drop: true,
            join_on_drop: true,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

impl RuntimeConfig {
    /// Runs the BON05x runtime-topology shape checks against this
    /// config on a host with `cores` cores sorting `records`-record
    /// jobs under `engine` (the engine bounds the useful `pass_workers`
    /// via its first-pass merge-group count).
    ///
    /// Returns an empty vector when the shape is clean; errors mean the
    /// runtime will misbehave (wedge or panic), warnings mean it will
    /// waste threads.
    #[must_use]
    pub fn validate_for_engine(
        &self,
        engine: Option<&SimEngineConfig>,
        records: Option<usize>,
        cores: usize,
    ) -> Vec<Diagnostic> {
        let mut diagnostics = bonsai_check::check_runtime_shape(
            self.workers,
            self.pass_workers,
            self.queue_depth,
            self.producers,
            self.close_on_drop,
            self.join_on_drop,
            cores,
        );
        if let (Some(engine), Some(records)) = (engine, records) {
            let resolved_pass_workers = if self.pass_workers == 0 {
                cores.max(1)
            } else {
                self.pass_workers
            };
            if let Some(max_groups) = engine.max_first_pass_groups(records) {
                diagnostics.extend(bonsai_check::check_pass_sharding(
                    resolved_pass_workers,
                    max_groups,
                ));
            }
        }
        if self.scheduler == PassScheduler::Adaptive {
            diagnostics.extend(bonsai_check::check_adaptive_runtime(
                self.adaptive.cache_shapes,
                adaptive::SHAPE_CLASSES,
                self.adaptive.reprogram_cost_us,
                self.adaptive.latency_deadline_us,
                self.adaptive.fairness_stride,
            ));
        }
        diagnostics
    }

    /// [`RuntimeConfig::validate_for_engine`] without an engine bound:
    /// only the host-shape checks run.
    #[must_use]
    pub fn validate_for_cores(&self, cores: usize) -> Vec<Diagnostic> {
        self.validate_for_engine(None, None, cores)
    }

    /// [`RuntimeConfig::validate_for_cores`] against this host's actual
    /// core count.
    #[must_use]
    pub fn validate(&self) -> Vec<Diagnostic> {
        self.validate_for_cores(available_cores())
    }
}

/// One worker per core when a knob is `0`.
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One sort request: records plus the engine configuration to sort
/// them under.
#[derive(Debug, Clone)]
pub struct SortJob<R> {
    /// Caller-chosen identifier, echoed in the [`JobResult`]. An opaque
    /// tag: the runtime never interprets it, and ids may collide across
    /// submitters — results are attributed and ordered by the
    /// runtime-assigned [`JobResult::ticket`], not by this id.
    pub id: u64,
    /// Engine configuration for this job.
    pub config: SimEngineConfig,
    /// The records to sort.
    pub data: Vec<R>,
}

impl<R> SortJob<R> {
    /// Bundles a job.
    pub fn new(id: u64, config: SimEngineConfig, data: Vec<R>) -> Self {
        Self { id, config, data }
    }
}

/// Why [`Runtime::submit`] rejected a job. The job rides along so the
/// caller gets its records back instead of losing them to the error
/// path.
pub enum SubmitError<R> {
    /// The queue was closed (by [`Runtime::close`], typically from
    /// another handle to an `Arc`-shared runtime) before the job could
    /// be enqueued. Boxed so the `Result` stays small on the hot
    /// accept path; the allocation only happens on rejection.
    Closed(Box<SortJob<R>>),
}

impl<R> SubmitError<R> {
    /// The rejected job, handed back to the caller.
    #[must_use]
    pub fn into_job(self) -> SortJob<R> {
        match self {
            SubmitError::Closed(job) => *job,
        }
    }
}

// Manual impls keep `R: Debug` off the public bound (and keep the
// record payload out of error output).
impl<R> core::fmt::Debug for SubmitError<R> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::Closed(job) => f
                .debug_struct("SubmitError::Closed")
                .field("id", &job.id)
                .field("records", &job.data.len())
                .finish(),
        }
    }
}

impl<R> core::fmt::Display for SubmitError<R> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::Closed(job) => {
                write!(
                    f,
                    "runtime closed; job {} handed back to the caller",
                    job.id
                )
            }
        }
    }
}

impl<R> std::error::Error for SubmitError<R> {}

/// Why one job failed (the rest of the batch is unaffected).
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The job's engine configuration was rejected (`BONxxx` errors
    /// from [`bonsai_amt::SimEngineConfig::validate`]).
    Invalid(Vec<Diagnostic>),
    /// The simulation itself failed (e.g. `BON040` pass livelock).
    Sim(SortError),
    /// The job panicked mid-sort; the worker caught it, so the rest of
    /// the batch (and the pool itself) is unaffected.
    Panic(String),
}

impl core::fmt::Display for JobError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JobError::Invalid(diagnostics) => {
                write!(f, "invalid job configuration: {diagnostics:?}")
            }
            JobError::Sim(err) => write!(f, "{err}"),
            JobError::Panic(message) => write!(f, "job panicked: {message}"),
        }
    }
}

impl std::error::Error for JobError {}

/// The sorted records and timing report of one successful job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput<R> {
    /// The sorted records.
    pub sorted: Vec<R>,
    /// The engine's cycle-approximate timing report.
    pub report: SortReport,
}

/// Outcome of one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult<R> {
    /// The identifier from [`SortJob::id`] — an opaque caller tag,
    /// echoed back untouched (it may collide with other jobs' ids).
    pub id: u64,
    /// Runtime-assigned monotonic submission ticket, unique per
    /// runtime. [`Runtime::finish`] orders results by this, so
    /// colliding caller ids can never misattribute or reorder results.
    pub ticket: u64,
    /// The sorted output, or why this job failed.
    pub result: Result<JobOutput<R>, JobError>,
    /// Wall-clock time the worker spent on the job.
    pub wall: Duration,
}

/// What travels through the queue: the job plus its ticket, scheduling
/// class and an optional completion channel (`None` = collect for
/// `finish`).
struct Dispatch<R> {
    ticket: u64,
    job: SortJob<R>,
    class: JobClass,
    reply: Option<std::sync::mpsc::Sender<JobResult<R>>>,
}

impl<R> Classed for Dispatch<R> {
    fn job_class(&self) -> JobClass {
        self.class
    }
}

fn run_job<R: Record>(
    ticket: u64,
    job: SortJob<R>,
    class: JobClass,
    config: &RuntimeConfig,
    adaptive: Option<&Mutex<AdaptiveState>>,
) -> JobResult<R> {
    let start = std::time::Instant::now();
    let id = job.id;
    // Under the adaptive scheduler the shape selection (optimizer +
    // planner + compiled-shape cache) replaces `SimEngine::try_new`'s
    // validate-then-build; the cache outcome rides on the report.
    let engine = match adaptive {
        Some(state) => {
            let mut state = state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state
                .select(&job.config, job.data.len(), class)
                .map(|selection| (selection.shape.engine(), Some(selection.cache_hit)))
        }
        None => SimEngine::try_new(job.config).map(|engine| (engine, None)),
    };
    let result = engine
        .map_err(JobError::Invalid)
        .and_then(|(engine, cache_hit)| {
            let mut engine = match config.max_pass_cycles {
                Some(bound) => engine.with_max_pass_cycles(bound),
                None => engine,
            };
            if let Some(reference) = config.reference_loop {
                engine = engine.with_reference_loop(reference);
            }
            match config.scheduler {
                PassScheduler::Barrier => engine.try_sort_sharded(job.data, config.pass_workers),
                PassScheduler::Pipelined | PassScheduler::Adaptive => {
                    engine.try_sort_pipelined(job.data, config.pass_workers)
                }
            }
            .map(|(sorted, mut report)| {
                if let Some(hit) = cache_hit {
                    report.shape_cache_hits = u64::from(hit);
                    report.shape_cache_misses = u64::from(!hit);
                }
                JobOutput { sorted, report }
            })
            .map_err(JobError::Sim)
        });
    JobResult {
        id,
        ticket,
        result,
        wall: start.elapsed(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "job panicked".to_string())
}

/// A worker pool sorting batches of [`SortJob`]s.
///
/// Submissions flow through a bounded queue; [`Runtime::finish`] closes
/// the queue, joins the workers and returns every collected
/// [`JobResult`] in submission order (by [`JobResult::ticket`]).
/// Jobs submitted with [`Runtime::submit_with_reply`] stream their
/// result through the caller's channel the moment they complete
/// instead, so a long-lived service never has to consume the runtime to
/// observe results. Dropping the runtime without `finish` also closes
/// the queue and joins the workers (per
/// [`RuntimeConfig::close_on_drop`] / [`RuntimeConfig::join_on_drop`]),
/// discarding any collected results.
#[derive(Debug)]
pub struct Runtime<R: Record> {
    config: RuntimeConfig,
    next_ticket: std::sync::atomic::AtomicU64,
    // The adaptive brain (shape cache + planners), shared with the
    // workers; `None` for the barrier/pipelined schedulers.
    adaptive: Option<Arc<Mutex<AdaptiveState>>>,
    // Reply-path results are delivered through their channel and return
    // `None` from the runner, so an always-on service does not
    // accumulate results it will never `finish`.
    //
    // Every scheduler drains the two-lane class queue: the non-adaptive
    // ones tag all jobs latency-class, which makes it an exact FIFO.
    #[allow(clippy::type_complexity)]
    pool: WorkerPool<Dispatch<R>, Option<JobResult<R>>, StdSync, ClassQueue<Dispatch<R>, StdSync>>,
}

impl<R: Record> Runtime<R> {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(config: RuntimeConfig) -> Self {
        let workers = if config.workers == 0 {
            available_cores()
        } else {
            config.workers
        };
        let adaptive = (config.scheduler == PassScheduler::Adaptive)
            .then(|| Arc::new(Mutex::new(AdaptiveState::new(&config.adaptive))));
        let worker_adaptive = adaptive.clone();
        let runner = move |dispatch: Dispatch<R>| {
            let Dispatch {
                ticket,
                job,
                class,
                reply,
            } = dispatch;
            let id = job.id;
            let start = std::time::Instant::now();
            // A panicking job must fail alone: catch it here so the
            // worker survives to drain the rest of the queue, and so
            // shutdown never has to join a dead thread.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(ticket, job, class, &config, worker_adaptive.as_deref())
            }))
            .unwrap_or_else(|payload| JobResult {
                id,
                ticket,
                result: Err(JobError::Panic(panic_message(payload.as_ref()))),
                wall: start.elapsed(),
            });
            match reply {
                // A dropped receiver means the submitter stopped
                // listening (e.g. its connection died); the result is
                // discarded, never wedging the worker.
                Some(tx) => {
                    let _ = tx.send(result);
                    None
                }
                None => Some(result),
            }
        };
        let queue = ClassQueue::new(config.queue_depth, config.adaptive.fairness_stride);
        let mut pool = WorkerPool::start_with_queue(workers, queue, runner);
        pool.close_on_drop(config.close_on_drop)
            .join_on_drop(config.join_on_drop);
        Self {
            config,
            next_ticket: std::sync::atomic::AtomicU64::new(0),
            adaptive,
            pool,
        }
    }

    /// Snapshot of the adaptive layer's counters (shape-cache hit rate,
    /// reprograms, per-lane job counts). All zero for the barrier and
    /// pipelined schedulers.
    #[must_use]
    pub fn adaptive_stats(&self) -> AdaptiveStats {
        self.adaptive
            .as_deref()
            .map(|state| {
                state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .stats()
            })
            .unwrap_or_default()
    }

    /// The scheduling class the runtime assigns a `records`-record job:
    /// latency for small jobs under the adaptive scheduler's cutoff
    /// ([`AdaptiveConfig::small_job_records`]); everything is latency
    /// class (exact FIFO) outside the adaptive scheduler.
    #[must_use]
    pub fn classify(&self, records: usize) -> JobClass {
        match self.config.scheduler {
            PassScheduler::Adaptive if records > self.config.adaptive.small_job_records => {
                JobClass::Throughput
            }
            _ => JobClass::Latency,
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Jobs waiting in the queue (not yet claimed by a worker).
    pub fn pending(&self) -> usize {
        self.pool.pending()
    }

    fn dispatch(
        &self,
        job: SortJob<R>,
        reply: Option<std::sync::mpsc::Sender<JobResult<R>>>,
    ) -> Result<u64, SubmitError<R>> {
        let ticket = self
            .next_ticket
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let class = self.classify(job.data.len());
        match self.pool.submit(Dispatch {
            ticket,
            job,
            class,
            reply,
        }) {
            Ok(()) => Ok(ticket),
            // The blocking push only ever fails Closed; hand the job
            // back instead of dropping (or panicking over) it.
            Err(PushError::Closed(d) | PushError::Full(d)) => {
                Err(SubmitError::Closed(Box::new(d.job)))
            }
        }
    }

    /// Submits a job, blocking while the queue is full (backpressure),
    /// and returns its submission ticket.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] hands the job back if the queue was
    /// closed — e.g. by [`Runtime::close`] on another handle to an
    /// `Arc`-shared runtime. (This used to be an `unreachable!` panic.)
    pub fn submit(&self, job: SortJob<R>) -> Result<u64, SubmitError<R>> {
        self.dispatch(job, None)
    }

    /// Submits a job whose [`JobResult`] is delivered through `reply`
    /// as soon as a worker completes it, instead of being collected for
    /// [`Runtime::finish`]. Blocks while the queue is full
    /// (backpressure) and returns the submission ticket.
    ///
    /// If the receiver is dropped before the job completes, the result
    /// is discarded — the worker never blocks on delivery.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] hands the job back if the queue was
    /// closed.
    pub fn submit_with_reply(
        &self,
        job: SortJob<R>,
        reply: std::sync::mpsc::Sender<JobResult<R>>,
    ) -> Result<u64, SubmitError<R>> {
        self.dispatch(job, Some(reply))
    }

    /// Submits a job without blocking; returns its submission ticket.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] hands the job back when the queue is at
    /// capacity (retry or apply backpressure upstream),
    /// [`PushError::Closed`] after [`Runtime::close`].
    // The large Err is the point: the rejected job (with its data)
    // returns to the caller instead of being dropped.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, job: SortJob<R>) -> Result<u64, PushError<SortJob<R>>> {
        let ticket = self
            .next_ticket
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let class = self.classify(job.data.len());
        self.pool
            .try_submit(Dispatch {
                ticket,
                job,
                class,
                reply: None,
            })
            .map(|()| ticket)
            .map_err(|e| match e {
                PushError::Full(d) => PushError::Full(d.job),
                PushError::Closed(d) => PushError::Closed(d.job),
            })
    }

    /// Closes the job queue without consuming the runtime: queued jobs
    /// still drain (and reply-path results still deliver), but every
    /// subsequent submit gets its job back as [`SubmitError::Closed`].
    /// This is the shutdown seam for `Arc`-shared runtimes — a server
    /// can stop intake while connection handlers still hold clones.
    pub fn close(&self) {
        self.pool.close();
    }

    /// Drains the queue, stops the workers and returns every collected
    /// job result in submission order ([`JobResult::ticket`]). Results
    /// already streamed through [`Runtime::submit_with_reply`] channels
    /// are not duplicated here.
    #[must_use]
    pub fn finish(self) -> Vec<JobResult<R>> {
        let mut results: Vec<JobResult<R>> = self.pool.finish().into_iter().flatten().collect();
        results.sort_by_key(|r| r.ticket);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_amt::AmtConfig;
    use bonsai_gensort::dist::uniform_u32;
    use bonsai_memsim::LoaderConfig;
    use bonsai_records::U32Rec;

    fn dram_cfg() -> SimEngineConfig {
        SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4)
    }

    #[test]
    fn batch_sorts_every_job_in_id_order() {
        let runtime = Runtime::start(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        let inputs: Vec<Vec<U32Rec>> = (0..6).map(|id| uniform_u32(5_000, id)).collect();
        for (id, data) in inputs.iter().enumerate() {
            runtime
                .submit(SortJob::new(id as u64, dram_cfg(), data.clone()))
                .expect("runtime open");
        }
        let results = runtime.finish();
        assert_eq!(results.len(), 6);
        for (id, r) in results.iter().enumerate() {
            assert_eq!(r.id, id as u64, "results must be ordered by job id");
            let out = r.result.as_ref().expect("valid jobs succeed");
            assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(out.sorted.len(), inputs[id].len());
            assert!(out.report.total_cycles > 0);
        }
    }

    #[test]
    fn invalid_job_fails_alone() {
        let mut bad = dram_cfg();
        bad.loader = LoaderConfig {
            record_bytes: 0,
            ..bad.loader
        };
        let runtime = Runtime::start(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        runtime
            .submit(SortJob::new(0, dram_cfg(), uniform_u32(2_000, 1)))
            .expect("runtime open");
        runtime
            .submit(SortJob::new(1, bad, uniform_u32(2_000, 2)))
            .expect("runtime open");
        runtime
            .submit(SortJob::new(2, dram_cfg(), uniform_u32(2_000, 3)))
            .expect("runtime open");
        let results = runtime.finish();
        assert!(results[0].result.is_ok());
        assert!(results[2].result.is_ok(), "batch survives a bad job");
        match &results[1].result {
            Err(JobError::Invalid(diagnostics)) => {
                assert!(diagnostics
                    .iter()
                    .any(|d| d.code == bonsai_check::codes::RECORD_WIDTH_ZERO));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn livelock_bound_fails_the_job_not_the_process() {
        let runtime = Runtime::<U32Rec>::start(RuntimeConfig {
            workers: 1,
            max_pass_cycles: Some(10),
            ..RuntimeConfig::default()
        });
        runtime
            .submit(SortJob::new(0, dram_cfg(), uniform_u32(50_000, 4)))
            .expect("runtime open");
        let results = runtime.finish();
        match &results[0].result {
            Err(JobError::Sim(err)) => {
                assert_eq!(err.code(), bonsai_check::codes::SIM_PASS_LIVELOCK);
                assert_eq!(err.stage, 1);
            }
            other => panic!("expected a BON040 Sim error, got {other:?}"),
        }
    }

    #[test]
    fn reference_and_fast_loops_agree_end_to_end() {
        fn normalized(mut r: SortReport) -> SortReport {
            r.fast_forwarded_cycles = 0;
            for p in &mut r.passes {
                p.fast_forwarded_cycles = 0;
            }
            r
        }
        let data = uniform_u32(15_000, 12);
        let run = |reference: bool| {
            let runtime = Runtime::start(RuntimeConfig {
                workers: 2,
                reference_loop: Some(reference),
                ..RuntimeConfig::default()
            });
            runtime
                .submit(SortJob::new(0, dram_cfg(), data.clone()))
                .expect("runtime open");
            runtime.finish().remove(0).result.expect("sorts")
        };
        let fast = run(false);
        let reference = run(true);
        assert_eq!(fast.sorted, reference.sorted);
        assert_eq!(reference.report.fast_forwarded_cycles, 0);
        assert_eq!(normalized(fast.report), normalized(reference.report));
    }

    #[test]
    fn reports_are_identical_across_runtime_shapes() {
        let data = uniform_u32(20_000, 9);
        let shapes = [
            RuntimeConfig {
                workers: 1,
                pass_workers: 1,
                ..RuntimeConfig::default()
            },
            RuntimeConfig {
                workers: 4,
                pass_workers: 2,
                queue_depth: 2,
                ..RuntimeConfig::default()
            },
        ];
        let outputs: Vec<JobOutput<U32Rec>> = shapes
            .iter()
            .map(|&shape| {
                let runtime = Runtime::start(shape);
                for id in 0..3 {
                    runtime
                        .submit(SortJob::new(id, dram_cfg(), data.clone()))
                        .expect("runtime open");
                }
                let mut results = runtime.finish();
                assert_eq!(results.len(), 3);
                results.remove(0).result.expect("sorts")
            })
            .collect();
        assert_eq!(outputs[0].sorted, outputs[1].sorted);
        assert_eq!(
            outputs[0].report, outputs[1].report,
            "reports must not depend on worker shape"
        );
    }

    /// A record whose *comparison* panics on a poison value — the
    /// smallest way to make a job blow up mid-merge rather than at
    /// submission time (the engine orders records through `Ord`).
    #[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
    struct PanicRec(u32);

    const POISON: u32 = 0xDEAD_BEEF;

    impl PartialOrd for PanicRec {
        fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for PanicRec {
        fn cmp(&self, other: &Self) -> core::cmp::Ordering {
            assert!(
                self.0 != POISON && other.0 != POISON,
                "poisoned record reached the datapath"
            );
            self.0.cmp(&other.0)
        }
    }

    impl Record for PanicRec {
        type Key = u32;
        const WIDTH_BYTES: usize = 4;
        const TERMINAL: Self = PanicRec(0);
        const MAX: Self = PanicRec(u32::MAX);

        fn key(&self) -> u32 {
            self.0
        }

        fn sanitize(self) -> Self {
            if self.0 == 0 {
                PanicRec(1)
            } else {
                self
            }
        }
    }

    #[test]
    fn panicking_job_fails_alone_and_shutdown_still_joins() {
        let runtime = Runtime::<PanicRec>::start(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        let clean = |seed: u32| {
            (0..3_000u32)
                .map(|i| PanicRec(i.wrapping_mul(2_654_435_761).wrapping_add(seed) | 1))
                .collect::<Vec<_>>()
        };
        let mut poisoned = clean(7);
        poisoned[1_234] = PanicRec(POISON);
        runtime
            .submit(SortJob::new(0, dram_cfg(), clean(1)))
            .expect("runtime open");
        runtime
            .submit(SortJob::new(1, dram_cfg(), poisoned))
            .expect("runtime open");
        runtime
            .submit(SortJob::new(2, dram_cfg(), clean(2)))
            .expect("runtime open");
        // finish() joins every worker; if the panic had killed a worker
        // instead of failing the job, the remaining jobs could sit in
        // the queue forever and this would hang (tier-1 timeout).
        let results = runtime.finish();
        assert_eq!(results.len(), 3, "every job must produce a result");
        assert!(results[0].result.is_ok());
        assert!(results[2].result.is_ok(), "batch survives a panicking job");
        match &results[1].result {
            Err(JobError::Panic(message)) => {
                assert!(
                    message.contains("poisoned record"),
                    "panic payload must be preserved, got: {message}"
                );
            }
            other => panic!("expected JobError::Panic, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_scheduler_matches_barrier_modulo_overlap() {
        let data = uniform_u32(20_000, 21);
        let run = |scheduler: PassScheduler| {
            let runtime = Runtime::start(RuntimeConfig {
                workers: 2,
                pass_workers: 2,
                scheduler,
                ..RuntimeConfig::default()
            });
            runtime
                .submit(SortJob::new(0, dram_cfg(), data.clone()))
                .expect("runtime open");
            runtime.finish().remove(0).result.expect("sorts")
        };
        let barrier = run(PassScheduler::Barrier);
        let pipelined = run(PassScheduler::Pipelined);
        assert_eq!(barrier.sorted, pipelined.sorted);
        assert_eq!(barrier.report.pipeline_overlap_cycles, 0);
        let mut normalized = pipelined.report.clone();
        normalized.pipeline_overlap_cycles = 0;
        assert_eq!(
            barrier.report, normalized,
            "schedulers must agree on everything but the overlap counter"
        );
    }

    #[test]
    fn panicking_job_fails_alone_under_pipelined_scheduler() {
        // Same poisoned-Ord shape as the barrier test above, but the
        // panic now fires inside a DAG worker: catch_unwind in the DAG
        // loop must drain the task graph (no wedged wait_while) before
        // the job-level catch records the failure.
        let runtime = Runtime::<PanicRec>::start(RuntimeConfig {
            workers: 1,
            pass_workers: 2,
            scheduler: PassScheduler::Pipelined,
            ..RuntimeConfig::default()
        });
        let mut poisoned: Vec<PanicRec> = (0..3_000u32)
            .map(|i| PanicRec(i.wrapping_mul(2_654_435_761).wrapping_add(7) | 1))
            .collect();
        poisoned[1_234] = PanicRec(POISON);
        runtime
            .submit(SortJob::new(0, dram_cfg(), poisoned))
            .expect("runtime open");
        runtime
            .submit(SortJob::new(1, dram_cfg(), vec![PanicRec(3), PanicRec(2)]))
            .expect("runtime open");
        let results = runtime.finish();
        assert_eq!(results.len(), 2);
        match &results[0].result {
            Err(JobError::Panic(message)) => {
                assert!(message.contains("poisoned record"), "got: {message}");
            }
            other => panic!("expected JobError::Panic, got {other:?}"),
        }
        assert!(results[1].result.is_ok(), "batch survives the DAG panic");
    }

    #[test]
    fn drop_after_panicking_job_neither_wedges_nor_leaks() {
        let before = count_own_threads();
        {
            let runtime = Runtime::<PanicRec>::start(RuntimeConfig {
                workers: 2,
                ..RuntimeConfig::default()
            });
            let data: Vec<PanicRec> = (0..2_000u32)
                .map(|i| PanicRec(if i == 999 { POISON } else { i | 1 }))
                .collect();
            runtime
                .submit(SortJob::new(0, dram_cfg(), data))
                .expect("runtime open");
            // Dropped without finish: close_on_drop unparks any worker
            // still waiting in pop, join_on_drop reclaims both threads.
        }
        // Other tests run concurrently in this process, so poll for the
        // count to come back down instead of demanding instant equality.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if count_own_threads() <= before {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "drop must join every worker thread, panicking job or not"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Thread count of this process via /proc (Linux-only; returns 0 and
    /// trivially passes the leak check elsewhere).
    fn count_own_threads() -> usize {
        std::fs::read_dir("/proc/self/task").map_or(0, Iterator::count)
    }

    #[test]
    fn default_config_shape_is_lint_clean() {
        assert!(
            RuntimeConfig::default().validate().is_empty(),
            "the default runtime shape must not trip its own lints"
        );
    }

    /// Regression: submitting after the queue was closed out from under
    /// the caller (an `Arc`-shared runtime whose other handle called
    /// `close`) used to hit `unreachable!`; it must hand the job back
    /// as a structured error instead.
    #[test]
    fn submit_after_close_hands_the_job_back() {
        let runtime = Runtime::start(RuntimeConfig {
            workers: 1,
            ..RuntimeConfig::default()
        });
        let data = uniform_u32(1_000, 3);
        runtime.close();
        match runtime.submit(SortJob::new(42, dram_cfg(), data.clone())) {
            Err(SubmitError::Closed(job)) => {
                assert_eq!(job.id, 42, "the rejected job comes back intact");
                assert_eq!(job.data, data, "with its records");
            }
            Ok(ticket) => panic!("closed runtime accepted ticket {ticket}"),
        }
        assert!(
            runtime.finish().is_empty(),
            "nothing was enqueued after close"
        );
    }

    /// Regression: caller-chosen ids may collide (independent clients
    /// pick their own); results must still come back in submission
    /// order with each output attributable to its own submission via
    /// the runtime-assigned ticket.
    #[test]
    fn colliding_ids_are_ordered_and_attributed_by_ticket() {
        let runtime = Runtime::start(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        // Three jobs, all claiming id 7, with distinguishable sizes.
        let sizes = [1_000usize, 2_000, 3_000];
        let tickets: Vec<u64> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                runtime
                    .submit(SortJob::new(7, dram_cfg(), uniform_u32(n, i as u64)))
                    .expect("runtime open")
            })
            .collect();
        assert!(
            tickets.windows(2).all(|w| w[0] < w[1]),
            "tickets are monotonic: {tickets:?}"
        );
        let results = runtime.finish();
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id, 7, "caller tag echoed untouched");
            assert_eq!(r.ticket, tickets[i], "submission order preserved");
            let out = r.result.as_ref().expect("sorts");
            assert_eq!(
                out.sorted.len(),
                sizes[i],
                "result {i} must belong to submission {i}, not another id-7 job"
            );
        }
    }

    /// The streaming completion path: each result arrives through the
    /// reply channel as its job finishes, without consuming the
    /// runtime, and `finish` does not return those results again.
    #[test]
    fn submit_with_reply_streams_results_as_they_finish() {
        let runtime = Runtime::start(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        let (tx, rx) = std::sync::mpsc::channel();
        let inputs: Vec<Vec<U32Rec>> = (0..4).map(|id| uniform_u32(4_000, id)).collect();
        for (id, data) in inputs.iter().enumerate() {
            runtime
                .submit_with_reply(
                    SortJob::new(id as u64, dram_cfg(), data.clone()),
                    tx.clone(),
                )
                .expect("runtime open");
        }
        drop(tx);
        // Results stream in completion order while the runtime is live.
        let mut streamed: Vec<JobResult<U32Rec>> = rx.iter().collect();
        assert_eq!(streamed.len(), 4, "every reply-path job streams back");
        streamed.sort_by_key(|r| r.ticket);
        for (id, r) in streamed.iter().enumerate() {
            assert_eq!(r.id, id as u64);
            let out = r.result.as_ref().expect("sorts");
            assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(out.sorted.len(), inputs[id].len());
        }
        assert!(
            runtime.finish().is_empty(),
            "streamed results must not be collected a second time"
        );
    }

    /// Streamed and batch-collected runs of the same jobs produce
    /// bit-identical outputs and reports: the completion path must not
    /// disturb the sort itself.
    #[test]
    fn reply_path_is_bit_identical_to_batch_path() {
        let data = uniform_u32(10_000, 77);
        let batch = {
            let runtime = Runtime::start(RuntimeConfig {
                workers: 2,
                ..RuntimeConfig::default()
            });
            runtime
                .submit(SortJob::new(0, dram_cfg(), data.clone()))
                .expect("runtime open");
            runtime.finish().remove(0).result.expect("sorts")
        };
        let streamed = {
            let runtime = Runtime::start(RuntimeConfig {
                workers: 2,
                ..RuntimeConfig::default()
            });
            let (tx, rx) = std::sync::mpsc::channel();
            runtime
                .submit_with_reply(SortJob::new(0, dram_cfg(), data.clone()), tx)
                .expect("runtime open");
            let result = rx.recv().expect("reply delivered");
            drop(runtime);
            result.result.expect("sorts")
        };
        assert_eq!(batch.sorted, streamed.sorted);
        assert_eq!(batch.report, streamed.report);
    }

    /// A dropped reply receiver (a client that hung up) must not wedge
    /// or kill the worker; later jobs still complete.
    #[test]
    fn dropped_reply_receiver_does_not_disturb_the_pool() {
        let runtime = Runtime::start(RuntimeConfig {
            workers: 1,
            ..RuntimeConfig::default()
        });
        let (tx, rx) = std::sync::mpsc::channel();
        drop(rx);
        runtime
            .submit_with_reply(SortJob::new(0, dram_cfg(), uniform_u32(2_000, 5)), tx)
            .expect("runtime open");
        runtime
            .submit(SortJob::new(1, dram_cfg(), uniform_u32(2_000, 6)))
            .expect("runtime open");
        let results = runtime.finish();
        assert_eq!(results.len(), 1, "only the batch job is collected");
        assert_eq!(results[0].id, 1);
        assert!(results[0].result.is_ok());
    }
}
