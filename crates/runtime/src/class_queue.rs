//! A two-lane, class-aware bounded queue for the adaptive scheduler.
//!
//! [`ClassQueue`] carries the same blocking push/pop/close protocol as
//! [`BoundedQueue`](crate::BoundedQueue) — one capacity shared by both
//! lanes, backpressure on push, broadcast wakeup on close — but `pop`
//! prefers the **latency** lane: small deadline-bound jobs overtake the
//! queue position of large throughput-class jobs without preempting one
//! already running.
//!
//! Pure priority starves the throughput lane under a steady latency
//! stream (`BON083`), so a *fairness stride* bounds the bypass: after
//! `stride` consecutive latency-lane pops while the throughput lane
//! waits, one throughput job is dispatched regardless. A `stride` of 0
//! keeps pure priority.
//!
//! Items name their own lane via [`Classed`], so the queue slots into
//! the generic [`WorkerPool`](crate::WorkerPool) behind the same
//! [`PoolQueue`](crate::pool::PoolQueue) interface as the FIFO queue.
//! When every item reports [`JobClass::Latency`] — what the runtime's
//! non-adaptive schedulers do — the queue *is* a FIFO: one lane, zero
//! reordering, identical observable behavior.
//!
//! Like the FIFO queue, the queue is generic over the [`SyncOps`]
//! facade; `tests/mc_class_queue.rs` model-checks the protocol and the
//! starvation bound under every interleaving.

use std::collections::VecDeque;

use bonsai_mc::facade::{StdSync, SyncOps};

use crate::queue::PushError;

/// Scheduling class of one job: which lane of the [`ClassQueue`] it
/// waits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JobClass {
    /// Small or deadline-bound: dispatched ahead of queued
    /// throughput-class jobs.
    #[default]
    Latency,
    /// Large batch work: optimized for aggregate bytes/second, may be
    /// overtaken while queued (never preempted while running).
    Throughput,
}

/// Items that know their scheduling class.
pub trait Classed {
    /// Which [`ClassQueue`] lane this item waits in.
    fn job_class(&self) -> JobClass;
}

struct ClassState<T> {
    latency: VecDeque<T>,
    throughput: VecDeque<T>,
    closed: bool,
    /// Consecutive latency-lane pops while the throughput lane was
    /// non-empty; reset by every throughput dispatch.
    latency_streak: u32,
}

impl<T> ClassState<T> {
    fn len(&self) -> usize {
        self.latency.len() + self.throughput.len()
    }
}

/// A bounded two-lane MPMC queue: FIFO within each lane, latency lane
/// first, with a stride-bounded fairness guarantee for the throughput
/// lane.
pub struct ClassQueue<T: Send + Classed, S: SyncOps = StdSync> {
    state: S::Mutex<ClassState<T>>,
    capacity: usize,
    fairness_stride: u32,
    not_full: S::Condvar,
    not_empty: S::Condvar,
}

impl<T: Send + Classed, S: SyncOps> std::fmt::Debug for ClassQueue<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassQueue")
            .field("capacity", &self.capacity)
            .field("fairness_stride", &self.fairness_stride)
            .field("len", &self.len())
            .finish()
    }
}

impl<T: Send + Classed, S: SyncOps> ClassQueue<T, S> {
    /// Creates a queue holding at most `capacity ≥ 1` items across both
    /// lanes. `fairness_stride` bounds how many consecutive latency
    /// pops may bypass a waiting throughput job (0 = pure priority,
    /// flagged by `BON083`).
    #[must_use]
    pub fn new(capacity: usize, fairness_stride: u32) -> Self {
        Self {
            state: S::mutex_named(
                "class_queue.state",
                ClassState {
                    latency: VecDeque::new(),
                    throughput: VecDeque::new(),
                    closed: false,
                    latency_streak: 0,
                },
            ),
            capacity: capacity.max(1),
            fairness_stride,
            not_full: S::condvar_named("class_queue.not_full"),
            not_empty: S::condvar_named("class_queue.not_empty"),
        }
    }

    /// The configured capacity (shared by both lanes).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued across both lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        S::lock(&self.state).len()
    }

    /// Whether both lanes are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` in its class's lane, blocking while the queue is
    /// full.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] when the queue was closed before a slot
    /// freed up; the item is handed back.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let guard = S::lock(&self.state);
        let mut guard = S::wait_while(&self.not_full, &self.state, guard, |s| {
            !s.closed && s.len() >= self.capacity
        });
        if guard.closed {
            return Err(PushError::Closed(item));
        }
        match item.job_class() {
            JobClass::Latency => guard.latency.push_back(item),
            JobClass::Throughput => guard.throughput.push_back(item),
        }
        drop(guard);
        S::notify_one(&self.not_empty);
        Ok(())
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`ClassQueue::close`]; both hand the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut guard = S::lock(&self.state);
        if guard.closed {
            return Err(PushError::Closed(item));
        }
        if guard.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        match item.job_class() {
            JobClass::Latency => guard.latency.push_back(item),
            JobClass::Throughput => guard.throughput.push_back(item),
        }
        drop(guard);
        S::notify_one(&self.not_empty);
        Ok(())
    }

    /// Dequeues the next item by lane policy, blocking while both lanes
    /// are empty. Returns `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let guard = S::lock(&self.state);
        let mut guard = S::wait_while(&self.not_empty, &self.state, guard, |s| {
            s.len() == 0 && !s.closed
        });
        let yield_to_throughput = !guard.throughput.is_empty()
            && (guard.latency.is_empty()
                || (self.fairness_stride > 0 && guard.latency_streak >= self.fairness_stride));
        let item = if yield_to_throughput {
            guard.latency_streak = 0;
            guard.throughput.pop_front()
        } else {
            let item = guard.latency.pop_front();
            if item.is_some() && !guard.throughput.is_empty() {
                // Only bypasses count toward the streak: latency pops
                // with an empty throughput lane starve nobody.
                guard.latency_streak += 1;
            }
            item
        };
        drop(guard);
        if item.is_some() {
            S::notify_one(&self.not_full);
        }
        item
    }

    /// Closes the queue: both lanes still drain, further pushes fail,
    /// and blocked poppers wake up to observe the shutdown.
    pub fn close(&self) {
        S::lock(&self.state).closed = true;
        // Broadcast, exactly like `BoundedQueue::close`: every parked
        // producer and consumer must observe `closed`.
        S::notify_all(&self.not_empty);
        S::notify_all(&self.not_full);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Debug, PartialEq, Eq)]
    struct Item(i32, JobClass);

    impl Classed for Item {
        fn job_class(&self) -> JobClass {
            self.1
        }
    }

    fn lat(v: i32) -> Item {
        Item(v, JobClass::Latency)
    }

    fn thr(v: i32) -> Item {
        Item(v, JobClass::Throughput)
    }

    #[test]
    fn latency_lane_overtakes_queued_throughput_jobs() {
        let q = ClassQueue::<Item>::new(8, 4);
        q.push(thr(100)).unwrap();
        q.push(lat(1)).unwrap();
        q.push(lat(2)).unwrap();
        assert_eq!(q.pop(), Some(lat(1)));
        assert_eq!(q.pop(), Some(lat(2)));
        assert_eq!(q.pop(), Some(thr(100)));
    }

    #[test]
    fn all_latency_items_are_plain_fifo() {
        // The non-adaptive runtime tags everything Latency: the queue
        // must then be indistinguishable from the FIFO BoundedQueue.
        let q = ClassQueue::<Item>::new(8, 4);
        for i in 0..5 {
            q.push(lat(i)).unwrap();
        }
        q.close();
        assert!(matches!(q.push(lat(99)), Err(PushError::Closed(_))));
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|i| i.0).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(q.pop().is_none(), "closed and drained stays empty");
    }

    #[test]
    fn fairness_stride_bounds_the_bypass() {
        // stride 2: after two latency bypasses a throughput job runs.
        let q = ClassQueue::<Item>::new(16, 2);
        q.push(thr(100)).unwrap();
        q.push(thr(101)).unwrap();
        for i in 0..6 {
            q.push(lat(i)).unwrap();
        }
        q.close();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|i| i.0).collect();
        assert_eq!(order, vec![0, 1, 100, 2, 3, 101, 4, 5]);
    }

    #[test]
    fn zero_stride_is_pure_priority() {
        let q = ClassQueue::<Item>::new(16, 0);
        q.push(thr(100)).unwrap();
        for i in 0..5 {
            q.push(lat(i)).unwrap();
        }
        q.close();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|i| i.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 100]);
    }

    #[test]
    fn capacity_spans_both_lanes_and_push_blocks_until_a_slot_frees() {
        let q = Arc::new(ClassQueue::<Item>::new(2, 4));
        q.push(thr(100)).unwrap();
        q.push(lat(1)).unwrap();
        assert!(matches!(q.try_push(lat(2)), Err(PushError::Full(_))));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(lat(2)))
        };
        // The producer is blocked until this pop frees a slot.
        assert_eq!(q.pop(), Some(lat(1)));
        producer.join().unwrap().unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(ClassQueue::<Item>::new(4, 4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        q.push(thr(7)).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(thr(7)));
    }
}
