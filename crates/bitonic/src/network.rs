//! Explicit compare-and-exchange schedules for bitonic networks.

/// A fixed compare-and-exchange network over `width` lanes.
///
/// The network is a sequence of *stages*; each stage is a set of disjoint
/// lane pairs `(lo, hi)` whose CAS unit guarantees `lanes[lo] <= lanes[hi]`
/// afterwards. In hardware every stage is one pipeline cut, so
/// [`Network::depth`] is the pipeline latency in cycles and
/// [`Network::cas_count`] is proportional to LUT cost.
///
/// # Example
///
/// ```
/// use bonsai_bitonic::sorter_network;
///
/// let net = sorter_network(8);
/// let mut lanes = [5u32, 1, 4, 2, 8, 7, 3, 6];
/// net.apply(&mut lanes);
/// assert_eq!(lanes, [1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    width: usize,
    stages: Vec<Vec<(usize, usize)>>,
}

impl Network {
    fn new(width: usize, stages: Vec<Vec<(usize, usize)>>) -> Self {
        debug_assert!(stages
            .iter()
            .flatten()
            .all(|&(a, b)| a < width && b < width && a != b));
        Self { width, stages }
    }

    /// Number of input/output lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pipeline depth: the number of CAS stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Total number of compare-and-exchange units.
    pub fn cas_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// The stages of the network, each a set of disjoint `(lo, hi)` pairs.
    pub fn stages(&self) -> &[Vec<(usize, usize)>] {
        &self.stages
    }

    /// Runs the network over `lanes` in place.
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() != self.width()`.
    pub fn apply<T: Ord>(&self, lanes: &mut [T]) {
        assert_eq!(
            lanes.len(),
            self.width,
            "lane count must match network width"
        );
        for stage in &self.stages {
            for &(lo, hi) in stage {
                if lanes[lo] > lanes[hi] {
                    lanes.swap(lo, hi);
                }
            }
        }
    }
}

fn assert_power_of_two(n: usize, what: &str) {
    assert!(
        n.is_power_of_two(),
        "{what} must be a power of two, got {n}"
    );
}

/// Builds the bitonic **merge** network over `n` lanes (`n` a power of two).
///
/// The input must be bitonic: ascending in lanes `0..n/2` and descending in
/// lanes `n/2..n` (callers merge two ascending runs by reversing the second
/// one). The output is fully sorted ascending. Depth is `log₂ n`; CAS count
/// is `(n/2)·log₂ n`.
///
/// # Panics
///
/// Panics if `n` is not a power of two or is less than 2.
pub fn merge_network(n: usize) -> Network {
    assert_power_of_two(n, "merge network width");
    assert!(n >= 2, "merge network needs at least two lanes");
    let mut stages = Vec::new();
    let mut j = n / 2;
    while j >= 1 {
        let mut stage = Vec::with_capacity(n / 2);
        for i in 0..n {
            let l = i ^ j;
            if l > i {
                stage.push((i, l));
            }
        }
        stages.push(stage);
        j /= 2;
    }
    Network::new(n, stages)
}

/// Builds the full bitonic **sorting** network over `n` lanes (`n` a power
/// of two), Batcher's construction: depth `log₂n·(log₂n+1)/2` stages.
///
/// # Panics
///
/// Panics if `n` is not a power of two or is less than 2.
pub fn sorter_network(n: usize) -> Network {
    assert_power_of_two(n, "sorter network width");
    assert!(n >= 2, "sorter network needs at least two lanes");
    let mut stages = Vec::new();
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            let mut stage = Vec::with_capacity(n / 2);
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    if i & k == 0 {
                        stage.push((i, l)); // ascending block
                    } else {
                        stage.push((l, i)); // descending block
                    }
                }
            }
            stages.push(stage);
            j /= 2;
        }
        k *= 2;
    }
    Network::new(n, stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorter_sorts_all_descending() {
        let net = sorter_network(16);
        let mut lanes: Vec<u32> = (0..16).rev().collect();
        net.apply(&mut lanes);
        assert_eq!(lanes, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sorter_depth_matches_batcher_formula() {
        for log_n in 1..=7 {
            let n = 1usize << log_n;
            let net = sorter_network(n);
            assert_eq!(net.depth(), log_n * (log_n + 1) / 2, "n = {n}");
            assert_eq!(net.cas_count(), net.depth() * n / 2, "n = {n}");
        }
    }

    #[test]
    fn merge_depth_is_log_n() {
        for log_n in 1..=7 {
            let n = 1usize << log_n;
            let net = merge_network(n);
            assert_eq!(net.depth(), log_n);
            assert_eq!(net.cas_count(), log_n * n / 2);
        }
    }

    #[test]
    fn merge_network_merges_bitonic_input() {
        let net = merge_network(8);
        // ascending then descending = bitonic
        let mut lanes = [1u32, 4, 6, 9, 8, 5, 3, 2];
        net.apply(&mut lanes);
        assert_eq!(lanes, [1, 2, 3, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn zero_one_principle_sorter_width_8() {
        // Exhaustively verify the 8-lane sorter on all 0/1 inputs; by the
        // 0-1 principle this proves it sorts arbitrary inputs.
        let net = sorter_network(8);
        for bits in 0u32..256 {
            let mut lanes: Vec<u8> = (0..8).map(|i| ((bits >> i) & 1) as u8).collect();
            net.apply(&mut lanes);
            assert!(lanes.windows(2).all(|w| w[0] <= w[1]), "bits = {bits:#b}");
        }
    }

    #[test]
    fn zero_one_principle_merge_width_8() {
        // All bitonic 0/1 inputs of width 8: ascending 0/1 prefix is a run
        // of zeros then ones; descending is ones then zeros.
        let net = merge_network(8);
        for zeros_a in 0..=4usize {
            for ones_b in 0..=4usize {
                let mut lanes = vec![0u8; 8];
                for lane in lanes.iter_mut().take(4).skip(zeros_a) {
                    *lane = 1;
                }
                for lane in lanes.iter_mut().take(4 + ones_b).skip(4) {
                    *lane = 1;
                }
                net.apply(&mut lanes);
                assert!(
                    lanes.windows(2).all(|w| w[0] <= w[1]),
                    "zeros_a={zeros_a} ones_b={ones_b}"
                );
            }
        }
    }

    #[test]
    fn stages_have_disjoint_lanes() {
        for net in [sorter_network(32), merge_network(64)] {
            for stage in net.stages() {
                let mut seen = vec![false; net.width()];
                for &(a, b) in stage {
                    assert!(!seen[a] && !seen[b], "lane reused within a stage");
                    seen[a] = true;
                    seen[b] = true;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn sorter_rejects_non_power_of_two() {
        let _ = sorter_network(6);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn apply_rejects_wrong_width() {
        let net = sorter_network(4);
        let mut lanes = [1u32, 2];
        net.apply(&mut lanes);
    }
}
