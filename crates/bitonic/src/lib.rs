//! Bitonic compare-and-exchange networks.
//!
//! The Bonsai hardware mergers are built from *bitonic half-mergers*: fully
//! pipelined networks that merge two sorted `k`-record tuples per cycle
//! (§II-A of the paper, after Batcher 1968 and Farmahini-Farahani 2008).
//! The 16-record presorter of §VI-C1 is a full bitonic *sorting* network.
//!
//! This crate implements both as explicit compare-and-exchange (CAS)
//! schedules — the same schedule the hardware wires up — so that
//!
//! - the functional result is exactly what the FPGA datapath computes, and
//! - the structural statistics (pipeline depth, CAS count) feed the
//!   resource model's `Θ(k·log k)` logic-utilization estimates.
//!
//! # Example
//!
//! ```
//! use bonsai_bitonic::HalfMerger;
//! use bonsai_records::U32Rec;
//!
//! let hm = HalfMerger::new(4);
//! let a: Vec<U32Rec> = [1u32, 3, 5, 7].map(U32Rec::new).to_vec();
//! let b: Vec<U32Rec> = [2u32, 4, 6, 8].map(U32Rec::new).to_vec();
//! let merged = hm.merge(&a, &b);
//! assert_eq!(merged, [1u32, 2, 3, 4, 5, 6, 7, 8].map(U32Rec::new).to_vec());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod network;
mod presorter;

pub use network::{merge_network, sorter_network, Network};
pub use presorter::{HalfMerger, Presorter};

/// Number of compare-and-exchange units in a `2k`-record bitonic
/// half-merger (`k·(log₂ k + 1)`, the paper's `Θ(k log k)` logic term).
///
/// # Panics
///
/// Panics if `k` is not a power of two.
pub fn half_merger_cas_count(k: usize) -> usize {
    merge_network(2 * k).cas_count()
}

/// Pipeline depth (in CAS stages) of a `2k`-record bitonic half-merger
/// (`log₂(2k)`, the paper's "latency log k" up to one stage).
///
/// # Panics
///
/// Panics if `k` is not a power of two.
pub fn half_merger_depth(k: usize) -> usize {
    merge_network(2 * k).depth()
}
