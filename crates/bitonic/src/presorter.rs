//! The half-merger and presorter building blocks.

use bonsai_records::Record;

use crate::network::{merge_network, sorter_network, Network};

/// A `2k`-record bitonic half-merger: merges two sorted `k`-record tuples
/// into one sorted `2k`-record tuple (§II-A).
///
/// In hardware this is a fully pipelined network accepting one tuple pair
/// per cycle with latency [`HalfMerger::depth`]; functionally it computes
/// an exact 2-way merge of the tuples.
///
/// # Example
///
/// ```
/// use bonsai_bitonic::HalfMerger;
/// use bonsai_records::U64Rec;
///
/// let hm = HalfMerger::new(2);
/// let out = hm.merge(&[U64Rec::new(1), U64Rec::new(9)], &[U64Rec::new(2), U64Rec::new(3)]);
/// assert_eq!(out, vec![U64Rec::new(1), U64Rec::new(2), U64Rec::new(3), U64Rec::new(9)]);
/// ```
#[derive(Debug, Clone)]
pub struct HalfMerger {
    k: usize,
    network: Network,
}

impl HalfMerger {
    /// Builds a half-merger for `k`-record tuples.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a power of two.
    pub fn new(k: usize) -> Self {
        assert!(k.is_power_of_two(), "tuple width must be a power of two");
        Self {
            k,
            network: merge_network(2 * k),
        }
    }

    /// Tuple width `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pipeline depth in cycles (`log₂(2k)`).
    pub fn depth(&self) -> usize {
        self.network.depth()
    }

    /// Number of compare-and-exchange units (`k·log₂(2k)`).
    pub fn cas_count(&self) -> usize {
        self.network.cas_count()
    }

    /// Merges two sorted tuples of at most `k` records each; short tuples
    /// are padded with [`Record::MAX`] and the padding is dropped from the
    /// output, mirroring how the hardware pads partial batches.
    ///
    /// # Panics
    ///
    /// Panics if either tuple is longer than `k`, or (in debug builds) if
    /// either tuple is not sorted.
    pub fn merge<R: Record>(&self, a: &[R], b: &[R]) -> Vec<R> {
        assert!(a.len() <= self.k, "left tuple exceeds width k");
        assert!(b.len() <= self.k, "right tuple exceeds width k");
        debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "left tuple unsorted");
        debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "right tuple unsorted");

        let mut lanes = Vec::with_capacity(2 * self.k);
        lanes.extend_from_slice(a);
        lanes.resize(self.k, R::MAX);
        // Second half must be descending for a bitonic input.
        let mut b_padded = Vec::with_capacity(self.k);
        b_padded.extend_from_slice(b);
        b_padded.resize(self.k, R::MAX);
        lanes.extend(b_padded.into_iter().rev());

        self.network.apply(&mut lanes);
        lanes.truncate(a.len() + b.len());
        lanes
    }
}

/// The bitonic presorter of §VI-C1: sorts consecutive `chunk`-record
/// chunks of the input stream, one chunk per cycle once the pipeline is
/// full.
///
/// The paper uses a 16-record presorter in front of the first merge stage,
/// which removes one merge stage and saves 10–20 % of total sort time.
///
/// # Example
///
/// ```
/// use bonsai_bitonic::Presorter;
/// use bonsai_records::U32Rec;
///
/// let ps = Presorter::new(4);
/// let mut data: Vec<U32Rec> = [4u32, 2, 3, 1, 8, 6, 7, 5].map(U32Rec::new).to_vec();
/// ps.presort(&mut data);
/// assert_eq!(data, [1u32, 2, 3, 4, 5, 6, 7, 8].map(U32Rec::new).to_vec());
/// ```
#[derive(Debug, Clone)]
pub struct Presorter {
    chunk: usize,
    network: Network,
}

impl Presorter {
    /// Builds a presorter for `chunk`-record chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is not a power of two or is less than 2.
    pub fn new(chunk: usize) -> Self {
        assert!(
            chunk.is_power_of_two() && chunk >= 2,
            "presorter chunk must be a power of two >= 2"
        );
        Self {
            chunk,
            network: sorter_network(chunk),
        }
    }

    /// Chunk length in records.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Pipeline depth in cycles.
    pub fn depth(&self) -> usize {
        self.network.depth()
    }

    /// Number of compare-and-exchange units.
    pub fn cas_count(&self) -> usize {
        self.network.cas_count()
    }

    /// Sorts each consecutive `chunk`-record chunk of `data` in place. A
    /// trailing partial chunk is padded with [`Record::MAX`] internally.
    pub fn presort<R: Record>(&self, data: &mut [R]) {
        let mut offset = 0;
        while offset < data.len() {
            let end = (offset + self.chunk).min(data.len());
            if end - offset == self.chunk {
                self.network.apply(&mut data[offset..end]);
            } else {
                let mut lanes = Vec::with_capacity(self.chunk);
                lanes.extend_from_slice(&data[offset..end]);
                lanes.resize(self.chunk, R::MAX);
                self.network.apply(&mut lanes);
                data[offset..end].copy_from_slice(&lanes[..end - offset]);
            }
            offset = end;
        }
    }

    /// Cycles to stream `n` records through the presorter: one chunk per
    /// cycle plus the pipeline-fill latency.
    pub fn cycles_for(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        n.div_ceil(self.chunk as u64) + self.depth() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_records::{U32Rec, W512Rec};

    fn recs(vals: &[u32]) -> Vec<U32Rec> {
        vals.iter().map(|&v| U32Rec::new(v)).collect()
    }

    #[test]
    fn half_merger_merges_equal_width() {
        let hm = HalfMerger::new(8);
        let a = recs(&[1, 3, 5, 7, 9, 11, 13, 15]);
        let b = recs(&[2, 4, 6, 8, 10, 12, 14, 16]);
        let out = hm.merge(&a, &b);
        assert_eq!(out, recs(&(1..=16).collect::<Vec<_>>()));
    }

    #[test]
    fn half_merger_handles_short_tuples() {
        let hm = HalfMerger::new(4);
        let out = hm.merge(&recs(&[5, 9]), &recs(&[1]));
        assert_eq!(out, recs(&[1, 5, 9]));
        let out = hm.merge(&recs(&[]), &recs(&[2, 3]));
        assert_eq!(out, recs(&[2, 3]));
    }

    #[test]
    fn half_merger_handles_duplicates() {
        let hm = HalfMerger::new(4);
        let out = hm.merge(&recs(&[2, 2, 2, 2]), &recs(&[2, 2, 2, 2]));
        assert_eq!(out, recs(&[2; 8]));
    }

    #[test]
    fn half_merger_depth_and_cas_match_paper() {
        // 2k-record half-merger: latency log₂(2k), k·log₂(2k) CAS units.
        for log_k in 0..=5 {
            let k = 1usize << log_k;
            let hm = HalfMerger::new(k);
            assert_eq!(hm.depth(), log_k + 1);
            assert_eq!(hm.cas_count(), k * (log_k + 1));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn half_merger_rejects_oversized_tuple() {
        let hm = HalfMerger::new(2);
        let _ = hm.merge(&recs(&[1, 2, 3]), &recs(&[4]));
    }

    #[test]
    fn presorter_sorts_partial_tail() {
        let ps = Presorter::new(8);
        let mut data = recs(&[9, 1, 8, 2, 7, 3, 6, 4, 11, 10, 12]);
        ps.presort(&mut data);
        assert_eq!(&data[..8], recs(&[1, 2, 3, 4, 6, 7, 8, 9]).as_slice());
        assert_eq!(&data[8..], recs(&[10, 11, 12]).as_slice());
    }

    #[test]
    fn presorter_cycles_model() {
        let ps = Presorter::new(16);
        assert_eq!(ps.cycles_for(0), 0);
        // 160 records = 10 chunks + depth(16) = 10 stages.
        assert_eq!(ps.cycles_for(160), 10 + ps.depth() as u64);
    }

    #[test]
    fn presorter_wide_records() {
        let ps = Presorter::new(4);
        let mut data: Vec<W512Rec> = (0..8u64)
            .rev()
            .map(|i| W512Rec::new([i, 0, 0, 0, 0, 0, 0, 1]))
            .collect();
        ps.presort(&mut data);
        assert!(data[..4].windows(2).all(|w| w[0] <= w[1]));
        assert!(data[4..].windows(2).all(|w| w[0] <= w[1]));
    }
}
