//! Randomized property tests for the bitonic networks, driven by a
//! seeded deterministic generator.

use bonsai_bitonic::{merge_network, sorter_network, HalfMerger, Presorter};
use bonsai_records::U32Rec;
use bonsai_rng::Rng;

fn random_vec(rng: &mut Rng, len: usize) -> Vec<u32> {
    (0..len).map(|_| rng.next_u32()).collect()
}

#[test]
fn sorter_network_sorts_random_input() {
    let mut rng = Rng::seed_from_u64(0xB170_0001);
    let net = sorter_network(32);
    for _ in 0..128 {
        let mut vals = random_vec(&mut rng, 32);
        let mut expected = vals.clone();
        expected.sort_unstable();
        net.apply(&mut vals);
        assert_eq!(vals, expected);
    }
}

#[test]
fn merge_network_equals_std_merge() {
    let mut rng = Rng::seed_from_u64(0xB170_0002);
    let net = merge_network(32);
    for _ in 0..128 {
        let mut a = random_vec(&mut rng, 16);
        let mut b = random_vec(&mut rng, 16);
        a.sort_unstable();
        b.sort_unstable();
        let mut expected: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expected.sort_unstable();

        let mut lanes = a.clone();
        lanes.extend(b.iter().rev());
        net.apply(&mut lanes);
        assert_eq!(lanes, expected);
    }
}

#[test]
fn half_merger_equals_std_merge_any_lengths() {
    let mut rng = Rng::seed_from_u64(0xB170_0003);
    let hm = HalfMerger::new(8);
    for _ in 0..256 {
        let (la, lb) = (rng.below_usize(8), rng.below_usize(8));
        let mut a = random_vec(&mut rng, la);
        let mut b = random_vec(&mut rng, lb);
        a.sort_unstable();
        b.sort_unstable();
        let ra: Vec<U32Rec> = a.iter().map(|&v| U32Rec::new(v)).collect();
        let rb: Vec<U32Rec> = b.iter().map(|&v| U32Rec::new(v)).collect();
        let out = hm.merge(&ra, &rb);

        let mut expected: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expected.sort_unstable();
        let expected: Vec<U32Rec> = expected.into_iter().map(U32Rec::new).collect();
        assert_eq!(out, expected);
    }
}

#[test]
fn presorter_output_is_chunkwise_sorted_permutation() {
    let mut rng = Rng::seed_from_u64(0xB170_0004);
    for _ in 0..128 {
        let len = rng.below_usize(200);
        let vals = random_vec(&mut rng, len);
        let chunk = 1usize << rng.range_usize(1, 5);
        let ps = Presorter::new(chunk);
        let mut data: Vec<U32Rec> = vals.iter().map(|&v| U32Rec::new(v)).collect();
        ps.presort(&mut data);

        for c in data.chunks(chunk) {
            assert!(c.windows(2).all(|w| w[0] <= w[1]));
        }
        let mut sorted_in = vals.clone();
        sorted_in.sort_unstable();
        let mut sorted_out: Vec<u32> = data.iter().map(|r| r.0).collect();
        sorted_out.sort_unstable();
        assert_eq!(sorted_in, sorted_out);
    }
}
