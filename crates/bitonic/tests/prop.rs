//! Property-based tests for the bitonic networks.

use bonsai_bitonic::{merge_network, sorter_network, HalfMerger, Presorter};
use bonsai_records::U32Rec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn sorter_network_sorts_random_input(mut vals in proptest::collection::vec(any::<u32>(), 32..=32)) {
        let net = sorter_network(32);
        let mut expected = vals.clone();
        expected.sort_unstable();
        net.apply(&mut vals);
        prop_assert_eq!(vals, expected);
    }

    #[test]
    fn merge_network_equals_std_merge(mut a in proptest::collection::vec(any::<u32>(), 16..=16),
                                      mut b in proptest::collection::vec(any::<u32>(), 16..=16)) {
        a.sort_unstable();
        b.sort_unstable();
        let mut expected: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expected.sort_unstable();

        let net = merge_network(32);
        let mut lanes = a.clone();
        lanes.extend(b.iter().rev());
        net.apply(&mut lanes);
        prop_assert_eq!(lanes, expected);
    }

    #[test]
    fn half_merger_equals_std_merge_any_lengths(
        mut a in proptest::collection::vec(any::<u32>(), 0..8),
        mut b in proptest::collection::vec(any::<u32>(), 0..8),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let hm = HalfMerger::new(8);
        let ra: Vec<U32Rec> = a.iter().map(|&v| U32Rec::new(v)).collect();
        let rb: Vec<U32Rec> = b.iter().map(|&v| U32Rec::new(v)).collect();
        let out = hm.merge(&ra, &rb);

        let mut expected: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expected.sort_unstable();
        let expected: Vec<U32Rec> = expected.into_iter().map(U32Rec::new).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn presorter_output_is_chunkwise_sorted_permutation(
        vals in proptest::collection::vec(any::<u32>(), 0..200),
        log_chunk in 1usize..6,
    ) {
        let chunk = 1usize << log_chunk;
        let ps = Presorter::new(chunk);
        let mut data: Vec<U32Rec> = vals.iter().map(|&v| U32Rec::new(v)).collect();
        ps.presort(&mut data);

        for c in data.chunks(chunk) {
            prop_assert!(c.windows(2).all(|w| w[0] <= w[1]));
        }
        let mut sorted_in = vals.clone();
        sorted_in.sort_unstable();
        let mut sorted_out: Vec<u32> = data.iter().map(|r| r.0).collect();
        sorted_out.sort_unstable();
        prop_assert_eq!(sorted_in, sorted_out);
    }
}
