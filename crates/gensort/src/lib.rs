//! Workload generation for the Bonsai benchmarks.
//!
//! The paper evaluates on two workloads (§VI-A):
//!
//! 1. *"32-bit integers generated uniformly at random"*, and
//! 2. gensort-style 100-byte records (10-byte key, 90-byte value) per Jim
//!    Gray's sort benchmark, where the 90-byte value is hashed to a 6-byte
//!    index so the pair fits a 16-byte AMT record.
//!
//! [`GensortRecord`] reproduces the 100-byte layout and the key+hash
//! packing; [`dist`] provides uniform and adversarial key distributions
//! for robustness testing.
//!
//! # Example
//!
//! ```
//! use bonsai_gensort::GensortGenerator;
//! use bonsai_records::Record;
//!
//! let mut generator = GensortGenerator::seeded(42);
//! let rec = generator.next_record();
//! let packed = rec.to_packed16();
//! assert_eq!(packed.key(), rec.key_u128());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
mod gensort;
pub mod io;

pub use gensort::{GensortGenerator, GensortRecord, GENSORT_RECORD_BYTES};
