//! Gensort-style 100-byte records (Jim Gray's sort benchmark).

use bonsai_records::{Packed16, Record};
use bonsai_rng::Rng;

/// Width of a gensort record: 10-byte key + 90-byte value.
pub const GENSORT_RECORD_BYTES: usize = 100;

const KEY_BYTES: usize = 10;
const VALUE_BYTES: usize = 90;

/// One 100-byte sort-benchmark record: a 10-byte binary key and a 90-byte
/// value (§VI-A of the paper, after <http://sortbenchmark.org/>).
///
/// The paper's pipeline hashes the value down to a 6-byte index and sorts
/// `(key, index)` as a 16-byte record; [`GensortRecord::to_packed16`]
/// performs exactly that transformation.
///
/// # Example
///
/// ```
/// use bonsai_gensort::GensortRecord;
///
/// let rec = GensortRecord::new([1u8; 10], [2u8; 90]);
/// assert_eq!(rec.to_bytes().len(), 100);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GensortRecord {
    key: [u8; KEY_BYTES],
    value: [u8; VALUE_BYTES],
}

impl core::fmt::Debug for GensortRecord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "GensortRecord {{ key: {:02x?}, value: [..90] }}",
            self.key
        )
    }
}

impl GensortRecord {
    /// Builds a record from its raw key and value.
    pub const fn new(key: [u8; KEY_BYTES], value: [u8; VALUE_BYTES]) -> Self {
        Self { key, value }
    }

    /// Parses a record from a 100-byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != 100`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            GENSORT_RECORD_BYTES,
            "gensort records are 100 bytes"
        );
        let mut key = [0u8; KEY_BYTES];
        let mut value = [0u8; VALUE_BYTES];
        key.copy_from_slice(&bytes[..KEY_BYTES]);
        value.copy_from_slice(&bytes[KEY_BYTES..]);
        Self { key, value }
    }

    /// Serializes the record into its 100-byte wire format.
    pub fn to_bytes(&self) -> [u8; GENSORT_RECORD_BYTES] {
        let mut buf = [0u8; GENSORT_RECORD_BYTES];
        buf[..KEY_BYTES].copy_from_slice(&self.key);
        buf[KEY_BYTES..].copy_from_slice(&self.value);
        buf
    }

    /// The 10-byte binary key.
    pub const fn key(&self) -> &[u8; KEY_BYTES] {
        &self.key
    }

    /// The 90-byte value.
    pub const fn value(&self) -> &[u8; VALUE_BYTES] {
        &self.value
    }

    /// The key interpreted as an 80-bit big-endian integer.
    pub fn key_u128(&self) -> u128 {
        let mut k = 0u128;
        for &b in &self.key {
            k = (k << 8) | u128::from(b);
        }
        k
    }

    /// Hashes the 90-byte value to a 6-byte (48-bit) index with FNV-1a.
    ///
    /// The index lets the sorted output locate the original wide value
    /// without moving 90 bytes through the merge tree.
    pub fn value_index(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for &b in &self.value {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h & ((1u64 << 48) - 1) // keep low 48 bits
    }

    /// Packs the record into the 16-byte AMT representation of §VI-A:
    /// 80-bit key (most significant) + 48-bit hashed value index,
    /// sanitized so it never equals the reserved terminal record.
    pub fn to_packed16(&self) -> Packed16 {
        Packed16::from_parts(self.key_u128(), self.value_index()).sanitize()
    }
}

/// A deterministic generator of random [`GensortRecord`]s.
///
/// Mirrors `gensort -b` behaviour in spirit: uniformly random binary
/// keys, pseudo-random printable values, reproducible from a seed.
#[derive(Debug)]
pub struct GensortGenerator {
    rng: Rng,
}

impl GensortGenerator {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Generates the next record.
    pub fn next_record(&mut self) -> GensortRecord {
        let mut key = [0u8; KEY_BYTES];
        self.rng.fill_bytes(&mut key);
        let mut value = [0u8; VALUE_BYTES];
        self.rng.fill_bytes(&mut value);
        // Printable-ish values, as gensort's ASCII mode produces.
        for b in &mut value {
            *b = b' ' + (*b % 95);
        }
        GensortRecord { key, value }
    }

    /// Generates `n` records.
    pub fn take_records(&mut self, n: usize) -> Vec<GensortRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    /// Generates `n` records already packed for the AMT datapath.
    pub fn take_packed(&mut self, n: usize) -> Vec<Packed16> {
        (0..n).map(|_| self.next_record().to_packed16()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let mut generator = GensortGenerator::seeded(7);
        let rec = generator.next_record();
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len(), GENSORT_RECORD_BYTES);
        assert_eq!(GensortRecord::from_bytes(&bytes), rec);
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<_> = GensortGenerator::seeded(1).take_records(16);
        let b: Vec<_> = GensortGenerator::seeded(1).take_records(16);
        assert_eq!(a, b);
        let c: Vec<_> = GensortGenerator::seeded(2).take_records(16);
        assert_ne!(a, c);
    }

    #[test]
    fn packed_order_matches_key_order() {
        let mut generator = GensortGenerator::seeded(3);
        let mut recs = generator.take_records(256);
        recs.sort_by(|a, b| a.key().cmp(b.key()));
        let packed: Vec<_> = recs.iter().map(GensortRecord::to_packed16).collect();
        // Keys are distinct with overwhelming probability, so packed
        // records must already be sorted.
        assert!(packed.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn value_index_fits_48_bits() {
        let mut generator = GensortGenerator::seeded(4);
        for _ in 0..64 {
            let rec = generator.next_record();
            assert!(rec.value_index() < (1 << 48));
        }
    }

    #[test]
    fn values_are_printable() {
        let mut generator = GensortGenerator::seeded(5);
        let rec = generator.next_record();
        assert!(rec.value().iter().all(|&b| (b' '..=b'~').contains(&b)));
    }

    #[test]
    fn key_u128_is_big_endian() {
        let mut key = [0u8; 10];
        key[0] = 1;
        let rec = GensortRecord::new(key, [b'x'; 90]);
        assert_eq!(rec.key_u128(), 1u128 << 72);
    }

    #[test]
    fn packed_never_terminal() {
        use bonsai_records::Record;
        let rec = GensortRecord::new([0; 10], [b' '; 90]);
        // Even a zero key must not produce the terminal record.
        assert!(!rec.to_packed16().is_terminal());
    }
}
