//! Synthetic key distributions for robustness and scalability testing.
//!
//! The paper's headline numbers use uniform random keys; merge sort's
//! behavior is data-oblivious, but the test suite exercises adversarial
//! distributions (sorted, reversed, heavy duplicates, skew) to verify the
//! simulator's correctness on all of them.

use bonsai_records::{Record, U32Rec, U64Rec};
use bonsai_rng::Rng;

/// A key distribution for synthetic workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Independent uniform keys over the full domain (§VI-A).
    Uniform,
    /// Already sorted ascending (best case for run detection).
    Sorted,
    /// Sorted descending (worst case for naive run detection).
    Reverse,
    /// Only `distinct` different key values (heavy duplicates).
    FewDistinct(u32),
    /// A sorted array with `fraction` of elements randomly displaced.
    AlmostSorted(f64),
    /// Zipf-like skew: 90% of records drawn from the lowest
    /// `hot_fraction` of the key space.
    Skewed {
        /// Fraction of the key space that is "hot" (0 < f < 1).
        hot_fraction: f64,
    },
}

impl Distribution {
    /// Generates `n` 32-bit records from this distribution, sanitized so
    /// none equals the reserved terminal record.
    pub fn generate_u32(&self, n: usize, seed: u64) -> Vec<U32Rec> {
        let mut rng = Rng::seed_from_u64(seed);
        let raw: Vec<u32> = match *self {
            Distribution::Uniform => (0..n).map(|_| rng.next_u32()).collect(),
            Distribution::Sorted => {
                let mut v: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
                v.sort_unstable();
                v
            }
            Distribution::Reverse => {
                let mut v: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
                v.sort_unstable_by(|a, b| b.cmp(a));
                v
            }
            Distribution::FewDistinct(distinct) => {
                let distinct = distinct.max(1);
                (0..n).map(|_| rng.below_u32(distinct)).collect()
            }
            Distribution::AlmostSorted(fraction) => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "fraction must be in [0, 1]"
                );
                let mut v: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
                v.sort_unstable();
                let swaps = ((n as f64) * fraction / 2.0) as usize;
                for _ in 0..swaps {
                    if n >= 2 {
                        let i = rng.below_usize(n);
                        let j = rng.below_usize(n);
                        v.swap(i, j);
                    }
                }
                v
            }
            Distribution::Skewed { hot_fraction } => {
                assert!(
                    hot_fraction > 0.0 && hot_fraction < 1.0,
                    "hot fraction must be in (0, 1)"
                );
                let hot_max = (u32::MAX as f64 * hot_fraction) as u32;
                (0..n)
                    .map(|_| {
                        if rng.below_u32(10) < 9 {
                            rng.below_u32(hot_max.max(1))
                        } else {
                            rng.next_u32()
                        }
                    })
                    .collect()
            }
        };
        raw.into_iter().map(|v| U32Rec::new(v).sanitize()).collect()
    }

    /// Generates `n` 64-bit records from this distribution (uniform key
    /// construction, same shapes as [`Distribution::generate_u32`]).
    pub fn generate_u64(&self, n: usize, seed: u64) -> Vec<U64Rec> {
        self.generate_u32(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, r)| U64Rec::new((u64::from(r.0) << 20) | (i as u64 & 0xFFFFF)).sanitize())
            .collect()
    }
}

/// Convenience: `n` uniform 32-bit records (the paper's main workload).
pub fn uniform_u32(n: usize, seed: u64) -> Vec<U32Rec> {
    Distribution::Uniform.generate_u32(n, seed)
}

/// Convenience: `n` uniform 64-bit records.
pub fn uniform_u64(n: usize, seed: u64) -> Vec<U64Rec> {
    Distribution::Uniform.generate_u64(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_reproducible() {
        assert_eq!(uniform_u32(100, 9), uniform_u32(100, 9));
        assert_ne!(uniform_u32(100, 9), uniform_u32(100, 10));
    }

    #[test]
    fn no_distribution_emits_terminal_records() {
        for d in [
            Distribution::Uniform,
            Distribution::Sorted,
            Distribution::Reverse,
            Distribution::FewDistinct(4),
            Distribution::AlmostSorted(0.1),
            Distribution::Skewed { hot_fraction: 0.1 },
        ] {
            let recs = d.generate_u32(500, 1);
            assert_eq!(recs.len(), 500);
            assert!(recs.iter().all(|r| !r.is_terminal()), "{d:?}");
        }
    }

    #[test]
    fn sorted_is_sorted_and_reverse_is_reversed() {
        let s = Distribution::Sorted.generate_u32(200, 2);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let r = Distribution::Reverse.generate_u32(200, 2);
        assert!(r.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn few_distinct_has_few_values() {
        let recs = Distribution::FewDistinct(3).generate_u32(1000, 3);
        let mut vals: Vec<u32> = recs.iter().map(|r| r.0).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() <= 3);
    }

    #[test]
    fn skewed_concentrates_mass() {
        let recs = Distribution::Skewed { hot_fraction: 0.01 }.generate_u32(10_000, 4);
        let hot_max = (u32::MAX as f64 * 0.01) as u32;
        let hot = recs.iter().filter(|r| r.0 < hot_max).count();
        assert!(hot > 8_000, "expected ~90% hot, got {hot}");
    }

    #[test]
    fn u64_generation_produces_mostly_distinct_keys() {
        let recs = uniform_u64(1000, 5);
        let mut vals: Vec<u64> = recs.iter().map(|r| r.0).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() > 990);
    }
}
