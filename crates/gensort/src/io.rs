//! File I/O for sort-benchmark datasets.
//!
//! `gensort` writes 100-byte records to a file; `valsort` validates that
//! a file is sorted and summarizes it. These functions are the library
//! equivalents for [`GensortRecord`] files and for files of any
//! [`WireRecord`] type, used by the external sorter and the CLI.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bonsai_records::wire::WireRecord;
use bonsai_records::Record;

use crate::gensort::{GensortGenerator, GensortRecord, GENSORT_RECORD_BYTES};

/// Writes `n` seeded gensort records (100 bytes each) to `path`.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn generate_gensort_file(path: &Path, n: u64, seed: u64) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut generator = GensortGenerator::seeded(seed);
    for _ in 0..n {
        w.write_all(&generator.next_record().to_bytes())?;
    }
    w.flush()
}

/// Reads every gensort record from `path`.
///
/// # Errors
///
/// Fails on I/O errors or if the file length is not a multiple of 100.
pub fn read_gensort_file(path: &Path) -> io::Result<Vec<GensortRecord>> {
    let mut data = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut data)?;
    if data.len() % GENSORT_RECORD_BYTES != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "file length is not a multiple of 100 bytes",
        ));
    }
    Ok(data
        .chunks_exact(GENSORT_RECORD_BYTES)
        .map(GensortRecord::from_bytes)
        .collect())
}

/// Writes fixed-width wire records to `path`.
///
/// # Errors
///
/// Propagates any I/O error.
pub fn write_wire_file<R: WireRecord>(path: &Path, records: &[R]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut buf = vec![0u8; R::WIRE_BYTES];
    for rec in records {
        rec.write_to(&mut buf);
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Reads fixed-width wire records from `path`.
///
/// # Errors
///
/// Fails on I/O errors or if the file length is ragged.
pub fn read_wire_file<R: WireRecord>(path: &Path) -> io::Result<Vec<R>> {
    let mut data = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut data)?;
    if data.len() % R::WIRE_BYTES != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "file length is not a multiple of the record width",
        ));
    }
    Ok(data.chunks_exact(R::WIRE_BYTES).map(R::read_from).collect())
}

/// Summary produced by [`valsort`] — the fields the reference `valsort`
/// tool reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValsortSummary {
    /// Total records in the file.
    pub records: u64,
    /// Number of adjacent out-of-order pairs (0 for a sorted file).
    pub unordered: u64,
    /// Number of adjacent duplicate keys.
    pub duplicates: u64,
    /// Order-independent checksum (wrapping sum of key words), for
    /// verifying the output is a permutation of the input.
    pub checksum: u64,
}

impl ValsortSummary {
    /// `true` when the file is sorted.
    pub fn is_sorted(&self) -> bool {
        self.unordered == 0
    }
}

/// Validates a stream of records valsort-style.
pub fn valsort<R: Record>(records: &[R]) -> ValsortSummary {
    use std::hash::Hasher;
    let mut unordered = 0;
    let mut duplicates = 0;
    let mut checksum = 0u64;
    for rec in records {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        rec.hash(&mut h);
        checksum = checksum.wrapping_add(h.finish());
    }
    for pair in records.windows(2) {
        match pair[0].cmp(&pair[1]) {
            core::cmp::Ordering::Greater => unordered += 1,
            core::cmp::Ordering::Equal => duplicates += 1,
            core::cmp::Ordering::Less => {}
        }
    }
    ValsortSummary {
        records: records.len() as u64,
        unordered,
        duplicates,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_records::U32Rec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bonsai-gensort-io-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn gensort_file_roundtrip() {
        let path = tmp("roundtrip");
        generate_gensort_file(&path, 100, 9).expect("write");
        let recs = read_gensort_file(&path).expect("read");
        assert_eq!(recs.len(), 100);
        // Regeneration with the same seed is identical.
        let again = GensortGenerator::seeded(9).take_records(100);
        assert_eq!(recs, again);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wire_file_roundtrip() {
        let path = tmp("wire");
        let recs: Vec<U32Rec> = (0..500u32).rev().map(U32Rec::new).collect();
        write_wire_file(&path, &recs).expect("write");
        let back: Vec<U32Rec> = read_wire_file(&path).expect("read");
        assert_eq!(back, recs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ragged_file_is_invalid_data() {
        let path = tmp("ragged");
        std::fs::write(&path, [0u8; 7]).expect("write");
        let err = read_wire_file::<U32Rec>(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn valsort_detects_disorder_and_duplicates() {
        let sorted: Vec<U32Rec> = [1u32, 2, 2, 3].map(U32Rec::new).to_vec();
        let s = valsort(&sorted);
        assert!(s.is_sorted());
        assert_eq!(s.duplicates, 1);
        assert_eq!(s.records, 4);

        let unsorted: Vec<U32Rec> = [3u32, 1, 2].map(U32Rec::new).to_vec();
        let u = valsort(&unsorted);
        assert!(!u.is_sorted());
        assert_eq!(u.unordered, 1);
        // Checksum is order-independent: a permutation matches.
        let mut perm = unsorted.clone();
        perm.sort_unstable();
        assert_eq!(valsort(&perm).checksum, u.checksum);
    }
}
