//! The simulation hot loop must be allocation-free.
//!
//! Every buffer a pass touches per cycle — leaf FIFOs, merger output
//! FIFOs, loader/drain in-flight queues, the output stream — is sized
//! at construction, so driving a pass to completion (on either loop)
//! must perform zero heap allocations after `PassSim::new`. A counting
//! global allocator enforces this; it is armed only around the
//! simulation loop, so construction and teardown may allocate freely.
//!
//! This file deliberately contains a single `#[test]`: the armed flag
//! is process-global, and a concurrently running test would count its
//! own allocations against the hot loop.
//!
//! The contract applies to the production loop only: the opt-in
//! `sanitize` feature weaves diagnostic probes into the cycle loop
//! that record findings on the heap by design, so the whole file is
//! compiled out under that feature.
#![cfg(not(feature = "sanitize"))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bonsai_amt::passsim::PassSim;
use bonsai_amt::{AmtConfig, SimEngineConfig};
use bonsai_gensort::dist::uniform_u32;
use bonsai_memsim::Memory;
use bonsai_records::run::RunSet;
use bonsai_records::{Record, U32Rec};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn note_alloc() {
    if ARMED.load(Ordering::Relaxed) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn drive(reference: bool) -> u64 {
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    let data = uniform_u32(30_000, 9);
    let sanitized: Vec<U32Rec> = data.into_iter().map(Record::sanitize).collect();
    let runs = RunSet::from_chunks(sanitized, cfg.initial_run_len());
    let mut sim = PassSim::new(&cfg, runs, 16);
    let mut memory = Memory::new(cfg.memory);

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let mut cycle = 0u64;
    while !sim.is_done() {
        if reference {
            sim.tick(cycle, &mut memory);
            cycle += 1;
        } else {
            cycle += sim.advance(cycle, &mut memory);
        }
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    // Teardown sanity (unarmed): the pass actually ran to completion.
    let (out_runs, pass) = sim.finish(1);
    assert_eq!(out_runs.len(), 30_000);
    assert!(pass.cycles > 0);
    allocs
}

#[test]
fn simulation_loop_is_allocation_free_on_both_paths() {
    assert_eq!(drive(false), 0, "fast path allocated in the hot loop");
    assert_eq!(drive(true), 0, "reference loop allocated in the hot loop");
}
