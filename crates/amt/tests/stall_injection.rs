//! Stall-injection robustness tests.
//!
//! §V-A of the paper: "In case one input buffer becomes empty, the AMT
//! will automatically stall until the data loader feeds the buffer with
//! more data. … we were pausing the data loader in order to ensure the
//! AMT behaves correctly with empty input buffers." These tests inject
//! randomized input droughts and output back-pressure into the tree and
//! verify the merged output never changes.

use bonsai_amt::{AmtConfig, MergeTree};
use bonsai_records::{Record, U32Rec};
use bonsai_rng::Rng;

/// Drives a tree over one group of runs with randomized per-cycle
/// input-feed and output-drain decisions.
fn merge_with_stalls(
    config: AmtConfig,
    runs: Vec<Vec<u32>>,
    stall_seed: u64,
    input_stall_pct: u32,
    output_stall_pct: u32,
) -> Vec<u32> {
    assert_eq!(runs.len(), config.l);
    let mut rng = Rng::seed_from_u64(stall_seed);
    let mut tree: MergeTree<U32Rec> = MergeTree::new(config);
    let mut streams: Vec<Vec<U32Rec>> = runs
        .into_iter()
        .map(|r| {
            let mut s: Vec<U32Rec> = r.into_iter().map(U32Rec::new).collect();
            s.push(U32Rec::TERMINAL);
            s.reverse();
            s
        })
        .collect();
    let mut out = Vec::new();
    let mut guard = 0u64;
    loop {
        for (leaf, stream) in streams.iter_mut().enumerate() {
            // Simulated loader drought on this leaf this cycle.
            if rng.chance_percent(input_stall_pct) {
                continue;
            }
            while tree.leaf_free(leaf) > 0 && !stream.is_empty() {
                let rec = stream.pop().expect("nonempty");
                tree.push_leaf(leaf, rec);
            }
        }
        tree.tick();
        // Simulated write-path back-pressure.
        if !rng.chance_percent(output_stall_pct) {
            while let Some(r) = tree.pop_root() {
                out.push(r);
            }
        }
        if streams.iter().all(Vec::is_empty) && tree.is_drained() {
            while let Some(r) = tree.pop_root() {
                out.push(r);
            }
            break;
        }
        guard += 1;
        assert!(guard < 10_000_000, "stalled tree never finished");
    }
    out.iter()
        .filter(|r| !r.is_terminal())
        .map(|r| r.0)
        .collect()
}

#[test]
fn output_is_invariant_under_stall_schedules() {
    let mut rng = Rng::seed_from_u64(0x57A1_0001);
    for _ in 0..16 {
        let runs: Vec<Vec<u32>> = (0..8)
            .map(|_| {
                let len = rng.below_usize(60);
                let mut r: Vec<u32> = (0..len).map(|_| rng.next_u32().max(1)).collect();
                r.sort_unstable();
                r
            })
            .collect();
        let seed_a = rng.next_u64();
        let seed_b = rng.next_u64();
        let input_pct = rng.below_u32(90);
        let output_pct = rng.below_u32(90);
        let config = AmtConfig::new(4, 8);
        let clean = merge_with_stalls(config, runs.clone(), seed_a, 0, 0);
        let stalled = merge_with_stalls(config, runs.clone(), seed_b, input_pct, output_pct);
        assert_eq!(&clean, &stalled, "stalls must never change output");

        let mut expected: Vec<u32> = runs.into_iter().flatten().collect();
        expected.sort_unstable();
        assert_eq!(clean, expected);
    }
}

#[test]
fn tree_survives_total_drought_then_resumes() {
    // Feed nothing for thousands of cycles, then deliver everything.
    let config = AmtConfig::new(2, 4);
    let mut tree: MergeTree<U32Rec> = MergeTree::new(config);
    for _ in 0..5_000 {
        tree.tick();
    }
    assert_eq!(tree.pop_root(), None);
    let out = merge_with_stalls(
        config,
        vec![vec![3, 5], vec![1], vec![], vec![2, 4]],
        7,
        50,
        50,
    );
    assert_eq!(out, vec![1, 2, 3, 4, 5]);
}
