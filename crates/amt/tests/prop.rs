//! Randomized cross-validation inside the AMT crate: the cycle engine,
//! the functional schedule, the loser tree and the heap merge are
//! interchangeable.

use bonsai_amt::{functional, loser_tree_merge, AmtConfig, SimEngine, SimEngineConfig};
use bonsai_records::U32Rec;
use bonsai_rng::Rng;

/// `0..max_runs` random runs of `0..max_len` records each, sorted.
fn sorted_runs(rng: &mut Rng, max_runs: usize, max_len: usize) -> Vec<Vec<U32Rec>> {
    let n_runs = rng.below_usize(max_runs);
    (0..n_runs)
        .map(|_| {
            let len = rng.below_usize(max_len);
            let mut v: Vec<u32> = (0..len).map(|_| rng.next_u32().max(1)).collect();
            v.sort_unstable();
            v.into_iter().map(U32Rec::new).collect()
        })
        .collect()
}

#[test]
fn loser_tree_equals_heap_merge() {
    let mut rng = Rng::seed_from_u64(0xA370_0001);
    for _ in 0..48 {
        let runs = sorted_runs(&mut rng, 12, 80);
        let slices: Vec<&[U32Rec]> = runs.iter().map(Vec::as_slice).collect();
        assert_eq!(loser_tree_merge(&slices), functional::kway_merge(&slices));
    }
}

#[test]
fn engine_equals_functional_schedule() {
    let mut rng = Rng::seed_from_u64(0xA370_0002);
    for _ in 0..48 {
        let len = rng.below_usize(2_000);
        let data: Vec<U32Rec> = (0..len)
            .map(|_| U32Rec::new(rng.next_u32().max(1)))
            .collect();
        let p = 1 << rng.below_usize(4);
        let l = 1 << rng.range_usize(1, 6);
        let presort = [1usize, 16][rng.below_usize(2)];
        let amt = AmtConfig::new(p, l);
        let mut cfg = SimEngineConfig::dram_sorter(amt, 4);
        cfg.presort = (presort > 1).then_some(presort);
        let (sim, sim_report) = SimEngine::new(cfg).sort(data.clone());
        let (func, func_stages) = functional::sort_balanced(data, amt.l, presort);
        assert_eq!(&sim, &func, "identical merge schedules must agree");
        assert_eq!(sim_report.stages(), func_stages);
    }
}

#[test]
fn merge_pass_preserves_multiset_and_shrinks_runs() {
    let mut rng = Rng::seed_from_u64(0xA370_0003);
    for _ in 0..48 {
        let len = rng.range_usize(1, 1_499);
        let chunk = rng.range_usize(1, 39);
        let fan_in = rng.range_usize(2, 19);
        let data: Vec<U32Rec> = (0..len)
            .map(|_| U32Rec::new(rng.next_u32().max(1)))
            .collect();
        let runs = bonsai_records::run::RunSet::from_chunks(data.clone(), chunk);
        let before = runs.num_runs();
        let after = functional::merge_pass(&runs, fan_in);
        assert!(after.validate().is_ok());
        assert_eq!(after.num_runs(), before.div_ceil(fan_in));
        let mut a: Vec<U32Rec> = data;
        let mut b = after.into_records();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
