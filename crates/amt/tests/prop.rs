//! Property-based cross-validation inside the AMT crate: the cycle
//! engine, the functional schedule, the loser tree and the heap merge
//! are interchangeable.

use bonsai_amt::{functional, loser_tree_merge, AmtConfig, SimEngine, SimEngineConfig};
use bonsai_records::U32Rec;
use proptest::prelude::*;

fn sorted_runs(max_runs: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<U32Rec>>> {
    proptest::collection::vec(
        proptest::collection::vec(1u32..u32::MAX, 0..max_len).prop_map(|mut v| {
            v.sort_unstable();
            v.into_iter().map(U32Rec::new).collect()
        }),
        0..max_runs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn loser_tree_equals_heap_merge(runs in sorted_runs(12, 80)) {
        let slices: Vec<&[U32Rec]> = runs.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(
            loser_tree_merge(&slices),
            functional::kway_merge(&slices)
        );
    }

    #[test]
    fn engine_equals_functional_schedule(
        vals in proptest::collection::vec(1u32..u32::MAX, 0..2_000),
        p_log in 0usize..4,
        l_log in 1usize..7,
        presort in prop::sample::select(vec![1usize, 16]),
    ) {
        let data: Vec<U32Rec> = vals.into_iter().map(U32Rec::new).collect();
        let amt = AmtConfig::new(1 << p_log, 1 << l_log);
        let mut cfg = SimEngineConfig::dram_sorter(amt, 4);
        cfg.presort = (presort > 1).then_some(presort);
        let (sim, sim_report) = SimEngine::new(cfg).sort(data.clone());
        let (func, func_stages) = functional::sort_balanced(data, amt.l, presort);
        prop_assert_eq!(&sim, &func, "identical merge schedules must agree");
        prop_assert_eq!(sim_report.stages(), func_stages);
    }

    #[test]
    fn merge_pass_preserves_multiset_and_shrinks_runs(
        vals in proptest::collection::vec(1u32..u32::MAX, 1..1_500),
        chunk in 1usize..40,
        fan_in in 2usize..20,
    ) {
        let data: Vec<U32Rec> = vals.into_iter().map(U32Rec::new).collect();
        let runs = bonsai_records::run::RunSet::from_chunks(data.clone(), chunk);
        let before = runs.num_runs();
        let after = functional::merge_pass(&runs, fan_in);
        prop_assert!(after.validate().is_ok());
        prop_assert_eq!(after.num_runs(), before.div_ceil(fan_in));
        let mut a: Vec<U32Rec> = data;
        let mut b = after.into_records();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
