//! Cross-scheduler equivalence: pipelined group DAG vs per-pass barrier
//! vs the fused engine.
//!
//! The pipelined scheduler's contract is that it is a wall-clock
//! optimization and nothing else: for any configuration and any worker
//! count it must produce the same sorted output as the fused reference
//! engine and the same `SortReport` as the barrier scheduler, bit for
//! bit, with the sole exception of the observability-only
//! `pipeline_overlap_cycles` counter (always zero under the barrier).
//! Shapes are randomized so the suite crosses both regimes — passes
//! with more groups than workers and workers than groups.

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig, SortReport, VIRTUAL_WORKERS};
use bonsai_gensort::dist::uniform_u32;
use bonsai_memsim::MemoryConfig;
use bonsai_records::U32Rec;
use bonsai_rng::Rng;

/// The "max" worker point of the matrix: `BONSAI_TEST_WORKERS` when
/// set (CI pins it per matrix row), otherwise 4.
fn test_workers() -> usize {
    std::env::var("BONSAI_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Strips the one counter the schedulers legitimately disagree on.
fn no_overlap(mut r: SortReport) -> SortReport {
    r.pipeline_overlap_cycles = 0;
    r
}

/// Strips the counters that differ between simulation loops.
fn no_fast_forward(mut r: SortReport) -> SortReport {
    r.fast_forwarded_cycles = 0;
    for p in &mut r.passes {
        p.fast_forwarded_cycles = 0;
    }
    r
}

fn engine(cfg: SimEngineConfig) -> SimEngine {
    SimEngine::new(cfg)
}

fn random_config(rng: &mut Rng) -> SimEngineConfig {
    let p = 1 << rng.below_usize(4);
    let l = 1 << rng.range_usize(1, 6);
    let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4);
    if rng.chance_percent(25) {
        cfg = cfg.without_presort();
    }
    if rng.chance_percent(30) {
        cfg.memory = MemoryConfig::ddr4_single_bank();
    }
    cfg
}

fn random_data(rng: &mut Rng, max_len: usize) -> Vec<U32Rec> {
    let len = rng.range_usize(1, max_len);
    (0..len)
        .map(|_| U32Rec::new(rng.next_u32().max(1)))
        .collect()
}

#[test]
fn pipelined_matches_barrier_and_fused_on_random_shapes() {
    let mut rng = Rng::seed_from_u64(0xDA6_5EED);
    for round in 0..10 {
        let cfg = random_config(&mut rng);
        // Small lengths make passes with fewer groups than workers;
        // large ones the reverse (a 2-leaf tree on 20k records opens
        // with thousands of groups).
        let data = random_data(&mut rng, if round % 2 == 0 { 20_000 } else { 200 });
        let (out_fused, rep_fused) = engine(cfg).sort(data.clone());
        let (out_barrier, rep_barrier) = engine(cfg).sort_sharded(data.clone(), 1);
        assert_eq!(out_fused, out_barrier, "round {round}: schedulers re-sort");
        assert_eq!(rep_barrier.pipeline_overlap_cycles, 0);
        // 0 = one worker per core; test_workers() the CI matrix point.
        for workers in [1usize, 2, test_workers(), 0] {
            let (out, rep) = engine(cfg).sort_pipelined(data.clone(), workers);
            assert_eq!(
                out, out_fused,
                "round {round} workers={workers}: pipelined output diverges"
            );
            assert_eq!(
                no_overlap(rep.clone()),
                rep_barrier,
                "round {round} workers={workers}: pipelined report diverges"
            );
            // Fused timing differs by design (pipeline overlap inside
            // one tree), but the data movement cannot.
            assert_eq!(rep.n_records, rep_fused.n_records);
            assert_eq!(rep.stages(), rep_fused.stages());
            assert_eq!(rep.total_traffic_bytes(), rep_fused.total_traffic_bytes());
        }
    }
}

#[test]
fn pipelined_report_is_bit_identical_across_worker_counts() {
    let mut rng = Rng::seed_from_u64(0x1D11_DA66);
    for round in 0..6 {
        let cfg = random_config(&mut rng);
        let data = random_data(&mut rng, 15_000);
        let (out_1, rep_1) = engine(cfg).sort_pipelined(data.clone(), 1);
        for workers in [2usize, 3, test_workers(), 0] {
            let (out_n, rep_n) = engine(cfg).sort_pipelined(data.clone(), workers);
            assert_eq!(out_1, out_n, "round {round} workers={workers}");
            // Raw equality: even pipeline_overlap_cycles and the
            // busy/idle counters must not see the real thread count.
            assert_eq!(rep_1, rep_n, "round {round} workers={workers}");
        }
    }
}

#[test]
fn fast_and_reference_loops_agree_under_pipelined() {
    let mut rng = Rng::seed_from_u64(0xFA57_0DA6);
    for round in 0..5 {
        let cfg = random_config(&mut rng);
        let data = random_data(&mut rng, 12_000);
        let (out_ref, rep_ref) = engine(cfg)
            .with_reference_loop(true)
            .sort_pipelined(data.clone(), 2);
        let (out_fast, rep_fast) = engine(cfg)
            .with_reference_loop(false)
            .sort_pipelined(data, 2);
        assert_eq!(out_ref, out_fast, "round {round}");
        assert_eq!(rep_ref.fast_forwarded_cycles, 0);
        assert_eq!(
            no_fast_forward(rep_ref),
            no_fast_forward(rep_fast),
            "round {round}"
        );
    }
}

#[test]
fn utilization_counters_are_consistent() {
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 4), 4);
    let data = uniform_u32(30_000, 17);
    let (_, rep) = engine(cfg).sort_pipelined(data.clone(), 2);
    assert!(rep.stages() >= 3, "shape must be multi-pass");
    for pass in &rep.passes {
        // Every group is simulated exactly once, so virtual busy time
        // is exactly the pass's summed cycles...
        assert_eq!(pass.busy_worker_cycles, pass.cycles);
        // ...and busy + idle is a whole number of virtual-pool
        // makespans.
        assert_eq!(
            (pass.busy_worker_cycles + pass.idle_worker_cycles) % VIRTUAL_WORKERS as u64,
            0,
            "stage {}",
            pass.stage
        );
    }
    // A multi-pass sort with uneven tail groups overlaps something.
    assert!(rep.pipeline_overlap_cycles > 0, "{rep:?}");
    // The barrier path reports the same utilization but zero overlap.
    let (_, rep_barrier) = engine(cfg).sort_sharded(data, 2);
    assert_eq!(rep_barrier.pipeline_overlap_cycles, 0);
    for (a, b) in rep.passes.iter().zip(&rep_barrier.passes) {
        assert_eq!(a.busy_worker_cycles, b.busy_worker_cycles);
        assert_eq!(a.idle_worker_cycles, b.idle_worker_cycles);
    }
}

#[test]
fn single_pass_shapes_have_zero_overlap() {
    // 256 records / 16-record presorted runs = 16 runs -> one pass of
    // one group: nothing to pipeline across.
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    let data = uniform_u32(256, 3);
    let (_, rep) = engine(cfg).sort_pipelined(data, 0);
    assert_eq!(rep.stages(), 1);
    assert_eq!(rep.pipeline_overlap_cycles, 0);
}

#[test]
fn livelock_bound_trips_identically_under_pipelined() {
    // BON040 parity (the SortError carries only stage and bound, and
    // the minimum failing (pass, group) wins): every scheduler, loop
    // and worker count must surface the same error.
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    let data = uniform_u32(50_000, 4);
    let err_fused = engine(cfg)
        .with_max_pass_cycles(10)
        .try_sort(data.clone())
        .expect_err("bound of 10 cycles must trip");
    let err_barrier = engine(cfg)
        .with_max_pass_cycles(10)
        .try_sort_sharded(data.clone(), 2)
        .expect_err("bound of 10 cycles must trip");
    assert_eq!(err_fused, err_barrier);
    for workers in [1usize, 2, test_workers(), 0] {
        for reference in [false, true] {
            let err = engine(cfg)
                .with_max_pass_cycles(10)
                .with_reference_loop(reference)
                .try_sort_pipelined(data.clone(), workers)
                .expect_err("bound of 10 cycles must trip");
            assert_eq!(
                err, err_fused,
                "workers={workers} reference={reference}: BON040 must not \
                 depend on the scheduler"
            );
        }
    }
}

#[test]
fn batch_jobs_match_solo_barrier_sorts_on_random_shapes() {
    // The forest DAG interleaves every job's tasks on one pool, but
    // each job's output and report must stay bit-identical to sorting
    // it alone under the barrier (per-job overlap is 0 on both sides;
    // only the batch-level overlap may be nonzero).
    let mut rng = Rng::seed_from_u64(0xBA7C_5EED);
    for round in 0..6 {
        let cfg = random_config(&mut rng);
        let jobs = rng.range_usize(2, 4);
        // Equal lengths per job: the forest plan is uniform.
        let len = rng.range_usize(1, 8_000);
        let datasets: Vec<Vec<U32Rec>> = (0..jobs)
            .map(|_| {
                (0..len)
                    .map(|_| U32Rec::new(rng.next_u32().max(1)))
                    .collect()
            })
            .collect();
        let solo: Vec<(Vec<U32Rec>, SortReport)> = datasets
            .iter()
            .map(|d| engine(cfg).sort_sharded(d.clone(), 1))
            .collect();
        let mut at_workers = Vec::new();
        for workers in [1usize, 2, test_workers(), 0] {
            let (batch, overlap) = engine(cfg).sort_batch_pipelined(datasets.clone(), workers);
            for (j, ((out_b, rep_b), (out_s, rep_s))) in batch.iter().zip(&solo).enumerate() {
                assert_eq!(out_b, out_s, "round {round} workers={workers} job {j}");
                assert_eq!(rep_b, rep_s, "round {round} workers={workers} job {j}");
            }
            at_workers.push((batch, overlap));
        }
        // Batch results — including the batch-level overlap — must not
        // see the real worker count.
        for (batch, overlap) in &at_workers[1..] {
            assert_eq!(batch, &at_workers[0].0, "round {round}");
            assert_eq!(*overlap, at_workers[0].1, "round {round}");
        }
    }
}

#[test]
fn batch_of_multipass_sorts_overlaps_across_jobs() {
    // A single 4-pass sort is single-rooted, so its overlap is small;
    // a batch of them pipelines job j+1's wide first pass into job j's
    // serial tail. The batch overlap must beat the sum of the solo
    // overlaps.
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 4), 4);
    let datasets: Vec<Vec<U32Rec>> = (0..3).map(|j| uniform_u32(4_000, 7 + j)).collect();
    let solo_overlap: u64 = datasets
        .iter()
        .map(|d| {
            engine(cfg)
                .sort_pipelined(d.clone(), 2)
                .1
                .pipeline_overlap_cycles
        })
        .sum();
    let (batch, overlap) = engine(cfg).sort_batch_pipelined(datasets, 2);
    assert!(
        batch.iter().all(|(_, r)| r.stages() >= 3),
        "must be multi-pass"
    );
    assert!(
        overlap > solo_overlap,
        "cross-job pipelining must reclaim more than per-job stragglers: \
         {overlap} vs {solo_overlap}"
    );
}

#[test]
fn batch_livelock_reports_the_first_failing_job() {
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    let datasets: Vec<Vec<U32Rec>> = (0..3).map(|j| uniform_u32(20_000, 40 + j)).collect();
    let err_solo = engine(cfg)
        .with_max_pass_cycles(10)
        .try_sort_sharded(datasets[0].clone(), 2)
        .expect_err("bound of 10 cycles must trip");
    for workers in [1usize, 2, 0] {
        let err = engine(cfg)
            .with_max_pass_cycles(10)
            .try_sort_batch_pipelined(datasets.clone(), workers)
            .expect_err("bound of 10 cycles must trip");
        assert_eq!(err, err_solo, "workers={workers}");
    }
}

#[test]
fn batch_trivial_and_empty_inputs() {
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(2, 4), 4);
    let (batch, overlap) = engine(cfg).sort_batch_pipelined(Vec::<Vec<U32Rec>>::new(), 2);
    assert!(batch.is_empty());
    assert_eq!(overlap, 0);
    // Single-run jobs: no merge passes, nothing to overlap.
    let (batch, overlap) =
        engine(cfg).sort_batch_pipelined(vec![vec![U32Rec::new(3)], vec![U32Rec::new(2)]], 2);
    assert_eq!(batch[0].0, vec![U32Rec::new(3)]);
    assert_eq!(batch[1].0, vec![U32Rec::new(2)]);
    assert!(batch.iter().all(|(_, r)| r.stages() == 0));
    assert_eq!(overlap, 0);
}

#[test]
fn empty_and_single_record_inputs_pipelined() {
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(2, 4), 4);
    let (out, rep) = engine(cfg).sort_pipelined(Vec::<U32Rec>::new(), 2);
    assert!(out.is_empty());
    assert_eq!(rep.stages(), 0);
    assert_eq!(rep.pipeline_overlap_cycles, 0);
    let (out, rep) = engine(cfg).sort_pipelined(vec![U32Rec::new(9)], 2);
    assert_eq!(out, vec![U32Rec::new(9)]);
    assert_eq!(rep.stages(), 0);
}
