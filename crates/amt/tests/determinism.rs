//! Worker-count invariance of the pass-sharded engine.
//!
//! The sharded runtime's whole contract is that `workers` is a
//! wall-clock knob and nothing else: for any configuration, every worker
//! count must produce the same sorted output and the same per-pass cycle
//! counts, bit for bit. These tests draw randomized configurations and
//! check the invariant; the in-repo experiment configs are covered by
//! the bench crate's determinism suite.

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig};
use bonsai_records::U32Rec;
use bonsai_rng::Rng;

/// Worker count the suite compares against 1; override with
/// `BONSAI_TEST_WORKERS` (CI runs the matrix at 1, 2 and max).
fn test_workers() -> usize {
    std::env::var("BONSAI_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

#[test]
fn sharded_reports_are_worker_count_invariant_on_random_configs() {
    let workers = test_workers();
    let mut rng = Rng::seed_from_u64(0xA370_0040);
    for round in 0..24 {
        let len = rng.range_usize(1, 30_000);
        let data: Vec<U32Rec> = (0..len)
            .map(|_| U32Rec::new(rng.next_u32().max(1)))
            .collect();
        let p = 1 << rng.below_usize(4);
        let l = 1 << rng.range_usize(1, 6);
        let presort = [1usize, 16][rng.below_usize(2)];
        let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4);
        cfg.presort = (presort > 1).then_some(presort);

        let (out_1, report_1) = SimEngine::new(cfg).sort_sharded(data.clone(), 1);
        let (out_n, report_n) = SimEngine::new(cfg).sort_sharded(data.clone(), workers);
        assert_eq!(
            out_1, out_n,
            "round {round} (p={p} l={l}): output depends on worker count"
        );
        assert_eq!(
            report_1, report_n,
            "round {round} (p={p} l={l}): report depends on worker count"
        );

        // The sharded path sorts exactly like the fused engine (the
        // timing models differ; the data path must not).
        let (out_fused, _) = SimEngine::new(cfg).sort(data);
        assert_eq!(out_1, out_fused, "round {round}: sharded output diverges");
        for pass in &report_1.passes {
            assert!(pass.cycles > 0, "round {round}: empty pass accounting");
        }
    }
}

#[test]
fn sharded_and_fused_agree_on_bytes_moved() {
    // Every pass reads and writes the whole array once, however the
    // groups are partitioned — byte accounting is partition-invariant
    // even though cycle accounting models a drained pipeline per group.
    let data: Vec<U32Rec> = bonsai_gensort::dist::uniform_u32(40_000, 17);
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    let (_, fused) = SimEngine::new(cfg).sort(data.clone());
    let (_, sharded) = SimEngine::new(cfg).sort_sharded(data, test_workers());
    assert_eq!(fused.passes.len(), sharded.passes.len());
    for (f, s) in fused.passes.iter().zip(&sharded.passes) {
        assert_eq!(f.bytes_read, s.bytes_read, "stage {}", f.stage);
        assert_eq!(f.bytes_written, s.bytes_written, "stage {}", f.stage);
        assert_eq!(f.runs_in, s.runs_in);
        assert_eq!(f.runs_out, s.runs_out);
        assert_eq!(f.records, s.records);
    }
}

#[test]
fn worker_zero_means_auto_and_stays_deterministic() {
    let data: Vec<U32Rec> = bonsai_gensort::dist::uniform_u32(10_000, 23);
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(2, 8), 4);
    let (out_auto, report_auto) = SimEngine::new(cfg).sort_sharded(data.clone(), 0);
    let (out_1, report_1) = SimEngine::new(cfg).sort_sharded(data, 1);
    assert_eq!(out_auto, out_1);
    assert_eq!(report_auto, report_1);
}
