//! Exhaustive model checking of the pipelined DAG's ready/claim
//! protocol.
//!
//! These tests instantiate the *production* `execute_dag` scheduler
//! with `bonsai_mc::sync::McSync` and let the checker explore every
//! schedule (within the preemption budget) of the claim / resolve /
//! wait-while protocol on the ISSUE's canonical small shape: 2 workers
//! over a 2-pass / 4-group plan (8 presorted runs on a 4-leaf tree →
//! fan-ins [2, 4] → 4 + 1 tasks). Every schedule must run every task
//! exactly once, feed the parent its children's outputs in group
//! order, and terminate — no deadlock, no lost wakeup.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bonsai_amt::dag::execute_dag;
use bonsai_amt::{SortError, SortPlan};
use bonsai_mc::sync::atomic::AtomicUsize;
use bonsai_mc::sync::McSync;
use bonsai_mc::Checker;

/// The canonical 2-pass/4-group plan: pass 0 merges 8 runs in 4 groups
/// of fan-in 2; pass 1 merges their outputs in 1 group of fan-in 4.
fn small_plan() -> SortPlan {
    let plan = SortPlan::new(8, 4);
    assert_eq!(plan.num_passes(), 2);
    assert_eq!(plan.pass(0).groups, 4);
    assert_eq!(plan.pass(1).groups, 1);
    assert_eq!(plan.tasks(), 5);
    plan
}

/// Clean-drain model: stub tasks tally exactly-once execution with
/// single-op atomic gates (a harness mutex would blow up the schedule
/// space without exercising any scheduler code) and the parent checks
/// its inputs arrive in group order.
fn clean_model(workers: usize) {
    let runs: Vec<Arc<AtomicUsize>> = (0..5).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let runs_for_task = runs.clone();
    let plan = small_plan();
    let (finals, meta) =
        execute_dag::<McSync, u64, (usize, usize), _>(plan, workers, move |pass, group, inputs| {
            let id = if pass == 0 { group } else { 4 };
            runs_for_task[id].fetch_add(1, Ordering::SeqCst);
            let value = if pass == 0 {
                assert!(inputs.is_empty(), "pass-0 tasks have no dependencies");
                1 << group
            } else {
                // Children arrive in group order, exactly once each.
                assert_eq!(inputs, vec![1, 2, 4, 8], "child outputs out of order");
                inputs.iter().sum()
            };
            Ok((value, (pass, group)))
        })
        .expect("no task fails");
    assert_eq!(finals, vec![15], "root sees every leaf exactly once");
    // Metadata is folded in (pass, group) order on every schedule.
    assert_eq!(meta, vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 0)]);
    for (id, counter) in runs.iter().enumerate() {
        assert_eq!(counter.load(Ordering::SeqCst), 1, "task {id} run count");
    }
}

#[test]
fn dag_claim_protocol_is_exhaustively_clean_at_two_workers() {
    let stats = Checker::new()
        .max_schedules(1_000_000)
        .check(|| clean_model(2))
        .expect("the DAG claim protocol must be schedule-clean");
    assert!(
        stats.complete,
        "exploration must exhaust the budgeted space"
    );
    assert!(
        stats.schedules > 50,
        "2 workers over 5 tasks is not a trivial space ({} schedules)",
        stats.schedules
    );
}

/// One worker degenerates to sequential execution but still crosses
/// every wait/notify edge (the worker parks only when the DAG drains).
/// Cheap enough for the Miri job, which runs this test by name.
#[test]
fn dag_claim_protocol_single_worker_smoke() {
    let stats = Checker::new()
        .check(|| clean_model(1))
        .expect("single-worker DAG must be schedule-clean");
    assert!(stats.complete);
}

/// Forest drain: a 2-job batch plan (each job 4 runs on a 2-leaf tree:
/// 2 + 1 tasks) under 2 workers. Every schedule must keep jobs
/// independent — each root sees exactly its own job's child outputs —
/// while both jobs' tasks interleave freely on the pool.
#[test]
fn batch_forest_claim_protocol_is_schedule_clean_at_two_workers() {
    let plan = SortPlan::batch(2, 4, 2);
    assert_eq!(plan.jobs(), 2);
    assert_eq!(plan.tasks(), 6);
    let stats = Checker::new()
        .max_schedules(1_000_000)
        .check(move || {
            let plan = SortPlan::batch(2, 4, 2);
            let (finals, _meta) =
                execute_dag::<McSync, u64, (), _>(plan, 2, move |pass, slot, inputs| {
                    // Job j's pass-0 slots are [2j, 2j+2); encode the
                    // slot so each root can check its inputs came from
                    // its own block, in order.
                    let value = if pass == 0 {
                        assert!(inputs.is_empty());
                        1 << slot
                    } else {
                        assert_eq!(
                            inputs,
                            vec![1 << (2 * slot), 1 << (2 * slot + 1)],
                            "root {slot} fed from the wrong job block"
                        );
                        inputs.iter().sum()
                    };
                    Ok((value, ()))
                })
                .expect("no task fails");
            assert_eq!(
                finals,
                vec![0b0011, 0b1100],
                "one root per job, in job order"
            );
        })
        .expect("the forest claim protocol must be schedule-clean");
    assert!(
        stats.complete,
        "exploration must exhaust the budgeted space"
    );
}

/// Failure drain: pass-0 group 2 fails. Every schedule must cancel the
/// dependent root task without running it, terminate both workers (no
/// wedged `wait_while`), and surface exactly the failing task's error.
#[test]
fn dag_failure_drains_and_reports_the_failing_task() {
    let stats = Checker::new()
        .max_schedules(1_000_000)
        .check(|| {
            let ran_root = Arc::new(AtomicUsize::new(0));
            let ran_root_task = Arc::clone(&ran_root);
            let err =
                execute_dag::<McSync, u64, (), _>(small_plan(), 2, move |pass, group, _inputs| {
                    if pass == 0 && group == 2 {
                        Err(SortError::livelock(1, 10))
                    } else {
                        if pass == 1 {
                            ran_root_task.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok((0, ()))
                    }
                })
                .expect_err("the seeded failure must surface");
            assert_eq!(err, SortError::livelock(1, 10));
            assert_eq!(
                ran_root.load(Ordering::SeqCst),
                0,
                "a task with a failed child must be cancelled, not run"
            );
        })
        .expect("the failure path must be schedule-clean");
    assert!(stats.complete);
}

/// With two seeded failures the *minimum* (pass, group) task's error
/// must win on every schedule — the determinism contract that makes
/// pipelined errors bit-identical to the barrier scheduler's.
#[test]
fn dag_reports_the_minimum_failing_task_on_every_schedule() {
    let stats = Checker::new()
        .max_schedules(1_000_000)
        .check(|| {
            let err =
                execute_dag::<McSync, u64, (), _>(small_plan(), 2, move |pass, group, _inputs| {
                    if pass == 0 && (group == 1 || group == 3) {
                        // Distinguishable errors: stage payload encodes
                        // the group so a wrong winner is visible.
                        Err(SortError::livelock(group as u32, 10))
                    } else {
                        Ok((0, ()))
                    }
                })
                .expect_err("the seeded failures must surface");
            assert_eq!(
                err,
                SortError::livelock(1, 10),
                "the minimum failing (pass, group) must win"
            );
        })
        .expect("competing failures must still be schedule-clean");
    assert!(stats.complete);
}
