//! Compiled-shape cache equivalence: an engine minted from a cache hit
//! must be *bit-identical* in behavior to a cold `SimEngine::try_new` —
//! same sorted output, same `SortReport` — at every worker count, fused
//! and sharded. The cache may only skip validation work, never change
//! the datapath.

use bonsai_amt::{AmtConfig, ShapeCache, SimEngine, SimEngineConfig, SortReport};
use bonsai_gensort::dist::uniform_u32;
use bonsai_records::U32Rec;

fn shapes() -> Vec<SimEngineConfig> {
    vec![
        SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4),
        SimEngineConfig::dram_sorter(AmtConfig::new(8, 64), 4),
        SimEngineConfig::with_memory(
            AmtConfig::new(4, 16),
            4,
            bonsai_memsim::MemoryConfig::hbm_u50(),
        ),
    ]
}

/// Engine-level reports never carry cache counters (the adaptive
/// runtime stamps them afterwards), so equality here is exact.
fn assert_cold_counters(report: &SortReport) {
    assert_eq!(report.shape_cache_hits, 0);
    assert_eq!(report.shape_cache_misses, 0);
}

#[test]
fn cache_hit_is_bit_identical_to_cold_compile_fused_and_sharded() {
    let data = uniform_u32(12_000, 33);
    for config in shapes() {
        let mut cache = ShapeCache::new(4);
        // Warm the cache, then take the *hit* path.
        cache.get_or_compile(&config).expect("valid");
        let hit = cache.get_or_compile(&config).expect("valid");
        assert_eq!(cache.hits(), 1, "second lookup must hit");

        // Fused.
        let cold: (Vec<U32Rec>, _) = SimEngine::try_new(config)
            .expect("valid")
            .try_sort(data.clone())
            .expect("sorts");
        let cached = hit.engine().try_sort(data.clone()).expect("sorts");
        assert_eq!(cold.0, cached.0, "fused output must match");
        assert_eq!(cold.1, cached.1, "fused report must match");
        assert_cold_counters(&cached.1);

        // Sharded, at one, two and max (0 = all-cores) pass workers.
        for workers in [1usize, 2, 0] {
            let cold = SimEngine::try_new(config)
                .expect("valid")
                .try_sort_sharded(data.clone(), workers)
                .expect("sorts");
            let cached = hit
                .engine()
                .try_sort_sharded(data.clone(), workers)
                .expect("sorts");
            assert_eq!(cold.0, cached.0, "sharded({workers}) output must match");
            assert_eq!(cold.1, cached.1, "sharded({workers}) report must match");
        }

        // Pipelined (what the adaptive scheduler actually drives).
        for workers in [1usize, 2, 0] {
            let cold = SimEngine::try_new(config)
                .expect("valid")
                .try_sort_pipelined(data.clone(), workers)
                .expect("sorts");
            let cached = hit
                .engine()
                .try_sort_pipelined(data.clone(), workers)
                .expect("sorts");
            assert_eq!(cold.0, cached.0, "pipelined({workers}) output must match");
            assert_eq!(cold.1, cached.1, "pipelined({workers}) report must match");
        }
    }
}

#[test]
fn eviction_and_recompile_still_match_cold() {
    // Force an eviction cycle: capacity 1 with two alternating shapes.
    let data = uniform_u32(6_000, 9);
    let mut cache = ShapeCache::new(1);
    let a = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    let b = SimEngineConfig::dram_sorter(AmtConfig::new(2, 4), 4);
    for _ in 0..2 {
        for config in [a, b] {
            let shape = cache.get_or_compile(&config).expect("valid");
            let cold = SimEngine::try_new(config)
                .expect("valid")
                .try_sort_sharded(data.clone(), 2)
                .expect("sorts");
            let cached = shape
                .engine()
                .try_sort_sharded(data.clone(), 2)
                .expect("sorts");
            assert_eq!(cold, cached);
        }
    }
    assert!(cache.evictions() >= 3, "capacity 1 must churn");
}
