//! Cross-path equivalence: event-driven fast forward vs reference loop.
//!
//! The fast-forward scheduler's contract is that it is a wall-clock
//! optimization and nothing else: for any configuration, the fast path
//! and the reference per-cycle loop must produce the same sorted output
//! and the same `SortReport`, bit for bit, with the sole exception of
//! the `fast_forwarded_cycles` observability counters (always zero on
//! the reference path). These tests draw randomized configurations and
//! check the invariant on the fused and the sharded engine; the in-repo
//! experiment configs are covered by the bench crate's equivalence
//! suite.

use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig, SortReport};
use bonsai_gensort::dist::uniform_u32;
use bonsai_memsim::MemoryConfig;
use bonsai_records::U32Rec;
use bonsai_rng::Rng;

/// Strips the observability counters that legitimately differ between
/// the two loops; everything else must match exactly.
fn normalized(mut r: SortReport) -> SortReport {
    r.fast_forwarded_cycles = 0;
    for p in &mut r.passes {
        p.fast_forwarded_cycles = 0;
    }
    r
}

fn engine(cfg: SimEngineConfig, reference: bool) -> SimEngine {
    SimEngine::new(cfg).with_reference_loop(reference)
}

fn random_config(rng: &mut Rng) -> SimEngineConfig {
    let p = 1 << rng.below_usize(4);
    let l = 1 << rng.range_usize(1, 6);
    let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4);
    if rng.chance_percent(25) {
        cfg = cfg.without_presort();
    }
    if rng.chance_percent(30) {
        cfg.memory = MemoryConfig::ddr4_single_bank();
    }
    cfg
}

fn random_data(rng: &mut Rng, max_len: usize) -> Vec<U32Rec> {
    let len = rng.range_usize(1, max_len);
    (0..len)
        .map(|_| U32Rec::new(rng.next_u32().max(1)))
        .collect()
}

#[test]
fn fast_path_matches_reference_on_random_configs() {
    let mut rng = Rng::seed_from_u64(0x0FA5_7F0D);
    for round in 0..18 {
        let cfg = random_config(&mut rng);
        let data = random_data(&mut rng, 25_000);
        let (out_ref, rep_ref) = engine(cfg, true).sort(data.clone());
        let (out_fast, rep_fast) = engine(cfg, false).sort(data);
        assert_eq!(out_ref, out_fast, "round {round}: fused outputs diverge");
        assert_eq!(
            rep_ref.fast_forwarded_cycles, 0,
            "round {round}: reference path must never fast-forward"
        );
        assert_eq!(
            normalized(rep_ref),
            normalized(rep_fast),
            "round {round}: fused reports diverge"
        );
    }
}

#[test]
fn sharded_fast_path_matches_reference_at_every_worker_count() {
    let mut rng = Rng::seed_from_u64(0xEC01_2303);
    for round in 0..8 {
        let cfg = random_config(&mut rng);
        let data = random_data(&mut rng, 20_000);
        let (out_ref, rep_ref) = engine(cfg, true).sort_sharded(data.clone(), 1);
        // 0 = one worker per core, the "max" point of the matrix.
        for workers in [1usize, 2, 0] {
            let (out_fast, rep_fast) = engine(cfg, false).sort_sharded(data.clone(), workers);
            assert_eq!(
                out_ref, out_fast,
                "round {round} workers={workers}: sharded outputs diverge"
            );
            assert_eq!(
                normalized(rep_ref.clone()),
                normalized(rep_fast),
                "round {round} workers={workers}: sharded reports diverge"
            );
        }
    }
}

/// The SSD-scale shape of the perf baseline: a single slow access
/// stream with flash-scale burst setup, so the machine spends most of
/// its cycles waiting on memory.
fn ssd_scale_config() -> SimEngineConfig {
    let mut cfg =
        SimEngineConfig::with_memory(AmtConfig::new(8, 64), 4, MemoryConfig::ssd_direct());
    // Flash batches are large to amortize the access latency.
    cfg.loader.batch_bytes = 131_072;
    cfg
}

#[test]
fn memory_bound_config_fast_forwards_most_cycles() {
    let cfg = ssd_scale_config();
    let data = uniform_u32(40_000, 7);
    let (out_fast, rep_fast) = engine(cfg, false).sort(data.clone());
    assert!(
        rep_fast.fast_forwarded_cycles > rep_fast.total_cycles / 2,
        "only {} of {} cycles fast-forwarded on a memory-bound config",
        rep_fast.fast_forwarded_cycles,
        rep_fast.total_cycles
    );
    let (out_ref, rep_ref) = engine(cfg, true).sort(data);
    assert_eq!(out_ref, out_fast);
    assert_eq!(normalized(rep_ref), normalized(rep_fast));
}

#[test]
fn livelock_bound_trips_identically_on_both_paths() {
    let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
    let data = uniform_u32(50_000, 4);
    let err_ref = engine(cfg, true)
        .with_max_pass_cycles(10)
        .try_sort(data.clone())
        .expect_err("bound of 10 cycles must trip");
    let err_fast = engine(cfg, false)
        .with_max_pass_cycles(10)
        .try_sort(data)
        .expect_err("bound of 10 cycles must trip");
    assert_eq!(err_ref, err_fast, "BON040 must not depend on the loop");
}
