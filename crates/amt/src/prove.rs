//! Lowering the pipeline-graph IR into the bounded token net of
//! `bonsai_check::prove`, plus the simulation replay hook that
//! cross-validates static refutations against [`SimEngine`].
//!
//! # The occupancy abstraction
//!
//! [`net_from_graph`] folds a [`PipelineGraph`] into a small
//! [`TokenNet`] whose reachable markings over-approximate the
//! pipeline's occupancy states. Each flow-controlled edge becomes a
//! pair of places — FIFO occupancy plus the producer's credit pool —
//! and each pipeline stage becomes a transition that consumes input
//! tokens, returns input credits, spends output credits and produces
//! output tokens. Every transition conserves `occupancy + credits` per
//! edge, which is exactly the P-invariant family the prover's
//! certificate checker re-verifies.
//!
//! Two symmetry quotients keep the net exhaustively explorable for any
//! tree shape:
//!
//! - **sibling folding**: all read channels that serve a leaf are
//!   protocol-identical, as are all mergers of one level and both
//!   write channels; one representative cell stands for the class
//!   (dead channels — `BON034` material — get no cell at all);
//! - **homogeneous-level folding**: adjacent tree levels whose
//!   abstract cell is identical (same coupler presence; internal FIFOs
//!   are never below the flush requirement by the `max(8w,16)` sizing
//!   rule) collapse into one representative level. The bottom level
//!   (leaf-fed) and the root (drain-fed) always keep their own cells.
//!
//! Capacities are abstracted to small token counts that preserve the
//! safety-relevant relations: whether the credit pool is empty, whether
//! the buffer can ever satisfy the consumer's flush requirement
//! (`gate`), and whether credits exceed capacity. In particular a leaf
//! buffer shallower than the bottom merger's `w+1`-record flush
//! requirement (`BON031` territory) lowers to an unsatisfiable gate, so
//! reachability refutes it — the cycle simulator's software relaxation
//! of that hardware contract is precisely what `BON065` reports when a
//! replay diverges.
//!
//! The fold is deliberately *conservative about liveness*: mergers are
//! fair two-input joins (a starved input wedges the cell, as the
//! hardware's tuple coupling requires), and the net is cyclic — the
//! write side destroys tokens and the source mints them against a
//! bounded request window, so steady-state deadlocks are found without
//! modeling end-of-stream flush artifacts.

use bonsai_check::graph::{NodeKind, PipelineGraph};
use bonsai_check::prove::{TokenNet, Transition};
use bonsai_check::{codes, Diagnostic};
use bonsai_records::U32Rec;

use crate::config::SimEngineConfig;
use crate::engine::SimEngine;
use crate::graph::{lower_to_graph, LowerOptions};

/// Options refining the net lowering.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetOptions {
    /// Extra producer credits granted on the left leaf edge *beyond*
    /// its buffer capacity. The real lowering never over-credits an
    /// edge, so this probe knob is how CI exercises the `BON061`
    /// overflow refutation path end to end.
    pub credit_slack: u32,
}

/// Default record count for [`replay_refutation`] workloads.
pub const REPLAY_RECORDS: usize = 512;

/// Default per-pass cycle bound for replay: generous for the tiny
/// replay workloads, small enough that a genuine wedge fails fast.
pub const REPLAY_MAX_PASS_CYCLES: u64 = 300_000;

/// One folded flow-controlled edge: FIFO-occupancy and credit places.
#[derive(Debug, Clone, Copy)]
struct Cell {
    fifo: usize,
    credits: usize,
}

fn add_cell(net: &mut TokenNet, name: &str, capacity: u32, credits: u32) -> Cell {
    let fifo = net.add_place(format!("{name}.fifo"), capacity, 0);
    let pool = net.add_place(format!("{name}.credits"), credits.max(capacity), credits);
    Cell {
        fifo,
        credits: pool,
    }
}

/// `consume w_in from input, produce w_out into output` with the
/// matching credit flows; `gate` is the input occupancy the stage must
/// observe before it makes progress (the flush requirement).
fn relay(name: &str, input: Cell, gate: u32, w_in: u32, output: Cell, w_out: u32) -> Transition {
    let mut t = Transition {
        name: name.into(),
        takes: vec![(input.fifo, w_in), (output.credits, w_out)],
        puts: vec![(input.credits, w_in), (output.fifo, w_out)],
        ..Transition::default()
    };
    if gate > w_in {
        t.guards.push((input.fifo, gate));
    }
    t
}

/// The abstract leaf-edge parameters: `(capacity, credits, gate)` in
/// batch tokens.
fn leaf_cell_params(fifo_depth: u64, credits: u64, w_bottom: u64) -> (u32, u32, u32) {
    if credits == 0 {
        // Zero credit pool: the loader can never feed this buffer.
        return (1, 0, 1);
    }
    let batch_records = (fifo_depth / credits).max(1);
    let gate_batches = (w_bottom + 1).div_ceil(batch_records);
    if gate_batches > credits {
        // The full buffer cannot satisfy the flush requirement
        // (buffer_records < w+1): an unsatisfiable gate, the net-level
        // mirror of `BON031`.
        (1, 1, 2)
    } else {
        let c = credits.min(2) as u32;
        (c, c, (gate_batches as u32).min(c))
    }
}

fn malformed(what: &str) -> Vec<Diagnostic> {
    vec![Diagnostic::error(
        codes::GRAPH_MALFORMED,
        "cannot fold the pipeline graph into a token net",
    )
    .with("missing", what.to_string())]
}

/// Fold a pipeline graph into its bounded occupancy token net.
///
/// Fails with `BON037` when the graph lacks the loader → merger-tree →
/// drain spine the fold keys on (graphs produced by
/// [`lower_to_graph`] always have it).
pub fn net_from_graph(g: &PipelineGraph, opts: &NetOptions) -> Result<TokenNet, Vec<Diagnostic>> {
    let mut loader = None;
    let mut drain = None;
    let mut levels: Vec<(usize, u64)> = Vec::new(); // (level, width)
    let mut coupled = Vec::new();
    for (id, node) in g.nodes.iter().enumerate() {
        match node.kind {
            NodeKind::Loader => loader = Some(id),
            NodeKind::WriteDrain => drain = Some(id),
            NodeKind::Merger { level, width } if !levels.iter().any(|&(l, _)| l == level) => {
                levels.push((level, width as u64));
            }
            NodeKind::Coupler { level, .. } if !coupled.contains(&level) => {
                coupled.push(level);
            }
            _ => {}
        }
    }
    let Some(loader_id) = loader else {
        return Err(malformed("loader"));
    };
    if drain.is_none() {
        return Err(malformed("write drain"));
    }
    if levels.is_empty() {
        return Err(malformed("merger tree"));
    }
    levels.sort_unstable();
    let bottom_level = levels.last().expect("non-empty").0;
    let w_bottom = levels.last().expect("non-empty").1;

    // The representative leaf edge: loader → bottom merger.
    let bottom_ids: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.kind, NodeKind::Merger { level, .. } if level == bottom_level))
        .map(|(id, _)| id)
        .collect();
    let Some(leaf_edge) = g
        .edges
        .iter()
        .find(|e| e.from == loader_id && bottom_ids.contains(&e.to))
    else {
        return Err(malformed("leaf edge"));
    };
    // The representative read-channel window: any channel that actually
    // feeds the loader (dead channels have no such edge and no cell).
    let read_credits = g
        .edges
        .iter()
        .find(|e| {
            e.to == loader_id
                && matches!(
                    g.nodes[e.from].kind,
                    NodeKind::MemoryChannel { write: false, .. }
                )
        })
        .map_or(2, |e| e.credits.clamp(1, 2) as u32);
    let write_credits = g
        .edges
        .iter()
        .find(|e| {
            e.from == drain.expect("checked")
                && matches!(
                    g.nodes[e.to].kind,
                    NodeKind::MemoryChannel { write: true, .. }
                )
        })
        .map_or(2, |e| e.credits.clamp(1, 2) as u32);

    let mut net = TokenNet::default();

    // Read side: outstanding-request window into the channel, then the
    // channel's delivery buffer toward the loader.
    let rc = add_cell(&mut net, "chan_r", read_credits, read_credits);
    let cl = add_cell(&mut net, "chan_r->loader", read_credits, read_credits);
    net.add_transition(Transition {
        name: "source.feed".into(),
        takes: vec![(rc.credits, 1)],
        puts: vec![(rc.fifo, 1)],
        ..Transition::default()
    });
    net.add_transition(relay("chan_r.deliver", rc, 1, 1, cl, 1));

    // Leaf edges: both inputs of the bottom merger, in batch tokens.
    let (leaf_cap, leaf_credits, leaf_gate) =
        leaf_cell_params(leaf_edge.fifo_depth, leaf_edge.credits, w_bottom);
    let lhs = {
        let fifo = net.add_place("leaf_l.fifo", leaf_cap, 0);
        let credits = leaf_credits + opts.credit_slack;
        let pool = net.add_place("leaf_l.credits", credits.max(leaf_cap), credits);
        Cell {
            fifo,
            credits: pool,
        }
    };
    let rhs = add_cell(&mut net, "leaf_r", leaf_cap, leaf_credits);
    net.add_transition(relay("loader.fill_l", cl, 1, 1, lhs, 1));
    net.add_transition(relay("loader.fill_r", cl, 1, 1, rhs, 1));

    // The merger chain, bottom to root. Middle levels collapse into one
    // representative per run of identical cells (coupled or not);
    // internal edges are never below the flush requirement thanks to
    // the max(8w,16) sizing rule, so their abstract shape is fixed:
    // capacity 3 (one residual tuple + a fresh 2-token production),
    // fully credited, consumed two tokens at a time.
    let mut reps: Vec<bool> = Vec::new(); // has_coupler per representative
    for i in (0..levels.len().saturating_sub(1)).rev() {
        let has_coupler = coupled.contains(&levels[i].0);
        if i == 0 || reps.last() != Some(&has_coupler) {
            reps.push(has_coupler);
        }
    }
    let mut upstream = add_cell(&mut net, "merge_out0", 3, 3);
    net.add_transition(Transition {
        name: "merger_bottom.step".into(),
        guards: if leaf_gate > 1 {
            vec![(lhs.fifo, leaf_gate), (rhs.fifo, leaf_gate)]
        } else {
            Vec::new()
        },
        takes: vec![(lhs.fifo, 1), (rhs.fifo, 1), (upstream.credits, 2)],
        puts: vec![(lhs.credits, 1), (rhs.credits, 1), (upstream.fifo, 2)],
    });
    for (i, has_coupler) in reps.iter().enumerate() {
        let input = if *has_coupler {
            let mid = add_cell(&mut net, &format!("couple{i}"), 3, 3);
            net.add_transition(relay(&format!("coupler{i}.step"), upstream, 2, 2, mid, 2));
            mid
        } else {
            upstream
        };
        let out = add_cell(&mut net, &format!("merge_out{}", i + 1), 3, 3);
        net.add_transition(relay(&format!("merger{i}.step"), input, 2, 2, out, 2));
        upstream = out;
    }

    // Root → drain → write channel → sink. The write side destroys the
    // tokens the source minted, closing the steady-state cycle.
    let dw = add_cell(&mut net, "drain->chan_w", write_credits, write_credits);
    let ws = add_cell(&mut net, "chan_w->sink", write_credits, write_credits);
    net.add_transition(relay("drain.pop", upstream, 1, 1, dw, 1));
    net.add_transition(relay("chan_w.burst", dw, 1, 1, ws, 1));
    net.add_transition(Transition {
        name: "sink.consume".into(),
        takes: vec![(ws.fifo, 1)],
        puts: vec![(ws.credits, 1)],
        ..Transition::default()
    });

    net.validate().map_err(|e| {
        vec![Diagnostic::error(
            codes::GRAPH_MALFORMED,
            "folded token net failed structural validation",
        )
        .with("reason", e)]
    })?;
    Ok(net)
}

/// Lower a configuration to the graph IR and fold it into its token
/// net. Fails with the lowering's fatal shape diagnostics (`BON001`,
/// `BON002`, `BON004`, `BON017`).
pub fn net_from_config(
    config: &SimEngineConfig,
    opts: &NetOptions,
) -> Result<TokenNet, Vec<Diagnostic>> {
    let g = lower_to_graph(config, &LowerOptions::default())?;
    net_from_graph(&g, opts)
}

/// How a static refutation fared when replayed on the cycle simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The simulator wedged too: the refutation is confirmed in
    /// simulation (`code` is `BON040`, with the failing stage).
    Reproduced {
        /// The simulator's structured failure code.
        code: &'static str,
        /// The 1-based merge stage that wedged.
        stage: u32,
        /// Cycles burned when the livelock bound tripped.
        cycles: u64,
    },
    /// The simulator completed the sort: the static model is
    /// conservative for this configuration (`BON065`).
    Completed {
        /// Total simulated cycles of the successful sort.
        cycles: u64,
    },
    /// The engine rejected the configuration outright; the shape
    /// diagnostics already cover it and no replay is meaningful.
    Rejected {
        /// The constructor's findings.
        diagnostics: Vec<Diagnostic>,
    },
}

/// Replay a statically refuted configuration against [`SimEngine`]
/// with a small randomized workload and a tight livelock bound.
#[must_use]
pub fn replay_refutation(
    config: &SimEngineConfig,
    records: usize,
    max_pass_cycles: u64,
    seed: u64,
) -> ReplayOutcome {
    let mut engine = match SimEngine::try_new(*config) {
        Ok(engine) => engine.with_max_pass_cycles(max_pass_cycles),
        Err(diagnostics) => return ReplayOutcome::Rejected { diagnostics },
    };
    // Inline xorshift64*: the workload only needs to be deterministic
    // and unsorted (bonsai-rng is a dev-dependency by design).
    let mut state = seed | 1;
    let data: Vec<U32Rec> = (0..records)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            U32Rec::new((state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u32)
        })
        .collect();
    match engine.try_sort(data) {
        Ok((_, report)) => ReplayOutcome::Completed {
            cycles: report.total_cycles,
        },
        Err(e) => ReplayOutcome::Reproduced {
            code: e.code(),
            stage: e.stage,
            cycles: e.cycles,
        },
    }
}

/// Replay with defaults and translate the outcome into diagnostics:
/// a confirmation context string on reproduction, a `BON065` warning
/// when the simulator completes despite the static refutation, and
/// nothing when the engine rejected the configuration (the shape
/// errors already tell the story).
#[must_use]
pub fn confirm_refutation(config: &SimEngineConfig) -> (ReplayOutcome, Vec<Diagnostic>) {
    let outcome = replay_refutation(config, REPLAY_RECORDS, REPLAY_MAX_PASS_CYCLES, 1);
    let diags = match &outcome {
        ReplayOutcome::Completed { cycles } => vec![Diagnostic::warning(
            codes::PROVE_REPLAY_DIVERGED,
            "static refutation did not reproduce in simulation: the cycle simulator \
             relaxes the hardware contract the token net enforces",
        )
        .with("sim_cycles", cycles)
        .with("replay_records", REPLAY_RECORDS)],
        ReplayOutcome::Reproduced { .. } | ReplayOutcome::Rejected { .. } => Vec::new(),
    };
    (outcome, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmtConfig;
    use bonsai_check::prove::{
        prove, prove_with_diagnostics, verify_certificate, verify_refutation, FailureKind,
        ProveOptions, ProveOutcome,
    };
    use bonsai_memsim::MemoryConfig;

    fn dram(p: usize, l: usize) -> SimEngineConfig {
        SimEngineConfig::dram_sorter(AmtConfig::new(p, l), 4)
    }

    #[test]
    fn paper_shapes_certify_within_default_budget() {
        for (p, l) in [(4, 16), (8, 64), (16, 256), (32, 64)] {
            let net = net_from_config(&dram(p, l), &NetOptions::default()).expect("lowers");
            let (outcome, diags) = prove_with_diagnostics(&net, &ProveOptions::default());
            let ProveOutcome::Certified(cert) = outcome else {
                panic!("AMT({p},{l}) must certify, got {diags:?}");
            };
            assert!(diags.is_empty(), "AMT({p},{l}): {diags:?}");
            assert!(cert.covered.iter().all(|&c| c), "AMT({p},{l})");
            verify_certificate(&net, &cert).expect("certificate verifies");
        }
    }

    #[test]
    fn folding_is_shape_independent_in_size() {
        // The level quotient keeps the net small no matter how deep the
        // tree: AMT(16,256) has 511 mergers but the same handful of
        // protocol classes.
        let small = net_from_config(&dram(4, 16), &NetOptions::default()).unwrap();
        let big = net_from_config(&dram(16, 256), &NetOptions::default()).unwrap();
        assert!(big.places.len() <= 30, "{} places", big.places.len());
        assert!(big.places.len() >= small.places.len());
        assert!(big.transitions.len() <= 16);
    }

    #[test]
    fn zero_buffer_batches_is_refuted_and_reproduces_in_simulation() {
        let mut cfg = dram(4, 16);
        cfg.loader.buffer_batches = 0;
        let net = net_from_config(&cfg, &NetOptions::default()).unwrap();
        let ProveOutcome::Refuted(r) = prove(&net, &ProveOptions::default()) else {
            panic!("zero leaf credits must refute");
        };
        assert_eq!(r.kind, FailureKind::Deadlock);
        assert!(!r.trace.is_empty());
        verify_refutation(&net, &r).expect("trace replays on the net");
        // The counterexample round-trips through the Schedule contract.
        let parsed: bonsai_check::prove::Trace = r.trace.to_string().parse().unwrap();
        assert_eq!(parsed, r.trace);
        // And the simulator genuinely wedges on this configuration.
        let (outcome, diags) = confirm_refutation(&cfg);
        match outcome {
            ReplayOutcome::Reproduced { code, stage, .. } => {
                assert_eq!(code, codes::SIM_PASS_LIVELOCK);
                assert_eq!(stage, 1);
            }
            other => panic!("expected a reproduced livelock, got {other:?}"),
        }
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn shallow_leaf_buffer_is_refuted_but_diverges_in_simulation() {
        // p=8, l=4 with 2-record batches of 16-byte records: the static
        // flush contract (w+1 = 5 records buffered) is unsatisfiable,
        // but the software simulator refills mid-tuple and completes —
        // the BON065 divergence case.
        let mut cfg = SimEngineConfig::dram_sorter(AmtConfig::new(8, 4), 16);
        cfg.loader.batch_bytes = 32;
        let net = net_from_config(&cfg, &NetOptions::default()).unwrap();
        let ProveOutcome::Refuted(r) = prove(&net, &ProveOptions::default()) else {
            panic!("shallow leaf buffer must refute");
        };
        assert_eq!(r.kind, FailureKind::Deadlock);
        verify_refutation(&net, &r).expect("trace replays on the net");
        let (outcome, diags) = confirm_refutation(&cfg);
        assert!(
            matches!(outcome, ReplayOutcome::Completed { .. }),
            "{outcome:?}"
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::PROVE_REPLAY_DIVERGED);
    }

    #[test]
    fn credit_slack_probe_overflows() {
        let net = net_from_config(&dram(4, 16), &NetOptions { credit_slack: 2 }).unwrap();
        let ProveOutcome::Refuted(r) = prove(&net, &ProveOptions::default()) else {
            panic!("over-credited leaf must overflow");
        };
        let FailureKind::Overflow { place } = r.kind else {
            panic!("expected overflow, got {:?}", r.kind);
        };
        assert_eq!(net.places[place].name, "leaf_l.fifo");
        verify_refutation(&net, &r).expect("trace replays on the net");
    }

    #[test]
    fn tiny_single_bank_shapes_certify() {
        for (p, l) in [(1, 2), (2, 4)] {
            let cfg = SimEngineConfig::with_memory(
                AmtConfig::new(p, l),
                4,
                MemoryConfig::ddr4_single_bank(),
            );
            let net = net_from_config(&cfg, &NetOptions::default()).expect("lowers");
            let (outcome, diags) = prove_with_diagnostics(&net, &ProveOptions::default());
            assert!(
                matches!(outcome, ProveOutcome::Certified(_)),
                "AMT({p},{l}): {diags:?}"
            );
        }
    }

    #[test]
    fn fatal_shape_errors_pass_through() {
        let mut cfg = dram(4, 16);
        cfg.loader.record_bytes = 0;
        let err = net_from_config(&cfg, &NetOptions::default()).unwrap_err();
        assert!(err.iter().any(|d| d.code == codes::RECORD_WIDTH_ZERO));
    }

    #[test]
    fn graphs_without_the_merge_spine_are_rejected() {
        let empty = PipelineGraph::new();
        let err = net_from_graph(&empty, &NetOptions::default()).unwrap_err();
        assert!(err.iter().any(|d| d.code == codes::GRAPH_MALFORMED));
    }
}
