//! The Adaptive Merge Tree (AMT) — the core architecture of the Bonsai
//! paper (§II).
//!
//! An `AMT(p, ℓ)` is a complete binary tree of hardware mergers that
//! merges `ℓ` sorted runs concurrently and outputs `p` records per cycle
//! at the root: a `p`-merger at the root, two `p/2`-mergers below it, and
//! so on (1-mergers once `2^k > p`), with couplers concatenating tuples
//! between levels. Sorting runs the data through the tree in recursive
//! *stages*: stage `k` turns `ℓ^(k-1)·a`-record runs into `ℓ^k·a`-record
//! runs, so `ceil(log_ℓ(N/a))` stages sort `N` records from `a`-record
//! presorted runs.
//!
//! This crate provides:
//!
//! - [`AmtConfig`] / [`MergeTree`]: tree construction from `(p, ℓ)` and
//!   the cycle-level tree simulation built on `bonsai-merge-hw`,
//! - [`SimEngine`]: a full cycle-approximate merge-sort engine that
//!   streams real data through the tree, fed by the `bonsai-memsim` data
//!   loader, producing sorted output plus cycle-exact timing
//!   ([`SortReport`]),
//! - [`functional`]: a fast, functionally identical execution path
//!   (loser-tree `ℓ`-way merges) for data sizes where cycle simulation
//!   is unnecessary.
//!
//! # Example
//!
//! ```
//! use bonsai_amt::{AmtConfig, SimEngine, SimEngineConfig};
//! use bonsai_gensort::dist::uniform_u32;
//!
//! let data = uniform_u32(10_000, 1);
//! let cfg = SimEngineConfig::dram_sorter(AmtConfig::new(4, 16), 4);
//! let mut engine = SimEngine::new(cfg);
//! let (sorted, report) = engine.sort(data.clone());
//! assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//! assert!(report.total_cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
pub mod dag;
mod engine;
mod error;
pub mod functional;
pub mod graph;
mod loser_tree;
pub mod passsim;
pub mod prove;
mod report;
pub mod schedule;
pub mod shard;
mod tree;
mod unrolled;

pub use cache::{CompiledShape, ShapeCache};
pub use config::{AmtConfig, SimEngineConfig};
pub use dag::{BatchSorted, PassPlan, SortPlan, VIRTUAL_WORKERS};
pub use engine::{SimEngine, REFERENCE_LOOP_ENV};
pub use error::SortError;
pub use loser_tree::{loser_tree_merge, LoserTree};
pub use report::{PassReport, SortReport};
pub use tree::{MergeTree, TreeStats};
pub use unrolled::{UnrolledReport, UnrolledSim};
