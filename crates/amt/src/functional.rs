//! Fast functional execution of the AMT merge schedule.
//!
//! The cycle-approximate [`SimEngine`](crate::SimEngine) is the reference
//! for timing; this module executes the *same* merge schedule (presort,
//! then `ceil(log_ℓ)` stages of `ℓ`-way merges) with a software loser
//! tree, producing bit-identical output orders of magnitude faster. The
//! sorters crate uses it for gigabyte-scale data and pairs it with the
//! analytic performance model for timing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bonsai_records::run::RunSet;
use bonsai_records::Record;

/// Merges `k` sorted runs into one sorted vector (heap-based `k`-way
/// merge, ties broken by run index for determinism).
///
/// # Example
///
/// ```
/// use bonsai_amt::functional::kway_merge;
/// use bonsai_records::U32Rec;
///
/// let a = [1u32, 4].map(U32Rec::new);
/// let b = [2u32, 3].map(U32Rec::new);
/// let merged = kway_merge(&[&a, &b]);
/// assert_eq!(merged, [1u32, 2, 3, 4].map(U32Rec::new).to_vec());
/// ```
pub fn kway_merge<R: Record>(runs: &[&[R]]) -> Vec<R> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    // Heap of (record, run index); Reverse turns max-heap into min-heap.
    let mut heap: BinaryHeap<Reverse<(R, usize)>> = BinaryHeap::with_capacity(runs.len());
    let mut cursors = vec![0usize; runs.len()];
    for (i, run) in runs.iter().enumerate() {
        if let Some(&first) = run.first() {
            heap.push(Reverse((first, i)));
            cursors[i] = 1;
        }
    }
    while let Some(Reverse((rec, i))) = heap.pop() {
        out.push(rec);
        if let Some(&next) = runs[i].get(cursors[i]) {
            heap.push(Reverse((next, i)));
            cursors[i] += 1;
        }
    }
    out
}

/// Executes one merge stage: every group of `fan_in` consecutive runs is
/// merged into one run, exactly as the AMT does with `ℓ = fan_in`.
///
/// # Panics
///
/// Panics if `fan_in < 2`.
pub fn merge_pass<R: Record>(runs: &RunSet<R>, fan_in: usize) -> RunSet<R> {
    assert!(fan_in >= 2, "merge fan-in must be at least 2");
    if runs.num_runs() <= 1 {
        return RunSet::single_run(runs.records().to_vec());
    }
    let mut records = Vec::with_capacity(runs.len());
    let mut starts = Vec::with_capacity(runs.num_runs().div_ceil(fan_in));
    let mut group: Vec<&[R]> = Vec::with_capacity(fan_in);
    for i in (0..runs.num_runs()).step_by(fan_in) {
        group.clear();
        for j in i..(i + fan_in).min(runs.num_runs()) {
            group.push(runs.run(j));
        }
        let merged = kway_merge(&group);
        if !merged.is_empty() {
            starts.push(records.len());
            records.extend(merged);
        }
    }
    RunSet::from_parts(records, starts)
}

/// Sorts `data` with the AMT merge schedule: presort into
/// `initial_run_len`-record runs, then `ℓ`-way merge stages until one
/// run remains. Returns the sorted data and the number of merge stages
/// executed (the `ceil(log_ℓ(N / a))` of Equation 1).
///
/// # Panics
///
/// Panics if `fan_in < 2` or `initial_run_len == 0`.
pub fn sort<R: Record>(data: Vec<R>, fan_in: usize, initial_run_len: usize) -> (Vec<R>, u32) {
    assert!(initial_run_len >= 1, "initial run length must be positive");
    if data.len() <= 1 {
        return (data, 0);
    }
    let mut runs = RunSet::from_chunks(data, initial_run_len);
    let mut stages = 0u32;
    while runs.num_runs() > 1 {
        runs = merge_pass(&runs, fan_in);
        stages += 1;
    }
    (runs.into_records(), stages)
}

/// Like [`sort`], but with the balanced per-stage fan-in schedule of
/// [`crate::schedule::fan_in_schedule`] on an `ℓ`-leaf tree — exactly
/// the schedule the cycle-approximate [`crate::SimEngine`] executes, so
/// outputs and stage counts match it bit for bit.
///
/// # Panics
///
/// Panics if `l < 2` or `initial_run_len == 0`.
pub fn sort_balanced<R: Record>(data: Vec<R>, l: usize, initial_run_len: usize) -> (Vec<R>, u32) {
    assert!(initial_run_len >= 1, "initial run length must be positive");
    if data.len() <= 1 {
        return (data, 0);
    }
    let mut runs = RunSet::from_chunks(data, initial_run_len);
    let fan_ins = crate::schedule::fan_in_schedule(runs.num_runs() as u64, l as u64);
    let stages = fan_ins.len() as u32;
    for &m in &fan_ins {
        runs = merge_pass(&runs, m as usize);
    }
    (runs.into_records(), stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_gensort::dist::{uniform_u32, uniform_u64, Distribution};
    use bonsai_records::run::stages_needed;
    use bonsai_records::{U32Rec, U64Rec};

    #[test]
    fn kway_merge_of_empty_and_nonempty_runs() {
        let a: Vec<U32Rec> = vec![];
        let b = [5u32, 6].map(U32Rec::new);
        let c = [1u32].map(U32Rec::new);
        let out = kway_merge(&[&a, &b, &c]);
        assert_eq!(out, [1u32, 5, 6].map(U32Rec::new).to_vec());
    }

    #[test]
    fn kway_merge_no_runs() {
        let out: Vec<U32Rec> = kway_merge(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn sort_matches_std_sort_u32() {
        let data = uniform_u32(100_000, 21);
        let mut expected: Vec<U32Rec> = data.clone();
        expected.sort_unstable();
        let (out, _) = sort(data, 16, 16);
        assert_eq!(out, expected);
    }

    #[test]
    fn sort_matches_std_sort_u64_various_fanins() {
        let data = uniform_u64(10_000, 22);
        let mut expected: Vec<U64Rec> = data.clone();
        expected.sort_unstable();
        for fan_in in [2, 4, 64, 256] {
            let (out, _) = sort(data.clone(), fan_in, 1);
            assert_eq!(out, expected, "fan_in = {fan_in}");
        }
    }

    #[test]
    fn stage_count_matches_formula() {
        for (n, fan_in, presort) in [
            (100_000usize, 16usize, 16usize),
            (4096, 4, 1),
            (5000, 256, 16),
        ] {
            let data = uniform_u32(n, 23);
            let (_, stages) = sort(data, fan_in, presort);
            let runs0 = (n as u64).div_ceil(presort as u64);
            assert_eq!(stages, stages_needed(runs0, fan_in as u64), "n={n}");
        }
    }

    #[test]
    fn duplicate_heavy_input_is_stable_under_schedule() {
        let data = Distribution::FewDistinct(2).generate_u32(50_000, 24);
        let (out, _) = sort(data.clone(), 8, 16);
        let mut expected = data;
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn merge_pass_groups_runs() {
        let data = uniform_u32(1000, 25);
        let runs = RunSet::from_chunks(data, 10); // 100 runs
        let next = merge_pass(&runs, 16);
        assert_eq!(next.num_runs(), 7); // ceil(100/16)
        assert!(next.validate().is_ok());
        assert_eq!(next.len(), 1000);
    }
}
